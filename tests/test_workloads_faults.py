"""Tests for the workload drivers and fault-injection helpers."""

import random

import pytest

from repro.block import Bio, Op
from repro.errors import ReproError
from repro.faults import (
    CrashPoint,
    crash_during,
    power_cycle,
    tolerate_power_loss,
    wear_out_zone,
)
from repro.sim import Simulator
from repro.units import KiB, MiB
from repro.workloads import FioJobSpec, prime_volume, run_fio, run_overwrite
from repro.zns import ZNSDevice, ZoneState

from conftest import make_volume, make_zns_devices


class TestFioDriver:
    def test_sequential_write_moves_all_bytes(self, sim):
        volume, _devices = make_volume(sim)
        spec = FioJobSpec(rw="write", block_size=64 * KiB, iodepth=8,
                          numjobs=2, size_per_job=2 * MiB,
                          region=(0, volume.capacity),
                          align=volume.zone_capacity)
        result = run_fio(sim, volume, spec)
        assert result.total_bytes == 4 * MiB
        assert result.latency.count == 64
        assert result.throughput_mib_s > 0

    def test_sequential_read_after_prime(self, sim):
        volume, _devices = make_volume(sim)
        prime_volume(sim, volume, 8 * MiB)
        spec = FioJobSpec(rw="read", block_size=256 * KiB, iodepth=16,
                          numjobs=1, size_per_job=8 * MiB,
                          region=(0, 8 * MiB))
        result = run_fio(sim, volume, spec)
        assert result.total_bytes == 8 * MiB

    def test_random_read(self, sim):
        volume, _devices = make_volume(sim)
        prime_volume(sim, volume, 4 * MiB)
        spec = FioJobSpec(rw="randread", block_size=16 * KiB, iodepth=32,
                          numjobs=1, size_per_job=2 * MiB,
                          region=(0, 4 * MiB), seed=3)
        result = run_fio(sim, volume, spec)
        assert result.latency.count == 128

    def test_deeper_queue_is_not_slower(self, sim):
        volume, _devices = make_volume(sim)
        prime_volume(sim, volume, 8 * MiB)

        def throughput(iodepth):
            local = Simulator()
            vol, _ = make_volume(local)
            prime_volume(local, vol, 8 * MiB)
            spec = FioJobSpec(rw="randread", block_size=64 * KiB,
                              iodepth=iodepth, numjobs=1,
                              size_per_job=4 * MiB, region=(0, 8 * MiB))
            return run_fio(local, vol, spec).throughput_mib_s
        assert throughput(32) > throughput(1) * 2

    def test_invalid_specs_rejected(self):
        with pytest.raises(ReproError):
            FioJobSpec(rw="bogus", block_size=4096)
        with pytest.raises(ReproError):
            FioJobSpec(rw="write", block_size=4096, iodepth=0)

    def test_oversized_job_rejected(self, sim):
        volume, _devices = make_volume(sim)
        spec = FioJobSpec(rw="write", block_size=64 * KiB, iodepth=1,
                          numjobs=4, size_per_job=volume.capacity,
                          region=(0, volume.capacity))
        with pytest.raises(ReproError):
            run_fio(sim, volume, spec)


class TestOverwriteDriver:
    def test_two_phases_on_raizn(self, sim):
        volume, _devices = make_volume(sim)
        result = run_overwrite(sim, volume, block_size=256 * KiB,
                               iodepth=4, threads=3, zoned=True,
                               bucket_seconds=0.001)
        assert result.phase2_start > 0
        assert result.phase1_latency.count > 0
        assert result.phase2_latency.count > 0
        # Phase 1 + phase 2 together wrote ~2x the usable capacity.
        usable = volume.capacity - volume.capacity % (3 * volume.zone_capacity)
        assert result.series.total_bytes >= usable

    def test_progress_reduction(self):
        from repro.harness import run_gc_timeseries, throughput_vs_progress
        from repro.harness.arrays import ArrayScale
        scale = ArrayScale(num_zones=8, zone_capacity=1 * MiB)
        result = run_gc_timeseries("raizn", scale=scale,
                                   block_size=64 * KiB)
        points = throughput_vs_progress(result, points=4)
        assert len(points) >= 3
        assert all(v > 0 for _f, v in points)


class TestPowerFaults:
    def test_power_cycle_loses_only_unflushed(self, sim):
        volume, devices = make_volume(sim)
        volume.execute(Bio.write(0, b"\x01" * 4096))
        volume.execute(Bio.flush())
        power_cycle(devices, random.Random(1))
        for dev in devices:
            assert dev.powered

    def test_tolerate_power_loss_swallows(self, sim, zns):
        def doomed():
            yield zns.submit(Bio.write(0, b"\x01" * 4096))
            zns.power_off()
            yield zns.submit(Bio.write(4096, b"\x02" * 4096))
            return "unreachable"
        result = sim.run_process(tolerate_power_loss(doomed()))
        assert result is None

    def test_crash_during_runs_workload_partially(self, sim):
        volume, devices = make_volume(sim)

        def workload():
            for i in range(64):
                yield volume.submit(Bio.write(i * 64 * KiB,
                                              b"\xaa" * (64 * KiB)))
            return "done"
        proc = crash_during(sim, devices, workload(), crash_time=0.001,
                            rng=random.Random(2))
        assert proc.triggered
        assert all(dev.powered for dev in devices)

    def test_crash_point_counts_ops(self, sim):
        devices = make_zns_devices(sim, n=2)
        crash = CrashPoint(devices, after=2, ops=(Op.WRITE,))
        devices[0].execute(Bio.write(0, b"\x01" * 4096))
        assert not crash.fired
        from repro.errors import PowerLossError
        with pytest.raises(PowerLossError):
            devices[1].execute(Bio.write(0, b"\x02" * 4096))
        assert crash.fired
        crash.disarm()
        assert devices[0].pre_apply_hook is None


class TestDeviceFaults:
    def test_wear_out_zone(self, sim, zns):
        wear_out_zone(zns, 3)
        assert zns.zone_info(3).state is ZoneState.READ_ONLY
        wear_out_zone(zns, 4, offline=True)
        assert zns.zone_info(4).state is ZoneState.OFFLINE

    def test_fresh_replacement_matches_geometry(self, sim, zns):
        from repro.faults import fresh_replacement
        replacement = fresh_replacement(sim, zns, "new")
        assert replacement.num_zones == zns.num_zones
        assert replacement.zone_capacity == zns.zone_capacity
        assert replacement.max_open_zones == zns.max_open_zones
