"""Unit and integration tests for the F2FS-like filesystem."""

import pytest

from repro.apps import F2FS, F2FSError
from repro.sim import Simulator
from repro.units import KiB, MiB, SECTOR_SIZE
from repro.zns import ZoneState

from conftest import make_volume, pattern


@pytest.fixture
def fs(sim):
    volume, _devices = make_volume(sim)
    return F2FS(sim, volume)


def run(sim, gen):
    return sim.run_process(gen)


class TestNamespace:
    def test_create_and_exists(self, sim, fs):
        fs.create("a/b")
        assert fs.exists("a/b")
        assert not fs.exists("a/c")
        assert fs.list_files() == ["a/b"]

    def test_duplicate_create_rejected(self, sim, fs):
        fs.create("x")
        with pytest.raises(F2FSError):
            fs.create("x")

    def test_missing_file_rejected(self, sim, fs):
        with pytest.raises(F2FSError):
            fs.file_size("nope")


class TestDataPath:
    def test_append_read_roundtrip(self, sim, fs):
        fs.create("f")
        data = pattern(100 * KiB, seed=1)
        run(sim, fs.append("f", data))
        assert run(sim, fs.read("f", 0, 100 * KiB)) == data

    def test_append_pads_to_sector(self, sim, fs):
        fs.create("f")
        run(sim, fs.append("f", b"\x01" * 100))
        assert fs.file_size("f") == SECTOR_SIZE

    def test_multiple_appends_concatenate(self, sim, fs):
        fs.create("f")
        a = pattern(8 * KiB, seed=2)
        b = pattern(12 * KiB, seed=3)
        run(sim, fs.append("f", a))
        run(sim, fs.append("f", b))
        assert run(sim, fs.read("f", 0, 20 * KiB)) == a + b

    def test_unaligned_read(self, sim, fs):
        fs.create("f")
        data = pattern(64 * KiB, seed=4)
        run(sim, fs.append("f", data))
        assert run(sim, fs.read("f", 1000, 5000)) == data[1000:6000]

    def test_read_past_eof_rejected(self, sim, fs):
        fs.create("f")
        run(sim, fs.append("f", b"\x01" * SECTOR_SIZE))
        with pytest.raises(F2FSError):
            run(sim, fs.read("f", 0, 2 * SECTOR_SIZE))

    def test_append_spans_segments(self, sim, fs):
        fs.create("f")
        data = pattern(fs.segment_bytes + 64 * KiB, seed=5)
        run(sim, fs.append("f", data))
        assert run(sim, fs.read("f", 0, len(data))) == data

    def test_fsync_flushes(self, sim, fs):
        fs.create("f")
        run(sim, fs.append("f", b"\x01" * SECTOR_SIZE))
        run(sim, fs.fsync("f"))
        assert fs.fsync_count == 1

    def test_delete_frees_space(self, sim, fs):
        fs.create("f")
        run(sim, fs.append("f", pattern(fs.segment_bytes, seed=6)))
        free_before = len(fs.free_segments)
        run(sim, fs.delete("f"))
        assert not fs.exists("f")
        assert len(fs.free_segments) >= free_before

    def test_concurrent_appenders(self, sim, fs):
        """Two writers appending to different files must not collide on
        the shared log position."""
        fs.create("a")
        fs.create("b")
        da = pattern(256 * KiB, seed=7)
        db = pattern(256 * KiB, seed=8)

        def writer(path, data):
            for off in range(0, len(data), 16 * KiB):
                yield from fs.append(path, data[off:off + 16 * KiB])
        pa = sim.process(writer("a", da))
        pb = sim.process(writer("b", db))
        sim.run()
        assert pa.ok and pb.ok
        assert run(sim, fs.read("a", 0, len(da))) == da
        assert run(sim, fs.read("b", 0, len(db))) == db


class TestCleaning:
    def test_gc_migrates_live_data(self, sim):
        volume, _devices = make_volume(sim)
        fs = F2FS(sim, volume, reserved_segments=2)
        capacity_segments = len(fs.segments)
        keep = pattern(fs.segment_bytes // 2, seed=9)
        fs.create("keep")
        sim.run_process(fs.append("keep", keep))
        # Fill and delete churn files until cleaning must run.
        for round_number in range(3 * capacity_segments):
            name = f"churn{round_number}"
            fs.create(name)
            sim.run_process(fs.append(
                name, pattern(fs.segment_bytes // 2, seed=round_number)))
            sim.run_process(fs.delete(name))
        assert sim.run_process(fs.read("keep", 0, len(keep))) == keep

    def test_out_of_space(self, sim):
        volume, _devices = make_volume(sim)
        fs = F2FS(sim, volume, reserved_segments=2)
        fs.create("big")
        with pytest.raises(F2FSError):
            sim.run_process(fs.append(
                "big", pattern(volume.capacity + fs.segment_bytes, seed=10)))


class TestZonedBehaviour:
    def test_segments_are_zones(self, sim, fs):
        assert fs.zoned
        assert fs.segment_bytes == fs.volume.zone_capacity

    def test_reclaim_resets_zone(self, sim):
        volume, _devices = make_volume(sim)
        fs = F2FS(sim, volume)
        fs.create("f")
        sim.run_process(fs.append("f", pattern(fs.segment_bytes, seed=11)))
        segment = fs.segments[fs.files["f"].extents[0].lba
                              // fs.segment_bytes]
        sim.run_process(fs.delete("f"))
        # The dead segment is reclaimed once it is no longer the active
        # log head: force a rotation with another segment-filling file.
        fs.create("g")
        sim.run_process(fs.append("g", pattern(fs.segment_bytes, seed=12)))
        assert volume.zone_info(segment.index).state is ZoneState.EMPTY

    def test_runs_on_mdraid_too(self, sim):
        from repro.conv import ConventionalSSD
        from repro.mdraid import MdraidVolume
        devices = [ConventionalSSD(sim, capacity_bytes=8 * MiB, seed=i)
                   for i in range(5)]
        md = MdraidVolume(sim, devices)
        fs = F2FS(sim, md)
        assert not fs.zoned
        fs.create("f")
        data = pattern(1 * MiB, seed=12)
        sim.run_process(fs.append("f", data))
        assert sim.run_process(fs.read("f", 0, len(data))) == data
        sim.run_process(fs.delete("f"))
