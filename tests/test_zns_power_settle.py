"""Power-loss settle edge cases and the durability bugfix regressions.

Covers the zone-state corners of ``_settle_zone_to`` (FULL-by-write vs
FULL-by-FINISH, EMPTY restore, READ_ONLY/OFFLINE passthrough), the
FUA zone-append durable-prefix fix in ``ZNSDevice._persist``, and the
explicit writability check in ``_apply_finish``.
"""

import random

import pytest

from repro.block import Bio, BioFlags
from repro.errors import ZoneStateError
from repro.units import KiB, MiB, SECTOR_SIZE
from repro.zns import ZNSDevice, ZoneState

from conftest import pattern


class TestSettleStates:
    def test_full_by_write_with_durable_data_stays_full(self, zns):
        zns.execute(Bio.write(0, pattern(MiB, seed=1)))
        zns.execute(Bio.flush())
        zns.power_fail(random.Random(7))
        zns.power_on()
        zone = zns.zone_info(0)
        assert zone.state is ZoneState.FULL
        assert zone.write_pointer == MiB

    def test_full_by_write_unflushed_tail_can_roll_back_to_closed(self, zns):
        """A zone filled by writes whose tail was only cached is FULL at
        crash time, but losing the tail must demote it to CLOSED."""
        zns.execute(Bio.write(0, pattern(MiB - 8 * KiB, seed=2),
                              BioFlags.FUA))
        zns.execute(Bio.write(MiB - 8 * KiB, pattern(8 * KiB, seed=3)))
        assert zns.zone_info(0).state is ZoneState.FULL
        zns.power_fail_to({0: MiB - 8 * KiB})
        zns.power_on()
        zone = zns.zone_info(0)
        assert zone.state is ZoneState.CLOSED
        assert zone.write_pointer == MiB - 8 * KiB

    def test_full_by_finish_reverts_to_closed(self, zns):
        """ZONE_FINISH is a volatile state transition: a finished zone
        with a partial write pointer comes back CLOSED, not FULL."""
        zns.execute(Bio.write(0, pattern(64 * KiB, seed=4), BioFlags.FUA))
        zns.execute(Bio.zone_finish(0))
        assert zns.zone_info(0).state is ZoneState.FULL
        assert zns.zones[0].finished_by_command
        zns.power_fail(random.Random(7))
        zns.power_on()
        zone = zns.zone_info(0)
        assert zone.state is ZoneState.CLOSED
        assert zone.write_pointer == 64 * KiB
        assert not zns.zones[0].finished_by_command

    def test_finished_empty_zone_reverts_to_empty(self, zns):
        zns.execute(Bio.zone_finish(0))
        assert zns.zone_info(0).state is ZoneState.FULL
        zns.power_fail(random.Random(7))
        zns.power_on()
        assert zns.zone_info(0).state is ZoneState.EMPTY

    def test_fully_cached_zone_restores_to_empty(self, zns):
        """Losing every cached byte of a never-flushed zone must return
        it to EMPTY with the write pointer back at the zone start."""
        zns.execute(Bio.write(0, pattern(16 * KiB, seed=5)))
        zns.power_fail_to({0: 0})
        zns.power_on()
        zone = zns.zone_info(0)
        assert zone.state is ZoneState.EMPTY
        assert zone.write_pointer == 0

    def test_read_only_zone_passes_through_settle(self, zns):
        zns.execute(Bio.write(0, pattern(32 * KiB, seed=6), BioFlags.FUA))
        zns.set_zone_read_only(0)
        zns.power_fail(random.Random(7))
        zns.power_on()
        zone = zns.zone_info(0)
        assert zone.state is ZoneState.READ_ONLY
        assert zone.write_pointer == 32 * KiB

    def test_offline_zone_passes_through_settle(self, zns):
        zns.set_zone_offline(3)
        zns.power_fail(random.Random(7))
        zns.power_on()
        assert zns.zone_info(3).state is ZoneState.OFFLINE


class TestFuaAppendDurability:
    def test_fua_append_persists_exact_prefix(self, zns):
        """Regression: the durable end of a FUA append is derived from the
        placement address (``bio.result``), not the zone-start offset —
        the old ``(bio.result or 0)`` fallback could compute a bogus
        device-absolute prefix."""
        zns.execute(Bio.write(0, pattern(8 * KiB, seed=8)))
        bio = zns.execute(Bio.zone_append(0, pattern(4 * KiB, seed=9),
                                          BioFlags.FUA))
        assert bio.result == 8 * KiB
        zone = zns.zones[0]
        # The FUA append makes the whole prefix durable (prefix ordering).
        assert zone.durable_pointer == 12 * KiB
        zns.power_fail_to({})
        zns.power_on()
        assert zns.zone_info(0).write_pointer == 12 * KiB
        assert zns.execute(Bio.read(8 * KiB, 4 * KiB)).result == \
            pattern(4 * KiB, seed=9)

    def test_fua_append_into_nonzero_zone_index(self, zns):
        """The append placement address is device-absolute; the persisted
        prefix must land in the right zone."""
        bio = zns.execute(Bio.zone_append(2 * MiB, pattern(4 * KiB, seed=10),
                                          BioFlags.FUA))
        assert bio.result == 2 * MiB
        assert zns.zones[2].durable_pointer == 2 * MiB + 4 * KiB
        assert 2 not in zns.survivor_state_space()

    def test_fua_append_without_result_fails_loudly(self, zns):
        bio = Bio.zone_append(0, pattern(SECTOR_SIZE, seed=11), BioFlags.FUA)
        bio.result = None
        with pytest.raises(AssertionError):
            zns._persist(bio)


class TestFinishWritability:
    def test_finish_read_only_zone_rejected(self, zns):
        zns.execute(Bio.write(0, pattern(4 * KiB, seed=12), BioFlags.FUA))
        zns.set_zone_read_only(0)
        with pytest.raises(ZoneStateError):
            zns.execute(Bio.zone_finish(0))

    def test_finish_offline_zone_rejected(self, zns):
        zns.set_zone_offline(1)
        with pytest.raises(ZoneStateError):
            zns.execute(Bio.zone_finish(MiB))

    def test_finish_full_zone_is_noop(self, zns):
        zns.execute(Bio.write(0, pattern(MiB, seed=13)))
        assert zns.zone_info(0).state is ZoneState.FULL
        zns.execute(Bio.zone_finish(0))
        assert zns.zone_info(0).state is ZoneState.FULL
