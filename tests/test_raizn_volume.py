"""Integration tests for the RAIZN volume: write/read paths, parity,
zone management, FUA semantics, and error handling."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.block import Bio, BioFlags, Op
from repro.errors import (
    DataLossError,
    InvalidAddressError,
    ReadUnwrittenError,
    VolumeStateError,
    WritePointerViolation,
    ZoneStateError,
)
from repro.raizn import RaiznConfig, RaiznVolume
from repro.sim import Simulator
from repro.units import KiB, MiB
from repro.zns import ZoneState

from conftest import (
    TEST_STRIPE_UNIT,
    TEST_ZONE_CAPACITY,
    make_volume,
    make_zns_devices,
    pattern,
)

SU = TEST_STRIPE_UNIT
STRIPE = 4 * SU  # D = 4


class TestGeometry:
    def test_capacity_excludes_parity_and_metadata(self, volume):
        # 12 zones, 3 metadata => 9 data zones; D=4 of 5 devices.
        assert volume.num_zones == 9
        assert volume.zone_capacity == 4 * TEST_ZONE_CAPACITY
        assert volume.capacity == 9 * 4 * TEST_ZONE_CAPACITY

    def test_zone_report(self, volume):
        report = volume.report_zones()
        assert len(report) == 9
        assert all(info.state is ZoneState.EMPTY for info in report)

    def test_mismatched_geometry_rejected(self, sim):
        devices = make_zns_devices(sim, n=4)
        devices.append(make_zns_devices(sim, n=1, num_zones=20)[0])
        with pytest.raises(Exception):
            RaiznVolume.create(sim, devices)


class TestWriteRead:
    def test_full_stripe_roundtrip(self, volume):
        data = pattern(STRIPE, seed=1)
        volume.execute(Bio.write(0, data))
        assert volume.execute(Bio.read(0, STRIPE)).result == data

    def test_sector_writes_roundtrip(self, volume):
        data = pattern(16 * KiB, seed=2)
        for offset in range(0, 16 * KiB, 4 * KiB):
            volume.execute(Bio.write(offset, data[offset:offset + 4 * KiB]))
        assert volume.execute(Bio.read(0, 16 * KiB)).result == data

    def test_multi_stripe_write(self, volume):
        data = pattern(3 * STRIPE + 12 * KiB, seed=3)
        volume.execute(Bio.write(0, data))
        assert volume.execute(Bio.read(0, len(data))).result == data

    def test_unaligned_read_offsets(self, volume):
        data = pattern(2 * STRIPE, seed=4)
        volume.execute(Bio.write(0, data))
        for offset, length in ((4 * KiB, 8 * KiB), (SU - 4 * KiB, 8 * KiB),
                               (STRIPE - 4 * KiB, 8 * KiB)):
            got = volume.execute(Bio.read(offset, length)).result
            assert got == data[offset:offset + length]

    def test_write_pointer_enforced(self, volume):
        volume.execute(Bio.write(0, b"\x01" * 4096))
        with pytest.raises(WritePointerViolation):
            volume.execute(Bio.write(64 * KiB, b"\x02" * 4096))

    def test_read_beyond_wp_rejected(self, volume):
        volume.execute(Bio.write(0, b"\x01" * 4096))
        with pytest.raises(ReadUnwrittenError):
            volume.execute(Bio.read(0, 8192))

    def test_read_across_zone_boundary(self, volume):
        zone_cap = volume.zone_capacity
        volume.execute(Bio.write(0, pattern(zone_cap, seed=5)))
        data2 = pattern(8 * KiB, seed=6)
        volume.execute(Bio.write(zone_cap, data2))
        got = volume.execute(Bio.read(zone_cap - 4 * KiB, 8 * KiB)).result
        assert got[4 * KiB:] == data2[:4 * KiB]

    def test_write_fills_zone_to_full(self, volume):
        volume.execute(Bio.write(0, pattern(volume.zone_capacity, seed=7)))
        assert volume.zone_info(0).state is ZoneState.FULL

    def test_second_zone_independent(self, volume):
        zone1 = volume.zone_capacity
        data = pattern(STRIPE, seed=8)
        volume.execute(Bio.write(zone1, data))
        assert volume.execute(Bio.read(zone1, STRIPE)).result == data
        assert volume.zone_info(0).state is ZoneState.EMPTY

    def test_misaligned_write_rejected(self, volume):
        with pytest.raises(InvalidAddressError):
            volume.execute(Bio.write(0, b"\x01" * 100))

    def test_parity_written_for_complete_stripes(self, volume_and_devices):
        volume, devices = volume_and_devices
        volume.execute(Bio.write(0, pattern(STRIPE, seed=9)))
        layout = volume.mapper.stripe_layout(0, 0)
        parity_dev = devices[layout.parity_device]
        assert parity_dev.zone_info(0).write_pointer >= SU

    def test_partial_parity_logged_for_incomplete_stripe(
            self, volume_and_devices):
        volume, devices = volume_and_devices
        volume.execute(Bio.write(0, b"\x01" * 4096))
        layout = volume.mapper.stripe_layout(0, 0)
        mdz = volume.mdzones[layout.parity_device]
        from repro.raizn.mdzone import MetadataRole
        pp_zone = mdz.role_zone[MetadataRole.PARTIAL_PARITY]
        assert mdz.used[pp_zone] >= 8192  # header + delta


class TestZoneAppendEmulation:
    def test_append_returns_lba(self, volume):
        bio = volume.execute(Bio.zone_append(0, b"\x01" * 4096))
        assert bio.result == 0
        bio = volume.execute(Bio.zone_append(0, b"\x02" * 4096))
        assert bio.result == 4096

    def test_append_requires_zone_start(self, volume):
        with pytest.raises(InvalidAddressError):
            volume.execute(Bio.zone_append(4096, b"\x01" * 4096))


class TestFlushAndFua:
    def test_flush_broadcasts(self, volume_and_devices):
        volume, devices = volume_and_devices
        volume.execute(Bio.write(0, pattern(STRIPE, seed=10)))
        volume.execute(Bio.flush())
        assert all(dev.stats.flushes >= 1 for dev in devices)

    def test_fua_write_persists_prefix(self, volume_and_devices):
        volume, devices = volume_and_devices
        volume.execute(Bio.write(0, pattern(STRIPE, seed=11)))
        volume.execute(Bio.write(STRIPE, b"\x01" * 4096,
                                 BioFlags.FUA | BioFlags.PREFLUSH))
        # Every device holding data below the FUA write is now durable.
        for device_index in range(5):
            zone = devices[device_index].zones[0]
            assert zone.durable_pointer == zone.write_pointer

    def test_fua_updates_persistence_bitmap(self, volume):
        volume.execute(Bio.write(0, pattern(STRIPE, seed=12)))
        volume.execute(Bio.write(STRIPE, b"\x01" * 4096, BioFlags.FUA))
        desc = volume.zone_descs[0]
        assert desc.persistence.frontier >= 4

    def test_plain_write_does_not_mark_persisted(self, volume):
        volume.execute(Bio.write(0, pattern(STRIPE, seed=13)))
        assert volume.zone_descs[0].persistence.frontier == 0


class TestZoneManagement:
    def test_reset_cycle(self, volume):
        data = pattern(STRIPE, seed=14)
        volume.execute(Bio.write(0, data))
        generation = volume.generation[0]
        volume.execute(Bio.zone_reset(0))
        assert volume.zone_info(0).state is ZoneState.EMPTY
        assert volume.generation[0] == generation + 1
        data2 = pattern(STRIPE, seed=15)
        volume.execute(Bio.write(0, data2))
        assert volume.execute(Bio.read(0, STRIPE)).result == data2

    def test_reset_requires_zone_start(self, volume):
        with pytest.raises(InvalidAddressError):
            volume.execute(Bio.zone_reset(4096))

    def test_reset_resets_physical_zones(self, volume_and_devices):
        volume, devices = volume_and_devices
        volume.execute(Bio.write(0, pattern(STRIPE, seed=16)))
        volume.execute(Bio.zone_reset(0))
        for dev in devices:
            assert dev.zone_info(0).write_pointer == 0

    def test_finish_seals_zone(self, volume):
        data = pattern(STRIPE + 8 * KiB, seed=17)
        volume.execute(Bio.write(0, data))
        volume.execute(Bio.zone_finish(0))
        assert volume.zone_info(0).state is ZoneState.FULL
        assert volume.execute(Bio.read(0, len(data))).result == data
        with pytest.raises(ZoneStateError):
            volume.execute(Bio.write(len(data), b"\x01" * 4096))

    def test_finished_partial_stripe_readable_degraded(self, volume):
        """Finish writes the tail stripe's parity, so a later device
        failure can still reconstruct the partial stripe."""
        data = pattern(SU + 8 * KiB, seed=18)
        volume.execute(Bio.write(0, data))
        volume.execute(Bio.zone_finish(0))
        device, _pba = volume.mapper.lba_to_pba(0)
        volume.fail_device(device)
        assert volume.execute(Bio.read(0, len(data))).result == data

    def test_explicit_open_close(self, volume):
        volume.execute(Bio.zone_open(0))
        assert volume.zone_info(0).state is ZoneState.EXPLICIT_OPEN
        volume.execute(Bio.write(0, b"\x01" * 4096))
        volume.execute(Bio.zone_close(0))
        assert volume.zone_info(0).state is ZoneState.CLOSED

    def test_open_limit_auto_close(self, sim):
        devices = make_zns_devices(sim, num_zones=12)
        for dev in devices:
            dev.max_open_zones = 5  # logical budget: 5 - 2 = 3
        config = RaiznConfig(num_data=4, stripe_unit_bytes=SU)
        volume = RaiznVolume.create(sim, devices, config)
        assert volume.max_open_logical == 3
        for zone in range(5):
            volume.execute(Bio.write(zone * volume.zone_capacity,
                                     b"\x01" * 4096))
        open_zones = [d for d in volume.zone_descs if d.state.is_open]
        assert len(open_zones) == 3
        assert volume.zone_descs[0].state is ZoneState.CLOSED


class TestFailureHandling:
    def test_double_failure_rejected(self, volume):
        volume.fail_device(0)
        with pytest.raises(DataLossError):
            volume.fail_device(1)

    def test_read_only_volume_rejects_writes(self, volume):
        volume.read_only = True
        with pytest.raises(VolumeStateError):
            volume.execute(Bio.write(0, b"\x01" * 4096))
        with pytest.raises(VolumeStateError):
            volume.execute(Bio.zone_reset(0))

    def test_generation_overflow_forces_read_only(self, volume):
        volume.execute(Bio.write(0, b"\x01" * 4096))
        volume.generation[0] = 2 ** 64 - 2
        volume.execute(Bio.zone_reset(0))
        assert volume.read_only


class TestDataIntegrityProperty:
    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.integers(min_value=1, max_value=96),
                    min_size=1, max_size=24),
           st.integers(0, 2 ** 30))
    def test_arbitrary_sequential_write_pattern(self, sizes, seed):
        """Any sequence of sector-aligned writes reads back exactly."""
        sim = Simulator()
        volume, _devices = make_volume(sim)
        blob = pattern(sum(sizes) * 4 * KiB, seed=seed)
        offset = 0
        for size in sizes:
            # ZNS writes cannot cross a zone boundary; clamp like a
            # zone-aware application would.
            nbytes = min(size * 4 * KiB, volume.zone_capacity - offset)
            if nbytes == 0:
                break
            volume.execute(Bio.write(offset, blob[offset:offset + nbytes]))
            offset += nbytes
        assert volume.execute(Bio.read(0, offset)).result == blob[:offset]

    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 2 ** 30))
    def test_queued_writes_complete_in_order(self, seed):
        sim = Simulator()
        volume, _devices = make_volume(sim)
        blob = pattern(32 * 4 * KiB, seed=seed)
        events = []
        for i in range(32):
            events.append(volume.submit(
                Bio.write(i * 4 * KiB, blob[i * 4 * KiB:(i + 1) * 4 * KiB])))
        sim.run()
        assert all(e.ok for e in events)
        assert volume.execute(Bio.read(0, len(blob))).result == blob
