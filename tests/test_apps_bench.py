"""Tests for the db_bench and sysbench-style application drivers."""

import pytest

from repro.apps import F2FS, LSMTree, db_bench
from repro.apps.dbbench import make_key
from repro.apps.oltp import prepare_tables, row_key, run_oltp
from repro.errors import ReproError
from repro.sim import Simulator
from repro.units import KiB, MiB

from conftest import make_volume


@pytest.fixture
def lsm(sim):
    volume, _devices = make_volume(sim)
    fs = F2FS(sim, volume)
    return LSMTree(sim, fs, memtable_bytes=256 * KiB,
                   level_base_bytes=2 * MiB)


class TestDbBench:
    def test_fillseq(self, sim, lsm):
        result = db_bench(sim, lsm, "fillseq", num_ops=300, value_size=1000)
        assert result.operations == 300
        assert result.ops_per_second > 0
        assert result.write_latency.count == 300
        assert sim.run_process(lsm.get(make_key(0))) is not None

    def test_fillrandom_covers_keyspace(self, sim, lsm):
        db_bench(sim, lsm, "fillrandom", num_ops=300, value_size=500,
                 key_space=50, seed=1)
        found = sum(1 for i in range(50)
                    if sim.run_process(lsm.get(make_key(i))) is not None)
        assert found > 40  # random coverage of a small keyspace

    def test_overwrite_reuses_keys(self, sim, lsm):
        db_bench(sim, lsm, "fillseq", num_ops=100, value_size=500)
        result = db_bench(sim, lsm, "overwrite", num_ops=200,
                          value_size=500, key_space=100, seed=2)
        assert result.operations == 200

    def test_readwhilewriting_mixes(self, sim, lsm):
        db_bench(sim, lsm, "fillseq", num_ops=200, value_size=500)
        result = db_bench(sim, lsm, "readwhilewriting", num_ops=160,
                          value_size=500, key_space=200, read_threads=4,
                          seed=3)
        assert result.read_latency.count == 160
        assert result.write_latency.count == 160

    def test_unknown_workload_rejected(self, sim, lsm):
        with pytest.raises(ReproError):
            db_bench(sim, lsm, "nonsense", num_ops=1)


class TestOltp:
    def test_prepare_populates_tables(self, sim, lsm):
        prepare_tables(sim, lsm, tables=2, rows=50)
        assert sim.run_process(lsm.get(row_key(0, 0))) is not None
        assert sim.run_process(lsm.get(row_key(1, 49))) is not None

    def test_read_only_issues_no_writes(self, sim, lsm):
        prepare_tables(sim, lsm, tables=2, rows=50)
        puts_before = lsm.puts
        result = run_oltp(sim, lsm, "oltp_read_only", threads=4,
                          transactions=16, tables=2, rows=50)
        assert result.transactions == 16
        assert lsm.puts == puts_before

    def test_write_only_mutates(self, sim, lsm):
        prepare_tables(sim, lsm, tables=2, rows=50)
        puts_before = lsm.puts
        result = run_oltp(sim, lsm, "oltp_write_only", threads=4,
                          transactions=16, tables=2, rows=50)
        assert lsm.puts > puts_before
        assert result.tps > 0
        assert result.p95_latency >= result.avg_latency * 0.3

    def test_read_write_combines(self, sim, lsm):
        prepare_tables(sim, lsm, tables=2, rows=50)
        gets_before = lsm.gets
        puts_before = lsm.puts
        run_oltp(sim, lsm, "oltp_read_write", threads=2,
                 transactions=8, tables=2, rows=50)
        assert lsm.gets > gets_before
        assert lsm.puts > puts_before

    def test_unknown_workload_rejected(self, sim, lsm):
        with pytest.raises(ReproError):
            run_oltp(sim, lsm, "oltp_nothing", threads=1, transactions=1,
                     tables=1, rows=1)
