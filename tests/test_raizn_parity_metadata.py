"""Property and unit tests for parity algebra and the metadata log format."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import MetadataError
from repro.raizn import MetadataEntry, MetadataType, Superblock
from repro.raizn.metadata import (
    CHECKPOINT_FLAG,
    GENERATION_BLOCK_COUNTERS,
    decode_generation_block,
    decode_op_wal,
    decode_partial_parity,
    decode_zone_reset,
    encode_generation_block,
    encode_op_wal,
    encode_partial_parity,
    encode_relocated_su,
    encode_zone_reset,
)
from repro.raizn.parity import (
    reconstruct_unit,
    stripe_parity,
    xor_buffers,
    xor_into,
)
from repro.raizn.stripebuf import StripeBuffer
from repro.units import SECTOR_SIZE

unit_bytes = st.binary(min_size=0, max_size=256)


class TestXor:
    def test_xor_into_basic(self):
        acc = bytearray(b"\x0f\x0f")
        xor_into(acc, b"\xff\x00")
        assert acc == bytearray(b"\xf0\x0f")

    def test_xor_into_offset(self):
        acc = bytearray(4)
        xor_into(acc, b"\xff", offset=2)
        assert acc == bytearray(b"\x00\x00\xff\x00")

    def test_xor_into_overflow_rejected(self):
        with pytest.raises(ValueError):
            xor_into(bytearray(2), b"\xff\xff\xff")

    def test_xor_buffers_identity(self):
        assert xor_buffers([b"\xab\xcd"]) == b"\xab\xcd"

    def test_xor_buffers_mismatched_lengths(self):
        with pytest.raises(ValueError):
            xor_buffers([b"\x00", b"\x00\x00"])

    @given(st.lists(st.binary(min_size=8, max_size=8), min_size=1,
                    max_size=6))
    def test_xor_self_inverse(self, buffers):
        once = xor_buffers(buffers)
        assert xor_buffers(buffers + [once]) == bytes(8)


class TestStripeParity:
    @given(st.lists(unit_bytes, min_size=1, max_size=5))
    def test_reconstruct_any_missing_unit(self, units):
        su = 256
        parity = stripe_parity(units, su)
        for missing in range(len(units)):
            survivors = [u for i, u in enumerate(units) if i != missing]
            rebuilt = reconstruct_unit(survivors, parity, su)
            expected = units[missing] + bytes(su - len(units[missing]))
            assert rebuilt == expected

    def test_zero_padding_rule(self):
        # §5.1: data beyond the written extent is treated as zeroes.
        parity = stripe_parity([b"\xff" * 10], 20)
        assert parity == b"\xff" * 10 + b"\x00" * 10

    def test_unit_too_long_rejected(self):
        with pytest.raises(ValueError):
            stripe_parity([b"\x00" * 30], 20)

    @given(st.integers(0, 255), st.binary(min_size=1, max_size=300))
    def test_delta_parity_matches_full_recompute(self, start, chunk):
        """XOR of per-write deltas equals the full parity (§5.1)."""
        su = 64
        width = 4 * su
        start = start % (width - 1)
        chunk = chunk[:width - start]
        offset, delta = StripeBuffer.delta_parity(start, chunk, su)
        acc = bytearray(su)
        xor_into(acc, delta, offset)
        # Direct computation from a stripe image.
        stripe = bytearray(width)
        stripe[start:start + len(chunk)] = chunk
        units = [bytes(stripe[i * su:(i + 1) * su]) for i in range(4)]
        assert bytes(acc) == stripe_parity(units, su)


class TestMetadataEncoding:
    def test_header_sector_sized(self):
        entry = MetadataEntry(MetadataType.ZONE_RESET_LOG, 0, 0, 1)
        assert len(entry.encode()) == SECTOR_SIZE

    def test_payload_padded_to_sector(self):
        entry = MetadataEntry(MetadataType.RELOCATED_SU, 0, 100, 1,
                              payload=b"\xaa" * 100)
        assert len(entry.encode()) == 2 * SECTOR_SIZE
        assert entry.total_bytes == 2 * SECTOR_SIZE

    def test_oversized_inline_rejected(self):
        with pytest.raises(MetadataError):
            MetadataEntry(MetadataType.SUPERBLOCK, 0, 0, 0,
                          inline=b"\x00" * SECTOR_SIZE)

    @settings(max_examples=50)
    @given(st.sampled_from(list(MetadataType)),
           st.integers(0, 2 ** 63), st.integers(0, 2 ** 63),
           st.integers(0, 2 ** 63),
           st.binary(max_size=128), st.binary(max_size=1024),
           st.booleans())
    def test_roundtrip(self, mdtype, start, end, gen, inline, payload,
                       checkpoint):
        entry = MetadataEntry(mdtype, start, end, gen, inline=inline,
                              payload=payload, checkpoint=checkpoint)
        decoded, consumed = MetadataEntry.decode(entry.encode())
        assert consumed == entry.total_bytes
        assert decoded.mdtype is mdtype
        assert decoded.start_lba == start
        assert decoded.end_lba == end
        assert decoded.generation == gen
        assert decoded.inline.startswith(inline)
        assert decoded.payload == payload
        assert decoded.checkpoint == checkpoint

    def test_scan_multiple_entries(self):
        entries = [
            encode_zone_reset(1, 100, 7),
            encode_relocated_su(0, b"\xaa" * 10, 7),
            encode_generation_block(0, [1, 2, 3]),
        ]
        blob = b"".join(e.encode() for e in entries)
        scanned = MetadataEntry.scan(blob)
        assert [e.mdtype for e in scanned] == [
            MetadataType.ZONE_RESET_LOG, MetadataType.RELOCATED_SU,
            MetadataType.GENERATION]

    def test_scan_stops_at_garbage(self):
        blob = encode_zone_reset(1, 100, 7).encode() + bytes(SECTOR_SIZE)
        assert len(MetadataEntry.scan(blob)) == 1

    def test_scan_discards_truncated_tail(self):
        """A torn append (payload cut by power loss) must be discarded."""
        entry = encode_relocated_su(0, b"\xaa" * 8192, 7)
        blob = entry.encode()[:-SECTOR_SIZE]
        assert MetadataEntry.scan(blob) == []

    def test_decode_rejects_bad_magic(self):
        assert MetadataEntry.decode(bytes(SECTOR_SIZE)) is None

    def test_checkpoint_flag_separable(self):
        entry = encode_partial_parity(0, 10, 3, 0, b"\xaa" * 10,
                                      checkpoint=True)
        decoded, _ = MetadataEntry.decode(entry.encode())
        assert decoded.checkpoint
        assert decoded.mdtype is MetadataType.PARTIAL_PARITY


class TestTypedPayloads:
    def test_superblock_roundtrip(self):
        superblock = Superblock(version=1, num_data=4, num_parity=1,
                                stripe_unit_bytes=65536, num_zones=32,
                                zone_capacity=2 ** 20,
                                num_metadata_zones=3, device_index=2,
                                array_uuid=b"\x01" * 16)
        decoded = Superblock.from_entry(superblock.to_entry())
        assert decoded == superblock

    def test_superblock_type_checked(self):
        with pytest.raises(MetadataError):
            Superblock.from_entry(encode_zone_reset(0, 0, 1))

    def test_generation_block_roundtrip(self):
        counters = list(range(1, 101))
        entry = encode_generation_block(10, counters)
        first, decoded = decode_generation_block(entry)
        assert first == 10 and decoded == counters

    def test_generation_block_capacity(self):
        encode_generation_block(0, [0] * GENERATION_BLOCK_COUNTERS)
        with pytest.raises(MetadataError):
            encode_generation_block(
                0, [0] * (GENERATION_BLOCK_COUNTERS + 1))

    def test_zone_reset_roundtrip(self):
        entry = encode_zone_reset(5, 12345, 9)
        assert entry.generation == 9
        assert decode_zone_reset(entry) == (5, 12345)

    def test_partial_parity_roundtrip(self):
        entry = encode_partial_parity(1000, 2000, 4, parity_offset=16,
                                      parity=b"\xcd" * 100)
        offset, parity = decode_partial_parity(entry)
        assert offset == 16 and parity == b"\xcd" * 100
        assert (entry.start_lba, entry.end_lba) == (1000, 2000)

    def test_op_wal_roundtrip(self):
        entry = encode_op_wal(3, b"resume-state")
        assert decode_op_wal(entry) == (3, b"resume-state")

    def test_typed_decoders_check_type(self):
        wrong = encode_zone_reset(0, 0, 1)
        with pytest.raises(MetadataError):
            decode_partial_parity(wrong)
        with pytest.raises(MetadataError):
            decode_generation_block(wrong)
        with pytest.raises(MetadataError):
            decode_op_wal(wrong)


def _xor_reference(buffers):
    """Pure-Python byte-loop XOR: the semantic ground truth the vectorized
    implementations are checked against."""
    out = bytearray(buffers[0])
    for buf in buffers[1:]:
        for i, byte in enumerate(buf):
            out[i] ^= byte
    return bytes(out)


class TestVectorizedParityEquivalence:
    @given(st.lists(st.binary(min_size=8, max_size=8), min_size=1,
                    max_size=6))
    def test_xor_buffers_matches_pure_python(self, buffers):
        assert xor_buffers(buffers) == _xor_reference(buffers)

    @given(st.lists(st.binary(min_size=0, max_size=32), min_size=0,
                    max_size=5), st.integers(32, 48))
    def test_stripe_parity_matches_padded_reference(self, units, su):
        padded = [unit + bytes(su - len(unit)) for unit in units]
        expected = _xor_reference(padded) if padded else bytes(su)
        assert stripe_parity(units, su) == expected

    def test_xor_buffers_single_copy(self):
        source = b"\x01\x02\x03"
        out = xor_buffers([source])
        assert out == source and out is not source

    def test_stripe_parity_empty_iterable_is_zeroes(self):
        assert stripe_parity([], 16) == bytes(16)

    def test_stripe_parity_short_tail_unit(self):
        # The final unit of a partial stripe is shorter than the SU; its
        # missing bytes XOR as zeroes.
        full = b"\xaa" * 8
        tail = b"\x0f" * 3
        expected = bytes(a ^ b for a, b in zip(full, tail + bytes(5)))
        assert stripe_parity([full, tail], 8) == expected

    def test_stripe_parity_accepts_memoryview_units(self):
        backing = bytes(range(16))
        view = memoryview(backing)[4:12]
        assert stripe_parity([view], 8) == backing[4:12]

    @given(st.binary(min_size=1, max_size=48), st.integers(0, 47))
    def test_delta_parity_fast_path_returns_chunk_bytes(self, chunk, start):
        su = 48
        start = start % (su - len(chunk)) if len(chunk) < su else 0
        if start + len(chunk) <= su:
            offset, delta = StripeBuffer.delta_parity(start, chunk, su)
            assert offset == start % su
            assert bytes(delta) == chunk
