"""Unit tests for the conventional SSD: FTL mapping and on-device GC."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.block import Bio, Op
from repro.conv import ConventionalSSD, FTLConfig, GCResult, PageMappedFTL
from repro.errors import InvalidAddressError, ZoneStateError
from repro.sim import Simulator
from repro.units import KiB, MiB, SECTOR_SIZE

from conftest import pattern


def small_ftl(logical_pages=1024, ppb=32, op_ratio=0.1):
    return PageMappedFTL(FTLConfig(logical_pages=logical_pages,
                                   pages_per_block=ppb, op_ratio=op_ratio))


class TestFTLMapping:
    def test_initially_unmapped(self):
        ftl = small_ftl()
        assert not ftl.mapped(0)

    def test_write_maps_pages(self):
        ftl = small_ftl()
        ftl.write(0, 4)
        assert all(ftl.mapped(lpn) for lpn in range(4))
        assert not ftl.mapped(4)

    def test_overwrite_invalidates_old_page(self):
        ftl = small_ftl()
        ftl.write(0, 1)
        old_ppn = int(ftl.l2p[0])
        ftl.write(0, 1)
        assert int(ftl.l2p[0]) != old_ppn
        assert ftl.p2l[old_ppn] == ftl.UNMAPPED

    def test_out_of_range_rejected(self):
        ftl = small_ftl()
        with pytest.raises(InvalidAddressError):
            ftl.write(1024, 1)

    def test_trim_unmaps(self):
        ftl = small_ftl()
        ftl.write(0, 8)
        ftl.trim(0, 8)
        assert not any(ftl.mapped(lpn) for lpn in range(8))

    def test_valid_counts_consistent(self):
        ftl = small_ftl()
        ftl.write(0, 100)
        ftl.write(50, 100)
        mapped = sum(1 for lpn in range(1024) if ftl.mapped(lpn))
        assert int(ftl.valid_count.sum()) == mapped == 150


class TestFTLGarbageCollection:
    def test_sequential_overwrite_low_wa(self):
        ftl = small_ftl(op_ratio=0.3)
        for _ in range(4):
            for lpn in range(0, 1024, 32):
                ftl.write(lpn, 32)
        # Whole blocks die together, so GC reclaims mostly-empty blocks
        # and sequential overwrite stays near WA 1.
        assert ftl.write_amplification < 1.2

    def test_random_overwrite_causes_copyback(self):
        import random
        rng = random.Random(0)
        ftl = small_ftl()
        ftl.write(0, 1024)
        for _ in range(4096):
            ftl.write(rng.randrange(1024), 1)
        assert ftl.write_amplification > 1.3
        assert ftl.gc_pages_moved > 0
        assert ftl.blocks_erased > 0

    def test_gc_preserves_all_mappings(self):
        import random
        rng = random.Random(1)
        ftl = small_ftl()
        ftl.write(0, 1024)
        for _ in range(2048):
            ftl.write(rng.randrange(1024), 1)
        # Every logical page still maps to a unique physical page.
        ppns = [int(ftl.l2p[lpn]) for lpn in range(1024)]
        assert ftl.UNMAPPED not in ppns
        assert len(set(ppns)) == 1024
        for lpn, ppn in enumerate(ppns):
            assert int(ftl.p2l[ppn]) == lpn

    def test_free_blocks_never_exhausted(self):
        import random
        rng = random.Random(2)
        ftl = small_ftl(op_ratio=0.08)
        ftl.write(0, 1024)
        for _ in range(8192):
            ftl.write(rng.randrange(1024), 1)
        assert ftl.free_block_count >= 1

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 255), st.integers(1, 16)),
                    min_size=1, max_size=200))
    def test_mapping_invariant_under_random_ops(self, ops):
        ftl = small_ftl(logical_pages=272)
        for lpn, count in ops:
            count = min(count, 272 - lpn)
            ftl.write(lpn, count)
        mapped = [lpn for lpn in range(272) if ftl.mapped(lpn)]
        ppns = [int(ftl.l2p[lpn]) for lpn in mapped]
        assert len(set(ppns)) == len(ppns)  # injective mapping


class TestConventionalDevice:
    def test_roundtrip(self, sim):
        dev = ConventionalSSD(sim, capacity_bytes=16 * MiB)
        data = pattern(256 * KiB, seed=9)
        dev.execute(Bio.write(1 * MiB, data))
        assert dev.execute(Bio.read(1 * MiB, 256 * KiB)).result == data

    def test_overwrite_in_place(self, sim):
        dev = ConventionalSSD(sim, capacity_bytes=16 * MiB)
        dev.execute(Bio.write(0, b"\xaa" * 8192))
        dev.execute(Bio.write(0, b"\xbb" * 8192))
        assert dev.execute(Bio.read(0, 8192)).result == b"\xbb" * 8192

    def test_unwritten_reads_zero(self, sim):
        dev = ConventionalSSD(sim, capacity_bytes=16 * MiB)
        assert dev.execute(Bio.read(0, 4096)).result == bytes(4096)

    def test_out_of_range_rejected(self, sim):
        dev = ConventionalSSD(sim, capacity_bytes=16 * MiB)
        with pytest.raises(InvalidAddressError):
            dev.execute(Bio.read(16 * MiB, 4096))

    def test_discard_zeroes_and_unmaps(self, sim):
        dev = ConventionalSSD(sim, capacity_bytes=16 * MiB)
        dev.execute(Bio.write(0, b"\xaa" * 8192))
        dev.execute(Bio(Op.DISCARD, offset=0, length=8192))
        assert dev.execute(Bio.read(0, 8192)).result == bytes(8192)
        assert not dev.ftl.mapped(0)

    def test_zone_ops_rejected(self, sim):
        dev = ConventionalSSD(sim, capacity_bytes=16 * MiB)
        with pytest.raises(ZoneStateError):
            dev.execute(Bio.zone_reset(0))

    def test_gc_slows_writes(self, sim):
        """GC copy-back time must be charged to the triggering writes."""
        dev = ConventionalSSD(sim, capacity_bytes=8 * MiB, seed=3)
        import random
        rng = random.Random(0)

        def fill():
            for off in range(0, 8 * MiB, 64 * KiB):
                yield dev.submit(Bio.write(off, b"\x01" * (64 * KiB)))
        sim.run_process(fill())
        clean_start = sim.now

        def churn():
            for _ in range(512):
                off = rng.randrange(8 * MiB // SECTOR_SIZE) * SECTOR_SIZE
                yield dev.submit(Bio.write(off, b"\x02" * SECTOR_SIZE))
        sim.run_process(churn())
        churn_time = sim.now - clean_start
        assert dev.write_amplification > 1.1
        # The same churn on a fresh device is faster.
        sim2 = Simulator()
        dev2 = ConventionalSSD(sim2, capacity_bytes=8 * MiB, seed=3)
        rng2 = random.Random(0)

        def churn2():
            for _ in range(512):
                off = rng2.randrange(8 * MiB // SECTOR_SIZE) * SECTOR_SIZE
                yield dev2.submit(Bio.write(off, b"\x02" * SECTOR_SIZE))
        sim2.run_process(churn2())
        assert churn_time > sim2.now
