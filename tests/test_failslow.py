"""Fail-slow injection and the gray-failure defense ladder.

Covers the :class:`SlowPlan` injector in isolation (determinism, the
four degradation shapes, hook chaining) and the volume-level defense:
hedged reconstruction reads, the slow-score ladder (demote, evict,
health-maintenance rebuild), and the accounting rule that hedges and
latency outliers never touch ``error_counts``."""

import pytest

from repro.block import Bio
from repro.faults import (
    SlowDeviceSpec,
    SlowPlan,
    degraded_device,
    fresh_replacement,
    ramping_device,
    stalling_device,
)
from repro.raizn import run_health_maintenance, slow_evicted_devices
from repro.raizn.config import RaiznConfig
from repro.raizn.volume import RaiznVolume
from repro.sim import Simulator
from repro.units import MiB
from repro.zns import ZNSDevice

from conftest import TEST_STRIPE_UNIT, make_zns_devices, pattern

SU = TEST_STRIPE_UNIT
STRIPE = 4 * SU


def one_device(sim, seed=0):
    return ZNSDevice(sim, name="zns", num_zones=8, zone_capacity=1 * MiB,
                     seed=seed)


def read_duration(device, offset=0, length=SU):
    bio = device.execute(Bio.read(offset, length))
    return bio.complete_time - bio.submit_time


class TestSlowPlan:
    def test_default_spec_injects_nothing(self, sim):
        device = one_device(sim)
        device.execute(Bio.write(0, pattern(SU)))
        plan = SlowPlan(seed=1, specs=[SlowDeviceSpec(device_index=0)])
        plan.arm([device])
        device.execute(Bio.read(0, SU))
        assert plan.counts.slowed_commands == {}

    def test_duplicate_device_spec_rejected(self):
        with pytest.raises(ValueError):
            SlowPlan(specs=[degraded_device(0), stalling_device(0)])

    def test_persistent_degradation_slows_reads(self, sim):
        healthy = one_device(sim, seed=0)
        slow = one_device(sim, seed=0)
        for device in (healthy, slow):
            device.execute(Bio.write(0, pattern(SU)))
        plan = SlowPlan(specs=[degraded_device(0, factor=4.0)])
        plan.arm([slow])
        assert read_duration(slow) > 2.0 * read_duration(healthy)
        assert plan.counts.slowed_commands[0] >= 1

    def test_stalls_fire_and_are_counted(self, sim):
        device = one_device(sim)
        device.execute(Bio.write(0, pattern(SU)))
        plan = SlowPlan(specs=[stalling_device(0, probability=1.0,
                                               stall_seconds=5e-3)])
        plan.arm([device])
        assert read_duration(device) > 5e-3
        assert plan.counts.stalls[0] == 1

    def test_onset_delays_injection(self, sim):
        device = one_device(sim)
        device.execute(Bio.write(0, pattern(SU)))
        plan = SlowPlan(specs=[stalling_device(0, probability=1.0,
                                               stall_seconds=5e-3,
                                               onset_s=100.0)])
        plan.arm([device])
        assert read_duration(device) < 5e-3
        assert plan.counts.stalls == {}

    def test_ramping_delay_grows_with_time(self, sim):
        device = one_device(sim)
        device.execute(Bio.write(0, pattern(SU)))
        plan = SlowPlan(specs=[ramping_device(0, ramp_per_second=1e-3)])
        plan.arm([device])
        early = read_duration(device)
        sim.schedule(10.0, lambda: None)
        sim.run()
        assert read_duration(device) > early + 5e-3

    def test_reads_only_spares_writes(self, sim):
        device = one_device(sim)
        plan = SlowPlan(specs=[SlowDeviceSpec(
            device_index=0, stall_probability=1.0, stall_seconds=5e-3,
            reads_only=True)])
        plan.arm([device])
        wrote = device.execute(Bio.write(0, pattern(SU)))
        assert wrote.complete_time - wrote.submit_time < 5e-3
        assert read_duration(device) > 5e-3

    def test_deterministic_replay(self):
        def run(seed):
            sim = Simulator()
            device = one_device(sim)
            device.execute(Bio.write(0, pattern(4 * SU)))
            plan = SlowPlan(seed=seed, specs=[stalling_device(
                0, probability=0.5, stall_seconds=2e-3)])
            plan.arm([device])
            durations = tuple(read_duration(device, offset=i * SU)
                              for i in range(4))
            return durations, plan.counts.to_dict()

        assert run(7) == run(7)
        # A different seed draws a different stall sequence.
        assert run(7)[1] != run(8)[1]

    def test_disarm_restores_chained_hook(self, sim):
        device = one_device(sim)
        device.execute(Bio.write(0, pattern(SU)))
        calls = []

        def prior_hook(dev, bio):
            calls.append(bio.op)
            return 1e-3

        device.service_delay_hook = prior_hook
        plan = SlowPlan(specs=[stalling_device(0, probability=1.0,
                                               stall_seconds=5e-3)])
        plan.arm([device])
        # Both the injected stall and the pre-existing hook apply.
        assert read_duration(device) > 6e-3
        assert calls
        plan.disarm()
        assert device.service_delay_hook is prior_hook


# ------------------------------------------------------- volume-level defense


def protected_volume(sim, **overrides):
    devices = make_zns_devices(sim)
    config = RaiznConfig(num_data=len(devices) - 1,
                         stripe_unit_bytes=SU,
                         failslow_protection=True, **overrides)
    return RaiznVolume.create(sim, devices, config), devices


def fill_zone(volume, zone):
    stripes = volume.mapper.zone_capacity // STRIPE
    base = zone * volume.mapper.zone_capacity
    for stripe in range(stripes):
        volume.execute(Bio.write(base + stripe * STRIPE,
                                 pattern(STRIPE, seed=64 * zone + stripe)))
    return stripes


def prime_health(volume, stripes, max_passes=8):
    """Read the filled zone until every device's read EWMA is warm."""
    for _ in range(max_passes):
        if all(h.read.samples >= volume.config.hedge_min_samples
               for h in volume.device_health):
            return
        for stripe in range(stripes):
            volume.execute(Bio.read(stripe * STRIPE, STRIPE))
    raise AssertionError("EWMAs never warmed up")


class TestHedgedReads:
    def test_gate_off_by_default(self, sim):
        devices = make_zns_devices(sim)
        config = RaiznConfig(num_data=len(devices) - 1,
                             stripe_unit_bytes=SU)
        volume = RaiznVolume.create(sim, devices, config)
        volume.execute(Bio.write(0, pattern(STRIPE)))
        volume.execute(Bio.read(0, STRIPE))
        assert all(h.read.samples == 0 for h in volume.device_health)
        assert volume.health.slow_hedges == 0

    def test_hedge_wins_and_never_charges_error_counts(self, sim):
        volume, devices = protected_volume(sim)
        stripes = fill_zone(volume, 0)
        prime_health(volume, stripes)
        victim = volume.mapper.stripe_layout(0, 0).data_devices[0]
        plan = SlowPlan(seed=3, specs=[stalling_device(
            victim, probability=1.0, stall_seconds=20e-3)])
        plan.arm(devices)
        result = volume.execute(Bio.read(0, STRIPE)).result
        assert result == pattern(STRIPE, seed=0)
        assert volume.health.slow_hedges >= 1
        assert volume.health.hedge_wins >= 1
        assert volume.device_health[victim].slow_hedges >= 1
        # The hedged loser and the latency outliers are slowness, not
        # hard errors: threshold-driven eviction accounting stays clean.
        assert volume.error_counts == [0] * volume.config.num_devices

    def test_ladder_demotes_evicts_and_rebuilds(self, sim):
        volume, devices = protected_volume(sim)
        stripes = fill_zone(volume, 0)
        fill_zone(volume, 1)  # warms the write EWMAs past hedge_min_samples
        prime_health(volume, stripes)
        victim = 1
        plan = SlowPlan(seed=5, specs=[stalling_device(
            victim, probability=1.0, stall_seconds=20e-3)])
        plan.arm(devices)

        # Reads drive demotion; once demoted the victim is avoided for
        # reads, so the writes (which still land on it) must carry the
        # score the rest of the way to eviction.
        for round_ in range(6):
            if volume.health.slow_evictions >= 1:
                break
            for stripe in range(stripes):
                volume.execute(Bio.read(stripe * STRIPE, STRIPE))
            fill_zone(volume, 2 + round_)
        assert volume.health.slow_demotions >= 1
        assert volume.health.slow_evictions == 1
        # Slow eviction keeps the device object in place (remove=False).
        assert volume.failed[victim]
        assert volume.devices[victim] is not None
        assert slow_evicted_devices(volume) == [victim]
        assert volume.error_counts == [0] * volume.config.num_devices

        plan.disarm()
        template = devices[0]
        report = run_health_maintenance(
            sim, volume,
            lambda index: fresh_replacement(sim, template,
                                            name=f"replacement{index}"))
        assert report.replaced == [victim]
        assert not volume.failed[victim]
        assert volume.device_health[victim].read.samples == 0
        for stripe in range(stripes):
            assert volume.execute(Bio.read(stripe * STRIPE, STRIPE)) \
                .result == pattern(STRIPE, seed=stripe)

    def test_demoted_device_avoided_for_reads(self, sim):
        volume, devices = protected_volume(sim)
        stripes = fill_zone(volume, 0)
        prime_health(volume, stripes)
        victim = volume.mapper.stripe_layout(0, 0).data_devices[0]
        volume.device_health[victim].demoted = True
        before = devices[victim].stats.reads
        assert volume.execute(Bio.read(0, STRIPE)).result == \
            pattern(STRIPE, seed=0)
        assert devices[victim].stats.reads == before
