"""Unit tests for the simulated ZNS device: the interface contract RAIZN
depends on (paper §2.1)."""

import random

import pytest

from repro.block import Bio, BioFlags
from repro.errors import (
    InvalidAddressError,
    OpenZoneLimitError,
    ReadUnwrittenError,
    WritePointerViolation,
    ZoneStateError,
)
from repro.sim import Simulator
from repro.units import KiB, MiB, SECTOR_SIZE
from repro.zns import ZNSDevice, ZoneState

from conftest import pattern


class TestGeometry:
    def test_zone_report(self, zns):
        report = zns.report_zones()
        assert len(report) == 8
        assert all(info.state is ZoneState.EMPTY for info in report)
        assert report[3].start == 3 * MiB

    def test_zone_capacity_smaller_than_size(self, sim):
        dev = ZNSDevice(sim, num_zones=4, zone_capacity=768 * KiB,
                        zone_size=1 * MiB)
        info = dev.zone_info(1)
        assert info.start == 1 * MiB
        assert info.writable_end == 1 * MiB + 768 * KiB

    def test_capacity_exceeding_size_rejected(self, sim):
        with pytest.raises(ValueError):
            ZNSDevice(sim, num_zones=2, zone_capacity=2 * MiB,
                      zone_size=1 * MiB)

    def test_misaligned_geometry_rejected(self, sim):
        with pytest.raises(InvalidAddressError):
            ZNSDevice(sim, num_zones=2, zone_capacity=1000)


class TestSequentialWrites:
    def test_write_at_pointer_advances(self, zns):
        zns.execute(Bio.write(0, b"\xaa" * 8192))
        assert zns.zone_info(0).write_pointer == 8192

    def test_write_not_at_pointer_rejected(self, zns):
        with pytest.raises(WritePointerViolation):
            zns.execute(Bio.write(8192, b"\xaa" * 4096))

    def test_overwrite_rejected(self, zns):
        zns.execute(Bio.write(0, b"\xaa" * 8192))
        with pytest.raises(WritePointerViolation):
            zns.execute(Bio.write(0, b"\xbb" * 4096))

    def test_write_past_capacity_rejected(self, sim):
        dev = ZNSDevice(sim, num_zones=4, zone_capacity=768 * KiB,
                        zone_size=1 * MiB)
        dev.execute(Bio.write(0, b"\xaa" * (768 * KiB - 4096)))
        with pytest.raises(InvalidAddressError):
            dev.execute(Bio.write(768 * KiB - 4096, b"\xaa" * 8192))

    def test_data_integrity(self, zns):
        data = pattern(128 * KiB, seed=1)
        zns.execute(Bio.write(0, data))
        assert zns.execute(Bio.read(0, 128 * KiB)).result == data

    def test_full_zone_transition(self, zns):
        zns.execute(Bio.write(0, b"\xaa" * MiB))
        assert zns.zone_info(0).state is ZoneState.FULL
        with pytest.raises(ZoneStateError):
            zns.execute(Bio.write(0, b"\xaa" * 4096))

    def test_pipelined_sequential_writes(self, sim, zns):
        first = zns.submit(Bio.write(0, b"\x01" * 4096))
        second = zns.submit(Bio.write(4096, b"\x02" * 4096))
        sim.run()
        assert first.ok and second.ok
        assert zns.zone_info(0).write_pointer == 8192


class TestZoneAppend:
    def test_append_returns_address(self, zns):
        bio = zns.execute(Bio.zone_append(0, b"\xaa" * 4096))
        assert bio.result == 0
        bio = zns.execute(Bio.zone_append(0, b"\xbb" * 4096))
        assert bio.result == 4096

    def test_append_requires_zone_start(self, zns):
        with pytest.raises(InvalidAddressError):
            zns.execute(Bio.zone_append(4096, b"\xaa" * 4096))

    def test_append_beyond_capacity_rejected(self, zns):
        zns.execute(Bio.write(0, b"\xaa" * (MiB - 4096)))
        with pytest.raises(ZoneStateError):
            zns.execute(Bio.zone_append(0, b"\xbb" * 8192))


class TestReads:
    def test_read_beyond_write_pointer_rejected(self, zns):
        zns.execute(Bio.write(0, b"\xaa" * 4096))
        with pytest.raises(ReadUnwrittenError):
            zns.execute(Bio.read(0, 8192))

    def test_read_crossing_zone_rejected(self, zns):
        zns.execute(Bio.write(0, b"\xaa" * MiB))
        zns.execute(Bio.write(MiB, b"\xbb" * 4096))
        with pytest.raises(InvalidAddressError):
            zns.execute(Bio.read(MiB - 4096, 8192))

    def test_read_from_cache_before_flush(self, zns):
        data = pattern(4096, seed=2)
        zns.execute(Bio.write(0, data))
        assert zns.execute(Bio.read(0, 4096)).result == data


class TestStateMachine:
    def test_reset_returns_to_empty(self, zns):
        zns.execute(Bio.write(0, b"\xaa" * 8192))
        zns.execute(Bio.zone_reset(0))
        info = zns.zone_info(0)
        assert info.state is ZoneState.EMPTY
        assert info.write_pointer == 0

    def test_reset_requires_zone_start(self, zns):
        with pytest.raises(InvalidAddressError):
            zns.execute(Bio.zone_reset(4096))

    def test_write_after_reset(self, zns):
        zns.execute(Bio.write(0, b"\xaa" * 8192))
        zns.execute(Bio.zone_reset(0))
        data = pattern(4096, seed=3)
        zns.execute(Bio.write(0, data))
        assert zns.execute(Bio.read(0, 4096)).result == data

    def test_finish_makes_zone_full(self, zns):
        zns.execute(Bio.write(0, b"\xaa" * 8192))
        zns.execute(Bio.zone_finish(0))
        assert zns.zone_info(0).state is ZoneState.FULL
        # Data below the write pointer stays readable after finish.
        assert len(zns.execute(Bio.read(0, 8192)).result) == 8192

    def test_explicit_open_close(self, zns):
        zns.execute(Bio.zone_open(0))
        assert zns.zone_info(0).state is ZoneState.EXPLICIT_OPEN
        zns.execute(Bio.write(0, b"\xaa" * 4096))
        zns.execute(Bio.zone_close(0))
        assert zns.zone_info(0).state is ZoneState.CLOSED

    def test_close_empty_open_zone_returns_empty(self, zns):
        zns.execute(Bio.zone_open(0))
        zns.execute(Bio.zone_close(0))
        assert zns.zone_info(0).state is ZoneState.EMPTY

    def test_reset_offline_zone_rejected(self, zns):
        zns.set_zone_offline(0)
        with pytest.raises(ZoneStateError):
            zns.execute(Bio.zone_reset(0))

    def test_read_only_zone_rejects_writes(self, zns):
        zns.set_zone_read_only(0)
        with pytest.raises(ZoneStateError):
            zns.execute(Bio.write(0, b"\xaa" * 4096))

    def test_offline_zone_rejects_reads(self, zns):
        zns.execute(Bio.write(0, b"\xaa" * 4096))
        zns.set_zone_offline(0)
        with pytest.raises(ZoneStateError):
            zns.execute(Bio.read(0, 4096))


class TestOpenZoneLimit:
    def test_implicit_open_auto_close(self, sim):
        dev = ZNSDevice(sim, num_zones=20, zone_capacity=1 * MiB,
                        max_open_zones=4, max_active_zones=20)
        for zone in range(6):
            dev.execute(Bio.write(zone * MiB, b"\xaa" * 4096))
        assert dev.open_zone_count == 4
        # The earliest-written zones were auto-closed.
        assert dev.zone_info(0).state is ZoneState.CLOSED
        assert dev.zone_info(5).state is ZoneState.IMPLICIT_OPEN

    def test_explicit_opens_exhaust_limit(self, sim):
        dev = ZNSDevice(sim, num_zones=20, zone_capacity=1 * MiB,
                        max_open_zones=3, max_active_zones=20)
        for zone in range(3):
            dev.execute(Bio.zone_open(zone * MiB))
        with pytest.raises(OpenZoneLimitError):
            dev.execute(Bio.zone_open(3 * MiB))

    def test_active_limit_enforced(self, sim):
        dev = ZNSDevice(sim, num_zones=20, zone_capacity=1 * MiB,
                        max_open_zones=2, max_active_zones=3)
        for zone in range(3):
            dev.execute(Bio.write(zone * MiB, b"\xaa" * 4096))
        with pytest.raises(OpenZoneLimitError):
            dev.execute(Bio.write(3 * MiB, b"\xaa" * 4096))

    def test_full_zone_leaves_open_set(self, sim):
        dev = ZNSDevice(sim, num_zones=20, zone_capacity=1 * MiB,
                        max_open_zones=2, max_active_zones=4)
        for zone in range(4):
            dev.execute(Bio.write(zone * MiB, b"\xaa" * MiB))
        assert dev.open_zone_count == 0
        assert dev.active_zone_count == 0


class TestDurability:
    def test_flush_advances_durable_pointer(self, zns):
        zns.execute(Bio.write(0, b"\xaa" * 8192))
        assert zns.zones[0].durable_pointer == 0
        zns.execute(Bio.flush())
        assert zns.zones[0].durable_pointer == 8192

    def test_fua_write_durable_at_completion(self, zns):
        zns.execute(Bio.write(0, b"\xaa" * 4096, BioFlags.FUA))
        assert zns.zones[0].durable_pointer == 4096

    def test_fua_implies_prefix_durability(self, zns):
        zns.execute(Bio.write(0, b"\xaa" * 4096))
        zns.execute(Bio.write(4096, b"\xbb" * 4096, BioFlags.FUA))
        # ZNS persistence is prefix ordered within a zone.
        assert zns.zones[0].durable_pointer == 8192

    def test_preflush_persists_prior_writes(self, zns):
        zns.execute(Bio.write(0, b"\xaa" * 4096))
        zns.execute(Bio.write(4096, b"\xbb" * 4096, BioFlags.PREFLUSH))
        assert zns.zones[0].durable_pointer >= 4096

    def test_reset_clears_durable_pointer(self, zns):
        zns.execute(Bio.write(0, b"\xaa" * 4096, BioFlags.FUA))
        zns.execute(Bio.zone_reset(0))
        assert zns.zones[0].durable_pointer == 0


class TestPowerLoss:
    def test_durable_data_survives(self, sim, zns):
        data = pattern(64 * KiB, seed=4)
        zns.execute(Bio.write(0, data))
        zns.execute(Bio.flush())
        zns.power_fail(random.Random(0))
        zns.power_on()
        assert zns.zone_info(0).write_pointer == 64 * KiB
        assert zns.execute(Bio.read(0, 64 * KiB)).result == data

    def test_unflushed_tail_may_be_lost(self, sim, zns):
        zns.execute(Bio.write(0, b"\xaa" * 4096, BioFlags.FUA))
        zns.execute(Bio.write(4096, b"\xbb" * 60 * KiB))
        zns.power_fail(random.Random(7))
        zns.power_on()
        wp = zns.zone_info(0).write_pointer
        assert 4096 <= wp <= 64 * KiB  # durable prefix always survives

    def test_survivor_is_prefix(self, sim, zns):
        data = pattern(256 * KiB, seed=5)
        zns.execute(Bio.write(0, data))
        zns.power_fail(random.Random(3))
        zns.power_on()
        wp = zns.zone_info(0).write_pointer
        if wp:
            assert zns.execute(Bio.read(0, wp)).result == data[:wp]

    def test_open_zones_close_across_power_cycle(self, sim, zns):
        zns.execute(Bio.write(0, b"\xaa" * 4096, BioFlags.FUA))
        assert zns.zone_info(0).state is ZoneState.IMPLICIT_OPEN
        zns.power_fail(random.Random(0))
        zns.power_on()
        assert zns.zone_info(0).state is ZoneState.CLOSED

    def test_io_during_power_off_fails(self, sim, zns):
        zns.power_off()
        from repro.errors import PowerLossError
        with pytest.raises(PowerLossError):
            zns.execute(Bio.write(0, b"\xaa" * 4096))

    def test_finished_by_command_zone_reverts_if_tail_lost(self, sim, zns):
        zns.execute(Bio.write(0, b"\xaa" * 8192))
        zns.execute(Bio.zone_finish(0))
        zns.power_fail(random.Random(11))
        zns.power_on()
        # Without its cached tail the zone cannot stay FULL-by-finish.
        state = zns.zone_info(0).state
        assert state in (ZoneState.CLOSED, ZoneState.EMPTY)


class TestFailureInjection:
    def test_failed_device_rejects_io(self, sim, zns):
        zns.fail_device()
        from repro.errors import DeviceFailedError
        with pytest.raises(DeviceFailedError):
            zns.execute(Bio.read(0, 4096))

    def test_stats_accounting(self, zns):
        zns.execute(Bio.write(0, b"\xaa" * 8192))
        zns.execute(Bio.read(0, 4096))
        zns.execute(Bio.flush())
        assert zns.stats.writes == 1
        assert zns.stats.bytes_written == 8192
        assert zns.stats.reads == 1
        assert zns.stats.flushes == 1
        assert zns.stats.write_amplification == 1.0
