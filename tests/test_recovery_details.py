"""Mount-time recovery edge cases: superblock discovery, device identity,
metadata compaction, and degraded-mount behaviour."""

import random

import pytest

from repro.block import Bio
from repro.errors import DataLossError, RecoveryError
from repro.faults import power_cycle
from repro.raizn import RaiznVolume, mount
from repro.raizn.mdzone import MetadataRole
from repro.sim import Simulator
from repro.units import KiB
from repro.zns import ZNSDevice, ZoneState

from conftest import TEST_STRIPE_UNIT, make_volume, make_zns_devices, pattern

SU = TEST_STRIPE_UNIT
STRIPE = 4 * SU


class TestSuperblockDiscovery:
    def test_blank_devices_rejected(self, sim):
        devices = make_zns_devices(sim)
        with pytest.raises(RecoveryError):
            mount(sim, devices)

    def test_foreign_device_rejected(self, sim):
        volume, devices = make_volume(sim)
        volume.execute(Bio.flush())
        sim2_volume, other_devices = make_volume(sim)
        mixed = devices[:4] + [other_devices[0]]
        with pytest.raises(RecoveryError):
            mount(sim, mixed)

    def test_too_few_devices_rejected(self, sim):
        volume, devices = make_volume(sim)
        volume.execute(Bio.flush())
        with pytest.raises(DataLossError):
            mount(sim, devices[:3])

    def test_superblock_found_after_metadata_gc(self, sim):
        """The general metadata zone migrates between physical zones; the
        backwards superblock scan must still find it."""
        volume, devices = make_volume(sim)
        data = pattern(STRIPE, seed=1)
        volume.execute(Bio.write(0, data))
        for index in range(5):
            sim.run_process(
                volume.mdzones[index].force_gc(MetadataRole.GENERAL))
        volume.execute(Bio.flush())
        remounted = mount(sim, devices)
        assert remounted.execute(Bio.read(0, STRIPE)).result == data


class TestDegradedMount:
    def test_mount_with_missing_device_slot(self, sim):
        volume, devices = make_volume(sim)
        data = pattern(2 * STRIPE, seed=2)
        volume.execute(Bio.write(0, data))
        volume.execute(Bio.flush())
        presented = list(devices)
        presented[1] = None
        degraded = mount(sim, presented)
        assert degraded.failed[1]
        assert degraded.execute(Bio.read(0, len(data))).result == data

    def test_degraded_mount_tail_from_partial_parity(self, sim):
        """§5.1: with a device missing, the tail stripe's lost unit is
        reconstructed by combining all logged partial parity."""
        volume, devices = make_volume(sim)
        data = pattern(STRIPE + 28 * KiB, seed=3)
        volume.execute(Bio.write(0, data))
        volume.execute(Bio.flush())
        missing = volume.mapper.lba_to_pba(STRIPE)[0]  # holds tail data
        presented = list(devices)
        presented[missing] = None
        degraded = mount(sim, presented)
        assert degraded.zone_info(0).write_pointer == len(data)
        assert degraded.execute(Bio.read(0, len(data))).result == data

    def test_degraded_mount_can_write(self, sim):
        volume, devices = make_volume(sim)
        data = pattern(STRIPE, seed=4)
        volume.execute(Bio.write(0, data))
        volume.execute(Bio.flush())
        presented = list(devices)
        presented[0] = None
        degraded = mount(sim, presented)
        more = pattern(STRIPE, seed=5)
        degraded.execute(Bio.write(STRIPE, more))
        got = degraded.execute(Bio.read(0, 2 * STRIPE)).result
        assert got == data + more


class TestMetadataCompaction:
    def test_mount_compacts_metadata_zones(self, sim):
        volume, devices = make_volume(sim)
        for i in range(10):
            volume.execute(Bio.write(i * 4 * KiB, b"\x01" * 4096))
        volume.execute(Bio.flush())
        remounted = mount(sim, devices)
        # After compaction at most two metadata zones are non-empty and
        # at least one swap zone is ready on each device.
        for index, dev in enumerate(devices):
            nonempty = sum(
                1 for z in range(remounted.num_data_zones, dev.num_zones)
                if dev.zone_info(z).write_pointer
                > dev.zone_info(z).start)
            assert nonempty <= 2
            assert len(remounted.mdzones[index].swap_zones) >= 1

    def test_generation_counters_survive_compaction(self, sim):
        volume, devices = make_volume(sim)
        for _ in range(5):
            volume.execute(Bio.write(0, b"\x01" * 4096))
            volume.execute(Bio.zone_reset(0))
        generation = volume.generation[0]
        volume.execute(Bio.flush())
        remounted = mount(sim, devices)
        assert remounted.generation[0] >= generation


class TestZoneStatesAfterMount:
    def test_full_zone_stays_full(self, sim):
        volume, devices = make_volume(sim)
        volume.execute(Bio.write(0, pattern(volume.zone_capacity, seed=6)))
        volume.execute(Bio.flush())
        remounted = mount(sim, devices)
        assert remounted.zone_info(0).state is ZoneState.FULL

    def test_partial_zone_comes_back_closed(self, sim):
        volume, devices = make_volume(sim)
        volume.execute(Bio.write(0, pattern(STRIPE, seed=7)))
        volume.execute(Bio.flush())
        remounted = mount(sim, devices)
        assert remounted.zone_info(0).state is ZoneState.CLOSED

    def test_persistence_bitmap_rebuilt(self, sim):
        """Everything on media after a crash is durable by definition."""
        volume, devices = make_volume(sim)
        volume.execute(Bio.write(0, pattern(2 * STRIPE, seed=8)))
        volume.execute(Bio.flush())
        power_cycle(devices, random.Random(1))
        remounted = mount(sim, devices)
        desc = remounted.zone_descs[0]
        assert desc.persistence.frontier == \
            desc.su_index_of(desc.write_pointer - 1) + 1

    def test_tail_stripe_buffer_rebuilt(self, sim):
        """An incomplete tail stripe needs its buffer back so the next
        write completing the stripe can compute full parity."""
        volume, devices = make_volume(sim)
        data = pattern(SU + 8 * KiB, seed=9)
        volume.execute(Bio.write(0, data))
        volume.execute(Bio.flush())
        remounted = mount(sim, devices)
        buffer = remounted.zone_descs[0].buffers.get(0)
        assert buffer is not None
        assert buffer.fill_end == len(data)
        # Completing the stripe must produce correct parity: verify by
        # degraded read afterwards.
        rest = pattern(STRIPE - len(data), seed=10)
        remounted.execute(Bio.write(len(data), rest))
        remounted.fail_device(volume.mapper.lba_to_pba(0)[0])
        got = remounted.execute(Bio.read(0, STRIPE)).result
        assert got == data + rest
