"""Unit and property tests for RAIZN address translation (paper §4.1)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import InvalidAddressError, RaiznError
from repro.raizn import AddressMapper, RaiznConfig
from repro.units import KiB, MiB


def mapper(num_data=4, su=64 * KiB, zone_cap=1 * MiB, zones=8):
    config = RaiznConfig(num_data=num_data, stripe_unit_bytes=su)
    return AddressMapper(config, zone_cap, zones)


class TestConfig:
    def test_defaults(self):
        config = RaiznConfig()
        assert config.num_devices == 5
        assert config.stripe_width_bytes == 256 * KiB

    def test_rejects_multi_parity(self):
        with pytest.raises(RaiznError):
            RaiznConfig(num_parity=2)

    def test_rejects_tiny_array(self):
        with pytest.raises(RaiznError):
            RaiznConfig(num_data=1)

    def test_rejects_misaligned_stripe_unit(self):
        with pytest.raises(RaiznError):
            RaiznConfig(stripe_unit_bytes=1000)

    def test_rejects_too_few_metadata_zones(self):
        with pytest.raises(RaiznError):
            RaiznConfig(num_metadata_zones=2)

    def test_logical_zone_capacity(self):
        config = RaiznConfig(num_data=4)
        assert config.logical_zone_capacity(1 * MiB) == 4 * MiB
        with pytest.raises(RaiznError):
            config.logical_zone_capacity(100 * KiB + 1)


class TestGeometry:
    def test_logical_capacity(self):
        m = mapper()
        assert m.logical_capacity == 8 * 4 * MiB
        assert m.zone_capacity == 4 * MiB
        assert m.stripes_per_zone == 16

    def test_zone_of(self):
        m = mapper()
        assert m.zone_of(0) == 0
        assert m.zone_of(4 * MiB) == 1
        assert m.zone_of(4 * MiB - 1) == 0
        with pytest.raises(InvalidAddressError):
            m.zone_of(m.logical_capacity)


class TestStripeLayout:
    def test_parity_rotates_across_stripes(self):
        m = mapper()
        parities = [m.stripe_layout(0, s).parity_device for s in range(5)]
        assert len(set(parities)) == 5  # all devices take a turn

    def test_first_su_device_rotates_across_zones(self):
        """§5.2: successive zones start on different devices, spreading
        zone-reset-log write amplification."""
        m = mapper()
        first_devices = [m.stripe_layout(z, 0).data_devices[0]
                         for z in range(5)]
        assert len(set(first_devices)) == 5

    def test_data_devices_exclude_parity(self):
        m = mapper()
        for stripe in range(10):
            layout = m.stripe_layout(0, stripe)
            assert layout.parity_device not in layout.data_devices
            assert len(set(layout.data_devices)) == 4


class TestTranslation:
    def test_lba_zero(self):
        m = mapper()
        device, pba = m.lba_to_pba(0)
        assert device == m.stripe_layout(0, 0).data_devices[0]
        assert pba == 0

    def test_second_zone_offsets_into_second_physical_zone(self):
        m = mapper()
        _device, pba = m.lba_to_pba(4 * MiB)
        assert pba == 1 * MiB

    def test_parity_pba(self):
        m = mapper()
        device, pba = m.parity_pba(0, 3)
        assert device == m.stripe_layout(0, 3).parity_device
        assert pba == 3 * 64 * KiB

    def test_split_extent_single_su(self):
        m = mapper()
        pieces = m.split_extent(0, 4 * KiB)
        assert len(pieces) == 1
        assert pieces[0][2] == 4 * KiB

    def test_split_extent_spans_devices(self):
        m = mapper()
        pieces = m.split_extent(60 * KiB, 8 * KiB)
        assert len(pieces) == 2
        assert [p[2] for p in pieces] == [4 * KiB, 4 * KiB]
        assert pieces[0][0] != pieces[1][0]

    def test_split_extent_full_stripe(self):
        m = mapper()
        pieces = m.split_extent(0, 256 * KiB)
        assert len(pieces) == 4
        assert len({p[0] for p in pieces}) == 4

    def test_split_rejects_empty(self):
        with pytest.raises(InvalidAddressError):
            mapper().split_extent(0, 0)

    @settings(max_examples=200, deadline=None)
    @given(st.integers(min_value=0, max_value=8 * 4 * MiB - 1))
    def test_pba_roundtrip(self, lba):
        m = mapper()
        device, pba = m.lba_to_pba(lba)
        back, is_parity = m.pba_to_lba(device, pba)
        assert not is_parity
        assert back == lba

    @settings(max_examples=100, deadline=None)
    @given(st.integers(min_value=0, max_value=7),
           st.integers(min_value=0, max_value=15))
    def test_parity_roundtrip(self, zone, stripe):
        m = mapper()
        device, pba = m.parity_pba(zone, stripe)
        lba, is_parity = m.pba_to_lba(device, pba)
        assert is_parity
        assert lba == m.zone_start(zone) + stripe * m.stripe_width

    @settings(max_examples=100, deadline=None)
    @given(st.integers(min_value=0, max_value=4 * 4 * MiB - 4096),
           st.integers(min_value=1, max_value=512 * KiB))
    def test_split_extent_covers_range_exactly(self, lba, length):
        m = mapper()
        length = min(length, m.logical_capacity - lba)
        pieces = m.split_extent(lba, length)
        assert sum(p[2] for p in pieces) == length
        # Pieces are device-disjoint per stripe unit and in LBA order.
        position = lba
        for device, pba, piece_len in pieces:
            expected_device, expected_pba = m.lba_to_pba(position)
            assert (device, pba) == (expected_device, expected_pba)
            position += piece_len

    @settings(max_examples=50, deadline=None)
    @given(st.integers(min_value=0, max_value=7),
           st.integers(min_value=0, max_value=15))
    def test_every_stripe_covers_all_devices(self, zone, stripe):
        m = mapper()
        layout = m.stripe_layout(zone, stripe)
        assert sorted(list(layout.data_devices)
                      + [layout.parity_device]) == [0, 1, 2, 3, 4]

    def test_pba_to_lba_rejects_metadata_zone(self):
        m = mapper()
        with pytest.raises(InvalidAddressError):
            m.pba_to_lba(0, 8 * MiB + 4096)
