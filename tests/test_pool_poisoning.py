"""Pool-poisoning audit mode (stripe-buffer recycling contract).

Recycled stripe-buffer backing arrays are reused WITHOUT re-zeroing;
every accessor must bound itself by ``fill_end``.  Poison mode fills
released arrays with 0xA5 so a stale read produces loud garbage instead
of coincidental zeroes.  These tests check the mechanics of the mode
itself plus the contract it audits: a buffer built on a poisoned pooled
array is observationally identical to a fresh zero-backed one.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.raizn import stripebuf
from repro.raizn.config import RaiznConfig
from repro.raizn.stripebuf import (StripeBuffer, enable_pool_poisoning,
                                   pool_poisoning_enabled)
from repro.raizn.volume import RaiznVolume
from repro.sim import Simulator

from conftest import make_zns_devices


@pytest.fixture
def poison():
    """Enable poisoning for the test, restoring the prior global state."""
    prior = pool_poisoning_enabled()
    enable_pool_poisoning(True)
    # Drain the free-array pool so entries poisoned (or not) by earlier
    # tests cannot leak into this one.
    stripebuf._free_arrays.clear()
    yield
    enable_pool_poisoning(prior)
    stripebuf._free_arrays.clear()


def _drain_pool():
    stripebuf._free_arrays.clear()


class TestPoisonMechanics:
    def test_recycle_poisons_pooled_array(self, poison):
        buffer = StripeBuffer(0, 0, num_data=2, su=16)
        buffer.absorb(0, b"x" * 32)
        data = buffer.data
        buffer.recycle()
        assert bytes(data) == b"\xa5" * 32

    def test_recycle_without_poison_leaves_bytes(self):
        prior = pool_poisoning_enabled()
        enable_pool_poisoning(False)
        _drain_pool()
        try:
            buffer = StripeBuffer(0, 0, num_data=2, su=16)
            buffer.absorb(0, b"x" * 32)
            data = buffer.data
            buffer.recycle()
            assert bytes(data) == b"x" * 32
        finally:
            enable_pool_poisoning(prior)
            _drain_pool()

    def test_reacquired_buffer_reuses_poisoned_array(self, poison):
        StripeBuffer(0, 0, num_data=2, su=16).recycle()
        buffer = StripeBuffer(0, 1, num_data=2, su=16)
        # The backing array is the recycled, poisoned one...
        assert bytes(buffer.data) == b"\xa5" * 32
        # ...but no accessor may observe the poison.
        assert buffer.fill_end == 0
        assert buffer.full_parity() == bytes(16)
        assert buffer.data_unit(0) == bytes(16)
        assert buffer.data_unit(1) == bytes(16)

    def test_partial_fill_accessors_ignore_poison(self, poison):
        StripeBuffer(0, 0, num_data=2, su=16).recycle()
        buffer = StripeBuffer(0, 1, num_data=2, su=16)
        buffer.absorb(0, b"\x0f" * 20)  # one full SU + a 4-byte tail
        parity = buffer.full_parity()
        assert parity == bytes(a ^ b for a, b in zip(
            b"\x0f" * 16, b"\x0f" * 4 + bytes(12)))
        assert buffer.data_unit(0) == b"\x0f" * 16
        assert buffer.data_unit(1) == b"\x0f" * 4 + bytes(12)

    def test_config_enables_poisoning(self):
        prior = pool_poisoning_enabled()
        enable_pool_poisoning(False)
        try:
            sim = Simulator()
            devices = make_zns_devices(sim)
            config = RaiznConfig(num_data=len(devices) - 1,
                                 poison_pools=True)
            RaiznVolume.create(sim, devices, config)
            assert pool_poisoning_enabled()
        finally:
            enable_pool_poisoning(prior)
            _drain_pool()

    def test_config_default_leaves_poisoning_alone(self):
        prior = pool_poisoning_enabled()
        enable_pool_poisoning(False)
        try:
            sim = Simulator()
            devices = make_zns_devices(sim)
            config = RaiznConfig(num_data=len(devices) - 1)
            RaiznVolume.create(sim, devices, config)
            assert not pool_poisoning_enabled()
        finally:
            enable_pool_poisoning(prior)
            _drain_pool()


@settings(max_examples=60, deadline=None)
@given(
    num_data=st.integers(min_value=2, max_value=4),
    su=st.integers(min_value=4, max_value=48),
    data=st.data(),
)
def test_pooled_poisoned_buffer_matches_fresh(num_data, su, data):
    """Property (satellite of the audit): a buffer whose backing array
    came back poisoned from the pool produces byte-identical
    ``full_parity``/``data_unit``/``delta_parity`` outputs to a fresh
    zero-backed buffer absorbing the same chunks."""
    width = num_data * su
    fill = data.draw(st.integers(min_value=0, max_value=width))
    payload = data.draw(st.binary(min_size=fill, max_size=fill))
    # Split the payload into sequential chunks.
    cuts = sorted(data.draw(st.lists(
        st.integers(min_value=0, max_value=fill), max_size=4)))
    bounds = [0] + cuts + [fill]
    chunks = [payload[a:b] for a, b in zip(bounds, bounds[1:]) if b > a]

    prior = pool_poisoning_enabled()
    enable_pool_poisoning(True)
    stripebuf._free_arrays.clear()
    try:
        # Fresh buffer: empty pool forces a brand-new zeroed bytearray.
        fresh = StripeBuffer(0, 0, num_data=num_data, su=su)
        for chunk in chunks:
            fresh.absorb(fresh.fill_end, chunk)

        # Pooled buffer: recycle a dummy first so the backing array comes
        # back from the pool fully poisoned.
        StripeBuffer(0, 1, num_data=num_data, su=su).recycle()
        pooled = StripeBuffer(0, 2, num_data=num_data, su=su)
        assert bytes(pooled.data) == b"\xa5" * width
        for chunk in chunks:
            pooled.absorb(pooled.fill_end, chunk)

        assert pooled.fill_end == fresh.fill_end == fill
        assert pooled.full_parity() == fresh.full_parity()
        for i in range(num_data):
            assert pooled.data_unit(i) == fresh.data_unit(i)
        offset = 0
        for chunk in chunks:
            lo_f, delta_f = StripeBuffer.delta_parity(offset, chunk, su)
            lo_p, delta_p = StripeBuffer.delta_parity(offset, chunk, su)
            assert lo_f == lo_p
            assert bytes(delta_f) == bytes(delta_p)
            offset += len(chunk)
    finally:
        enable_pool_poisoning(prior)
        stripebuf._free_arrays.clear()
