"""Hedge-race accounting: the AnyOf winner is exclusive.

When a hedged reconstruction and the straggling primary read complete
in the same simulated tick, the hedge already owns the serve and its
win counters; charging the primary's completion to the latency EWMA as
well would double-count one event and skew the slow-score.  A genuine
straggler — completing in a *later* tick — must still feed the score.
"""

import pytest

from repro.block import Bio
from repro.raizn.config import RaiznConfig
from repro.raizn.volume import RaiznVolume, _HedgeState, _LatencyEwma
from repro.sim import Event, Simulator

from conftest import TEST_STRIPE_UNIT, make_zns_devices


@pytest.fixture
def failslow_volume(sim):
    devices = make_zns_devices(sim)
    config = RaiznConfig(num_data=len(devices) - 1,
                         stripe_unit_bytes=TEST_STRIPE_UNIT,
                         failslow_protection=True)
    return RaiznVolume.create(sim, devices, config)


def _attempt_completion(sim: Simulator, volume: RaiznVolume, hedge,
                        length: int = 4096):
    """Drive ``_read_attempted`` directly with a crafted completion."""
    bio = Bio.read(0, length)
    bio.errors_as_status = True
    bio.submit_time = sim.now - 0.004  # the primary took 4 ms
    bio.result = b"\xab" * length
    event = Event(sim)
    event.succeed(bio)
    chunks = [None]
    outcome = Event(sim)
    volume._read_attempted(event, 0, 0, 0, length, None, chunks, 0,
                           outcome, 0, hedge)
    return chunks, outcome


class TestHedgeTie:
    def test_tied_primary_not_charged(self, sim, failslow_volume):
        """Same-tick completion: the hedge won, the primary's sample is
        dropped and the already-served outcome is left alone."""
        hedge = _HedgeState(Event(sim))
        hedge.served = True
        hedge.served_at = sim.now  # reconstruction served this tick
        health = failslow_volume.device_health[0]
        before = health.read.samples
        chunks, outcome = _attempt_completion(sim, failslow_volume, hedge)
        assert health.read.samples == before
        assert chunks == [None]  # hedge delivered the piece, not us
        assert not outcome.triggered

    def test_late_straggler_still_charged(self, sim, failslow_volume):
        """The primary limped in a tick after the hedge served: that is
        exactly the signal the health score exists for."""
        hedge = _HedgeState(Event(sim))
        hedge.served = True
        hedge.served_at = sim.now - 1e-3  # hedge won a full tick earlier
        health = failslow_volume.device_health[0]
        before = health.read.samples
        chunks, outcome = _attempt_completion(sim, failslow_volume, hedge)
        assert health.read.samples == before + 1
        assert chunks == [None]
        assert not outcome.triggered

    def test_unhedged_completion_serves_and_charges(self, sim,
                                                    failslow_volume):
        health = failslow_volume.device_health[0]
        before = health.read.samples
        chunks, outcome = _attempt_completion(sim, failslow_volume, None)
        assert health.read.samples == before + 1
        assert chunks[0] == b"\xab" * 4096
        assert outcome.triggered and outcome.ok

    def test_hedge_state_starts_unserved(self, sim):
        hedge = _HedgeState(Event(sim))
        assert not hedge.served
        assert hedge.served_at is None


class TestLatencyEwma:
    def test_no_threshold_before_min_samples(self):
        config = RaiznConfig(num_data=4, hedge_min_samples=4)
        ewma = _LatencyEwma()
        for _ in range(4):
            assert ewma.threshold(config) is None
            ewma.observe(1e-3, config)
        assert ewma.threshold(config) is not None

    def test_every_sample_counted_even_outliers(self):
        """`samples` counts observations, not just healthy ones — the
        tie fix relies on dropped ties being the *only* uncounted
        completions."""
        config = RaiznConfig(num_data=4, hedge_min_samples=2)
        ewma = _LatencyEwma()
        for _ in range(8):
            ewma.observe(1e-3, config)
        assert ewma.observe(1.0, config)  # a gross outlier
        assert ewma.samples == 9
        assert ewma.mean < 2e-3  # outlier excluded from the mean
