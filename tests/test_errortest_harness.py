"""The errortest campaign harness: integrity, determinism, detection."""

import json

from repro.harness.errortest import (
    detection_power,
    run_campaign,
    run_errortest,
    write_report,
)


class TestSmokeCampaign:
    def test_smoke_campaign_passes(self):
        result = run_errortest(seed=0, smoke=True)
        assert result["passed"]
        assert result["corruptions"] == 0
        assert result["violations"] == []
        assert result["injected"]["total"] >= result["min_faults"] >= 20
        assert result["eviction"]["evicted"]
        assert result["rebuild"]["bytes_written"] > 0
        assert result["detection_power"]["caught"]

    def test_campaign_exercises_every_fault_class(self):
        report = run_campaign(seed=0, smoke=True)
        injected = report.injected
        assert injected["latent"] > 0
        assert injected["transient"] > 0
        assert injected["wear"] > 0
        assert report.health["heals"] > 0
        assert report.health["transient_retries"] > 0
        # Three verification passes: post-scrub, degraded, post-rebuild.
        labels = [v["label"] for v in report.verify_passes]
        assert labels == ["post-scrub", "degraded", "post-rebuild"]
        assert all(v["corruptions"] == 0 for v in report.verify_passes)


class TestDeterminism:
    def test_same_seed_same_report(self):
        first = run_campaign(seed=3, smoke=True).to_dict()
        second = run_campaign(seed=3, smoke=True).to_dict()
        assert first == second

    def test_different_seeds_diverge(self):
        first = run_campaign(seed=0, smoke=True).to_dict()
        second = run_campaign(seed=1, smoke=True).to_dict()
        assert first["injected"] != second["injected"]


class TestDetectionPower:
    def test_oracle_catches_unrepaired_corruption(self):
        result = detection_power(seed=1)
        assert result["caught"]
        assert result["corruptions"] > 0
        assert result["unrepaired_serves"] > 0


class TestReportFile:
    def test_write_report_round_trips(self, tmp_path):
        report = run_campaign(seed=2, smoke=True).to_dict()
        path = tmp_path / "errortest.json"
        write_report(report, str(path))
        with open(path) as fh:
            assert json.load(fh) == report
