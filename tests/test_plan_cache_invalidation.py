"""Write-plan cache vs array-membership transitions (soak regression).

Cached write plans are pure geometry, but they are consumed under
emit-time availability checks that assume the membership they were built
under.  Every eviction, rebuild start (rejoin), and rebuild completion
must invalidate the cache so no plan crosses a membership epoch.
"""

from repro.block import Bio
from repro.faults.devicefail import fresh_replacement
from repro.raizn.rebuild import rebuild

from conftest import TEST_STRIPE_UNIT, make_volume, pattern

SU = TEST_STRIPE_UNIT
STRIPE = 4 * SU


def test_eviction_clears_cached_plans(sim):
    volume, devices = make_volume(sim)
    volume.execute(Bio.write(0, pattern(STRIPE, seed=1)))
    assert volume._plan_cache, "steady-state writes should cache plans"
    epoch = volume._membership_epoch
    volume.fail_device(2)
    assert not volume._plan_cache
    assert volume._membership_epoch == epoch + 1


def test_rebuild_rejoin_and_completion_bump_epoch(sim):
    volume, devices = make_volume(sim)
    volume.execute(Bio.write(0, pattern(2 * STRIPE, seed=2)))
    volume.execute(Bio.flush())
    volume.fail_device(1)
    epoch = volume._membership_epoch
    replacement = fresh_replacement(sim, devices[0], "zns1b", seed=99)
    rebuild(sim, volume, 1, replacement)
    # One transition when the replacement rejoins (rebuilt_zones gating
    # starts), one when the rebuild completes (gating lifted).
    assert volume._membership_epoch == epoch + 2
    assert not volume._plan_cache


def test_mid_workload_eviction_keeps_data_consistent(sim):
    volume, devices = make_volume(sim)
    first = pattern(STRIPE, seed=3)
    volume.execute(Bio.write(0, first))          # caches the zone-0 plan
    volume.fail_device(3)                        # membership transition
    more = pattern(2 * STRIPE, seed=4)
    volume.execute(Bio.write(STRIPE, more))      # same zone, degraded
    assert volume.execute(Bio.read(0, STRIPE)).result == first
    assert volume.execute(Bio.read(STRIPE, len(more))).result == more
