"""DeviceStats accounting rules: count-once, successful-only latency.

Regression tests for the accounting sweep: a retried bio must not
inflate the command counters (``bio.counted`` guard), rejected commands
are never counted, and the latency counters charge only successful
completions — the same rule the trace layer follows, which is what
makes span totals reconcile with ``io_seconds``.
"""

import pytest

from repro.block import Bio
from repro.errors import DeviceFailedError, WritePointerViolation

from conftest import pattern


class TestCountOnce:
    def test_resubmitted_bio_counts_one_command(self, zns):
        """A retry resubmits the *same* bio; stats count logical
        commands, so the second submission must not double-count."""
        zns.execute(Bio.write(0, pattern(8192)))
        bio = Bio.read(0, 8192)
        zns.execute(bio)
        assert zns.stats.reads == 1
        assert zns.stats.bytes_read == 8192
        zns.execute(bio)  # e.g. a read-repair retry of the same bio
        assert zns.stats.reads == 1
        assert zns.stats.bytes_read == 8192

    def test_two_distinct_bios_count_twice(self, zns):
        zns.execute(Bio.write(0, pattern(8192)))
        zns.execute(Bio.read(0, 4096))
        zns.execute(Bio.read(4096, 4096))
        assert zns.stats.reads == 2
        assert zns.stats.bytes_read == 8192

    def test_rejected_bio_not_counted(self, zns):
        bio = Bio.write(8192, pattern(4096))  # not at the write pointer
        with pytest.raises(WritePointerViolation):
            zns.execute(bio)
        assert zns.stats.writes == 0
        assert zns.stats.bytes_written == 0
        assert not bio.counted  # a later valid submission may still count

    def test_latency_charged_per_completion_not_per_command(self, zns):
        """The count-once guard covers the command counters only: each
        successful completion still adds its latency."""
        zns.execute(Bio.write(0, pattern(8192)))
        bio = Bio.read(0, 8192)
        zns.execute(bio)
        once = zns.stats.read_seconds
        assert once > 0.0
        zns.execute(bio)
        assert zns.stats.read_seconds > once


class TestSuccessfulOnly:
    def test_failed_midflight_not_charged_latency(self, sim, zns):
        done = zns.submit(Bio.write(0, pattern(8192)))
        zns.fail_device()
        sim.run()
        assert not done.ok
        with pytest.raises(DeviceFailedError):
            raise done.value
        # The command was accepted (counted) but never completed: the
        # latency counters stay empty, matching the trace layer's rule.
        assert zns.stats.writes == 1
        assert zns.stats.io_seconds == 0.0

    def test_io_seconds_sums_directions(self, zns):
        zns.execute(Bio.write(0, pattern(8192)))
        zns.execute(Bio.read(0, 8192))
        zns.execute(Bio.flush())
        stats = zns.stats
        assert stats.read_seconds > 0.0
        assert stats.write_seconds > 0.0
        assert stats.other_seconds > 0.0
        assert stats.io_seconds == pytest.approx(
            stats.read_seconds + stats.write_seconds + stats.other_seconds)


class TestSnapshot:
    def test_to_dict_matches_counters(self, zns):
        zns.execute(Bio.write(0, pattern(8192)))
        snap = zns.stats.to_dict()
        assert snap["writes"] == 1
        assert snap["bytes_written"] == 8192
        assert snap["io_seconds"] == pytest.approx(zns.stats.io_seconds)
        assert {"reads", "flushes", "zone_mgmt", "media_bytes_written",
                "write_amplification"} <= snap.keys()
