"""The compound-fault soak campaign: quick run passes, deterministically.

One campaign composes all four fault dimensions (crash/recover cycles,
latent+transient error injection, fail-slow delays, wear/endurance) on a
single array with GC, scrub, and rebuild pressure, and checks the
integrity oracle at every phase boundary.  These tests pin the quick
profile's acceptance bar and its bit-for-bit determinism.
"""

from repro.harness.soaktest import MECHANISMS, run_soaktest


def test_quick_campaign_passes():
    report = run_soaktest(seed=0, quick=True)
    assert report["passed"], report["violations"] or report
    assert report["violations"] == []
    assert report["pruning"]["escapes"] == []
    assert report["pruning"]["ratio"] >= 0.3
    assert report["pruning"]["verified_sample"] > 0
    assert len(report["mechanisms_exercised"]) >= 3
    assert set(report["mechanisms_exercised"]) <= set(MECHANISMS)
    assert report["injected"]["total"] > 0
    assert report["slowed_commands"] > 0
    assert report["crash_cycles"] >= 1


def test_quick_campaign_is_deterministic():
    first = run_soaktest(seed=0, quick=True)
    second = run_soaktest(seed=0, quick=True)
    assert first["campaign_fingerprint"] == second["campaign_fingerprint"]
    assert first["mechanism_signatures"] == second["mechanism_signatures"]
    assert first["pruning"] == second["pruning"]
    assert first["violations"] == second["violations"]


def test_seed_changes_the_campaign():
    base = run_soaktest(seed=0, quick=True)
    other = run_soaktest(seed=1, quick=True)
    assert base["campaign_fingerprint"] != other["campaign_fingerprint"]
