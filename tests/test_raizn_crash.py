"""Crash-consistency tests: power loss, recovery, and the ZNS edge cases
of paper §5 (stripe holes, partial zone resets, FUA guarantees)."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.block import Bio, BioFlags
from repro.faults import CrashPoint, power_cycle, power_fail_array
from repro.raizn import mount
from repro.raizn.mdzone import MetadataRole
from repro.raizn.metadata import encode_zone_reset
from repro.sim import Simulator
from repro.units import KiB
from repro.zns import ZoneState

from conftest import TEST_STRIPE_UNIT, make_volume, pattern

SU = TEST_STRIPE_UNIT
STRIPE = 4 * SU


def crash_and_remount(sim, volume, devices, seed=0):
    power_cycle(devices, random.Random(seed))
    return mount(sim, list(devices))


class TestCleanRemount:
    def test_remount_preserves_everything(self, sim):
        volume, devices = make_volume(sim)
        data = pattern(2 * STRIPE + 12 * KiB, seed=1)
        volume.execute(Bio.write(0, data))
        volume.execute(Bio.flush())
        remounted = mount(sim, devices)
        assert remounted.zone_info(0).write_pointer == len(data)
        assert remounted.execute(Bio.read(0, len(data))).result == data

    def test_remount_preserves_generation(self, sim):
        volume, devices = make_volume(sim)
        volume.execute(Bio.write(0, b"\x01" * 4096))
        volume.execute(Bio.zone_reset(0))
        generation = volume.generation[0]
        volume.execute(Bio.flush())
        remounted = mount(sim, devices)
        # Empty zones are bumped once more at mount (§4.3).
        assert remounted.generation[0] == generation + 1

    def test_remount_with_shuffled_devices(self, sim):
        volume, devices = make_volume(sim)
        data = pattern(STRIPE, seed=2)
        volume.execute(Bio.write(0, data))
        volume.execute(Bio.flush())
        shuffled = [devices[i] for i in (3, 1, 4, 0, 2)]
        remounted = mount(sim, shuffled)
        assert remounted.execute(Bio.read(0, STRIPE)).result == data

    def test_remount_can_continue_writing(self, sim):
        volume, devices = make_volume(sim)
        data = pattern(STRIPE + 8 * KiB, seed=3)
        volume.execute(Bio.write(0, data))
        volume.execute(Bio.flush())
        remounted = mount(sim, devices)
        more = pattern(STRIPE, seed=4)
        remounted.execute(Bio.write(len(data), more))
        got = remounted.execute(Bio.read(0, len(data) + STRIPE)).result
        assert got == data + more

    def test_double_remount_stable(self, sim):
        volume, devices = make_volume(sim)
        data = pattern(STRIPE + 4 * KiB, seed=5)
        volume.execute(Bio.write(0, data))
        volume.execute(Bio.flush())
        first = mount(sim, devices)
        second = mount(sim, devices)
        assert second.zone_info(0).write_pointer == len(data)
        assert second.execute(Bio.read(0, len(data))).result == data


class TestPowerLossConsistency:
    def test_readable_prefix_after_crash(self, sim):
        volume, devices = make_volume(sim)
        data = pattern(5 * STRIPE, seed=6)
        volume.execute(Bio.write(0, data))
        remounted = crash_and_remount(sim, volume, devices, seed=11)
        wp = remounted.zone_info(0).write_pointer
        assert wp <= len(data)
        if wp:
            assert remounted.execute(Bio.read(0, wp)).result == data[:wp]

    def test_fua_data_never_lost(self, sim):
        volume, devices = make_volume(sim)
        head = pattern(STRIPE + 12 * KiB, seed=7)
        volume.execute(Bio.write(0, head[:STRIPE]))
        volume.execute(Bio.write(STRIPE, head[STRIPE:],
                                 BioFlags.FUA | BioFlags.PREFLUSH))
        volume.execute(Bio.write(len(head), pattern(8 * KiB, seed=8)))
        remounted = crash_and_remount(sim, volume, devices, seed=13)
        assert remounted.zone_info(0).write_pointer >= len(head)
        assert remounted.execute(Bio.read(0, len(head))).result == head

    def test_continue_after_crash_with_stripe_hole(self, sim):
        volume, devices = make_volume(sim)
        data = pattern(6 * STRIPE, seed=9)
        volume.execute(Bio.write(0, data))
        remounted = crash_and_remount(sim, volume, devices, seed=17)
        wp = remounted.zone_info(0).write_pointer
        more = pattern(2 * STRIPE, seed=10)
        remounted.execute(Bio.write(wp, more))
        remounted.execute(Bio.flush())
        got = remounted.execute(Bio.read(0, wp + len(more))).result
        assert got == data[:wp] + more

    def test_relocated_data_survives_next_crash(self, sim):
        volume, devices = make_volume(sim)
        volume.execute(Bio.write(0, pattern(6 * STRIPE, seed=11)))
        remounted = crash_and_remount(sim, volume, devices, seed=19)
        wp = remounted.zone_info(0).write_pointer
        more = pattern(2 * STRIPE, seed=12)
        remounted.execute(Bio.write(wp, more))
        remounted.execute(Bio.flush())
        again = mount(sim, devices)
        assert again.zone_info(0).write_pointer == wp + len(more)
        got = again.execute(Bio.read(wp, len(more))).result
        assert got == more

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 10 ** 9), st.integers(1, 40))
    def test_crash_anywhere_preserves_prefix_property(self, seed, nwrites):
        """Fundamental §5 guarantee: after any crash, the recovered zone
        is a readable prefix of what was written, and the volume accepts
        new writes at its write pointer."""
        sim = Simulator()
        volume, devices = make_volume(sim)
        rng = random.Random(seed)
        blob = pattern(nwrites * 12 * KiB, seed=seed)
        offset = 0
        for _ in range(nwrites):
            nbytes = rng.choice((4 * KiB, 8 * KiB, 12 * KiB))
            volume.execute(Bio.write(offset, blob[offset:offset + nbytes]))
            offset += nbytes
        power_cycle(devices, random.Random(seed + 1))
        remounted = mount(sim, devices)
        wp = remounted.zone_info(0).write_pointer
        assert wp <= offset
        if wp:
            assert remounted.execute(Bio.read(0, wp)).result == blob[:wp]
        remounted.execute(Bio.write(wp, b"\x77" * 4096))
        assert remounted.execute(
            Bio.read(wp, 4096)).result == b"\x77" * 4096


class TestZoneResetCrash:
    def test_interrupted_reset_completes_on_mount(self, sim):
        volume, devices = make_volume(sim)
        volume.execute(Bio.write(0, pattern(4 * STRIPE, seed=13)))
        volume.execute(Bio.flush())
        # Simulate a crash between the reset WAL and the physical resets:
        # log the WAL, reset only two devices, then lose power.
        layout = volume.mapper.stripe_layout(0, 0)
        for device_index in {layout.data_devices[0], layout.parity_device}:
            sim.run_process(volume.mdzones[device_index].append(
                MetadataRole.GENERAL,
                encode_zone_reset(0, volume.zone_descs[0].write_pointer,
                                  volume.generation[0]),
                fua=True))
        devices[0].execute(Bio.zone_reset(0))
        devices[2].execute(Bio.zone_reset(0))
        power_cycle(devices, random.Random(23))
        remounted = mount(sim, devices)
        info = remounted.zone_info(0)
        assert info.state is ZoneState.EMPTY
        assert info.write_pointer == 0

    def test_stale_reset_log_ignored(self, sim):
        """A reset log from a previous zone generation must not re-reset
        the zone after it has been legitimately rewritten."""
        volume, devices = make_volume(sim)
        volume.execute(Bio.write(0, pattern(STRIPE, seed=14)))
        volume.execute(Bio.zone_reset(0))          # log + reset + gen bump
        data = pattern(2 * STRIPE, seed=15)
        volume.execute(Bio.write(0, data))          # rewrite after reset
        volume.execute(Bio.flush())
        remounted = mount(sim, devices)
        assert remounted.zone_info(0).write_pointer == len(data)
        assert remounted.execute(Bio.read(0, len(data))).result == data

    def test_crash_after_all_resets_before_gen_persist(self, sim):
        volume, devices = make_volume(sim)
        volume.execute(Bio.write(0, pattern(STRIPE, seed=16)))
        volume.execute(Bio.flush())
        generation = volume.generation[0]
        for dev in devices:
            dev.execute(Bio.zone_reset(0))
        power_cycle(devices, random.Random(29))
        remounted = mount(sim, devices)
        assert remounted.zone_info(0).state is ZoneState.EMPTY
        # Mount bumps the empty zone's counter, invalidating stale logs.
        assert remounted.generation[0] >= generation + 1


class TestCrashPointInjection:
    def test_crash_point_cuts_power_mid_operation(self, sim):
        volume, devices = make_volume(sim)
        volume.execute(Bio.write(0, pattern(STRIPE, seed=17)))
        volume.execute(Bio.flush())
        crash = CrashPoint(devices, after=3, rng=random.Random(5))
        from repro.errors import ReproError
        with pytest.raises(ReproError):
            for i in range(1, 16):
                volume.execute(Bio.write(STRIPE + (i - 1) * 4 * KiB,
                                         b"\xaa" * 4096))
        assert crash.fired
        crash.disarm()
        for dev in devices:
            dev.power_on()
        remounted = mount(sim, devices)
        wp = remounted.zone_info(0).write_pointer
        assert wp >= STRIPE  # the flushed stripe is intact
        got = remounted.execute(Bio.read(0, STRIPE)).result
        assert got == pattern(STRIPE, seed=17)

    def test_crash_point_op_filter(self, sim):
        from repro.block import Op
        volume, devices = make_volume(sim)
        crash = CrashPoint(devices, after=1, ops=(Op.ZONE_RESET,),
                           rng=random.Random(6))
        volume.execute(Bio.write(0, pattern(STRIPE, seed=18)))  # no crash
        assert not crash.fired
        from repro.errors import ReproError
        with pytest.raises(ReproError):
            volume.execute(Bio.zone_reset(0))
        assert crash.fired


class TestMetadataCrash:
    def test_metadata_gc_interrupted_by_crash(self, sim):
        """Logs from both the old metadata zone and the swap zone are
        ingested; duplicates resolve by generation counter (§4.3)."""
        volume, devices = make_volume(sim)
        data = pattern(STRIPE + 8 * KiB, seed=19)
        volume.execute(Bio.write(0, data))
        volume.execute(Bio.flush())
        # Force a metadata GC rotation on one device, then crash without
        # letting anything else happen.
        sim.run_process(volume.mdzones[0].force_gc(MetadataRole.GENERAL))
        power_cycle(devices, random.Random(31))
        remounted = mount(sim, devices)
        assert remounted.execute(Bio.read(0, len(data))).result == data

    def test_many_resets_trigger_metadata_gc(self, sim):
        """Generation-counter logs eventually fill the metadata zone and
        exercise the swap-zone rotation during normal operation."""
        volume, devices = make_volume(sim)
        for _ in range(150):
            volume.execute(Bio.write(0, b"\x01" * 4096))
            volume.execute(Bio.zone_reset(0))
        assert any(mdz.gc_cycles > 0 for mdz in volume.mdzones)
        volume.execute(Bio.flush())
        remounted = mount(sim, devices)
        assert remounted.generation[0] > 150
        remounted.execute(Bio.write(0, b"\x02" * 4096))
        assert remounted.execute(Bio.read(0, 4096)).result == b"\x02" * 4096
