"""Isolated coverage for ``repro.faults.devicefail`` (paper §4.2, §6.2).

Exercises the three failure semantics in isolation: fail-stop (all IO
errors out once a device fails), rejoin-rejected (a rebuild refuses a
device that never failed or a replacement of the wrong geometry), and
mid-bio failure (a device failing with IO in flight)."""

import pytest

from repro.block import Bio
from repro.errors import DataLossError, DeviceFailedError, RaiznError
from repro.faults import fail_and_rebuild, fresh_replacement
from repro.raizn.rebuild import rebuild
from repro.units import MiB
from repro.zns import ZNSDevice

from conftest import TEST_STRIPE_UNIT, make_volume, pattern

SU = TEST_STRIPE_UNIT
STRIPE = 4 * SU


class TestFailStop:
    def test_new_io_rejected_after_failure(self, zns):
        zns.execute(Bio.write(0, pattern(SU)))
        zns.fail_device()
        with pytest.raises(DeviceFailedError):
            zns.execute(Bio.read(0, SU))
        with pytest.raises(DeviceFailedError):
            zns.execute(Bio.write(SU, pattern(SU, seed=1)))

    def test_rejection_as_status_when_opted_in(self, sim, zns):
        zns.fail_device()
        bio = Bio.read(0, SU)
        bio.errors_as_status = True
        done = zns.submit(bio)
        sim.run()
        assert done.ok
        assert isinstance(done.value.error, DeviceFailedError)

    def test_volume_serves_degraded_after_fail_stop(self, sim):
        volume, _devices = make_volume(sim)
        data = pattern(2 * STRIPE, seed=7)
        volume.execute(Bio.write(0, data))
        volume.fail_device(1)
        assert volume.devices[1] is None
        assert volume.execute(Bio.read(0, len(data))).result == data

    def test_failing_past_parity_tolerance_refused(self, sim):
        volume, _devices = make_volume(sim)
        volume.fail_device(0)
        with pytest.raises(DataLossError):
            volume.fail_device(1)


class TestRejoinRejected:
    def test_rebuild_of_healthy_device_refused(self, sim):
        volume, devices = make_volume(sim)
        replacement = fresh_replacement(sim, devices[0], name="spare")
        with pytest.raises(RaiznError, match="has not failed"):
            rebuild(sim, volume, 2, replacement)

    def test_geometry_mismatch_refused(self, sim):
        volume, devices = make_volume(sim)
        volume.fail_device(3)
        wrong = ZNSDevice(sim, name="wrong", num_zones=devices[0].num_zones,
                          zone_capacity=2 * MiB)
        with pytest.raises(RaiznError, match="geometry mismatch"):
            rebuild(sim, volume, 3, wrong)
        # The slot stays failed so a correct replacement can still go in.
        assert volume.failed[3]

    def test_fail_and_rebuild_restores_redundancy(self, sim):
        volume, _devices = make_volume(sim)
        data = pattern(3 * STRIPE, seed=11)
        volume.execute(Bio.write(0, data))
        report = fail_and_rebuild(sim, volume, 2)
        assert not volume.failed[2]
        assert report.zones_rebuilt >= 1
        assert volume.execute(Bio.read(0, len(data))).result == data
        # Redundancy is actually back: lose a *different* device and the
        # rebuilt one must participate in reconstruction.
        volume.fail_device(0)
        assert volume.execute(Bio.read(0, len(data))).result == data


class TestMidBioFailure:
    def test_inflight_bio_fails_with_event_error(self, sim, zns):
        done = zns.submit(Bio.write(0, pattern(SU)))
        zns.fail_device()
        sim.run()
        assert done.triggered and not done.ok
        assert isinstance(done.value, DeviceFailedError)
        assert "mid-IO" in str(done.value)

    def test_inflight_bio_fails_as_status_when_opted_in(self, sim, zns):
        bio = Bio.write(0, pattern(SU))
        bio.errors_as_status = True
        done = zns.submit(bio)
        zns.fail_device()
        sim.run()
        assert done.ok
        assert done.value is bio
        assert isinstance(bio.error, DeviceFailedError)

    def test_midbio_write_not_readable_after_rejoin_rebuild(self, sim):
        volume, devices = make_volume(sim)
        data = pattern(STRIPE, seed=5)
        volume.execute(Bio.write(0, data))
        # Kill a device with a volume write in flight; parity still
        # covers the stripe so the volume-level write must complete.
        done = volume.submit(Bio.write(STRIPE, pattern(STRIPE, seed=6)))
        devices[4].fail_device()
        volume.fail_device(4)
        sim.run()
        assert done.ok
        fail_and_rebuild(sim, volume, 4)
        whole = volume.execute(Bio.read(0, 2 * STRIPE)).result
        assert whole[:STRIPE] == data
        assert whole[STRIPE:] == pattern(STRIPE, seed=6)
