"""Unit and integration tests for the mdraid RAID-5 baseline."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.block import Bio, Op
from repro.conv import ConventionalSSD
from repro.errors import DataLossError, InvalidAddressError, RaiznError
from repro.mdraid import MdraidVolume, StripeCache
from repro.sim import Simulator
from repro.units import KiB, MiB

from conftest import pattern

CHUNK = 64 * KiB
STRIPE = 4 * CHUNK


def make_md(sim, capacity=16 * MiB, n=5, **kwargs):
    devices = [ConventionalSSD(sim, name=f"c{i}", capacity_bytes=capacity,
                               seed=i) for i in range(n)]
    return MdraidVolume(sim, devices, **kwargs), devices


class TestLayout:
    def test_capacity(self, sim):
        md, _ = make_md(sim)
        assert md.capacity == 4 * 16 * MiB

    def test_parity_rotation(self, sim):
        md, _ = make_md(sim)
        parities = [md.layout(stripe)[0] for stripe in range(5)]
        assert sorted(parities) == [0, 1, 2, 3, 4]

    def test_too_few_devices_rejected(self, sim):
        devices = [ConventionalSSD(sim, capacity_bytes=MiB) for _ in range(2)]
        with pytest.raises(RaiznError):
            MdraidVolume(sim, devices)

    def test_mismatched_capacity_rejected(self, sim):
        devices = [ConventionalSSD(sim, capacity_bytes=MiB) for _ in range(4)]
        devices.append(ConventionalSSD(sim, capacity_bytes=2 * MiB))
        with pytest.raises(RaiznError):
            MdraidVolume(sim, devices)


class TestReadWrite:
    def test_full_stripe_roundtrip(self, sim):
        md, _ = make_md(sim)
        data = pattern(STRIPE, seed=1)
        md.execute(Bio.write(0, data))
        assert md.execute(Bio.read(0, STRIPE)).result == data

    def test_sub_stripe_write_rmw(self, sim):
        md, _ = make_md(sim)
        md.execute(Bio.write(0, pattern(STRIPE, seed=2)))
        patch = pattern(8 * KiB, seed=3)
        md.execute(Bio.write(68 * KiB, patch))
        got = md.execute(Bio.read(64 * KiB, 64 * KiB)).result
        assert got[4 * KiB:12 * KiB] == patch

    def test_random_overwrites(self, sim):
        import random
        md, _ = make_md(sim)
        rng = random.Random(4)
        image = bytearray(2 * STRIPE)
        md.execute(Bio.write(0, bytes(image)))
        for _ in range(30):
            offset = rng.randrange(0, 2 * STRIPE - 4 * KiB, 4 * KiB)
            data = pattern(4 * KiB, seed=rng.randrange(1000))
            image[offset:offset + 4 * KiB] = data
            md.execute(Bio.write(offset, data))
        assert md.execute(Bio.read(0, 2 * STRIPE)).result == bytes(image)

    def test_out_of_range_rejected(self, sim):
        md, _ = make_md(sim)
        with pytest.raises(InvalidAddressError):
            md.execute(Bio.read(md.capacity, 4096))

    def test_zone_ops_rejected(self, sim):
        md, _ = make_md(sim)
        from repro.errors import ZoneStateError
        with pytest.raises(ZoneStateError):
            md.execute(Bio.zone_reset(0))

    def test_discard_forwarded(self, sim):
        md, devices = make_md(sim)
        md.execute(Bio.write(0, pattern(STRIPE, seed=5)))
        md.execute(Bio(Op.DISCARD, offset=0, length=STRIPE))
        assert md.execute(Bio.read(0, STRIPE)).result == bytes(STRIPE)


class TestParityConsistency:
    def _parity_ok(self, md, devices, stripe):
        pba = md.chunk_pba(stripe)
        parity_dev, data_devs = md.layout(stripe)
        chunks = [devices[d].execute(Bio.read(pba, CHUNK)).result
                  for d in data_devs]
        parity = devices[parity_dev].execute(Bio.read(pba, CHUNK)).result
        acc = bytearray(CHUNK)
        for chunk in chunks:
            for i, b in enumerate(chunk):
                acc[i] ^= b
        return bytes(acc) == parity

    def test_parity_after_full_stripe(self, sim):
        md, devices = make_md(sim)
        md.execute(Bio.write(0, pattern(STRIPE, seed=6)))
        assert self._parity_ok(md, devices, 0)

    def test_parity_after_sub_stripe_updates(self, sim):
        md, devices = make_md(sim)
        md.execute(Bio.write(0, pattern(2 * STRIPE, seed=7)))
        md.execute(Bio.write(4 * KiB, pattern(4 * KiB, seed=8)))
        md.execute(Bio.write(STRIPE + 128 * KiB, pattern(32 * KiB, seed=9)))
        assert self._parity_ok(md, devices, 0)
        assert self._parity_ok(md, devices, 1)

    @settings(max_examples=10, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 127), st.integers(1, 32)),
                    min_size=1, max_size=12))
    def test_parity_invariant_random_writes(self, writes):
        sim = Simulator()
        md, devices = make_md(sim, capacity=4 * MiB)
        for sector, count in writes:
            offset = sector * 4 * KiB
            nbytes = min(count * 4 * KiB, md.capacity - offset)
            md.execute(Bio.write(offset, pattern(nbytes, seed=sector)))
        touched = set()
        for sector, count in writes:
            start = sector * 4 * KiB // STRIPE
            end = min((sector + count) * 4 * KiB, md.capacity - 1) // STRIPE
            touched.update(range(start, end + 1))
        for stripe in touched:
            assert self._parity_ok(md, devices, stripe)


class TestDegradedAndResync:
    def test_degraded_read(self, sim):
        md, _ = make_md(sim)
        data = pattern(2 * STRIPE, seed=10)
        md.execute(Bio.write(0, data))
        md.fail_device(2)
        assert md.execute(Bio.read(0, 2 * STRIPE)).result == data

    def test_degraded_write_and_read(self, sim):
        md, _ = make_md(sim)
        md.fail_device(1)
        data = pattern(2 * STRIPE, seed=11)
        md.execute(Bio.write(0, data))
        assert md.execute(Bio.read(0, 2 * STRIPE)).result == data

    def test_degraded_sub_stripe_write(self, sim):
        md, _ = make_md(sim)
        data = pattern(STRIPE, seed=12)
        md.execute(Bio.write(0, data))
        md.fail_device(0)
        patch = pattern(4 * KiB, seed=13)
        md.execute(Bio.write(0, patch))
        expected = patch + data[4 * KiB:]
        assert md.execute(Bio.read(0, STRIPE)).result == expected

    def test_second_failure_rejected(self, sim):
        md, _ = make_md(sim)
        md.fail_device(0)
        with pytest.raises(DataLossError):
            md.fail_device(1)

    def test_resync_restores_data_and_redundancy(self, sim):
        md, _ = make_md(sim, capacity=8 * MiB)
        data = pattern(4 * STRIPE, seed=14)
        md.execute(Bio.write(0, data))
        md.fail_device(3)
        replacement = ConventionalSSD(sim, name="new",
                                      capacity_bytes=8 * MiB, seed=99)
        report = md.resync(3, replacement)
        # mdraid resyncs the ENTIRE device, regardless of fill (§6.2).
        assert report.bytes_written == 8 * MiB
        assert md.execute(Bio.read(0, 4 * STRIPE)).result == data
        md.fail_device(0)
        assert md.execute(Bio.read(0, 4 * STRIPE)).result == data

    def test_resync_constant_regardless_of_fill(self, sim):
        md, _ = make_md(sim, capacity=8 * MiB)
        md.execute(Bio.write(0, pattern(STRIPE, seed=15)))
        md.fail_device(0)
        replacement = ConventionalSSD(sim, name="new",
                                      capacity_bytes=8 * MiB, seed=98)
        report = md.resync(0, replacement)
        assert report.bytes_written == 8 * MiB

    def test_resync_wrong_capacity_rejected(self, sim):
        md, _ = make_md(sim, capacity=8 * MiB)
        md.fail_device(0)
        replacement = ConventionalSSD(sim, capacity_bytes=4 * MiB)
        with pytest.raises(RaiznError):
            sim.run_process(md.resync_process(0, replacement))


class TestStripeCache:
    def test_lru_eviction(self):
        cache = StripeCache(num_stripes=2, num_data=4)
        cache.put(0, [b""] * 5)
        cache.put(1, [b""] * 5)
        cache.get(0)
        cache.put(2, [b""] * 5)  # evicts 1 (LRU)
        assert cache.get(1) is None
        assert cache.get(0) is not None

    def test_hit_miss_counters(self):
        cache = StripeCache(num_stripes=4, num_data=4)
        cache.put(0, [b""] * 5)
        cache.get(0)
        cache.get(9)
        assert cache.hits == 1 and cache.misses == 1

    def test_cache_avoids_reads_on_repeat_writes(self, sim):
        md, devices = make_md(sim)
        # A full-stripe write populates the stripe cache...
        md.execute(Bio.write(0, pattern(STRIPE, seed=16)))
        reads_before = sum(d.stats.reads for d in devices)
        # ...so subsequent sub-stripe writes need no RMW reads.
        md.execute(Bio.write(4 * KiB, pattern(4 * KiB, seed=17)))
        reads_after = sum(d.stats.reads for d in devices)
        assert reads_after == reads_before

    def test_uncached_small_write_reads_subranges_only(self, sim):
        md, devices = make_md(sim)
        md.execute(Bio.write(0, pattern(STRIPE, seed=18)))
        md.cache.invalidate()
        bytes_before = sum(d.stats.bytes_read for d in devices)
        md.execute(Bio.write(0, pattern(4 * KiB, seed=19)))
        bytes_read = sum(d.stats.bytes_read for d in devices) - bytes_before
        # Sector-granular RMW: old data sector + old parity sector.
        assert bytes_read == 8 * KiB
