"""End-to-end bio tracing: spans, sink aggregates, reconciliation.

The tracer's contract has three legs — it is off (and free) by default,
its per-``(layer, name, device)`` aggregates are lossless even when the
span ring evicts, and the per-device span totals reconcile exactly with
the ``DeviceStats.io_seconds`` counters the registry snapshots.
"""

import json

import pytest

from repro.block.bio import Op
from repro.harness.tracecli import (_build, _workload, dump_spans, run_trace,
                                    spans_summary)
from repro.harness.perfbench import _drive
from repro.trace import (MetricsRegistry, TraceSink, Tracer,
                         format_trace_report, reconcile)
from repro.trace.tracer import DEVICE_LAYERS, SITE_BITS


class FakeSim:
    """A settable clock is all the tracer needs from the simulator."""

    def __init__(self) -> None:
        self.now = 0.0


def _traced_volume():
    sim, volume, devices = _build(seed=7, quick=True)
    bios = _workload(volume, seed=7, quick=True)
    _drive(sim, volume, bios, 32)
    return sim, volume, devices


class TestDisabledByDefault:
    def test_no_tracer_without_config_flag(self):
        from repro.harness.perfbench import FAST_SCALE, _SCENARIOS

        sim, volume, devices, bios = _SCENARIOS["seq_write"](FAST_SCALE, 3)
        assert volume.tracer is None
        assert all(dev.tracer is None for dev in devices)
        _drive(sim, volume, bios, FAST_SCALE.iodepth)
        # The per-bio trace slots never get touched.
        assert all(bio.span is None for bio in bios)


class TestTracerUnit:
    def test_span_records_duration_and_site(self):
        sim = FakeSim()
        tracer = Tracer(sim)
        span = tracer.begin("volume", Op.WRITE, None, 4096)
        sim.now = 0.25
        tracer.end(span)
        agg = tracer.sink.aggregates
        row = agg[("volume", Op.WRITE, None)]
        assert row[0] == 1
        assert row[1] == pytest.approx(0.25)
        assert row[2] == 4096

    def test_spans_are_pooled_and_recycled(self):
        tracer = Tracer(FakeSim())
        site = tracer.site("md", "general", "dev0")
        span = tracer.begin_at(site)
        tracer.end(span)
        assert tracer.begin_at(site) is span  # recycled, not reallocated

    def test_discard_records_nothing(self):
        tracer = Tracer(FakeSim())
        tracer.discard(tracer.begin("zns", Op.READ, "dev0"))
        assert tracer.sink.total_recorded == 0
        assert all(row[0] == 0 for row in tracer.sink.rows)

    def test_ring_eviction_keeps_aggregates_lossless(self):
        sim = FakeSim()
        tracer = Tracer(sim, TraceSink(capacity=4))
        for i in range(10):
            sim.now = float(i)
            span = tracer.begin("volume", Op.WRITE, None, 100)
            sim.now = float(i) + 0.5
            tracer.end(span)
        sink = tracer.sink
        assert sink.total_recorded == 10
        assert sink.ring_count == 4
        assert sink.evicted == 6
        row = sink.aggregates[("volume", Op.WRITE, None)]
        assert row[0] == 10  # evicted spans still counted
        assert row[1] == pytest.approx(5.0)
        assert row[2] == 1000

    def test_complete_io_equivalent_to_span(self):
        """The device fast path and the span path must aggregate
        identically (same count/seconds/bytes/queue split)."""
        sim = FakeSim()
        tracer = Tracer(sim)
        site = tracer.site("zns", Op.READ, "zns0")
        sim.now = 3.0
        tracer.complete_io(site, start=1.0, mark=2.0, nbytes=512, parent=-1)
        row = tracer.sink.aggregates[("zns", Op.READ, "zns0")]
        assert row == [1, pytest.approx(2.0), 512, pytest.approx(1.0)]

    def test_root_code_round_trips_site_and_id(self):
        tracer = Tracer(FakeSim())
        site = tracer.site("volume", Op.FLUSH)
        code = tracer.root_code(site)
        assert code & ((1 << SITE_BITS) - 1) == site
        sim_id = code >> SITE_BITS
        tracer.sim.now = 1.5
        tracer.record_root(code, start=1.0, nbytes=0)
        record = tracer.sink._ring_record(0)
        assert record["id"] == sim_id
        assert record["parent"] is None
        assert record["layer"] == "volume"
        assert record["end"] == pytest.approx(1.5)

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            TraceSink(capacity=0)


class TestTracedRun:
    def test_spans_cover_all_layers(self):
        _sim, volume, _devices = _traced_volume()
        sink = volume.tracer.sink
        layers = {layer for (layer, _n, _d) in sink.aggregates}
        assert {"volume", "stripe", "parity", "md", "zns"} <= layers

    def test_device_spans_reconcile_exactly(self):
        _sim, volume, _devices = _traced_volume()
        registry = MetricsRegistry.for_volume(volume)
        rows = reconcile(volume.tracer.sink, registry)
        assert rows, "expected one reconcile row per device"
        for row in rows:
            assert row.ok, (row.device, row.delta_fraction)
            # Same clock, same completion rule: the match is exact, the
            # 1% tolerance is headroom, not slack being consumed.
            assert row.span_seconds == pytest.approx(row.registry_seconds,
                                                     rel=1e-9)

    def test_report_renders_queue_service_split(self):
        _sim, volume, _devices = _traced_volume()
        registry = MetricsRegistry.for_volume(volume)
        report = format_trace_report(volume.tracer.sink, registry)
        assert "queue" in report and "service" in report
        assert "reconciliation" in report
        assert "MISMATCH" not in report

    def test_child_spans_parent_under_roots(self):
        _sim, volume, _devices = _traced_volume()
        sink = volume.tracer.sink
        ids = set()
        parented = 0
        for ordinal in range(sink.evicted, sink.total_recorded):
            record = sink._ring_record(ordinal)
            ids.add(record["id"])
            if record["parent"] is not None:
                parented += 1
                assert record["layer"] != "volume"
        assert parented > 0
        for ordinal in range(sink.evicted, sink.total_recorded):
            parent = sink._ring_record(ordinal)["parent"]
            if parent is not None:
                assert parent in ids

    def test_jsonl_dump_schema(self, tmp_path):
        _sim, volume, _devices = _traced_volume()
        path = tmp_path / "spans.jsonl"
        written = dump_spans(volume, str(path))
        lines = path.read_text().splitlines()
        assert written == len(lines) > 0
        for line in lines:
            record = json.loads(line)
            assert set(record) == {"id", "parent", "layer", "name", "device",
                                   "start", "mark", "end", "bytes"}
            # Enum names are normalized to their string values.
            assert isinstance(record["name"], str)
            assert not record["name"].startswith("Op.")
            assert record["end"] >= record["start"]
            if record["layer"] in DEVICE_LAYERS:
                assert record["device"] is not None

    def test_spans_summary_counts(self):
        _sim, volume, _devices = _traced_volume()
        summary = spans_summary(volume)
        assert summary["recorded"] == volume.tracer.sink.total_recorded
        assert summary["evicted"] == 0  # quick run fits in the ring

    def test_run_trace_quick_passes(self, tmp_path, capsys):
        out = tmp_path / "spans.jsonl"
        assert run_trace(quick=True, seed=0, out=str(out)) == 0
        assert out.exists()
        captured = capsys.readouterr().out
        assert "trace PASSED" in captured


class TestMetricsRegistry:
    def test_for_volume_names(self):
        _sim, volume, devices = _traced_volume()
        registry = MetricsRegistry.for_volume(volume)
        names = set(registry.names())
        assert "volume" in names and "health" in names
        for dev in devices:
            assert f"device.{dev.name}" in names

    def test_snapshot_and_flat_agree(self):
        _sim, volume, _devices = _traced_volume()
        registry = MetricsRegistry.for_volume(volume)
        snap = registry.snapshot()
        flat = registry.flat()
        for name, counters in snap.items():
            for key, value in counters.items():
                if isinstance(value, (int, float)):
                    assert flat[f"{name}.{key}"] == value

    def test_to_json_parses(self):
        _sim, volume, _devices = _traced_volume()
        registry = MetricsRegistry.for_volume(volume)
        decoded = json.loads(registry.to_json())
        assert decoded.keys() == registry.snapshot().keys()
