"""Hook chaining across composed fault layers (soak-campaign regressions).

Arming a second fault layer on the same devices used to *clobber* the
first layer's device hook, and disarming used to null the slot outright,
silently removing whichever layer was still armed.  The soak campaign
(``repro.harness.soaktest``) arms error injection, fail-slow delays,
crash triggers, and completion-boundary snapshots on one array at once,
so the chain/restore discipline is load-bearing there.
"""

import pytest

from repro.block import Bio
from repro.errors import PowerLossError, TransientCommandError
from repro.faults import (
    CompletionBoundaries,
    CrashPoint,
    FaultPlan,
    SlowDeviceSpec,
    SlowPlan,
)
from repro.units import KiB, MiB
from repro.zns import ZNSDevice

from conftest import TEST_STRIPE_UNIT, make_volume, pattern

SU = TEST_STRIPE_UNIT
STRIPE = 4 * SU


class TestCompletionBoundariesChaining:
    def test_existing_hook_keeps_running(self, zns):
        seen = []
        zns.completion_hook = lambda dev, bio: seen.append(bio.op)
        cb = CompletionBoundaries([zns], snapshot_at={2})
        for i in range(3):
            zns.execute(Bio.write(i * 8 * KiB, pattern(8 * KiB, seed=i)))
        assert cb.count == 3
        assert len(seen) == 3
        assert set(cb.snapshots) == {2}

    def test_disarm_restores_previous_hook(self, zns):
        seen = []

        def base(dev, bio):
            seen.append(1)

        zns.completion_hook = base
        cb = CompletionBoundaries([zns])
        cb.disarm()
        assert zns.completion_hook is base
        zns.execute(Bio.write(0, pattern(8 * KiB, seed=1)))
        assert seen == [1]
        assert cb.count == 0

    def test_disarm_under_later_layer_goes_quiet_not_removed(self, zns):
        cb = CompletionBoundaries([zns])
        prev = zns.completion_hook
        later = []

        def top(dev, bio):
            prev(dev, bio)
            later.append(1)

        zns.completion_hook = top
        zns.execute(Bio.write(0, pattern(8 * KiB, seed=2)))
        assert cb.count == 1 and later == [1]
        cb.disarm()
        zns.execute(Bio.write(8 * KiB, pattern(8 * KiB, seed=3)))
        # The wrapper could not be unlinked (a later layer closes over
        # it); it must stay in place as a pass-through.
        assert zns.completion_hook is top
        assert later == [1, 1]
        assert cb.count == 1


class TestCrashPointChaining:
    def test_rejected_command_is_not_a_crash_candidate(self, sim):
        dev = ZNSDevice(sim, num_zones=4, zone_capacity=1 * MiB)
        plan = FaultPlan(seed=3, num_data_zones=4, transient_rate=1.0)
        plan.arm([dev])
        cp = CrashPoint([dev], after=1)
        with pytest.raises(TransientCommandError):
            dev.execute(Bio.write(0, pattern(8 * KiB, seed=4)))
        assert plan.counts.transient == 1
        # The chained plan rejected the command before it applied, so it
        # must not trip the crash trigger either.
        assert not cp.fired
        assert dev.powered
        cp.disarm()
        plan.disarm()
        assert dev.pre_apply_hook is None

    def test_fires_through_chained_plan(self, sim):
        dev = ZNSDevice(sim, num_zones=4, zone_capacity=1 * MiB)
        plan = FaultPlan(seed=3, num_data_zones=4, transient_rate=0.0)
        plan.arm([dev])
        cp = CrashPoint([dev], after=1)
        with pytest.raises(PowerLossError):
            dev.execute(Bio.write(0, pattern(8 * KiB, seed=5)))
        assert cp.fired
        assert not dev.powered


class TestThreeLayerMatrix:
    def test_layers_compose_and_unwind(self, sim):
        volume, devices = make_volume(sim)
        plan = FaultPlan(seed=1, num_data_zones=volume.num_data_zones,
                         stripe_unit_bytes=SU, latent_rate=1.0, max_latent=2)
        plan.arm(devices)
        slow = SlowPlan(seed=2, specs=[
            SlowDeviceSpec(device_index=1, degrade_factor=4.0)])
        slow.arm(devices)
        cb = CompletionBoundaries(devices, snapshot_at={5})
        data = pattern(2 * STRIPE, seed=9)
        volume.execute(Bio.write(0, data))
        volume.execute(Bio.flush())
        # Every layer observed the same workload.
        assert cb.count > 5 and 5 in cb.snapshots
        assert plan.counts.latent >= 1
        assert slow.counts.slowed_commands.get(1, 0) >= 1
        # LIFO unwind restores every slot to its pre-arm state.
        cb.disarm()
        slow.disarm()
        plan.disarm()
        for dev in devices:
            assert dev.completion_hook is None
            assert dev.pre_apply_hook is None
            assert dev.service_delay_hook is None
        # The array still serves (and heals) the injected stripes.
        assert volume.execute(Bio.read(0, len(data))).result == data
