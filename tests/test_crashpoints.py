"""Unit tests for the crash-state enumeration primitives.

Exercises the ``ZNSDevice`` survivor-state API (legal post-crash write
pointers, deterministic ``power_fail_to``, crash snapshots) and the
array-level helpers in ``repro.faults.crashpoints``.
"""

import random

import pytest

from repro.block import Bio, BioFlags
from repro.errors import InvalidAddressError
from repro.faults import (
    CompletionBoundaries,
    apply_survivor_assignment,
    array_crash_snapshot,
    array_restore_crash_snapshot,
    array_state_fingerprint,
    enumerate_survivor_assignments,
    survivor_product_size,
)
from repro.units import KiB, MiB, SECTOR_SIZE
from repro.zns import ZNSDevice, ZoneState

from conftest import make_zns_devices, pattern


class TestSurvivorStates:
    def test_clean_zone_single_state(self, zns):
        assert zns.zone_survivor_states(0) == [0]
        zns.execute(Bio.write(0, pattern(8 * KiB, seed=1), BioFlags.FUA))
        assert zns.zone_survivor_states(0) == [8 * KiB]

    def test_cached_data_steps_at_awu(self, zns):
        zns.execute(Bio.write(0, pattern(4 * KiB, seed=2), BioFlags.FUA))
        zns.execute(Bio.write(4 * KiB, pattern(12 * KiB, seed=3)))
        # durable 4K, cached 12K = 3 atomic units -> 4 legal survivors
        assert zns.zone_survivor_states(0) == [
            4 * KiB, 8 * KiB, 12 * KiB, 16 * KiB]

    def test_sub_unit_tail_included(self, sim):
        dev = ZNSDevice(sim, num_zones=4, zone_capacity=1 * MiB,
                        atomic_write_bytes=8 * KiB)
        dev.execute(Bio.write(0, pattern(20 * KiB, seed=4)))
        # 2 whole 8 KiB units plus a 4 KiB tail
        assert dev.zone_survivor_states(0) == [
            0, 8 * KiB, 16 * KiB, 20 * KiB]

    def test_state_space_covers_only_dirty_zones(self, zns):
        zns.execute(Bio.write(0, pattern(4 * KiB, seed=5), BioFlags.FUA))
        zns.execute(Bio.write(MiB, pattern(8 * KiB, seed=6)))
        space = zns.survivor_state_space()
        assert set(space) == {1}
        assert space[1] == [MiB, MiB + 4 * KiB, MiB + 8 * KiB]

    def test_flush_collapses_state_space(self, zns):
        zns.execute(Bio.write(0, pattern(64 * KiB, seed=7)))
        assert len(zns.zone_survivor_states(0)) == 17
        zns.execute(Bio.flush())
        assert zns.survivor_state_space() == {}


class TestPowerFailTo:
    def test_illegal_survivor_rejected(self, zns):
        zns.execute(Bio.write(0, pattern(8 * KiB, seed=8)))
        with pytest.raises(InvalidAddressError):
            zns.power_fail_to({0: 3 * KiB})   # not unit-aligned
        with pytest.raises(InvalidAddressError):
            zns.power_fail_to({0: 12 * KiB})  # beyond the write pointer

    def test_chosen_survivor_applied_exactly(self, zns):
        zns.execute(Bio.write(0, pattern(16 * KiB, seed=9)))
        zns.power_fail_to({0: 8 * KiB})
        zns.power_on()
        zone = zns.zone_info(0)
        assert zone.write_pointer == 8 * KiB
        assert zns.zones[0].durable_pointer == 8 * KiB
        assert zns.execute(Bio.read(0, 8 * KiB)).result == \
            pattern(16 * KiB, seed=9)[:8 * KiB]

    def test_unnamed_zones_keep_durable_prefix_only(self, zns):
        zns.execute(Bio.write(0, pattern(8 * KiB, seed=10), BioFlags.FUA))
        zns.execute(Bio.write(8 * KiB, pattern(8 * KiB, seed=11)))
        zns.execute(Bio.write(MiB, pattern(4 * KiB, seed=12)))
        zns.power_fail_to({0: 16 * KiB})   # zone 1 unnamed
        zns.power_on()
        assert zns.zone_info(0).write_pointer == 16 * KiB
        assert zns.zone_info(1).write_pointer == MiB
        assert zns.zone_info(1).state is ZoneState.EMPTY


class TestCrashSnapshot:
    def test_roundtrip_restores_everything(self, zns):
        data = pattern(24 * KiB, seed=13)
        zns.execute(Bio.write(0, data[:8 * KiB], BioFlags.FUA))
        zns.execute(Bio.write(8 * KiB, data[8 * KiB:]))
        snapshot = zns.crash_snapshot()

        zns.execute(Bio.write(24 * KiB, pattern(8 * KiB, seed=14)))
        zns.execute(Bio.flush())
        zns.execute(Bio.zone_reset(MiB))
        zns.restore_crash_snapshot(snapshot)

        zone = zns.zone_info(0)
        assert zone.write_pointer == 24 * KiB
        assert zns.zones[0].durable_pointer == 8 * KiB
        assert 0 in zns._dirty_zones
        assert zns.execute(Bio.read(0, 24 * KiB)).result == data

    def test_restore_then_power_fail_is_replayable(self, zns):
        """The same snapshot must admit many different crash outcomes."""
        zns.execute(Bio.write(0, pattern(12 * KiB, seed=15)))
        snapshot = zns.crash_snapshot()
        outcomes = set()
        for survivor in zns.zone_survivor_states(0):
            zns.restore_crash_snapshot(snapshot)
            zns.power_fail_to({0: survivor})
            zns.power_on()
            outcomes.add(zns.zone_info(0).write_pointer)
        assert outcomes == {0, 4 * KiB, 8 * KiB, 12 * KiB}

    def test_array_snapshot_roundtrip(self, sim):
        devices = make_zns_devices(sim, n=3, num_zones=4)
        for i, dev in enumerate(devices):
            dev.execute(Bio.write(0, pattern(4 * KiB, seed=16 + i)))
        snaps = array_crash_snapshot(devices)
        fingerprint = array_state_fingerprint(devices)
        devices[1].execute(Bio.write(4 * KiB, pattern(4 * KiB, seed=30)))
        assert array_state_fingerprint(devices) != fingerprint
        array_restore_crash_snapshot(devices, snaps)
        assert array_state_fingerprint(devices) == fingerprint


class TestCompletionBoundaries:
    def test_counts_completions_and_snapshots(self, sim):
        devices = make_zns_devices(sim, n=2, num_zones=4)
        ticks = []
        tracker = CompletionBoundaries(devices, snapshot_at=(2,),
                                       aux_state=lambda: len(ticks))
        devices[0].execute(Bio.write(0, pattern(4 * KiB, seed=17)))
        ticks.append(1)
        devices[1].execute(Bio.write(0, pattern(4 * KiB, seed=18)))
        devices[0].execute(Bio.flush())
        assert tracker.count == 3
        assert set(tracker.snapshots) == {2}
        snaps, aux = tracker.snapshots[2]
        assert len(snaps) == 2
        assert aux == 1   # frozen at the second completion

    def test_disarm_stops_counting(self, sim):
        devices = make_zns_devices(sim, n=2, num_zones=4)
        tracker = CompletionBoundaries(devices)
        devices[0].execute(Bio.write(0, pattern(4 * KiB, seed=19)))
        tracker.disarm()
        devices[0].execute(Bio.write(4 * KiB, pattern(4 * KiB, seed=20)))
        assert tracker.count == 1
        assert all(dev.completion_hook is None for dev in devices)

    def test_crash_after_cuts_power_on_all_devices(self, sim):
        devices = make_zns_devices(sim, n=2, num_zones=4)
        tracker = CompletionBoundaries(devices, crash_after=1)
        devices[0].execute(Bio.write(0, pattern(4 * KiB, seed=21)))
        assert tracker.fired
        assert all(not dev.powered for dev in devices)


class TestAssignmentEnumeration:
    def _spaces(self):
        # two devices: one dirty zone each with 3 and 2 choices
        return [{0: [0, 4 * KiB, 8 * KiB]}, {1: [MiB, MiB + 4 * KiB]}]

    def test_product_size(self):
        assert survivor_product_size(self._spaces()) == 6
        assert survivor_product_size([{}, {}]) == 1

    def test_corners_always_included(self):
        assignments, product = enumerate_survivor_assignments(
            self._spaces(), budget=2, rng=random.Random(0))
        assert product == 6
        assert assignments[0] == [{0: 0}, {1: MiB}]
        assert assignments[1] == [{0: 8 * KiB}, {1: MiB + 4 * KiB}]

    def test_budget_bounds_and_dedup(self):
        assignments, product = enumerate_survivor_assignments(
            self._spaces(), budget=100, rng=random.Random(0))
        assert len(assignments) <= product
        keys = {tuple(tuple(sorted(m.items())) for m in a)
                for a in assignments}
        assert len(keys) == len(assignments)   # no duplicates

    def test_apply_assignment_restores_power(self, sim):
        devices = make_zns_devices(sim, n=2, num_zones=4)
        devices[0].execute(Bio.write(0, pattern(8 * KiB, seed=22)))
        spaces = [dev.survivor_state_space() for dev in devices]
        assignments, _ = enumerate_survivor_assignments(
            spaces, budget=4, rng=random.Random(1))
        apply_survivor_assignment(devices, assignments[0])
        assert all(dev.powered for dev in devices)
        assert devices[0].zone_info(0).write_pointer == 0


class TestFingerprint:
    def test_distinct_states_distinct_hashes(self, sim):
        devices = make_zns_devices(sim, n=2, num_zones=4)
        devices[0].execute(Bio.write(0, pattern(8 * KiB, seed=23)))
        snaps = array_crash_snapshot(devices)
        seen = set()
        for survivor in devices[0].zone_survivor_states(0):
            array_restore_crash_snapshot(devices, snaps)
            apply_survivor_assignment(devices, [{0: survivor}, {}])
            seen.add(array_state_fingerprint(devices))
        assert len(seen) == 3

    def test_content_sensitive(self, sim):
        devices = make_zns_devices(sim, n=1, num_zones=4)
        devices[0].execute(Bio.write(0, pattern(SECTOR_SIZE, seed=24)))
        one = array_state_fingerprint(devices)
        devices[0].execute(Bio.zone_reset(0))
        devices[0].execute(Bio.write(0, pattern(SECTOR_SIZE, seed=25)))
        assert array_state_fingerprint(devices) != one
