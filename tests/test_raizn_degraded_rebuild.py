"""Fault-tolerance tests: degraded operation and device rebuild (§4.2)."""

import random

import pytest

from repro.block import Bio, BioFlags
from repro.errors import DataLossError, RaiznError
from repro.faults import fail_and_rebuild, fresh_replacement, power_cycle
from repro.raizn import mount, rebuild
from repro.sim import Simulator
from repro.units import KiB
from repro.zns import ZoneState

from conftest import TEST_STRIPE_UNIT, make_volume, pattern

SU = TEST_STRIPE_UNIT
STRIPE = 4 * SU


class TestDegradedReads:
    @pytest.mark.parametrize("failed_index", [0, 1, 2, 3, 4])
    def test_degraded_read_any_device(self, sim, failed_index):
        volume, _devices = make_volume(sim)
        data = pattern(4 * STRIPE, seed=failed_index)
        volume.execute(Bio.write(0, data))
        volume.fail_device(failed_index)
        assert volume.execute(Bio.read(0, len(data))).result == data

    def test_degraded_read_partial_tail_stripe(self, sim):
        volume, _devices = make_volume(sim)
        data = pattern(STRIPE + 20 * KiB, seed=7)
        volume.execute(Bio.write(0, data))
        volume.fail_device(2)
        assert volume.execute(Bio.read(0, len(data))).result == data

    def test_degraded_small_reads(self, sim):
        volume, _devices = make_volume(sim)
        data = pattern(2 * STRIPE, seed=8)
        volume.execute(Bio.write(0, data))
        volume.fail_device(1)
        for offset in range(0, 2 * STRIPE, 16 * KiB):
            got = volume.execute(Bio.read(offset, 16 * KiB)).result
            assert got == data[offset:offset + 16 * KiB]


class TestDegradedWrites:
    def test_writes_continue_degraded(self, sim):
        volume, _devices = make_volume(sim)
        volume.fail_device(3)
        data = pattern(3 * STRIPE, seed=9)
        volume.execute(Bio.write(0, data))
        assert volume.execute(Bio.read(0, len(data))).result == data

    def test_degraded_write_then_another_failure_loses_data(self, sim):
        volume, _devices = make_volume(sim)
        volume.fail_device(0)
        volume.execute(Bio.write(0, pattern(STRIPE, seed=10)))
        with pytest.raises(DataLossError):
            volume.fail_device(1)

    def test_degraded_zone_reset(self, sim):
        volume, _devices = make_volume(sim)
        volume.execute(Bio.write(0, pattern(STRIPE, seed=11)))
        volume.fail_device(2)
        volume.execute(Bio.zone_reset(0))
        data = pattern(STRIPE, seed=12)
        volume.execute(Bio.write(0, data))
        assert volume.execute(Bio.read(0, STRIPE)).result == data


class TestRebuild:
    def test_rebuild_restores_redundancy(self, sim):
        volume, devices = make_volume(sim)
        data = pattern(5 * STRIPE + 12 * KiB, seed=13)
        volume.execute(Bio.write(0, data))
        report = fail_and_rebuild(sim, volume, 1)
        assert report.bytes_written > 0
        assert volume.execute(Bio.read(0, len(data))).result == data
        # Redundancy is restored: a different device may now fail.
        volume.fail_device(4)
        assert volume.execute(Bio.read(0, len(data))).result == data

    def test_rebuild_skips_empty_zones(self, sim):
        volume, devices = make_volume(sim)
        volume.execute(Bio.write(0, pattern(STRIPE, seed=14)))
        report = fail_and_rebuild(sim, volume, 0)
        # Only zone 0 contains data; rebuild writes ~1 SU for it.
        assert report.bytes_written <= 2 * SU

    def test_rebuild_only_to_write_pointer(self, sim):
        """§4.2: RAIZN rebuilds only the LBA ranges holding user data."""
        volume, devices = make_volume(sim)
        half = volume.zone_capacity // 2
        volume.execute(Bio.write(0, pattern(half, seed=15)))
        report = fail_and_rebuild(sim, volume, 2)
        assert report.bytes_written <= half // 4 + SU

    def test_rebuild_full_volume_writes_full_share(self, sim):
        volume, devices = make_volume(sim)
        data = pattern(volume.zone_capacity, seed=16)
        volume.execute(Bio.write(0, data))
        report = fail_and_rebuild(sim, volume, 2)
        # One physical zone of data plus parity shares.
        assert report.bytes_written == volume.zone_capacity // 4

    def test_rebuild_ttr_scales_with_data(self, sim):
        volume, devices = make_volume(sim)
        volume.execute(Bio.write(0, pattern(volume.zone_capacity, seed=17)))
        small = fail_and_rebuild(sim, volume, 0)
        sim2 = Simulator()
        volume2, _ = make_volume(sim2)
        volume2.execute(Bio.write(0, pattern(volume2.zone_capacity, seed=18)))
        volume2.execute(Bio.write(volume2.zone_capacity,
                                  pattern(volume2.zone_capacity, seed=19)))
        volume2.execute(Bio.write(2 * volume2.zone_capacity,
                                  pattern(volume2.zone_capacity, seed=20)))
        large = fail_and_rebuild(sim2, volume2, 0)
        assert large.bytes_written > small.bytes_written
        assert large.duration > small.duration

    def test_rebuild_nonfailed_device_rejected(self, sim):
        volume, devices = make_volume(sim)
        replacement = fresh_replacement(sim, devices[0], "r0")
        with pytest.raises(RaiznError):
            rebuild(sim, volume, 0, replacement)

    def test_rebuild_geometry_mismatch_rejected(self, sim):
        from repro.zns import ZNSDevice
        volume, devices = make_volume(sim)
        volume.fail_device(0)
        wrong = ZNSDevice(sim, name="wrong", num_zones=4,
                          zone_capacity=devices[1].zone_capacity)
        with pytest.raises(RaiznError):
            rebuild(sim, volume, 0, wrong)

    def test_rebuild_parity_device_zone(self, sim):
        """The rebuilt device holds parity for some stripes; those SUs
        must be recomputed, not copied."""
        volume, devices = make_volume(sim)
        data = pattern(volume.zone_capacity, seed=21)
        volume.execute(Bio.write(0, data))
        parity_device = volume.mapper.stripe_layout(0, 0).parity_device
        report = fail_and_rebuild(sim, volume, parity_device)
        assert volume.execute(Bio.read(0, len(data))).result == data
        volume.fail_device((parity_device + 1) % 5)
        assert volume.execute(Bio.read(0, len(data))).result == data

    def test_rebuild_after_degraded_mount(self, sim):
        volume, devices = make_volume(sim)
        data = pattern(3 * STRIPE + 8 * KiB, seed=22)
        volume.execute(Bio.write(0, data))
        volume.execute(Bio.flush())
        power_cycle(devices, random.Random(3))
        presented = list(devices)
        presented[2] = None
        degraded = mount(sim, presented)
        assert degraded.execute(Bio.read(0, len(data))).result == data
        replacement = fresh_replacement(sim, devices[0], "r2")
        rebuild(sim, degraded, 2, replacement)
        assert degraded.execute(Bio.read(0, len(data))).result == data

    def test_rebuild_heals_relocations(self, sim):
        """Relocated stripe units are written at their correct PBAs on
        the fresh device, clearing the relocation map (§5.2 + §4.2)."""
        volume, devices = make_volume(sim)
        volume.execute(Bio.write(0, pattern(6 * STRIPE, seed=23)))
        power_cycle(devices, random.Random(41))
        remounted = mount(sim, devices)
        wp = remounted.zone_info(0).write_pointer
        more = pattern(2 * STRIPE, seed=24)
        remounted.execute(Bio.write(wp, more))
        if not remounted.relocations.units():
            pytest.skip("this seed produced no relocations")
        device = remounted.relocations.units()[0].device
        fail_and_rebuild(sim, remounted, device)
        assert not remounted.relocations.units_on_device(device)
        got = remounted.execute(Bio.read(wp, len(more))).result
        assert got == more

    def test_writes_during_rebuild_catch_up(self, sim):
        """Writes served degraded while a zone rebuilds are folded in by
        the rebuild's catch-up loop."""
        volume, devices = make_volume(sim)
        volume.execute(Bio.write(0, pattern(2 * STRIPE, seed=25)))
        volume.fail_device(0)
        replacement = fresh_replacement(sim, devices[1], "r0")
        from repro.raizn.rebuild import rebuild_process
        proc = sim.process(rebuild_process(sim, volume, 0, replacement))
        # Interleave new writes while the rebuild runs.
        more = pattern(2 * STRIPE, seed=26)
        volume.submit(Bio.write(2 * STRIPE, more))
        sim.run()
        assert proc.ok
        full = volume.execute(Bio.read(0, 4 * STRIPE)).result
        assert full[2 * STRIPE:] == more
        volume.fail_device(3)
        assert volume.execute(Bio.read(0, 4 * STRIPE)).result == full
