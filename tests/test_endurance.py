"""Finite per-zone erase endurance on the simulated ZNS device (§2.1).

The soak campaign leans on this to develop *organic* wear: repeated GC
and zone resets spend real erase budget, and the end-of-life READ_ONLY
transition then composes with the other fault dimensions.
"""

import pytest

from repro.block import Bio
from repro.errors import DeviceError, ZoneStateError
from repro.faults.devicefail import fresh_replacement
from repro.units import KiB, MiB
from repro.zns import ZNSDevice, ZoneState

from conftest import pattern


def make_dev(sim, limit):
    return ZNSDevice(sim, num_zones=4, zone_capacity=1 * MiB,
                     zone_reset_limit=limit)


def fill_and_reset(dev, zone=0):
    start = zone * dev.zone_size
    dev.execute(Bio.write(start, pattern(8 * KiB, seed=1)))
    dev.execute(Bio.zone_reset(start))


class TestEnduranceAccounting:
    def test_resets_counted_per_zone(self, sim):
        dev = make_dev(sim, limit=None)
        for _ in range(3):
            fill_and_reset(dev)
        assert dev.zone_reset_count(0) == 3
        assert dev.zone_reset_count(1) == 0
        assert dev.worn_zones() == []        # unlimited: never worn

    def test_endurance_report(self, sim):
        dev = make_dev(sim, limit=3)
        fill_and_reset(dev)
        fill_and_reset(dev)
        report = dev.endurance_report()
        assert report["reset_limit"] == 3
        assert report["total_resets"] == 2
        assert report["max_zone_resets"] == 2
        assert report["worn_zones"] == []


class TestEndOfLife:
    def test_last_cycle_succeeds_but_zone_goes_read_only(self, sim):
        dev = make_dev(sim, limit=2)
        fill_and_reset(dev)
        assert dev.zones[0].state is not ZoneState.READ_ONLY
        fill_and_reset(dev)                  # spends the last cycle
        assert dev.zones[0].state is ZoneState.READ_ONLY
        assert dev.worn_zones() == [0]

    def test_worn_zone_rejects_reset_and_write(self, sim):
        dev = make_dev(sim, limit=1)
        fill_and_reset(dev)
        with pytest.raises(ZoneStateError):
            dev.execute(Bio.zone_reset(0))
        with pytest.raises(DeviceError):
            dev.execute(Bio.write(0, pattern(4 * KiB, seed=2)))
        # Other zones keep their full budget.
        fill_and_reset(dev, zone=1)


class TestSnapshots:
    def test_snapshot_roundtrip_carries_reset_counts(self, sim):
        dev = make_dev(sim, limit=3)
        fill_and_reset(dev)
        snap = dev.crash_snapshot()
        fill_and_reset(dev)
        assert dev.zone_reset_count(0) == 2
        dev.restore_crash_snapshot(snap)
        assert dev.zone_reset_count(0) == 1

    def test_legacy_snapshot_without_counters_restores(self, sim):
        dev = make_dev(sim, limit=3)
        fill_and_reset(dev)
        legacy = dev.crash_snapshot()[:8]    # pre-endurance shape
        dev.restore_crash_snapshot(legacy)
        assert dev.zone_reset_count(0) == 0


def test_fresh_replacement_propagates_limit(sim):
    dev = make_dev(sim, limit=5)
    replacement = fresh_replacement(sim, dev, "fresh", seed=7)
    assert replacement.zone_reset_limit == 5
