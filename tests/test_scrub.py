"""Background scrubber: latent-error discovery and parity verification."""

from repro.block import Bio
from repro.raizn.maintenance import ScrubReport, run_scrub, scrub_process

from conftest import TEST_STRIPE_UNIT, make_volume, pattern

SU = TEST_STRIPE_UNIT
STRIPE = 4 * SU


def written_volume(sim, stripes=4, seed=0):
    volume, devices = make_volume(sim)
    data = pattern(stripes * STRIPE, seed=seed)
    volume.execute(Bio.write(0, data))
    volume.execute(Bio.flush())
    return volume, devices, data


class TestCleanScrub:
    def test_scans_all_complete_stripes_and_fixes_nothing(self, sim):
        volume, _devices, _data = written_volume(sim, stripes=4)
        report = run_scrub(sim, volume)
        assert report.stripes_scanned == 4
        assert report.data_heals == 0
        assert report.parity_mismatches == 0
        assert report.parity_media_errors == 0
        assert report.parity_heals == 0

    def test_partial_tail_stripe_not_scanned(self, sim):
        volume, _devices, _ = written_volume(sim, stripes=2)
        volume.execute(Bio.write(2 * STRIPE, pattern(SU, seed=9)))
        report = run_scrub(sim, volume)
        assert report.stripes_scanned == 2

    def test_report_to_dict_keys(self, sim):
        volume, _devices, _ = written_volume(sim, stripes=1)
        report = run_scrub(sim, volume)
        assert report.to_dict() == {
            "stripes_scanned": 1,
            "data_heals": 0,
            "parity_mismatches": 0,
            "parity_media_errors": 0,
            "parity_heals": 0,
        }


class TestDataHeal:
    def test_scrub_heals_latent_data_error(self, sim):
        volume, devices, data = written_volume(sim, stripes=3)
        layout = volume.mapper.stripe_layout(0, 1)
        devices[layout.data_devices[2]].mark_bad(SU, SU)
        report = run_scrub(sim, volume)
        assert report.data_heals == 1
        assert volume.health.heals == 1
        # The next foreground read no longer touches the bad media.
        before = volume.health.media_errors
        assert volume.execute(Bio.read(0, len(data))).result == data
        assert volume.health.media_errors == before


class TestParityHeal:
    def test_scrub_heals_parity_media_error(self, sim):
        volume, devices, data = written_volume(sim, stripes=2)
        parity_device = volume.mapper.stripe_layout(0, 0).parity_device
        devices[parity_device].mark_bad(0, SU)
        report = run_scrub(sim, volume)
        assert report.parity_media_errors == 1
        assert report.parity_heals == 1
        assert (0, 0) in volume.relocated_parity
        assert volume.health.parity_heals == 1
        # The healed parity copy carries a degraded read.
        failed = volume.mapper.stripe_layout(0, 0).data_devices[0]
        volume.fail_device(failed)
        assert volume.execute(Bio.read(0, len(data))).result == data

    def test_scrub_fixes_corrupted_relocated_parity(self, sim):
        volume, devices, _data = written_volume(sim, stripes=1)
        parity_device = volume.mapper.stripe_layout(0, 0).parity_device
        devices[parity_device].mark_bad(0, SU)
        run_scrub(sim, volume)
        # Tamper with the authoritative relocated copy; the next pass
        # must notice the mismatch and re-establish the true parity.
        volume.relocated_parity[(0, 0)] = bytes(SU)
        report = run_scrub(sim, volume)
        assert report.parity_mismatches == 1
        assert report.parity_heals == 1
        assert bytes(volume.relocated_parity[(0, 0)]) != bytes(SU)


class TestScrubProcess:
    def test_idle_delay_spreads_the_pass_over_time(self, sim):
        volume, _devices, _ = written_volume(sim, stripes=4)
        began = sim.now
        report = ScrubReport()
        sim.run_process(scrub_process(sim, volume, idle_delay=0.01,
                                      report=report))
        assert report.stripes_scanned == 4
        assert sim.now >= began + 4 * 0.01

    def test_scrub_skips_degraded_parity(self, sim):
        volume, _devices, data = written_volume(sim, stripes=2)
        parity_device = volume.mapper.stripe_layout(0, 0).parity_device
        volume.fail_device(parity_device)
        report = run_scrub(sim, volume)
        # Stripe 0's parity lives on the failed device: nothing to
        # verify or heal until a rebuild recreates it.
        assert report.stripes_scanned == 2
        assert volume.execute(Bio.read(0, len(data))).result == data
