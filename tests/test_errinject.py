"""Seeded fault-injection plan: latent/transient/wear hooks (errinject)."""

import pytest

from repro.block import Bio
from repro.faults import FaultPlan
from repro.sim import Simulator
from repro.zns import ZoneState

from conftest import TEST_STRIPE_UNIT, make_volume, pattern

SU = TEST_STRIPE_UNIT
STRIPE = 4 * SU


def armed_volume(sim, **plan_kwargs):
    """A fresh volume with a FaultPlan armed over its devices."""
    volume, devices = make_volume(sim)
    plan = FaultPlan(num_data_zones=volume.num_data_zones,
                     stripe_unit_bytes=SU, **plan_kwargs)
    plan.arm(devices)
    return volume, devices, plan


class TestLatent:
    def test_at_most_one_latent_per_stripe(self, sim):
        volume, _devices, plan = armed_volume(sim, latent_rate=1.0)
        for stripe in range(4):
            volume.execute(Bio.write(stripe * STRIPE,
                                     pattern(STRIPE, seed=stripe)))
        # Rate 1.0 injects on the first write completion of every stripe;
        # the (zone, stripe) guard blocks the remaining SU and parity
        # writes of that same stripe.
        assert plan.counts.latent == 4

    def test_global_latent_cap(self, sim):
        volume, _devices, plan = armed_volume(sim, latent_rate=1.0,
                                              max_latent=2)
        for stripe in range(5):
            volume.execute(Bio.write(stripe * STRIPE,
                                     pattern(STRIPE, seed=stripe)))
        assert plan.counts.latent == 2

    def test_per_device_latent_cap(self, sim):
        volume, _devices, plan = armed_volume(sim, latent_rate=1.0,
                                              max_latent_per_device=1)
        for stripe in range(8):
            volume.execute(Bio.write(stripe * STRIPE,
                                     pattern(STRIPE, seed=stripe)))
        assert 1 <= plan.counts.latent <= volume.config.num_devices

    def test_latent_skips_wear_victim_zones(self, sim):
        volume, _devices, plan = armed_volume(
            sim, latent_rate=1.0,
            wear_victims=[(0, 0, False)], wear_after_writes=10 ** 6)
        volume.execute(Bio.write(0, pattern(2 * STRIPE, seed=1)))
        # Zone 0 is reserved for wear-out, so no latent error may land
        # there — a wear loss plus a latent error would exceed parity.
        assert plan.counts.latent == 0

    def test_injected_errors_are_healed_by_reads(self, sim):
        volume, _devices, plan = armed_volume(sim, latent_rate=1.0)
        data = pattern(3 * STRIPE, seed=2)
        volume.execute(Bio.write(0, data))
        assert plan.counts.latent == 3
        assert volume.execute(Bio.read(0, len(data))).result == data
        assert volume.health.heals >= 1


class TestTransient:
    def test_targeted_transients_are_retried_transparently(self, sim):
        volume, _devices, plan = armed_volume(sim)
        data = pattern(STRIPE, seed=3)
        volume.execute(Bio.write(0, data))
        target = volume.mapper.stripe_layout(0, 0).data_devices[0]
        plan.transient_rate = 1.0
        plan.transient_targets = {target}
        assert volume.execute(Bio.read(0, STRIPE)).result == data
        assert plan.counts.transient > 0
        assert volume.health.transient_retries > 0

    def test_empty_target_set_disables_injection(self, sim):
        volume, _devices, plan = armed_volume(sim)
        volume.execute(Bio.write(0, pattern(STRIPE, seed=4)))
        plan.transient_rate = 1.0
        plan.transient_targets = set()
        volume.execute(Bio.read(0, STRIPE))
        assert plan.counts.transient == 0


class TestWear:
    def test_zone_wears_out_after_write_quota(self, sim):
        volume, devices, plan = armed_volume(
            sim, wear_victims=[(0, 0, False)], wear_after_writes=3)
        for stripe in range(5):
            data = pattern(STRIPE, seed=10 + stripe)
            volume.execute(Bio.write(stripe * STRIPE, data))
        assert plan.counts.wear == 1
        assert devices[0].zone_info(0).state is ZoneState.READ_ONLY
        # The datapath absorbed the mid-write transition.
        for stripe in range(5):
            got = volume.execute(Bio.read(stripe * STRIPE, STRIPE)).result
            assert got == pattern(STRIPE, seed=10 + stripe)

    def test_offline_wear_victim(self, sim):
        volume, devices, plan = armed_volume(
            sim, wear_victims=[(2, 0, True)], wear_after_writes=2)
        data = pattern(4 * STRIPE, seed=20)
        volume.execute(Bio.write(0, data))
        assert plan.counts.wear == 1
        assert devices[2].zone_info(0).state is ZoneState.OFFLINE
        assert volume.execute(Bio.read(0, len(data))).result == data


class TestArming:
    def test_double_arm_rejected(self, sim):
        _volume, devices, plan = armed_volume(sim)
        with pytest.raises(RuntimeError):
            plan.arm(devices)

    def test_disarm_restores_hooks_and_stops_injection(self, sim):
        volume, devices, plan = armed_volume(sim, latent_rate=1.0)
        saved = [(d.pre_apply_hook, d.completion_hook) for d in devices]
        plan.disarm()
        for device, (pre, done) in zip(devices, saved):
            assert device.pre_apply_hook is not pre
            assert device.completion_hook is not done
        volume.execute(Bio.write(0, pattern(STRIPE, seed=5)))
        assert plan.counts.latent == 0

    def test_arm_chains_existing_hooks(self, sim):
        volume, devices, _plan = armed_volume(sim, latent_rate=1.0)
        calls = []
        wrapped = devices[0].pre_apply_hook
        assert wrapped is not None  # the plan's own hook is installed

        def outer(dev, bio):
            calls.append(bio.op)
            wrapped(dev, bio)

        devices[0].pre_apply_hook = outer
        # A second plan must keep calling the wrapper it found installed.
        second = FaultPlan(seed=9, num_data_zones=volume.num_data_zones,
                           stripe_unit_bytes=SU)
        second.arm(devices)
        volume.execute(Bio.write(0, pattern(STRIPE, seed=6)))
        assert calls  # the chain still reaches the inner wrapper
        second.disarm()
        assert devices[0].pre_apply_hook is outer

    def test_determinism_across_runs(self):
        def campaign():
            sim = Simulator()
            volume, _devices, plan = armed_volume(
                sim, latent_rate=0.5, transient_rate=0.05,
                wear_victims=[(1, 1, False)], wear_after_writes=4)
            for stripe in range(6):
                volume.execute(Bio.write(stripe * STRIPE,
                                         pattern(STRIPE, seed=stripe)))
            volume.execute(Bio.read(0, 6 * STRIPE))
            return plan.counts.to_dict(), volume.health.to_dict()

        assert campaign() == campaign()
