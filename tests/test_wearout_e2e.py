"""End-of-life zone wear-out (§2.1) absorbed by the volume datapath."""

from repro.block import Bio
from repro.faults import FaultPlan, wear_out_zone
from repro.zns import ZoneState

from conftest import TEST_STRIPE_UNIT, make_volume, pattern

SU = TEST_STRIPE_UNIT
STRIPE = 4 * SU


class TestWornZoneWrites:
    def test_writes_redirect_around_read_only_zone(self, sim):
        volume, devices = make_volume(sim)
        first = pattern(2 * STRIPE, seed=1)
        volume.execute(Bio.write(0, first))
        wear_out_zone(devices[1], 0, offline=False)
        more = pattern(4 * STRIPE, seed=2)
        volume.execute(Bio.write(2 * STRIPE, more))
        assert volume.health.wear_errors >= 1
        assert volume.execute(Bio.read(0, 2 * STRIPE)).result == first
        assert volume.execute(Bio.read(2 * STRIPE, len(more))).result == more

    def test_writes_redirect_around_offline_zone(self, sim):
        volume, devices = make_volume(sim)
        first = pattern(STRIPE, seed=3)
        volume.execute(Bio.write(0, first))
        wear_out_zone(devices[3], 0, offline=True)
        more = pattern(3 * STRIPE, seed=4)
        volume.execute(Bio.write(STRIPE, more))
        # OFFLINE loses the already-written bytes too; parity covers them.
        assert volume.execute(Bio.read(0, STRIPE)).result == first
        assert volume.execute(Bio.read(STRIPE, len(more))).result == more


class TestWornZoneReads:
    def test_offline_zone_reads_reconstruct(self, sim):
        volume, devices = make_volume(sim)
        data = pattern(4 * STRIPE, seed=5)
        volume.execute(Bio.write(0, data))
        volume.execute(Bio.flush())
        wear_out_zone(devices[2], 0, offline=True)
        assert volume.execute(Bio.read(0, len(data))).result == data

    def test_read_only_zone_still_serves_reads(self, sim):
        volume, devices = make_volume(sim)
        data = pattern(4 * STRIPE, seed=6)
        volume.execute(Bio.write(0, data))
        wear_out_zone(devices[2], 0, offline=False)
        before = volume.health.heals
        assert volume.execute(Bio.read(0, len(data))).result == data
        # READ_ONLY media is intact: no reconstruction was needed.
        assert volume.health.heals == before


class TestWornZoneReset:
    def test_logical_reset_survives_worn_member(self, sim):
        volume, devices = make_volume(sim)
        volume.execute(Bio.write(0, pattern(4 * STRIPE, seed=7)))
        wear_out_zone(devices[0], 0, offline=False)
        volume.execute(Bio.zone_reset(0))
        fresh = pattern(3 * STRIPE, seed=8)
        volume.execute(Bio.write(0, fresh))
        assert volume.execute(Bio.read(0, len(fresh))).result == fresh
        assert devices[0].zone_info(0).state is ZoneState.READ_ONLY


class TestFaultPlanWearEndToEnd:
    def test_wear_mid_workload_keeps_data_intact(self, sim):
        volume, devices = make_volume(sim)
        plan = FaultPlan(num_data_zones=volume.num_data_zones,
                         stripe_unit_bytes=SU,
                         wear_victims=[(1, 0, False), (4, 0, True)],
                         wear_after_writes=3)
        plan.arm(devices)
        chunks = [pattern(STRIPE, seed=10 + i) for i in range(8)]
        for i, chunk in enumerate(chunks):
            volume.execute(Bio.write(i * STRIPE, chunk))
        volume.execute(Bio.flush())
        plan.disarm()
        assert plan.counts.wear == 2
        assert devices[1].zone_info(0).state is ZoneState.READ_ONLY
        assert devices[4].zone_info(0).state is ZoneState.OFFLINE
        assert volume.health.wear_errors >= 2
        for i, chunk in enumerate(chunks):
            assert volume.execute(Bio.read(i * STRIPE, STRIPE)).result \
                == chunk
