"""Rebuild interacting with the self-healing machinery (§4.2 + §5.2)."""

from repro.block import Bio
from repro.faults import FaultPlan, fresh_replacement
from repro.raizn import RaiznConfig, RaiznVolume, rebuild

from conftest import TEST_STRIPE_UNIT, make_volume, make_zns_devices, pattern

SU = TEST_STRIPE_UNIT
STRIPE = 4 * SU


def make_tuned_volume(sim, **config_kwargs):
    devices = make_zns_devices(sim)
    config = RaiznConfig(num_data=len(devices) - 1,
                         stripe_unit_bytes=SU, **config_kwargs)
    return RaiznVolume.create(sim, devices, config), devices


class TestEvictThenRebuild:
    def test_threshold_evicted_device_rebuilds_cleanly(self, sim):
        volume, devices = make_tuned_volume(sim, device_error_threshold=2)
        data = pattern(6 * STRIPE, seed=1)
        volume.execute(Bio.write(0, data))
        volume.execute(Bio.flush())

        victim = volume.mapper.stripe_layout(0, 0).data_devices[0]
        stripes = [s for s in range(6) if victim in
                   volume.mapper.stripe_layout(0, s).data_devices][:2]
        for stripe in stripes:
            devices[victim].mark_bad(stripe * SU, SU)
        # Reading through both bad stripes heals twice and crosses the
        # error threshold, evicting the device into degraded mode.
        for stripe in range(6):
            got = volume.execute(Bio.read(stripe * STRIPE, STRIPE)).result
            assert got == data[stripe * STRIPE:(stripe + 1) * STRIPE]
        assert volume.failed[victim]
        assert volume.health.evictions == 1

        replacement = fresh_replacement(sim, devices[(victim + 1) % 5],
                                        name=f"r{victim}")
        report = rebuild(sim, volume, victim, replacement)
        assert report.bytes_written > 0
        assert volume.execute(Bio.read(0, len(data))).result == data
        # Redundancy is back: a different device may now drop out.
        volume.fail_device((victim + 2) % 5)
        assert volume.execute(Bio.read(0, len(data))).result == data


class TestRebuildUnderTransientFire:
    def test_rebuild_completes_through_transient_errors(self, sim):
        volume, devices = make_tuned_volume(sim, max_transient_retries=5)
        data = pattern(8 * STRIPE, seed=2)
        volume.execute(Bio.write(0, data))
        volume.execute(Bio.flush())
        volume.fail_device(0)

        plan = FaultPlan(seed=7, num_data_zones=volume.num_data_zones,
                         stripe_unit_bytes=SU, transient_rate=0.1)
        plan.arm(devices)
        replacement = fresh_replacement(sim, devices[1], "r0")
        report = rebuild(sim, volume, 0, replacement)
        plan.disarm()

        assert plan.counts.transient > 0
        assert volume.health.transient_retries > 0
        assert report.bytes_written > 0
        assert volume.execute(Bio.read(0, len(data))).result == data
        volume.fail_device(2)
        assert volume.execute(Bio.read(0, len(data))).result == data


class TestHealAfterRebuild:
    def test_latent_error_on_former_survivor_heals(self, sim):
        volume, devices = make_volume(sim)
        data = pattern(4 * STRIPE, seed=3)
        volume.execute(Bio.write(0, data))
        volume.execute(Bio.flush())
        volume.fail_device(0)
        replacement = fresh_replacement(sim, devices[1], "r0")
        rebuild(sim, volume, 0, replacement)

        survivor = volume.mapper.stripe_layout(0, 0).data_devices[-1]
        target = volume.devices[survivor]
        target.mark_bad(0, SU)
        # Full redundancy is restored, so the freshly rebuilt device
        # participates in reconstructing the survivor's bad unit.
        assert volume.execute(Bio.read(0, len(data))).result == data
        assert volume.health.heals >= 1
