"""Unit tests for the discrete-event simulation engine."""

import pytest

from repro.errors import SimulationError
from repro.sim import Lock, Queue, Resource, Simulator


class TestEventBasics:
    def test_event_starts_untriggered(self, sim):
        event = sim.event()
        assert not event.triggered

    def test_succeed_delivers_value(self, sim):
        event = sim.event()
        event.succeed(42)
        assert event.triggered and event.ok and event.value == 42

    def test_double_trigger_raises(self, sim):
        event = sim.event()
        event.succeed()
        with pytest.raises(SimulationError):
            event.succeed()

    def test_fail_requires_exception(self, sim):
        event = sim.event()
        with pytest.raises(TypeError):
            event.fail("not an exception")

    def test_callback_after_trigger_still_runs(self, sim):
        event = sim.event()
        event.succeed(7)
        sim.run()
        seen = []
        event.add_callback(lambda e: seen.append(e.value))
        sim.run()
        assert seen == [7]


class TestTimeout:
    def test_timeout_advances_clock(self, sim):
        sim.timeout(2.5)
        sim.run()
        assert sim.now == 2.5

    def test_negative_timeout_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.timeout(-1.0)

    def test_timeouts_fire_in_order(self, sim):
        order = []
        sim.timeout(2.0).add_callback(lambda e: order.append("b"))
        sim.timeout(1.0).add_callback(lambda e: order.append("a"))
        sim.run()
        assert order == ["a", "b"]

    def test_equal_times_fifo(self, sim):
        order = []
        for tag in "abc":
            sim.timeout(1.0, tag).add_callback(
                lambda e: order.append(e.value))
        sim.run()
        assert order == ["a", "b", "c"]


class TestProcess:
    def test_process_returns_value(self, sim):
        def worker():
            yield sim.timeout(1.0)
            return "done"
        assert sim.run_process(worker()) == "done"
        assert sim.now == 1.0

    def test_process_receives_event_value(self, sim):
        def worker():
            value = yield sim.timeout(0.5, "payload")
            return value
        assert sim.run_process(worker()) == "payload"

    def test_nested_processes(self, sim):
        def inner():
            yield sim.timeout(1.0)
            return 10
        def outer():
            value = yield sim.process(inner())
            return value + 1
        assert sim.run_process(outer()) == 11

    def test_failed_event_raises_inside_process(self, sim):
        event = sim.event()
        def worker():
            with pytest.raises(ValueError):
                yield event
            return "caught"
        proc = sim.process(worker())
        event.fail(ValueError("boom"))
        sim.run()
        assert proc.value == "caught"

    def test_unhandled_process_failure_surfaces(self, sim):
        def worker():
            yield sim.timeout(0.1)
            raise RuntimeError("unnoticed")
        sim.process(worker())
        with pytest.raises(RuntimeError, match="unnoticed"):
            sim.run()

    def test_yielding_non_event_fails_process(self, sim):
        def worker():
            yield 42
        with pytest.raises(SimulationError):
            sim.run_process(worker())


class TestCombinators:
    def test_all_of_collects_values(self, sim):
        events = [sim.timeout(t, t) for t in (3.0, 1.0, 2.0)]
        def waiter():
            values = yield sim.all_of(events)
            return values
        assert sim.run_process(waiter()) == [3.0, 1.0, 2.0]
        assert sim.now == 3.0

    def test_all_of_empty_succeeds_immediately(self, sim):
        def waiter():
            values = yield sim.all_of([])
            return values
        assert sim.run_process(waiter()) == []

    def test_all_of_fails_fast(self, sim):
        good = sim.timeout(5.0)
        bad = sim.event()
        def waiter():
            try:
                yield sim.all_of([good, bad])
            except ValueError:
                return sim.now
        proc = sim.process(waiter())
        sim.schedule(1.0, bad.fail, ValueError("x"))
        sim.run()
        assert proc.value == 1.0

    def test_any_of_returns_first(self, sim):
        def waiter():
            value = yield sim.any_of([sim.timeout(2.0, "slow"),
                                      sim.timeout(1.0, "fast")])
            return value
        assert sim.run_process(waiter()) == "fast"

    def test_any_of_empty_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.any_of([])


class TestRunUntil:
    def test_run_until_stops_clock(self, sim):
        sim.timeout(10.0)
        sim.run(until=4.0)
        assert sim.now == 4.0

    def test_run_until_resumable(self, sim):
        fired = []
        sim.timeout(10.0).add_callback(lambda e: fired.append(sim.now))
        sim.run(until=4.0)
        assert fired == []
        sim.run()
        assert fired == [10.0]

    def test_run_until_past_all_events(self, sim):
        sim.timeout(1.0)
        sim.run(until=100.0)
        assert sim.now == 100.0


class TestResource:
    def test_grants_up_to_capacity(self, sim):
        resource = Resource(sim, 2)
        first = resource.request()
        second = resource.request()
        third = resource.request()
        sim.run()
        assert first.triggered and second.triggered
        assert not third.triggered

    def test_release_wakes_fifo(self, sim):
        resource = Resource(sim, 1)
        resource.request()
        waiters = [resource.request() for _ in range(3)]
        resource.release()
        sim.run()
        assert [w.triggered for w in waiters] == [True, False, False]

    def test_release_without_request_raises(self, sim):
        resource = Resource(sim, 1)
        with pytest.raises(SimulationError):
            resource.release()

    def test_capacity_must_be_positive(self, sim):
        with pytest.raises(SimulationError):
            Resource(sim, 0)

    def test_queue_length(self, sim):
        resource = Resource(sim, 1)
        resource.request()
        resource.request()
        assert resource.queue_length == 1


class TestLockAndQueue:
    def test_lock_mutual_exclusion(self, sim):
        lock = Lock(sim)
        held = []
        def worker(tag):
            yield lock.request()
            held.append(tag)
            yield sim.timeout(1.0)
            held.append(-tag)
            lock.release()
        sim.process(worker(1))
        sim.process(worker(2))
        sim.run()
        assert held == [1, -1, 2, -2]

    def test_queue_fifo_handoff(self, sim):
        queue = Queue(sim)
        got = []
        def consumer():
            for _ in range(3):
                item = yield queue.get()
                got.append(item)
        sim.process(consumer())
        for item in "xyz":
            queue.put(item)
        sim.run()
        assert got == ["x", "y", "z"]

    def test_queue_get_before_put(self, sim):
        queue = Queue(sim)
        event = queue.get()
        queue.put("later")
        sim.run()
        assert event.value == "later"

    def test_queue_len(self, sim):
        queue = Queue(sim)
        queue.put(1)
        queue.put(2)
        assert len(queue) == 2


class TestNowQueue:
    """FIFO semantics of the zero-delay lane (see DESIGN.md)."""

    def test_zero_delay_preserves_fifo_order(self, sim):
        order = []
        for tag in "abc":
            sim.schedule(0.0, order.append, tag)
        sim.run()
        assert order == ["a", "b", "c"]

    def test_nested_zero_delay_runs_after_queued_work(self, sim):
        order = []

        def first():
            order.append("first")
            sim.schedule(0.0, order.append, "nested")

        sim.schedule(0.0, first)
        sim.schedule(0.0, order.append, "second")
        sim.run()
        assert order == ["first", "second", "nested"]

    def test_zero_delay_drains_before_clock_advances(self, sim):
        order = []

        def at_one(_event):
            order.append(("heap", sim.now))
            sim.schedule(0.0, lambda: order.append(("zero", sim.now)))

        sim.timeout(1.0).add_callback(at_one)
        sim.timeout(2.0).add_callback(
            lambda e: order.append(("later", sim.now)))
        sim.run()
        assert order == [("heap", 1.0), ("zero", 1.0), ("later", 2.0)]

    def test_equal_time_heap_entries_keep_order_with_continuations(self, sim):
        order = []
        for tag in "ab":
            sim.timeout(1.0, tag).add_callback(
                lambda e: sim.schedule(0.0, order.append, e.value))
        sim.run()
        assert order == ["a", "b"]


class TestAnyOfDetach:
    def test_loser_is_detached_from_winner(self, sim):
        winner, loser = sim.event(), sim.event()
        first = sim.any_of([winner, loser])
        winner.succeed("w")
        sim.run()
        assert first.ok and first.value == "w"
        # The losing child no longer references the AnyOf: no leak while
        # the loser stays pending, and no callback when it triggers later.
        assert loser.callback is None and not loser.callbacks

    def test_late_loser_does_not_retrigger(self, sim):
        winner, loser = sim.event(), sim.event()
        first = sim.any_of([winner, loser])
        winner.succeed("w")
        sim.run()
        loser.succeed("l")
        sim.run()
        assert first.value == "w"

    def test_same_batch_children_are_harmless(self, sim):
        a, b = sim.event(), sim.event()
        first = sim.any_of([a, b])
        a.succeed(1)
        b.succeed(2)
        sim.run()
        assert first.value == 1


class TestScheduleBatch:
    def test_batch_runs_in_fifo_order(self, sim):
        order = []
        sim.schedule_batch(0.0, [(order.append, ("a",)),
                                 (order.append, ("b",)),
                                 (order.append, ("c",))])
        sim.run()
        assert order == ["a", "b", "c"]

    def test_batch_matches_separate_schedules(self, sim):
        """A batch interleaves with other entries exactly like the
        back-to-back schedule() calls it replaces."""
        order = []
        sim.schedule(0.0, order.append, "before")
        sim.schedule_batch(0.0, [(order.append, ("x",)),
                                 (order.append, ("y",))])
        sim.schedule(0.0, order.append, "after")
        sim.run()
        assert order == ["before", "x", "y", "after"]

    def test_delayed_batch_single_heap_entry(self, sim):
        order = []
        sim.schedule_batch(1.0, [(order.append, (1,)), (order.append, (2,))])
        sim.schedule(0.5, order.append, 0)
        sim.run()
        assert order == [0, 1, 2]
        assert sim.now == 1.0

    def test_same_tick_sibling_completions_deterministic(self, sim):
        """Two runs of the same same-tick sibling batch produce identical
        completion order (fixed-seed replay contract)."""

        def run_once():
            local = Simulator()
            order = []
            events = [local.event() for _ in range(4)]
            for i, event in enumerate(events):
                event.add_callback(lambda _e, i=i: order.append(i))
            local.schedule_batch(
                0.0, [(event.succeed, ()) for event in events])
            local.run()
            return order

        assert run_once() == run_once() == [0, 1, 2, 3]


class TestEventRecycling:
    def test_recycle_requires_fired_event(self, sim):
        event = sim.event()
        with pytest.raises(SimulationError):
            sim.recycle(event)

    def test_recycle_requires_drained_callbacks(self, sim):
        event = sim.event()
        event.add_callback(lambda _e: None)
        event.triggered = True  # fired, but the callback never dispatched
        with pytest.raises(SimulationError):
            sim.recycle(event)

    def test_recycled_event_is_reissued_reset(self, sim):
        event = sim.event()
        event.succeed("payload")
        sim.run()
        sim.recycle(event)
        again = sim.event()
        assert again is event
        assert not again.triggered and again.ok and again.value is None
        assert again.callback is None and not again.callbacks

    def test_freelist_never_resurrects_fired_event(self, sim):
        """An event still sitting on the freelist is never handed out in a
        triggered state, even after heavy churn."""
        for _ in range(64):
            event = sim.event()
            event.succeed()
            sim.run()
            sim.recycle(event)
            fresh = sim.event()
            assert not fresh.triggered
            fresh.succeed()  # must not raise "triggered twice"
            sim.run()
            sim.recycle(fresh)

    def test_recycle_rejects_timeout_still_on_heap(self, sim):
        """A timeout triggered out-of-band still has its ``_fire`` entry on
        the heap; pooling it would hand the entry's reference to the next
        owner."""
        timeout = sim.timeout(5.0)
        timeout.succeed("early")
        sim._now_queue.clear()  # drop the dispatch; the heap entry remains
        with pytest.raises(SimulationError, match="still referenced"):
            sim.recycle(timeout)

    def test_recycle_rejects_event_pending_in_combinator(self, sim):
        """A fired AnyOf child whose ``_on_child`` dispatch has not run yet
        is still referenced from the combinator; recycling it would replay
        the combinator callback against the event's next owner."""
        winner, loser = sim.event(), sim.event()
        chosen = sim.any_of([winner, loser])
        winner.succeed("won")
        # Fired and drained (succeed consumed the callback slot), but the
        # queued ``_on_child(winner)`` still references the event.
        with pytest.raises(SimulationError, match="still referenced"):
            sim.recycle(winner)
        sim.run()
        assert chosen.triggered and chosen.value == "won"
        sim.recycle(winner)  # reference consumed at dispatch

    def test_recycle_rejects_pending_gather_child(self, sim):
        child = sim.event()
        sim.gather([child])
        child.succeed()
        with pytest.raises(SimulationError, match="still referenced"):
            sim.recycle(child)
        sim.run()
        sim.recycle(child)

    def test_recycle_rejects_pending_allof_child(self, sim):
        child = sim.event()
        sim.all_of([child])
        child.succeed()
        with pytest.raises(SimulationError, match="still referenced"):
            sim.recycle(child)
        sim.run()
        sim.recycle(child)

    def test_anyof_detach_releases_loser_for_recycling(self, sim):
        """Losers detached by the AnyOf winner drop their registration, so
        a later fire-and-drain makes them pool-eligible again."""
        winner, loser = sim.event(), sim.event()
        sim.any_of([winner, loser])
        winner.succeed()
        sim.run()
        assert loser.refs == 0
        loser.succeed()
        sim.run()
        sim.recycle(loser)  # must not raise

    def test_recycled_timeout_refires(self, sim):
        timeout = sim.timeout(1.0, "first")
        fired = []
        timeout.add_callback(lambda e: fired.append(e.value))
        sim.run()
        sim.recycle(timeout)
        again = sim.timeout(2.0, "second")
        assert again is timeout
        again.add_callback(lambda e: fired.append(e.value))
        sim.run()
        assert fired == ["first", "second"] and sim.now == 3.0
