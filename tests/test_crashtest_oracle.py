"""The durability oracle and the end-to-end crash-state explorer.

Unit-tests the :class:`WorkloadExpectation` bookkeeping and each
``check_*`` function against live mounted volumes, then runs the full
explorer at small scale: a clean pass, byte-identical determinism across
runs, and — the detection-power test — a deliberately injected durability
bug that the harness must catch.
"""

import json

import pytest

from repro.block import Bio, BioFlags
from repro.faults import (
    WorkloadExpectation,
    check_mount_stability,
    check_persistence_bitmap_soundness,
    check_recovered_volume,
)
from repro.harness.crashtest import ScriptedWorkload, explore, write_report
from repro.raizn.recovery import mount
from repro.raizn.volume import RaiznVolume
from repro.units import KiB

from conftest import make_volume, pattern


class TestWorkloadExpectation:
    def test_submit_and_fua_ack(self):
        expect = WorkloadExpectation(2, 1024 * KiB)
        expect.note_submit_write(0, b"ab" * 2048)
        assert expect.next_write_offset(0) == 4096
        assert expect.zones[0].synced == 0
        expect.note_write_acked(0, fua=False)
        assert expect.zones[0].synced == 0   # plain ack promises nothing
        expect.note_write_acked(0, fua=True)
        assert expect.zones[0].synced == 4096

    def test_flush_syncs_every_zone(self):
        expect = WorkloadExpectation(2, 1024 * KiB)
        expect.note_submit_write(0, bytes(4096))
        expect.note_submit_write(1, bytes(8192))
        expect.note_flush_acked()
        assert expect.zones[0].synced == 4096
        assert expect.zones[1].synced == 8192

    def test_reset_lifecycle(self):
        expect = WorkloadExpectation(1, 1024 * KiB)
        expect.note_submit_write(0, bytes(4096))
        expect.note_submit_reset(0)
        assert expect.zones[0].resetting
        expect.note_reset_acked(0)
        assert not expect.zones[0].resetting
        assert expect.next_write_offset(0) == 0

    def test_copy_freezes_state(self):
        expect = WorkloadExpectation(1, 1024 * KiB)
        expect.note_submit_write(0, bytes(4096))
        frozen = expect.copy()
        expect.note_submit_write(0, bytes(4096))
        expect.note_flush_acked()
        assert len(frozen.zones[0].submitted) == 4096
        assert frozen.zones[0].synced == 0


class TestOracleChecks:
    def _write_and_crash(self, sim, volume, devices, expect, flags):
        data = pattern(128 * KiB, seed=1)
        expect.note_submit_write(0, data)
        volume.execute(Bio.write(0, data, flags))
        for dev in devices:
            dev.power_fail_to({})   # keep only durable prefixes
            dev.power_on()
        return mount(sim, list(devices))

    def test_durable_data_passes(self, sim):
        volume, devices = make_volume(sim)
        expect = WorkloadExpectation(volume.num_data_zones,
                                     volume.zone_capacity)
        recovered = self._write_and_crash(
            sim, volume, devices, expect,
            BioFlags.FUA | BioFlags.PREFLUSH)
        expect.note_write_acked(0, fua=True)
        assert check_recovered_volume(recovered, expect) == []
        assert check_persistence_bitmap_soundness(recovered) == []

    def test_lost_acked_bytes_detected(self, sim):
        """A falsely-claimed FUA ack over cache-only data must surface as
        a write-pointer violation after the crash discards the cache."""
        volume, devices = make_volume(sim)
        expect = WorkloadExpectation(volume.num_data_zones,
                                     volume.zone_capacity)
        recovered = self._write_and_crash(sim, volume, devices, expect,
                                          BioFlags.NONE)
        expect.note_write_acked(0, fua=True)   # the lie
        violations = check_recovered_volume(recovered, expect)
        assert len(violations) == 1
        assert "outside legal range" in violations[0]

    def test_content_divergence_detected(self, sim):
        volume, devices = make_volume(sim)
        expect = WorkloadExpectation(volume.num_data_zones,
                                     volume.zone_capacity)
        recovered = self._write_and_crash(
            sim, volume, devices, expect,
            BioFlags.FUA | BioFlags.PREFLUSH)
        expect.note_write_acked(0, fua=True)
        expect.zones[0].submitted[10] ^= 0xFF   # corrupt the expectation
        violations = check_recovered_volume(recovered, expect)
        assert len(violations) == 1
        assert "diverges" in violations[0]
        assert "0xa" in violations[0]   # first divergent offset reported

    def test_remount_is_stable(self, sim):
        volume, devices = make_volume(sim)
        expect = WorkloadExpectation(volume.num_data_zones,
                                     volume.zone_capacity)
        recovered = self._write_and_crash(
            sim, volume, devices, expect,
            BioFlags.FUA | BioFlags.PREFLUSH)
        remounted = mount(sim, list(devices))
        assert check_mount_stability(recovered, remounted) == []


class TestScriptedWorkload:
    def test_replay_is_identical(self):
        a = ScriptedWorkload(seed=5, num_ops=40, zone_capacity=4096 * KiB)
        b = ScriptedWorkload(seed=5, num_ops=40, zone_capacity=4096 * KiB)
        assert a.ops == b.ops

    def test_seeds_differ(self):
        a = ScriptedWorkload(seed=5, num_ops=40, zone_capacity=4096 * KiB)
        b = ScriptedWorkload(seed=6, num_ops=40, zone_capacity=4096 * KiB)
        assert a.ops != b.ops

    def test_writes_are_sequential_per_zone(self):
        wl = ScriptedWorkload(seed=7, num_ops=60, zone_capacity=4096 * KiB)
        frontier = {}
        for kind, zone, lba, data, _flags in wl.ops:
            if kind == "reset":
                frontier[zone] = 0
            elif kind == "write":
                expected = zone * 4096 * KiB + frontier.get(zone, 0)
                assert lba == expected
                frontier[zone] = frontier.get(zone, 0) + len(data)


SMALL = dict(seed=0, num_ops=20, boundaries=6, budget_per_boundary=4,
             double_crash_every=5, batch_size=6)


class TestExploreEndToEnd:
    def test_small_exploration_passes(self):
        report = explore(**SMALL)
        assert report["passed"]
        assert report["violations"] == []
        assert report["states_explored"] > 0
        assert 0 < report["distinct_states"] <= report["states_explored"]
        assert report["double_crash_states"] > 0
        assert report["oracle_checks"]["recovered_volume"] > 0
        assert report["oracle_checks"]["mount_stability"] > 0
        assert report["boundaries_sampled"] <= 6

    def test_exploration_is_deterministic(self):
        first = explore(**SMALL)
        second = explore(**SMALL)
        first.pop("elapsed_s")
        second.pop("elapsed_s")
        assert first == second

    def test_injected_flush_bug_is_caught(self, monkeypatch):
        """Detection power: drop the §5.3 selective-flush path so FLUSH
        acks lie about cached stripe units — the explorer must find
        crash states that lose acked bytes."""
        monkeypatch.setattr(
            RaiznVolume, "_flush_unpersisted",
            lambda self, desc, bio, fua_devices: [])
        report = explore(seed=0, num_ops=40, boundaries=12,
                         budget_per_boundary=6, double_crash_every=10,
                         batch_size=6)
        assert not report["passed"]
        assert any("outside legal range" in v["detail"]
                   for v in report["violations"])

    def test_report_roundtrips_to_json(self, tmp_path):
        report = explore(**SMALL)
        out = tmp_path / "report.json"
        write_report(report, str(out))
        assert json.loads(out.read_text()) == report
