"""Tests for the §4.3/§5.2 maintenance operations: threshold-triggered
physical zone rewrites and generation-counter maintenance."""

import random

import pytest

from repro.block import Bio
from repro.errors import RaiznError
from repro.faults import power_cycle
from repro.raizn import mount
from repro.raizn.maintenance import (
    GENERATION_LIMIT,
    encode_rewrite_wal,
    decode_rewrite_wal,
    needs_generation_maintenance,
    rewrite_physical_zone,
    run_generation_maintenance,
    zones_needing_rewrite,
)
from repro.raizn.config import RaiznConfig
from repro.raizn.volume import RaiznVolume
from repro.sim import Simulator
from repro.units import KiB
from repro.zns import ZNSDevice

from conftest import (
    TEST_STRIPE_UNIT,
    make_volume,
    make_zns_devices,
    pattern,
)

SU = TEST_STRIPE_UNIT
STRIPE = 4 * SU


def remapped_volume(sim, seed=0):
    """A volume with relocations, produced by a crash + rollback + rewrite."""
    volume, devices = make_volume(sim)
    volume.execute(Bio.write(0, pattern(6 * STRIPE, seed=seed)))
    power_cycle(devices, random.Random(seed + 100))
    volume = mount(sim, devices)
    wp = volume.zone_info(0).write_pointer
    more = pattern(3 * STRIPE - (wp % STRIPE or 0), seed=seed + 1)
    volume.execute(Bio.write(wp, more))
    volume.execute(Bio.flush())
    return volume, devices, wp, more


class TestRewriteWal:
    def test_wal_roundtrip(self):
        entry = encode_rewrite_wal(2, device=3, zone=7, length=12345,
                                   generation=9)
        opcode, device, zone, length = decode_rewrite_wal(entry)
        assert (opcode, device, zone, length) == (2, 3, 7, 12345)
        assert entry.generation == 9

    def test_threshold_detection(self, sim):
        volume, _devices = make_volume(sim)
        assert zones_needing_rewrite(volume) == []
        threshold = volume.config.relocation_rebuild_threshold
        for i in range(threshold):
            volume.relocations.unit_for(i * SU, device=2, phys_zone=0)
        assert zones_needing_rewrite(volume) == [(2, 0)]


class TestZoneRewrite:
    def test_rewrite_heals_relocations(self, sim):
        volume, devices, wp, more = remapped_volume(sim, seed=1)
        targets = sorted(volume.relocations.per_phys_zone)
        if not targets:
            pytest.skip("seed produced no relocations")
        device_index, zone = targets[0]
        before = volume.execute(
            Bio.read(0, volume.zone_info(zone).write_pointer)).result
        sim.run_process(rewrite_physical_zone(volume, device_index, zone))
        # The relocations on that device/zone are gone...
        assert not [u for u in volume.relocations.units_on_device(
            device_index) if volume.mapper.zone_of(u.su_lba) == zone]
        # ...and the data is intact, now served straight off the device.
        after = volume.execute(
            Bio.read(0, volume.zone_info(zone).write_pointer)).result
        assert after == before

    def test_rewrite_survives_crash_after_copy(self, sim):
        """Crash between swap-copy and write-back: the COPIED WAL makes
        the next mount redo the write-back from the swap zone."""
        volume, devices, wp, more = remapped_volume(sim, seed=2)
        targets = sorted(volume.relocations.per_phys_zone)
        if not targets:
            pytest.skip("seed produced no relocations")
        device_index, zone = targets[0]
        full = volume.execute(
            Bio.read(0, volume.zone_info(zone).write_pointer)).result

        # Run the rewrite but cut power right after the COPIED WAL: do
        # the copy phase manually, then destroy the original.
        from repro.raizn.maintenance import (
            OP_ZONE_REWRITE_COPIED,
            OP_ZONE_REWRITE_START,
            _desired_content,
        )
        from repro.raizn.mdzone import MetadataRole
        content = sim.run_process(
            _desired_content(volume, device_index, zone))
        mdz = volume.mdzones[device_index]
        device = devices[device_index]
        swap = mdz.swap_zones[0]
        sim.run_process(mdz.append(MetadataRole.GENERAL, encode_rewrite_wal(
            OP_ZONE_REWRITE_START, device_index, zone, len(content),
            volume.generation[zone]), fua=True))
        if content:
            device.execute(Bio.write(swap * volume.phys_zone_size, content))
        device.execute(Bio.flush())
        sim.run_process(mdz.append(MetadataRole.GENERAL, encode_rewrite_wal(
            OP_ZONE_REWRITE_COPIED, device_index, zone, len(content),
            volume.generation[zone]), fua=True))
        device.execute(Bio.zone_reset(zone * volume.phys_zone_size))
        power_cycle(devices, random.Random(7))

        remounted = mount(sim, devices)
        got = remounted.execute(Bio.read(0, len(full))).result
        assert got == full

    def test_threshold_triggers_rewrite_at_mount(self, sim):
        devices = make_zns_devices(sim)
        config = RaiznConfig(num_data=4, stripe_unit_bytes=SU,
                             relocation_rebuild_threshold=1)
        volume = RaiznVolume.create(sim, devices, config)
        volume.execute(Bio.write(0, pattern(6 * STRIPE, seed=3)))
        power_cycle(devices, random.Random(31))
        volume = mount(sim, devices)
        wp = volume.zone_info(0).write_pointer
        more = pattern(2 * STRIPE, seed=4)
        volume.execute(Bio.write(wp, more))
        volume.execute(Bio.flush())
        if not volume.relocations.units():
            pytest.skip("seed produced no relocations")
        # Remount: the threshold of 1 forces a rewrite during init.
        again = mount(sim, devices, relocation_rebuild_threshold=1)
        assert not again.relocations.units()
        got = again.execute(Bio.read(wp, len(more))).result
        assert got == more

    def test_rewrite_requires_live_device(self, sim):
        volume, _devices = make_volume(sim)
        volume.fail_device(1)
        with pytest.raises(RaiznError):
            sim.run_process(rewrite_physical_zone(volume, 1, 0))


class TestGenerationMaintenance:
    def test_needs_maintenance_detection(self, sim):
        volume, _devices = make_volume(sim)
        assert not needs_generation_maintenance(volume)
        volume.generation[3] = GENERATION_LIMIT - 1
        assert needs_generation_maintenance(volume)

    def test_requires_read_only(self, sim):
        volume, _devices = make_volume(sim)
        with pytest.raises(RaiznError):
            sim.run_process(run_generation_maintenance(sim, volume))

    def test_maintenance_resets_counters_and_resumes_service(self, sim):
        volume, devices = make_volume(sim)
        data = pattern(STRIPE + 8 * KiB, seed=5)
        volume.execute(Bio.write(0, data))
        volume.execute(Bio.flush())
        volume.generation = [GENERATION_LIMIT - 1] * volume.num_data_zones
        volume.read_only = True
        sim.run_process(run_generation_maintenance(sim, volume))
        assert not volume.read_only
        assert all(g == 1 for g in volume.generation)
        # Data is untouched and the volume accepts writes again.
        assert volume.execute(Bio.read(0, len(data))).result == data
        volume.execute(Bio.write(len(data), b"\x42" * 4096))

    def test_overflow_triggers_maintenance_at_mount(self, sim):
        volume, devices = make_volume(sim)
        data = pattern(2 * STRIPE, seed=6)
        volume.execute(Bio.write(0, data))
        # Force the counter near its limit and persist it.
        volume.generation[0] = GENERATION_LIMIT - 1

        def persist():
            yield sim.all_of(volume._persist_generation(fua=True))
        sim.run_process(persist())
        volume.execute(Bio.flush())
        remounted = mount(sim, devices)
        assert all(g <= 2 for g in remounted.generation)
        assert not remounted.read_only
        assert remounted.execute(Bio.read(0, len(data))).result == data

    def test_data_survives_post_maintenance_crash(self, sim):
        volume, devices = make_volume(sim)
        data = pattern(STRIPE, seed=7)
        volume.execute(Bio.write(0, data))
        volume.execute(Bio.flush())
        volume.read_only = True
        sim.run_process(run_generation_maintenance(sim, volume))
        more = pattern(STRIPE, seed=8)
        volume.execute(Bio.write(STRIPE, more))
        volume.execute(Bio.flush())
        power_cycle(devices, random.Random(11))
        remounted = mount(sim, devices)
        got = remounted.execute(Bio.read(0, 2 * STRIPE)).result
        assert got == data + more
