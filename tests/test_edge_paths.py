"""Targeted tests for rarely-hit paths: stitched relocation reads, mdraid
write plugging, and volume durability bookkeeping."""

import pytest

from repro.block import Bio, BioFlags
from repro.conv import ConventionalSSD
from repro.mdraid import MdraidVolume
from repro.sim import Simulator
from repro.units import KiB, MiB

from conftest import TEST_STRIPE_UNIT, make_volume, pattern

SU = TEST_STRIPE_UNIT
STRIPE = 4 * SU


class TestStitchedRelocationReads:
    def _volume_with_partial_unit(self, sim):
        """A zone where one SU's middle range is relocated while its
        prefix and suffix remain valid on the device."""
        volume, _devices = make_volume(sim)
        data = pattern(STRIPE, seed=1)
        volume.execute(Bio.write(0, data))
        # Manufacture the §5.2 state directly: a relocation unit covering
        # the middle of SU 0 with replacement content.
        replacement = pattern(8 * KiB, seed=2)
        device, _pba = volume.mapper.lba_to_pba(0)
        unit = volume.relocations.unit_for(0, device, 0)
        unit.write(4 * KiB, replacement)
        volume.zone_descs[0].has_relocations = True
        expected = bytearray(data)
        expected[4 * KiB:12 * KiB] = replacement
        return volume, bytes(expected)

    def test_fully_covered_read_from_unit(self, sim):
        volume, expected = self._volume_with_partial_unit(sim)
        got = volume.execute(Bio.read(4 * KiB, 8 * KiB)).result
        assert got == expected[4 * KiB:12 * KiB]

    def test_straddling_read_is_stitched(self, sim):
        volume, expected = self._volume_with_partial_unit(sim)
        got = volume.execute(Bio.read(0, 16 * KiB)).result
        assert got == expected[:16 * KiB]

    def test_read_outside_unit_untouched(self, sim):
        volume, expected = self._volume_with_partial_unit(sim)
        got = volume.execute(Bio.read(16 * KiB, 16 * KiB)).result
        assert got == expected[16 * KiB:32 * KiB]

    def test_whole_su_read_stitches_three_ways(self, sim):
        volume, expected = self._volume_with_partial_unit(sim)
        got = volume.execute(Bio.read(0, SU)).result
        assert got == expected[:SU]


class TestMdraidPlugging:
    def make_md(self, sim):
        devices = [ConventionalSSD(sim, capacity_bytes=16 * MiB, seed=i)
                   for i in range(5)]
        return MdraidVolume(sim, devices), devices

    def test_concurrent_small_writes_batch_into_one_stripe_update(self, sim):
        md, devices = self.make_md(sim)
        md.execute(Bio.write(0, pattern(4 * SU, seed=3)))  # warm stripe 0
        writes_before = sum(d.stats.writes for d in devices)
        events = [md.submit(Bio.write(i * 4 * KiB,
                                      pattern(4 * KiB, seed=10 + i)))
                  for i in range(16)]
        sim.run()
        assert all(e.ok for e in events)
        writes_after = sum(d.stats.writes for d in devices)
        # 16 sector writes batched into few chunk/parity device writes,
        # far fewer than 2 device writes per logical write.
        assert writes_after - writes_before < 16

    def test_full_stripe_unplugs_immediately(self, sim):
        md, _devices = self.make_md(sim)
        began = sim.now
        md.execute(Bio.write(0, pattern(4 * SU, seed=4)))
        # No plug delay on full-stripe writes.
        assert sim.now - began < md.plug_delay + 2e-3

    def test_plugged_data_readable_after_completion(self, sim):
        md, _devices = self.make_md(sim)
        data = pattern(4 * KiB, seed=5)
        md.execute(Bio.write(0, data))
        assert md.execute(Bio.read(0, 4 * KiB)).result == data


class TestVolumeDurabilityBookkeeping:
    def test_flush_marks_all_active_zones(self, sim):
        volume, _devices = make_volume(sim)
        volume.execute(Bio.write(0, pattern(STRIPE, seed=6)))
        volume.execute(Bio.write(volume.zone_capacity,
                                 pattern(2 * SU, seed=7)))
        volume.execute(Bio.flush())
        for zone in (0, 1):
            desc = volume.zone_descs[zone]
            assert desc.persistence.frontier == \
                desc.su_index_of(desc.write_pointer - 1) + 1

    def test_fua_only_flushes_devices_with_unpersisted_sus(self, sim):
        volume, devices = make_volume(sim)
        volume.execute(Bio.write(0, pattern(STRIPE, seed=8)))
        volume.execute(Bio.flush())
        flushes_before = [d.stats.flushes for d in devices]
        # Everything persisted: a FUA write should not fan out flushes.
        volume.execute(Bio.write(STRIPE, b"\x01" * 4096,
                                 BioFlags.FUA))
        flushes_after = [d.stats.flushes for d in devices]
        assert flushes_after == flushes_before

    def test_second_fua_skips_already_persisted(self, sim):
        volume, devices = make_volume(sim)
        volume.execute(Bio.write(0, pattern(2 * SU, seed=9)))
        volume.execute(Bio.write(2 * SU, b"\x01" * 4096,
                                 BioFlags.FUA | BioFlags.PREFLUSH))
        flushes_mid = sum(d.stats.flushes for d in devices)
        volume.execute(Bio.write(2 * SU + 4096, b"\x02" * 4096,
                                 BioFlags.FUA | BioFlags.PREFLUSH))
        # The bitmap frontier means no further flush fan-out is needed.
        assert sum(d.stats.flushes for d in devices) == flushes_mid

    def test_zone_append_emulation_survives_crash(self, sim):
        import random
        from repro.faults import power_cycle
        from repro.raizn import mount
        volume, devices = make_volume(sim)
        first = volume.execute(Bio.zone_append(0, pattern(4 * KiB, seed=10),
                                               BioFlags.FUA))
        second = volume.execute(Bio.zone_append(0, pattern(4 * KiB, seed=11),
                                                BioFlags.FUA))
        assert (first.result, second.result) == (0, 4 * KiB)
        power_cycle(devices, random.Random(1))
        remounted = mount(sim, devices)
        assert remounted.zone_info(0).write_pointer >= 8 * KiB
        got = remounted.execute(Bio.read(0, 8 * KiB)).result
        assert got == pattern(4 * KiB, seed=10) + pattern(4 * KiB, seed=11)
