"""End-to-end model checking: the RAIZN volume against a reference model.

A random interleaving of writes, reads, zone resets, flushes, crashes,
remounts, device failures, and rebuilds is executed against the volume
and against a trivial in-memory model of a perfect zoned device.  The
invariants checked after every step are the ZNS contract the paper's
§5 machinery exists to preserve:

* reads below the write pointer return exactly the written bytes;
* after a crash, each zone recovers to a *prefix* of its pre-crash
  content — and at least its last-synced prefix;
* zone resets are all-or-nothing, even across crashes;
* one device failure never loses acknowledged data.
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.block import Bio, BioFlags
from repro.faults import fresh_replacement, power_cycle
from repro.raizn import mount, rebuild
from repro.sim import Simulator
from repro.units import KiB

from conftest import make_volume, pattern


class ZoneModel:
    """Reference model of one logical zone of a perfect zoned device."""

    def __init__(self, capacity: int):
        self.capacity = capacity
        self.data = bytearray()       # written content, in order
        self.synced = 0               # bytes guaranteed to survive a crash

    def write(self, data: bytes, durable: bool) -> None:
        self.data.extend(data)
        if durable:
            self.synced = len(self.data)

    def flush(self) -> None:
        self.synced = len(self.data)

    def reset(self) -> None:
        self.data = bytearray()
        self.synced = 0


@settings(max_examples=12, deadline=None,
          suppress_health_check=[HealthCheck.data_too_large,
                                 HealthCheck.too_slow])
@given(st.integers(0, 10 ** 9), st.lists(st.sampled_from(
    ["write", "fua", "read", "flush", "reset", "crash", "fail_rebuild"]),
    min_size=4, max_size=28))
def test_volume_conforms_to_zoned_model(seed, script):
    sim = Simulator()
    volume, devices = make_volume(sim)
    rng = random.Random(seed)
    zone_capacity = volume.zone_capacity
    models = {z: ZoneModel(zone_capacity) for z in range(2)}
    blob = pattern(2 * zone_capacity, seed=seed)
    cursor = 0

    def check_zone(zone: int, after_crash: bool) -> None:
        model = models[zone]
        info = volume.zone_info(zone)
        wp = info.write_pointer - zone * zone_capacity
        if after_crash:
            # Prefix property: never less than synced, never more than
            # written, and byte-exact for whatever survived.
            assert model.synced <= wp <= len(model.data)
            model.data = model.data[:wp]
            model.synced = wp
        else:
            assert wp == len(model.data)
        if wp:
            got = volume.execute(
                Bio.read(zone * zone_capacity, wp)).result
            assert got == bytes(model.data[:wp])

    for action in script:
        zone = rng.randrange(2)
        model = models[zone]
        if action in ("write", "fua"):
            nbytes = min(rng.choice((4 * KiB, 12 * KiB, 64 * KiB,
                                     96 * KiB)),
                         zone_capacity - len(model.data))
            if nbytes <= 0:
                continue
            chunk = blob[cursor:cursor + nbytes]
            cursor = (cursor + nbytes) % zone_capacity
            flags = (BioFlags.FUA | BioFlags.PREFLUSH) if action == "fua" \
                else BioFlags.NONE
            volume.execute(Bio.write(
                zone * zone_capacity + len(model.data), chunk, flags))
            model.write(chunk, durable=(action == "fua"))
        elif action == "read":
            check_zone(zone, after_crash=False)
        elif action == "flush":
            volume.execute(Bio.flush())
            for m in models.values():
                m.flush()
        elif action == "reset":
            volume.execute(Bio.zone_reset(zone * zone_capacity))
            model.reset()
        elif action == "crash":
            power_cycle(devices, random.Random(rng.randrange(1 << 30)))
            volume = mount(sim, devices)
            for z in models:
                check_zone(z, after_crash=True)
        elif action == "fail_rebuild":
            victim = rng.randrange(5)
            if volume.devices[victim] is None or volume.failed[victim]:
                continue
            volume.fail_device(victim)
            for z in models:
                check_zone(z, after_crash=False)  # degraded reads intact
            replacement = fresh_replacement(
                sim, next(d for d in volume.devices if d is not None),
                name=f"r{victim}-{rng.randrange(1000)}",
                seed=rng.randrange(1 << 30))
            devices[victim] = replacement
            rebuild(sim, volume, victim, replacement)
            for z in models:
                check_zone(z, after_crash=False)

    for z in models:
        check_zone(z, after_crash=False)
