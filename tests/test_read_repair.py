"""Self-healing read path: read-repair, retry, and threshold eviction."""

import pytest

from repro.block import Bio, Op
from repro.errors import DegradedModeError, TransientCommandError
from repro.raizn import RaiznConfig, RaiznVolume
from repro.units import KiB

from conftest import TEST_STRIPE_UNIT, make_volume, make_zns_devices, pattern

SU = TEST_STRIPE_UNIT
STRIPE = 4 * SU


def make_tuned_volume(sim, **config_kwargs):
    """A volume with self-healing knobs overridden."""
    devices = make_zns_devices(sim)
    config = RaiznConfig(num_data=len(devices) - 1,
                         stripe_unit_bytes=SU, **config_kwargs)
    return RaiznVolume.create(sim, devices, config), devices


def su_location(volume, zone, stripe, slot):
    """(device, pba) of data SU ``slot`` of ``stripe`` in ``zone``."""
    layout = volume.mapper.stripe_layout(zone, stripe)
    device = layout.data_devices[slot]
    pba = zone * volume.phys_zone_size + stripe * SU
    return device, pba


class TestLatentHeal:
    def test_read_repair_reconstructs_and_relocates(self, sim):
        volume, devices = make_volume(sim)
        data = pattern(2 * STRIPE, seed=1)
        volume.execute(Bio.write(0, data))
        volume.execute(Bio.flush())
        device, pba = su_location(volume, 0, 0, 0)
        devices[device].mark_bad(pba, SU)

        assert volume.execute(Bio.read(0, SU)).result == data[:SU]
        assert volume.health.media_errors == 1
        assert volume.health.heals == 1
        assert volume.relocations.units_on_device(device)

    def test_healed_unit_serves_from_relocation(self, sim):
        volume, devices = make_volume(sim)
        data = pattern(STRIPE, seed=2)
        volume.execute(Bio.write(0, data))
        device, pba = su_location(volume, 0, 0, 0)
        devices[device].mark_bad(pba, SU)
        volume.execute(Bio.read(0, SU))
        # The relocated copy serves the re-read without touching the bad
        # media again, so the error counter stays put.
        assert volume.execute(Bio.read(0, SU)).result == data[:SU]
        assert volume.health.media_errors == 1

    def test_sub_unit_read_heals_whole_unit(self, sim):
        volume, devices = make_volume(sim)
        data = pattern(STRIPE, seed=3)
        volume.execute(Bio.write(0, data))
        device, pba = su_location(volume, 0, 0, 1)
        devices[device].mark_bad(pba, SU)
        got = volume.execute(Bio.read(SU + 8 * KiB, 16 * KiB)).result
        assert got == data[SU + 8 * KiB:SU + 24 * KiB]
        assert volume.health.heals == 1


class TestTransientRetry:
    def install_flaky_reads(self, device, failures):
        """Fail the next ``failures`` READ submissions on ``device``."""
        budget = [failures]
        chained = device.pre_apply_hook

        def hook(dev, bio):
            if chained is not None:
                chained(dev, bio)
            if bio.op is Op.READ and budget[0] > 0:
                budget[0] -= 1
                raise TransientCommandError(f"{dev.name}: injected")
        device.pre_apply_hook = hook

    def test_bounded_retry_recovers(self, sim):
        volume, devices = make_tuned_volume(sim, max_transient_retries=4)
        data = pattern(STRIPE, seed=4)
        volume.execute(Bio.write(0, data))
        device, _pba = su_location(volume, 0, 0, 0)
        self.install_flaky_reads(devices[device], failures=3)
        assert volume.execute(Bio.read(0, SU)).result == data[:SU]
        assert volume.health.transient_retries == 3
        assert volume.health.transient_escalations == 0

    def test_exhausted_retries_escalate_to_degraded_serve(self, sim):
        volume, devices = make_tuned_volume(sim, max_transient_retries=1)
        data = pattern(STRIPE, seed=5)
        volume.execute(Bio.write(0, data))
        device, _pba = su_location(volume, 0, 0, 0)
        self.install_flaky_reads(devices[device], failures=100)
        # Both submissions fail; the SU is reconstructed from the stripe.
        assert volume.execute(Bio.read(0, SU)).result == data[:SU]
        assert volume.health.transient_escalations >= 1
        assert volume.error_counts[device] >= 1


class TestDetectionMode:
    def test_read_repair_off_serves_corrupt_data(self, sim):
        volume, devices = make_tuned_volume(sim, read_repair=False)
        data = pattern(STRIPE, seed=6)
        volume.execute(Bio.write(0, data))
        device, pba = su_location(volume, 0, 0, 0)
        devices[device].mark_bad(pba, SU)
        got = volume.execute(Bio.read(0, SU)).result
        # mark_bad flips bits, so the corruption is observable — that is
        # exactly what the errortest detection-power check relies on.
        assert got != data[:SU]
        assert volume.health.unrepaired_serves == 1
        assert volume.health.heals == 0


class TestThresholdEviction:
    def test_second_error_evicts_device(self, sim):
        volume, devices = make_tuned_volume(sim, device_error_threshold=2)
        data = pattern(4 * STRIPE, seed=7)
        volume.execute(Bio.write(0, data))
        device, pba = su_location(volume, 0, 0, 0)
        # A second bad SU on the same device, in a later stripe where it
        # again holds data (it may be the parity device of stripe 1).
        stripe1 = next(s for s in range(1, 4) if device in
                       volume.mapper.stripe_layout(0, s).data_devices)
        slot1 = volume.mapper.stripe_layout(0, stripe1) \
            .data_devices.index(device)
        devices[device].mark_bad(pba, SU)
        devices[device].mark_bad(pba + stripe1 * SU, SU)

        assert volume.execute(Bio.read(0, SU)).result == data[:SU]
        assert not volume.failed[device]
        offset1 = stripe1 * STRIPE + slot1 * SU
        got = volume.execute(Bio.read(offset1, SU)).result
        assert got == data[offset1:offset1 + SU]
        assert volume.failed[device]
        assert volume.health.evictions == 1
        # The evicted device's data keeps flowing from parity.
        assert volume.execute(Bio.read(0, len(data))).result == data

    def test_no_eviction_without_redundancy(self, sim):
        volume, devices = make_tuned_volume(sim, device_error_threshold=1)
        data = pattern(STRIPE, seed=8)
        volume.execute(Bio.write(0, data))
        volume.execute(Bio.flush())
        failed = volume.mapper.stripe_layout(0, 0).parity_device
        volume.fail_device(failed)
        device, pba = su_location(volume, 0, 0, 0)
        devices[device].mark_bad(pba, SU)
        # The error is charged but the device must NOT be evicted: with
        # one device already gone, evicting a second would lose data.
        with pytest.raises(DegradedModeError):
            volume.execute(Bio.read(0, SU))
        assert not volume.failed[device]
        assert volume.health.evictions == 0


class TestDoubleFault:
    def test_media_error_plus_failed_device_raises(self, sim):
        volume, devices = make_volume(sim)
        data = pattern(STRIPE, seed=9)
        volume.execute(Bio.write(0, data))
        volume.execute(Bio.flush())
        device, pba = su_location(volume, 0, 0, 0)
        other = volume.mapper.stripe_layout(0, 0).data_devices[1]
        volume.fail_device(other)
        devices[device].mark_bad(pba, SU)
        # Reconstructing the bad SU needs every other device, one of
        # which is gone — single parity cannot cover two losses.
        with pytest.raises(DegradedModeError):
            volume.execute(Bio.read(0, SU))
