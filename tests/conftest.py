"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.raizn.config import RaiznConfig
from repro.raizn.volume import RaiznVolume
from repro.sim import Simulator
from repro.units import KiB, MiB
from repro.zns.device import ZNSDevice

#: Small but structurally interesting geometry used across tests:
#: 5 devices, D=4 + P=1, 1 MiB zones => 4 MiB logical zones, 16 stripes
#: per zone at the 64 KiB stripe unit.
TEST_NUM_DEVICES = 5
TEST_NUM_ZONES = 12
TEST_ZONE_CAPACITY = 1 * MiB
TEST_STRIPE_UNIT = 64 * KiB


def make_zns_devices(sim: Simulator, n: int = TEST_NUM_DEVICES,
                     num_zones: int = TEST_NUM_ZONES,
                     zone_capacity: int = TEST_ZONE_CAPACITY,
                     seed: int = 0):
    """A uniform batch of simulated ZNS devices."""
    return [ZNSDevice(sim, name=f"zns{i}", num_zones=num_zones,
                      zone_capacity=zone_capacity, seed=seed + i)
            for i in range(n)]


def make_volume(sim: Simulator, **kwargs):
    """A freshly formatted RAIZN volume plus its devices."""
    devices = make_zns_devices(sim, **kwargs)
    config = RaiznConfig(num_data=len(devices) - 1,
                         stripe_unit_bytes=TEST_STRIPE_UNIT)
    volume = RaiznVolume.create(sim, devices, config)
    return volume, devices


def pattern(length: int, seed: int = 0) -> bytes:
    """Deterministic pseudo-random payload for data-integrity checks."""
    return random.Random(seed).randbytes(length)


@pytest.fixture
def sim() -> Simulator:
    return Simulator()


@pytest.fixture
def zns(sim) -> ZNSDevice:
    return ZNSDevice(sim, num_zones=8, zone_capacity=1 * MiB)


@pytest.fixture
def volume_and_devices(sim):
    return make_volume(sim)


@pytest.fixture
def volume(volume_and_devices):
    return volume_and_devices[0]
