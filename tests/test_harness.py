"""Tests for the experiment harness: every paper figure/table driver runs
at a tiny scale and produces results of the right shape."""

import pytest

from repro.harness import (
    ArrayScale,
    format_series_table,
    format_table,
    make_mdraid,
    make_raizn,
    measure_raw_devices,
    measured_entry_sizes,
    mdraid_ttr,
    normalize,
    points_table,
    raizn_ttr,
    run_degraded,
    run_gc_timeseries,
    run_microbench,
    run_rocksdb,
    run_sysbench,
    table1_rows,
)
from repro.harness.results import Series
from repro.sim import Simulator
from repro.units import KiB, MiB

TINY = ArrayScale(num_zones=10, zone_capacity=1 * MiB)


class TestArrays:
    def test_make_raizn(self, sim):
        volume, devices = make_raizn(sim, TINY)
        assert len(devices) == 5
        assert volume.capacity == TINY.raizn_usable

    def test_make_mdraid_matches_usable(self, sim):
        md, devices = make_mdraid(sim, TINY)
        assert md.capacity == TINY.raizn_usable

    def test_scales(self):
        assert TINY.data_zones == 7
        assert TINY.conv_device_capacity == 7 * MiB


class TestResultsFormatting:
    def test_format_table(self):
        text = format_table(["a", "bb"], [[1, 2.5], ["x", 0.001]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "a" in lines[0] and "---" in lines[1]

    def test_series_smoothing(self):
        series = Series("s", [(0, 0.0), (1, 10.0), (2, 0.0)])
        smooth = series.smoothed(3)
        assert smooth.points[1][1] == pytest.approx(10 / 3)

    def test_series_downsample(self):
        series = Series("s", [(float(i), float(i)) for i in range(100)])
        down = series.downsample(10)
        assert len(down.points) == 10

    def test_series_table(self):
        a = Series("a", [(0, 1.0), (1, 2.0)])
        text = format_series_table([a], "t", "MiB/s", buckets=2)
        assert "a (MiB/s)" in text

    def test_normalize(self):
        ratios = normalize({"raizn": 90.0, "mdraid": 100.0}, "mdraid")
        assert ratios["raizn"] == pytest.approx(0.9)
        with pytest.raises(ValueError):
            normalize({"a": 1.0, "b": 0.0}, "b")


class TestRawDevice:
    def test_gaps_match_paper(self):
        result = measure_raw_devices(num_zones=16, zone_capacity=2 * MiB)
        # §6.1: ZNS ~2% slower writes, ~4% slower reads.
        assert 0.0 < result.write_gap < 0.05
        assert 0.01 < result.read_gap < 0.08
        assert 900 < result.zns_write < 1100


class TestTable1:
    def test_rows_cover_all_metadata_types(self):
        rows = table1_rows(TINY)
        names = [r.metadata_type for r in rows]
        assert "Partial parity" in names
        assert "Generation counters" in names
        assert len(rows) == 9

    def test_entry_sizes_match_paper(self):
        sizes = measured_entry_sizes()
        # Table 1: header is one 4 KiB sector; stripe-unit payloads add
        # their (sector-padded) size.
        assert sizes["zone_reset"] == 4 * KiB
        assert sizes["generation"] == 4 * KiB
        assert sizes["relocated_su"] == 4 * KiB + 64 * KiB
        assert sizes["partial_parity_full"] == 4 * KiB + 64 * KiB
        assert sizes["partial_parity_4k"] == 4 * KiB + 4 * KiB


class TestMicrobench:
    @pytest.mark.parametrize("kind", ["raizn", "mdraid"])
    def test_write_point(self, kind):
        point = run_microbench(kind, "write", 256 * KiB, scale=TINY,
                               per_job_bytes=512 * KiB)
        assert point.throughput_mib_s > 100
        assert point.median_latency > 0
        assert point.p999_latency >= point.median_latency

    @pytest.mark.parametrize("workload", ["read", "randread"])
    def test_read_points(self, workload):
        point = run_microbench("raizn", workload, 64 * KiB, scale=TINY,
                               per_job_bytes=512 * KiB)
        assert point.throughput_mib_s > 100

    def test_points_table_shape(self):
        point = run_microbench("raizn", "write", 64 * KiB, scale=TINY,
                               per_job_bytes=256 * KiB)
        rows = points_table([point])
        assert rows[0][0] == "raizn"
        assert rows[0][2] == 64


class TestGcTimeseries:
    def test_mdraid_drops_raizn_flat(self):
        scale = ArrayScale(num_zones=12, zone_capacity=2 * MiB)
        md = run_gc_timeseries("mdraid", scale=scale, block_size=256 * KiB)
        rz = run_gc_timeseries("raizn", scale=scale, block_size=256 * KiB)
        # Observation 3: device GC collapses mdraid's throughput.
        assert md.throughput_drop > 0.5
        assert rz.phase2_mean_mib_s > 0.5 * rz.phase1_mean_mib_s


class TestDegraded:
    def test_degraded_read_point(self):
        point = run_degraded("raizn", "read", 256 * KiB, scale=TINY)
        assert point.system == "raizn/degraded"
        assert point.throughput_mib_s > 0

    def test_rejects_write_workload(self):
        with pytest.raises(ValueError):
            run_degraded("raizn", "write", 4 * KiB, scale=TINY)


class TestRebuildTtr:
    def test_raizn_ttr_scales_mdraid_constant(self):
        scale = ArrayScale(num_zones=10, zone_capacity=1 * MiB)
        raizn_small = raizn_ttr(0.25, scale)
        raizn_large = raizn_ttr(1.0, scale)
        assert raizn_large.ttr_seconds > 2 * raizn_small.ttr_seconds
        md_small = mdraid_ttr(0.25, scale)
        md_large = mdraid_ttr(1.0, scale)
        assert md_large.bytes_rebuilt == md_small.bytes_rebuilt
        # At 100% fill both systems rebuild the same amount (Figure 12).
        assert raizn_large.bytes_rebuilt == pytest.approx(
            md_large.bytes_rebuilt, rel=0.05)


APP_SCALE = ArrayScale(num_zones=15, zone_capacity=1 * MiB)


class TestApplications:
    def test_rocksdb_cells(self):
        cells = run_rocksdb("raizn", value_size=1000, num_ops=200,
                            scale=APP_SCALE,
                            workloads=("fillseq", "overwrite"))
        assert {c.workload for c in cells} == {"fillseq", "overwrite"}
        assert all(c.ops_per_second > 0 for c in cells)

    def test_sysbench_cell(self):
        cell = run_sysbench("raizn", "oltp_read_write", threads=4,
                            transactions=16, tables=2, rows=100,
                            scale=APP_SCALE)
        assert cell.tps > 0
        assert cell.p95_latency >= 0
