"""The perf harness itself: fixed-seed determinism and recorded results.

The datapath optimizations (zero-delay event lane, zero-copy media,
cached stripe layouts) are only admissible if they keep fixed-seed runs
byte-identical; these tests pin that property at the harness level.
"""

import json
import pathlib

from repro.harness.perfbench import (WRITE_PATH_SCENARIOS,
                                     run_datapath_bench)

_REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


class TestDeterminism:
    def test_same_seed_runs_are_identical(self):
        first = run_datapath_bench(fast=True)
        second = run_datapath_bench(fast=True)
        assert first.digest == second.digest
        for a, b in zip(first.scenarios, second.scenarios):
            assert a.name == b.name
            # Simulated clock, IO volume, and the media/stats digest all
            # replay exactly; only wall time may differ.
            assert a.sim_seconds == b.sim_seconds
            assert a.simulated_bytes == b.simulated_bytes
            assert a.digest == b.digest

    def test_different_seed_changes_the_digest(self):
        base = run_datapath_bench(fast=True, only=["seq_write"])
        other = run_datapath_bench(fast=True, only=["seq_write"], seed=99)
        assert base.digest != other.digest


class TestTracingOverhead:
    def test_traced_run_is_inert_and_measured(self):
        report = run_datapath_bench(fast=True,
                                    only=["seq_write", "tracing_overhead"])
        by_name = {s.name: s for s in report.scenarios}
        # Inert: tracing changes no simulation outcome, only observes it.
        assert by_name["tracing_overhead"].digest == \
            by_name["seq_write"].digest
        assert report.tracing_overhead_pct is not None
        # CPU-time delta from interleaved best-of-N pairs.  The design
        # budget is < 3% on an idle machine; shared CI boxes show far
        # larger process-to-process variance, so this bound is only a
        # gross-regression tripwire.
        assert report.tracing_overhead_pct < 25.0

    def test_no_overhead_number_without_both_scenarios(self):
        report = run_datapath_bench(fast=True, only=["seq_write"])
        assert report.tracing_overhead_pct is None


class TestRecordedResults:
    def test_bench_file_records_baseline_and_current(self):
        recorded = json.loads(
            (_REPO_ROOT / "BENCH_datapath.json").read_text())
        macro = recorded["write_path_macro"]
        assert macro["baseline_mib_per_wall_second"] > 0
        assert macro["current_mib_per_wall_second"] > 0
        # The committed refresh re-baselines against the previous PR's
        # tree, so the recorded speedup is the latest pass alone (1.15x
        # on a loaded single-CPU box), not cumulative.
        assert macro["speedup"] >= 1.1
        names = {s["name"] for s in recorded["current"]["scenarios"]}
        assert set(WRITE_PATH_SCENARIOS) <= names
        # The optimization pass is replay-neutral by construction: every
        # scenario digest must be identical between baseline and current.
        base = {s["name"]: s["digest"]
                for s in recorded["baseline"]["scenarios"]}
        for s in recorded["current"]["scenarios"]:
            assert s["digest"] == base[s["name"]], s["name"]
