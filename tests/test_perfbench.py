"""The perf harness itself: fixed-seed determinism and recorded results.

The datapath optimizations (zero-delay event lane, zero-copy media,
cached stripe layouts) are only admissible if they keep fixed-seed runs
byte-identical; these tests pin that property at the harness level.
"""

import dataclasses
import json
import pathlib

import pytest

from repro.harness.perfbench import (WRITE_PATH_SCENARIOS, check_digests,
                                     main, run_datapath_bench)

_REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


class TestDeterminism:
    def test_same_seed_runs_are_identical(self):
        first = run_datapath_bench(fast=True)
        second = run_datapath_bench(fast=True)
        assert first.digest == second.digest
        for a, b in zip(first.scenarios, second.scenarios):
            assert a.name == b.name
            # Simulated clock, IO volume, and the media/stats digest all
            # replay exactly; only wall time may differ.
            assert a.sim_seconds == b.sim_seconds
            assert a.simulated_bytes == b.simulated_bytes
            assert a.digest == b.digest

    def test_different_seed_changes_the_digest(self):
        base = run_datapath_bench(fast=True, only=["seq_write"])
        other = run_datapath_bench(fast=True, only=["seq_write"], seed=99)
        assert base.digest != other.digest


class TestTracingOverhead:
    def test_traced_run_is_inert_and_measured(self):
        report = run_datapath_bench(fast=True,
                                    only=["seq_write", "tracing_overhead"])
        by_name = {s.name: s for s in report.scenarios}
        # Inert: tracing changes no simulation outcome, only observes it.
        assert by_name["tracing_overhead"].digest == \
            by_name["seq_write"].digest
        assert report.tracing_overhead_pct is not None
        # CPU-time delta from interleaved best-of-N pairs.  The design
        # budget is < 3% on an idle machine; shared CI boxes show far
        # larger process-to-process variance, so this bound is only a
        # gross-regression tripwire.
        assert report.tracing_overhead_pct < 25.0

    def test_no_overhead_number_without_both_scenarios(self):
        report = run_datapath_bench(fast=True, only=["seq_write"])
        assert report.tracing_overhead_pct is None


class TestRecordedResults:
    def test_bench_file_records_baseline_and_current(self):
        recorded = json.loads(
            (_REPO_ROOT / "BENCH_datapath.json").read_text())
        macro = recorded["write_path_macro"]
        assert macro["baseline_mib_per_wall_second"] > 0
        assert macro["current_mib_per_wall_second"] > 0
        # The committed refresh re-baselines against the previous PR's
        # tree, so the recorded speedup is the latest pass alone (1.15x
        # on a loaded single-CPU box), not cumulative.
        assert macro["speedup"] >= 1.1
        names = {s["name"] for s in recorded["current"]["scenarios"]}
        assert set(WRITE_PATH_SCENARIOS) <= names
        # The optimization pass is replay-neutral by construction: every
        # scenario digest must be identical between baseline and current.
        base = {s["name"]: s["digest"]
                for s in recorded["baseline"]["scenarios"]}
        for s in recorded["current"]["scenarios"]:
            assert s["digest"] == base[s["name"]], s["name"]


class TestCheckDigests:
    """``--check`` must fail loudly on any divergence — including a
    scenario silently missing from the merged report and a reference
    whose comparison set is empty."""

    def _report(self):
        return run_datapath_bench(fast=True, only=["seq_write"],
                                  paired_tracing=False)

    def test_matching_reference_passes(self, tmp_path):
        report = self._report()
        ref = tmp_path / "ref.json"
        ref.write_text(json.dumps(report.to_json()))
        assert check_digests(report, str(ref),
                             expected_names=["seq_write"]) == []

    def test_mismatch_reported_per_scenario(self, tmp_path):
        report = self._report()
        doctored = report.to_json()
        doctored["scenarios"][0]["digest"] = "0" * 64
        ref = tmp_path / "ref.json"
        ref.write_text(json.dumps(doctored))
        problems = check_digests(report, str(ref),
                                 expected_names=["seq_write"])
        assert len(problems) == 1
        assert "seq_write" in problems[0]

    def test_scenario_missing_from_report_is_a_mismatch(self, tmp_path):
        """A worker result dropped from the merged report used to shrink
        the comparison set and pass; it must fail instead."""
        report = self._report()
        ref = tmp_path / "ref.json"
        ref.write_text(json.dumps(report.to_json()))
        gutted = dataclasses.replace(report, scenarios=[])
        problems = check_digests(gutted, str(ref))
        assert len(problems) == 1
        assert "missing from report" in problems[0]

    def test_only_subset_not_flagged_as_missing(self, tmp_path):
        """An ``--only`` run checked against the full committed report
        must only compare the scenarios it was asked to run."""
        report = self._report()
        full = report.to_json()
        full["scenarios"].append(
            dict(full["scenarios"][0], name="multizone_write"))
        ref = tmp_path / "ref.json"
        ref.write_text(json.dumps(full))
        assert check_digests(report, str(ref),
                             expected_names=["seq_write"]) == []
        problems = check_digests(report, str(ref))
        assert any("multizone_write" in p and "missing" in p
                   for p in problems)

    def test_bench_style_reference_accepted(self, tmp_path):
        """BENCH_datapath.json nests the report under ``current``; the
        checker used to see an empty scenario set there and always
        pass."""
        report = self._report()
        ref = tmp_path / "bench.json"
        ref.write_text(json.dumps({"current": report.to_json()}))
        assert check_digests(report, str(ref),
                             expected_names=["seq_write"]) == []
        doctored = report.to_json()
        doctored["scenarios"][0]["digest"] = "0" * 64
        ref.write_text(json.dumps({"current": doctored}))
        assert check_digests(report, str(ref),
                             expected_names=["seq_write"])

    def test_empty_reference_never_passes(self, tmp_path):
        report = self._report()
        ref = tmp_path / "empty.json"
        ref.write_text(json.dumps({"scenarios": []}))
        problems = check_digests(report, str(ref))
        assert problems and "no scenario digests" in problems[0]

    def test_main_exits_nonzero_on_mismatch(self, tmp_path, capsys):
        report = self._report()
        doctored = report.to_json()
        doctored["scenarios"][0]["digest"] = "0" * 64
        ref = tmp_path / "ref.json"
        ref.write_text(json.dumps(doctored))
        with pytest.raises(SystemExit) as excinfo:
            main(["--fast", "--quick", "--only", "seq_write",
                  "--check", str(ref)])
        assert excinfo.value.code == 1
        out = capsys.readouterr().out
        assert "DIGEST MISMATCH" in out and "seq_write" in out


class TestParallelJobs:
    def test_jobs_merge_matches_sequential(self):
        """The by-name parallel merge reproduces the sequential report's
        digests exactly, whatever order workers finish in."""
        sequential = run_datapath_bench(
            fast=True, only=["seq_write", "oltp_flush"],
            paired_tracing=False)
        parallel = run_datapath_bench(
            fast=True, only=["seq_write", "oltp_flush"], jobs=2,
            paired_tracing=False)
        assert parallel.digest == sequential.digest
        assert [s.name for s in parallel.scenarios] == \
            [s.name for s in sequential.scenarios]
        for a, b in zip(parallel.scenarios, sequential.scenarios):
            assert a.digest == b.digest
