"""Unit and integration tests for the LSM key-value store."""

import random

import pytest

from repro.apps import F2FS, LSMTree
from repro.apps.dbbench import make_key
from repro.sim import Simulator
from repro.units import KiB, MiB

from conftest import make_volume, pattern


@pytest.fixture
def lsm(sim):
    volume, _devices = make_volume(sim)
    fs = F2FS(sim, volume)
    return LSMTree(sim, fs, memtable_bytes=256 * KiB,
                   level_base_bytes=1 * MiB)


def run(sim, gen):
    return sim.run_process(gen)


class TestBasicOps:
    def test_put_get(self, sim, lsm):
        run(sim, lsm.put(b"k1", b"v1"))
        assert run(sim, lsm.get(b"k1")) == b"v1"

    def test_get_missing(self, sim, lsm):
        assert run(sim, lsm.get(b"nope")) is None

    def test_update_overwrites(self, sim, lsm):
        run(sim, lsm.put(b"k", b"old"))
        run(sim, lsm.put(b"k", b"new"))
        assert run(sim, lsm.get(b"k")) == b"new"

    def test_delete(self, sim, lsm):
        run(sim, lsm.put(b"k", b"v"))
        run(sim, lsm.delete(b"k"))
        assert run(sim, lsm.get(b"k")) is None

    def test_delete_survives_flush(self, sim, lsm):
        run(sim, lsm.put(b"k", b"v"))
        run(sim, lsm.flush())
        run(sim, lsm.delete(b"k"))
        run(sim, lsm.flush())
        assert run(sim, lsm.get(b"k")) is None

    def test_empty_value(self, sim, lsm):
        run(sim, lsm.put(b"k", b""))
        run(sim, lsm.flush())
        assert run(sim, lsm.get(b"k")) == b""


class TestFlushAndRead:
    def test_get_from_sstable(self, sim, lsm):
        value = pattern(4000, seed=1)
        run(sim, lsm.put(b"key", value))
        run(sim, lsm.flush())
        assert not lsm.memtable
        assert run(sim, lsm.get(b"key")) == value

    def test_newest_l0_wins(self, sim, lsm):
        run(sim, lsm.put(b"k", b"first"))
        run(sim, lsm.flush())
        run(sim, lsm.put(b"k", b"second"))
        run(sim, lsm.flush())
        assert run(sim, lsm.get(b"k")) == b"second"

    def test_memtable_shadows_sstables(self, sim, lsm):
        run(sim, lsm.put(b"k", b"disk"))
        run(sim, lsm.flush())
        run(sim, lsm.put(b"k", b"memory"))
        assert run(sim, lsm.get(b"k")) == b"memory"

    def test_automatic_flush_on_memtable_full(self, sim, lsm):
        value = pattern(4000, seed=2)
        for i in range(200):
            run(sim, lsm.put(make_key(i), value))
        assert lsm.flushes >= 1
        assert run(sim, lsm.get(make_key(0))) == value

    def test_wal_rotated_on_flush(self, sim, lsm):
        first_wal = lsm._wal_path
        run(sim, lsm.put(b"k", b"v"))
        run(sim, lsm.flush())
        assert lsm._wal_path != first_wal
        assert not lsm.fs.exists(first_wal)


class TestCompaction:
    def test_compaction_preserves_data(self, sim, lsm):
        rng = random.Random(3)
        expected = {}
        for i in range(600):
            key = make_key(rng.randrange(150))
            value = pattern(2000, seed=i)
            expected[key] = value
            run(sim, lsm.put(key, value))
        run(sim, lsm.flush())
        assert lsm.compactions >= 1
        for key, value in list(expected.items())[:50]:
            assert run(sim, lsm.get(key)) == value

    def test_compaction_moves_tables_down(self, sim, lsm):
        value = pattern(4000, seed=4)
        for i in range(400):
            run(sim, lsm.put(make_key(i), value))
        run(sim, lsm.flush())
        assert any(lsm.levels[1:][level] for level in
                   range(len(lsm.levels) - 1))

    def test_tombstones_survive_intermediate_compaction(self, sim, lsm):
        value = pattern(3000, seed=5)
        for i in range(200):
            run(sim, lsm.put(make_key(i), value))
        run(sim, lsm.flush())
        run(sim, lsm.delete(make_key(7)))
        for i in range(200, 400):
            run(sim, lsm.put(make_key(i), value))
        run(sim, lsm.flush())
        assert run(sim, lsm.get(make_key(7))) is None

    def test_scan(self, sim, lsm):
        for i in range(30):
            run(sim, lsm.put(make_key(i), b"v%d" % i))
        run(sim, lsm.flush())
        for i in range(30, 40):
            run(sim, lsm.put(make_key(i), b"v%d" % i))
        results = run(sim, lsm.scan(make_key(5), 10))
        assert [k for k, _v in results] == [make_key(i)
                                            for i in range(5, 15)]
        assert results[0][1] == b"v5"

    def test_randomized_model_check(self, sim, lsm):
        """The LSM agrees with a plain dict under random churn."""
        rng = random.Random(6)
        model = {}
        for step in range(800):
            key = make_key(rng.randrange(100))
            action = rng.random()
            if action < 0.6:
                value = pattern(rng.randrange(100, 2000), seed=step)
                model[key] = value
                run(sim, lsm.put(key, value))
            elif action < 0.8:
                model.pop(key, None)
                run(sim, lsm.delete(key))
            else:
                assert run(sim, lsm.get(key)) == model.get(key)
        for key, value in model.items():
            assert run(sim, lsm.get(key)) == value
