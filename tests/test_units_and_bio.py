"""Unit tests for byte units and the bio abstraction."""

import pytest

from repro.block import Bio, BioFlags, Op
from repro.block.timing import (
    ServiceTimeModel,
    conventional_ssd_model,
    zns_zn540_model,
)
from repro.errors import InvalidAddressError
from repro.units import (
    KiB,
    MiB,
    SECTOR_SIZE,
    check_sector_aligned,
    fmt_bytes,
    is_sector_aligned,
    sectors,
)


class TestUnits:
    def test_sectors_rounds_up(self):
        assert sectors(0) == 0
        assert sectors(1) == 1
        assert sectors(SECTOR_SIZE) == 1
        assert sectors(SECTOR_SIZE + 1) == 2

    def test_sectors_rejects_negative(self):
        with pytest.raises(ValueError):
            sectors(-1)

    def test_alignment_predicates(self):
        assert is_sector_aligned(0)
        assert is_sector_aligned(8 * KiB)
        assert not is_sector_aligned(100)
        check_sector_aligned(4 * KiB)
        with pytest.raises(ValueError):
            check_sector_aligned(5)

    def test_fmt_bytes(self):
        assert fmt_bytes(512) == "512.0B"
        assert fmt_bytes(64 * KiB) == "64.0KiB"
        assert fmt_bytes(3 * MiB) == "3.0MiB"


class TestBioConstruction:
    def test_write_captures_length(self):
        bio = Bio.write(0, b"\x00" * 4096)
        assert bio.op is Op.WRITE and bio.length == 4096

    def test_write_requires_data(self):
        with pytest.raises(ValueError):
            Bio(Op.WRITE, offset=0)

    def test_read_requires_length(self):
        with pytest.raises(ValueError):
            Bio(Op.READ, offset=0, length=0)

    def test_negative_offset_rejected(self):
        with pytest.raises(InvalidAddressError):
            Bio.read(-4096, 4096)

    def test_flags(self):
        bio = Bio.write(0, b"\x00" * 4096,
                        BioFlags.FUA | BioFlags.PREFLUSH)
        assert bio.is_fua and bio.is_preflush
        assert not Bio.flush().is_fua

    def test_end_offset(self):
        assert Bio.read(4096, 8192).end_offset == 12288

    def test_zone_ops_carry_offset(self):
        assert Bio.zone_reset(2 * MiB).offset == 2 * MiB
        assert Bio.zone_finish(MiB).op is Op.ZONE_FINISH
        assert Bio.zone_open(0).op is Op.ZONE_OPEN
        assert Bio.zone_close(0).op is Op.ZONE_CLOSE

    def test_alignment_check(self):
        Bio.write(0, b"\x00" * SECTOR_SIZE).check_alignment()
        with pytest.raises(InvalidAddressError):
            Bio.write(100, b"\x00" * SECTOR_SIZE).check_alignment()
        with pytest.raises(InvalidAddressError):
            Bio.write(0, b"\x00" * 100).check_alignment()
        Bio.flush().check_alignment()  # non-data ops are exempt

    def test_latency_requires_completion(self):
        bio = Bio.read(0, 4096)
        with pytest.raises(ValueError):
            _ = bio.latency
        bio.submit_time, bio.complete_time = 1.0, 1.5
        assert bio.latency == pytest.approx(0.5)


class TestServiceTimeModel:
    def test_write_faster_ack_than_read(self):
        model = zns_zn540_model()
        write = model.service_time(Op.WRITE, 4096)
        read = model.service_time(Op.READ, 4096)
        assert write < read  # cache-hit ack vs media read

    def test_transfer_scales_with_size(self):
        model = zns_zn540_model()
        small = model.service_time(Op.WRITE, 4 * KiB)
        large = model.service_time(Op.WRITE, 1 * MiB)
        assert large > small

    def test_aggregate_bandwidth_reachable(self):
        model = zns_zn540_model()
        size = 1 * MiB
        per_channel = model.service_time(Op.WRITE, size) \
            - model.write_base_latency
        aggregate = size / per_channel * model.channels
        assert aggregate == pytest.approx(1052 * MiB, rel=0.01)

    def test_conventional_slightly_faster(self):
        zns, conv = zns_zn540_model(), conventional_ssd_model()
        assert conv.write_bandwidth > zns.write_bandwidth
        assert conv.read_bandwidth > zns.read_bandwidth

    def test_jitter_bounded(self):
        import random
        model = ServiceTimeModel(read_bandwidth=MiB, write_bandwidth=MiB,
                                 jitter=0.1)
        rng = random.Random(0)
        base = model.service_time(Op.FLUSH, 0)
        for _ in range(100):
            jittered = model.service_time(Op.FLUSH, 0, rng)
            assert 0.9 * base <= jittered <= 1.1 * base

    def test_zone_mgmt_ops_have_fixed_cost(self):
        model = zns_zn540_model()
        assert model.service_time(Op.ZONE_RESET, 0) == \
            model.zone_mgmt_latency + model.command_overhead
        assert model.service_time(Op.FLUSH, 0) == \
            model.flush_latency + model.command_overhead

    def test_pipeline_latency_split(self):
        model = zns_zn540_model()
        assert model.pipeline_latency(Op.READ) == model.read_base_latency
        assert model.pipeline_latency(Op.WRITE) == model.write_base_latency
        assert model.pipeline_latency(Op.FLUSH) == 0.0
        assert model.service_time(Op.READ, 4096) == pytest.approx(
            model.occupancy_time(Op.READ, 4096)
            + model.read_base_latency)
