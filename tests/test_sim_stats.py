"""Unit and property tests for the measurement helpers."""

import pytest
from hypothesis import given, strategies as st

from repro.sim import LatencyStats, ThroughputSeries, throughput_mib_s
from repro.units import MiB


class TestLatencyStats:
    def test_empty_percentile_raises(self):
        with pytest.raises(ValueError):
            LatencyStats().percentile(50)

    def test_empty_collector_uniform_errors(self):
        """Every statistic on an empty collector raises the same
        ``ValueError`` — ``maximum`` used to leak a bare ``IndexError``."""
        stats = LatencyStats()
        for attribute in ("mean", "median", "p95", "p99", "p999", "maximum"):
            with pytest.raises(ValueError, match="no latency samples"):
                getattr(stats, attribute)
        with pytest.raises(ValueError, match="no latency samples"):
            stats.summary()

    def test_summary_on_one_sample(self):
        stats = LatencyStats()
        stats.add(0.25)
        summary = stats.summary()
        assert summary["count"] == 1
        assert all(summary[key] == 0.25 for key in
                   ("mean", "median", "p95", "p99", "p99.9", "max"))

    def test_single_sample(self):
        stats = LatencyStats()
        stats.add(0.5)
        assert stats.median == 0.5
        assert stats.p999 == 0.5
        assert stats.maximum == 0.5

    def test_median_of_known_set(self):
        stats = LatencyStats()
        stats.extend([1.0, 2.0, 3.0, 4.0, 5.0])
        assert stats.median == 3.0
        assert stats.mean == 3.0

    def test_percentile_interpolates(self):
        stats = LatencyStats()
        stats.extend([0.0, 1.0])
        assert stats.percentile(25) == pytest.approx(0.25)

    def test_out_of_range_percentile(self):
        stats = LatencyStats()
        stats.add(1.0)
        with pytest.raises(ValueError):
            stats.percentile(101)

    def test_unsorted_input_handled(self):
        stats = LatencyStats()
        stats.extend([5.0, 1.0, 3.0])
        assert stats.median == 3.0
        assert stats.maximum == 5.0

    def test_summary_keys(self):
        stats = LatencyStats()
        stats.extend([1.0, 2.0])
        summary = stats.summary()
        assert set(summary) == {"count", "mean", "median", "p95", "p99",
                                "p99.9", "max"}
        assert summary["count"] == 2

    @given(st.lists(st.floats(min_value=0, max_value=1e3,
                              allow_subnormal=False),
                    min_size=1, max_size=200))
    def test_percentiles_monotonic(self, samples):
        stats = LatencyStats()
        stats.extend(samples)
        values = [stats.percentile(p) for p in (0, 25, 50, 75, 99, 100)]
        assert values == sorted(values)
        assert values[0] == min(samples)
        assert values[-1] == max(samples)

    @given(st.lists(st.floats(min_value=0, max_value=1e3,
                              allow_subnormal=False),
                    min_size=1, max_size=100))
    def test_mean_bounded_by_extremes(self, samples):
        stats = LatencyStats()
        stats.extend(samples)
        # Summation rounding can undershoot the minimum by an ULP.
        assert min(samples) * (1 - 1e-12) - 1e-300 <= stats.mean
        assert stats.mean <= max(samples) * (1 + 1e-12) + 1e-300


class TestPercentilesBatch:
    def test_empty_raises(self):
        with pytest.raises(ValueError, match="no latency samples"):
            LatencyStats().percentiles((50.0,))

    def test_empty_request_on_empty_window(self):
        """No samples AND no requested percentiles: nothing to resolve,
        so the batch form returns an empty dict instead of raising."""
        assert LatencyStats().percentiles(()) == {}

    def test_empty_request_on_populated_window(self):
        stats = LatencyStats()
        stats.add(1.0)
        assert stats.percentiles(()) == {}

    def test_scalar_and_batch_raise_identically_on_empty(self):
        stats = LatencyStats()
        with pytest.raises(ValueError, match="no latency samples"):
            stats.percentile(50.0)
        with pytest.raises(ValueError, match="no latency samples"):
            stats.percentiles((50.0,))

    def test_matches_scalar_percentile(self):
        stats = LatencyStats()
        stats.extend([5.0, 1.0, 3.0, 2.0, 4.0])
        batch = stats.percentiles((0.0, 25.0, 50.0, 99.0, 100.0))
        for pct, value in batch.items():
            assert value == stats.percentile(pct)

    def test_edge_percentiles(self):
        stats = LatencyStats()
        stats.extend([2.0, 8.0, 4.0])
        batch = stats.percentiles((0.0, 100.0))
        assert batch[0.0] == 2.0
        assert batch[100.0] == 8.0

    def test_single_sample_all_percentiles_collapse(self):
        stats = LatencyStats()
        stats.add(0.75)
        batch = stats.percentiles((0.0, 50.0, 99.9, 100.0))
        assert set(batch.values()) == {0.75}

    def test_interpolation_between_samples(self):
        stats = LatencyStats()
        stats.extend([0.0, 1.0])
        batch = stats.percentiles((25.0, 50.0, 75.0))
        assert batch[25.0] == pytest.approx(0.25)
        assert batch[50.0] == pytest.approx(0.5)
        assert batch[75.0] == pytest.approx(0.75)

    def test_out_of_range_rejected(self):
        stats = LatencyStats()
        stats.add(1.0)
        with pytest.raises(ValueError):
            stats.percentiles((50.0, 101.0))

    @given(st.lists(st.floats(min_value=0, max_value=1e3,
                              allow_subnormal=False),
                    min_size=1, max_size=100),
           st.lists(st.floats(min_value=0, max_value=100),
                    min_size=1, max_size=10))
    def test_scalar_batch_unified(self, samples, pcts):
        """Both entry points route through the same interpolation, so
        they agree bit-for-bit on any sample set and percentile."""
        stats = LatencyStats()
        stats.extend(samples)
        batch = stats.percentiles(pcts)
        for pct in pcts:
            assert batch[pct] == stats.percentile(pct)


class TestHistogram:
    def test_empty_histogram(self):
        assert LatencyStats().histogram() == []

    def test_invalid_bucket_count(self):
        stats = LatencyStats()
        stats.add(1.0)
        with pytest.raises(ValueError, match="num_buckets"):
            stats.histogram(num_buckets=0)

    def test_single_sample_single_bucket(self):
        stats = LatencyStats()
        stats.add(0.5)
        assert stats.histogram() == [(0.5, 1)]

    def test_identical_samples_collapse(self):
        stats = LatencyStats()
        stats.extend([2.0] * 7)
        assert stats.histogram(num_buckets=8) == [(2.0, 7)]

    def test_counts_sum_to_sample_count(self):
        stats = LatencyStats()
        stats.extend([0.001 * (i + 1) for i in range(100)])
        histogram = stats.histogram(num_buckets=10)
        assert len(histogram) == 10
        assert sum(count for _, count in histogram) == 100

    def test_bounds_monotonic_and_pinned_to_max(self):
        stats = LatencyStats()
        stats.extend([1e-4, 3e-4, 1e-3, 9e-3, 2e-2])
        histogram = stats.histogram(num_buckets=6)
        bounds = [bound for bound, _ in histogram]
        assert bounds == sorted(bounds)
        assert bounds[-1] == 2e-2

    def test_zero_minimum_falls_back_to_linear(self):
        stats = LatencyStats()
        stats.extend([0.0, 0.25, 0.5, 0.75, 1.0])
        histogram = stats.histogram(num_buckets=4)
        bounds = [bound for bound, _ in histogram]
        assert bounds == pytest.approx([0.25, 0.5, 0.75, 1.0])
        assert [count for _, count in histogram] == [2, 1, 1, 1]

    @given(st.lists(st.floats(min_value=1e-6, max_value=1e3,
                              allow_subnormal=False),
                    min_size=1, max_size=200),
           st.integers(min_value=1, max_value=32))
    def test_histogram_conserves_mass(self, samples, num_buckets):
        stats = LatencyStats()
        stats.extend(samples)
        histogram = stats.histogram(num_buckets=num_buckets)
        assert sum(count for _, count in histogram) == len(samples)
        bounds = [bound for bound, _ in histogram]
        assert bounds == sorted(bounds)


class TestThroughputSeries:
    def test_empty_series(self):
        assert ThroughputSeries().series() == []

    def test_bucket_accumulation(self):
        series = ThroughputSeries(bucket_seconds=1.0)
        series.record(0.5, 10 * MiB)
        series.record(0.9, 10 * MiB)
        series.record(2.5, 5 * MiB)
        points = series.series()
        assert points[0] == (0.0, 20.0)
        assert points[1] == (1.0, 0.0)  # gaps reported as zero
        assert points[2] == (2.0, 5.0)

    def test_total_bytes(self):
        series = ThroughputSeries()
        series.record(0.1, 100)
        series.record(5.0, 200)
        assert series.total_bytes == 300

    def test_mean_throughput(self):
        series = ThroughputSeries()
        series.record(0.0, 10 * MiB)
        series.record(10.0, 10 * MiB)
        assert series.mean_throughput_mib_s() == pytest.approx(2.0)

    def test_invalid_bucket_width(self):
        with pytest.raises(ValueError):
            ThroughputSeries(bucket_seconds=0)

    def test_throughput_helper(self):
        assert throughput_mib_s(10 * MiB, 2.0) == 5.0
        with pytest.raises(ValueError):
            throughput_mib_s(1, 0)

    @given(st.lists(st.tuples(st.floats(min_value=0, max_value=100),
                              st.integers(min_value=0, max_value=10 * MiB)),
                    min_size=1, max_size=50))
    def test_series_conserves_bytes(self, records):
        series = ThroughputSeries(bucket_seconds=1.0)
        for at, nbytes in records:
            series.record(at, nbytes)
        total_from_series = sum(v for _t, v in series.series()) * MiB
        assert total_from_series == pytest.approx(series.total_bytes)
