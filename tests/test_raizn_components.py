"""Unit tests for RAIZN's smaller components: stripe buffers, persistence
bitmaps, zone descriptors, and the relocation store."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import RaiznError
from repro.raizn.relocation import RelocatedUnit, RelocationStore
from repro.raizn.stripebuf import StripeBuffer, StripeBufferPool
from repro.raizn.zonedesc import LogicalZoneDesc, PersistenceBitmap
from repro.units import KiB
from repro.zns import ZoneState


class TestStripeBuffer:
    def test_sequential_absorb(self):
        buffer = StripeBuffer(0, 0, num_data=2, su=16)
        buffer.absorb(0, b"\x01" * 10)
        buffer.absorb(10, b"\x02" * 10)
        assert buffer.fill_end == 20
        assert not buffer.full
        buffer.absorb(20, b"\x03" * 12)
        assert buffer.full

    def test_non_sequential_absorb_rejected(self):
        buffer = StripeBuffer(0, 0, num_data=2, su=16)
        with pytest.raises(RaiznError):
            buffer.absorb(4, b"\x01" * 4)

    def test_overflow_rejected(self):
        buffer = StripeBuffer(0, 0, num_data=2, su=16)
        with pytest.raises(RaiznError):
            buffer.absorb(0, b"\x01" * 40)

    def test_data_unit_zero_padded(self):
        buffer = StripeBuffer(0, 0, num_data=2, su=16)
        buffer.absorb(0, b"\xff" * 4)
        assert buffer.data_unit(0) == b"\xff" * 4 + bytes(12)
        assert buffer.data_unit(1) == bytes(16)

    def test_full_parity_equals_xor_of_units(self):
        buffer = StripeBuffer(0, 0, num_data=3, su=8)
        buffer.absorb(0, bytes(range(24)))
        parity = buffer.full_parity()
        expected = bytes(a ^ b ^ c for a, b, c in
                         zip(bytes(range(8)), bytes(range(8, 16)),
                             bytes(range(16, 24))))
        assert parity == expected

    def test_delta_parity_empty_chunk_rejected(self):
        with pytest.raises(RaiznError):
            StripeBuffer.delta_parity(0, b"", 16)


class TestStripeBufferPool:
    def test_acquire_release_cycle(self):
        pool = StripeBufferPool(0, num_data=2, su=16, capacity=2)
        a = pool.acquire(0)
        assert pool.acquire(0) is a  # same stripe, same buffer
        b = pool.acquire(1)
        assert pool.occupied == 2
        assert pool.acquire(2) is None  # exhausted
        pool.release(0)
        assert pool.acquire(2) is not None

    def test_active_sorted(self):
        pool = StripeBufferPool(0, num_data=2, su=16, capacity=4)
        for stripe in (3, 1, 2):
            pool.acquire(stripe)
        assert [b.stripe for b in pool.active()] == [1, 2, 3]

    def test_clear(self):
        pool = StripeBufferPool(0, num_data=2, su=16, capacity=4)
        pool.acquire(0)
        pool.clear()
        assert pool.occupied == 0
        assert pool.get(0) is None


class TestPersistenceBitmap:
    def test_mark_and_frontier(self):
        bitmap = PersistenceBitmap(8)
        bitmap.mark_persisted(0)
        bitmap.mark_persisted(1)
        assert bitmap.frontier == 2
        bitmap.mark_persisted(3)
        assert bitmap.frontier == 2  # gap at 2

    def test_mark_up_to(self):
        bitmap = PersistenceBitmap(8)
        bitmap.mark_up_to(5)
        assert bitmap.frontier == 5
        assert bitmap.is_persisted(4)
        assert not bitmap.is_persisted(5)

    def test_unpersisted_in(self):
        bitmap = PersistenceBitmap(8)
        bitmap.mark_persisted(1)
        assert bitmap.unpersisted_in(0, 4) == [0, 2, 3]
        bitmap.mark_up_to(4)
        assert bitmap.unpersisted_in(0, 4) == []

    def test_reset(self):
        bitmap = PersistenceBitmap(4)
        bitmap.mark_up_to(4)
        bitmap.reset()
        assert bitmap.frontier == 0

    @given(st.lists(st.integers(0, 31), max_size=64))
    def test_frontier_invariant(self, marks):
        bitmap = PersistenceBitmap(32)
        for index in marks:
            bitmap.mark_persisted(index)
        assert all(bitmap.bits[i] for i in range(bitmap.frontier))
        assert bitmap.frontier == 32 or not bitmap.bits[bitmap.frontier]


class TestLogicalZoneDesc:
    def make(self):
        return LogicalZoneDesc(zone=2, start_lba=8 * 1024 * 1024,
                               capacity=4 * 1024 * 1024, num_data=4,
                               su=64 * KiB, stripe_buffers=8)

    def test_initial_state(self):
        desc = self.make()
        assert desc.state is ZoneState.EMPTY
        assert desc.write_pointer == desc.start_lba
        assert desc.written_bytes == 0

    def test_su_index_of(self):
        desc = self.make()
        assert desc.su_index_of(desc.start_lba) == 0
        assert desc.su_index_of(desc.start_lba + 64 * KiB) == 1
        assert desc.su_index_of(desc.start_lba + 64 * KiB - 1) == 0

    def test_reset_clears_everything(self):
        desc = self.make()
        desc.write_pointer += 128 * KiB
        desc.state = ZoneState.IMPLICIT_OPEN
        desc.has_relocations = True
        desc.persistence.mark_up_to(2)
        desc.buffers.acquire(0)
        desc.reset()
        assert desc.state is ZoneState.EMPTY
        assert desc.write_pointer == desc.start_lba
        assert not desc.has_relocations
        assert desc.persistence.frontier == 0
        assert desc.buffers.occupied == 0


class TestRelocation:
    def test_unit_write_and_read(self):
        unit = RelocatedUnit(su_lba=1000 * KiB, device=1, su_size=64 * KiB)
        unit.write(1000 * KiB + 4096, b"\xab" * 4096)
        assert unit.covers(1000 * KiB + 4096, 4096)
        assert not unit.covers(1000 * KiB, 4096)
        assert unit.read(1000 * KiB + 4096, 4096) == b"\xab" * 4096

    def test_extent_merge(self):
        unit = RelocatedUnit(0, 0, 64 * KiB)
        unit.write(0, b"\x01" * 4096)
        unit.write(4096, b"\x02" * 4096)
        assert unit.extents == [(0, 8192)]
        assert unit.covers(0, 8192)

    def test_out_of_bounds_write_rejected(self):
        unit = RelocatedUnit(0, 0, 4096)
        with pytest.raises(ValueError):
            unit.write(4096, b"\x00" * 10)

    def test_overlaps_relative_ranges(self):
        unit = RelocatedUnit(0, 0, 64 * KiB)
        unit.write(8192, b"\x01" * 4096)
        assert unit.overlaps(4096, 12288) == [(4096, 8192)]
        assert unit.overlaps(0, 4096) == []

    def test_store_counts_per_zone(self):
        store = RelocationStore(su_size=64 * KiB)
        store.unit_for(0, device=1, phys_zone=0)
        store.unit_for(64 * KiB, device=1, phys_zone=0)
        store.unit_for(0, device=1, phys_zone=0)  # same unit, no recount
        assert store.per_phys_zone[(1, 0)] == 2
        assert len(store) == 2

    def test_store_drop_zone(self):
        store = RelocationStore(su_size=64 * KiB)
        store.unit_for(0, device=0, phys_zone=0)
        store.unit_for(4 * 1024 * 1024, device=0, phys_zone=1)
        store.drop_zone(0, 4 * 1024 * 1024)
        store.rebuild_counters(lambda unit: 1)
        assert len(store) == 1
        assert store.lookup(0) is None

    def test_units_on_device(self):
        store = RelocationStore(su_size=64 * KiB)
        store.unit_for(0, device=0, phys_zone=0)
        store.unit_for(64 * KiB, device=2, phys_zone=0)
        assert [u.device for u in store.units_on_device(2)] == [2]
