"""Figure 9: RAIZN vs mdraid — throughput, median latency, and
99.9th-percentile latency across block sizes at the 64 KiB stripe unit.

Paper shape (Observation 2): RAIZN achieves comparable throughput and
tail latency; mdraid wins small (4–64 KiB) writes (RAIZN pays the parity
log header per small write) and small sequential reads, while RAIZN is
strong on large (256 KiB–1 MiB) sequential IO.
"""

from repro.harness import format_table, points_table, raizn_vs_mdraid
from repro.units import KiB, MiB

from conftest import BENCH_BLOCK_SIZES, BENCH_SCALE, run_once


def _by(points, system, workload, block_size):
    (point,) = [p for p in points if p.system == system
                and p.workload == workload and p.block_size == block_size]
    return point


def test_fig9_raizn_vs_mdraid(benchmark, print_rows):
    points = run_once(benchmark, lambda: raizn_vs_mdraid(
        block_sizes=BENCH_BLOCK_SIZES, scale=BENCH_SCALE))
    print_rows(
        "Figure 9: RAIZN vs mdraid (throughput MiB/s, latency us)",
        format_table(["system", "workload", "bs KiB", "MiB/s",
                      "p50 us", "p99.9 us"], points_table(points)))

    # mdraid outperforms on small writes (parity-log header overhead)...
    md = _by(points, "mdraid", "write", 4 * KiB)
    rz = _by(points, "raizn", "write", 4 * KiB)
    assert md.throughput_mib_s > rz.throughput_mib_s

    # ...while RAIZN is within ~25% of mdraid on large sequential IO and
    # random reads (the paper reports near-parity).
    for workload in ("write", "read", "randread"):
        md = _by(points, "mdraid", workload, 1 * MiB)
        rz = _by(points, "raizn", workload, 1 * MiB)
        assert rz.throughput_mib_s > 0.75 * md.throughput_mib_s, workload

    # Tail latency stays in the same order of magnitude at large sizes.
    md = _by(points, "mdraid", "write", 1 * MiB)
    rz = _by(points, "raizn", "write", 1 * MiB)
    assert rz.p999_latency < 5 * md.p999_latency
    benchmark.extra_info["cells"] = len(points)
