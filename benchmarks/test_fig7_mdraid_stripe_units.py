"""Figure 7: mdraid throughput by block size, 16 KiB vs 64 KiB stripe
units.

Paper shape: 64 KiB stripe units substantially improve random-read
throughput; 16 KiB stripe units slightly win large sequential reads.
"""

from repro.harness import format_table, points_table, stripe_unit_sweep
from repro.units import KiB, MiB

from conftest import BENCH_BLOCK_SIZES, BENCH_SCALE, run_once


def _by(points, system_suffix, workload, block_size):
    (point,) = [p for p in points if p.system.endswith(system_suffix)
                and p.workload == workload and p.block_size == block_size]
    return point


def test_fig7_mdraid_stripe_unit_sweep(benchmark, print_rows):
    points = run_once(benchmark, lambda: stripe_unit_sweep(
        "mdraid", stripe_units=(16 * KiB, 64 * KiB),
        block_sizes=BENCH_BLOCK_SIZES, scale=BENCH_SCALE))
    print_rows(
        "Figure 7: mdraid stripe-unit sweep "
        "(throughput MiB/s, latency us)",
        format_table(["system", "workload", "bs KiB", "MiB/s",
                      "p50 us", "p99.9 us"], points_table(points)))

    # 64 KiB SUs win random reads once the block spans multiple 16 KiB
    # chunks (fewer sub-IOs per logical IO) — Figure 7's randread gap.
    rr16 = _by(points, "su=16K", "randread", 256 * KiB)
    rr64 = _by(points, "su=64K", "randread", 256 * KiB)
    assert rr64.throughput_mib_s > rr16.throughput_mib_s
    # Sequential small writes coalesce into full-stripe updates under
    # md's plugging, so the stripe-unit size barely matters there.
    w16 = _by(points, "su=16K", "write", 4 * KiB)
    w64 = _by(points, "su=64K", "write", 4 * KiB)
    assert 0.8 < w16.throughput_mib_s / w64.throughput_mib_s < 1.25
    # Large sequential reads stay within the same ballpark.
    sr16 = _by(points, "su=16K", "read", 1 * MiB)
    sr64 = _by(points, "su=64K", "read", 1 * MiB)
    assert 0.5 < sr64.throughput_mib_s / sr16.throughput_mib_s < 2.0
    benchmark.extra_info["cells"] = len(points)
