"""Wall-clock regression guard for the simulator datapath.

``BENCH_datapath.json`` commits a before/after measurement of the
datapath fast-path work (best-of-5, same harness, same machine, back to
back); this benchmark re-runs the write-path scenarios at a reduced
scale so CI notices if the fast path rots, without paying for the
full-scale measurement.
"""

import json
import pathlib

from repro.harness.perfbench import run_datapath_bench

from conftest import run_once

_REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


def test_recorded_speedup_met_the_target():
    recorded = json.loads((_REPO_ROOT / "BENCH_datapath.json").read_text())
    macro = recorded["write_path_macro"]
    # The committed file is re-baselined each optimization pass against
    # the previous PR's tree, so the recorded speedup is that single
    # pass's gain (1.69x for the latest), not a cumulative multiple.
    # Each refresh must still represent a real improvement.
    assert macro["speedup"] >= 1.1, (
        "committed measurement no longer shows a write-path improvement "
        "over its recorded baseline; re-run `python -m "
        "repro.harness.perfbench --repeat 5` and investigate before "
        "updating BENCH_datapath.json")
    assert macro["current_mib_per_wall_second"] > \
        macro["baseline_mib_per_wall_second"]


def test_write_path_smoke(benchmark, print_rows):
    report = run_once(benchmark, lambda: run_datapath_bench(
        fast=True, only=["seq_write", "multizone_write", "oltp_flush"],
        repeats=2))
    rows = "\n".join(
        f"{s.name:<18}{s.mib_per_wall_second:>10.1f} MiB/wall-s"
        for s in report.scenarios)
    print_rows("datapath write-path smoke (FAST_SCALE)", rows)
    # Determinism across the two repeats is asserted inside the harness;
    # here we only require that the fast path still moves data.
    assert report.write_path_mib_per_wall_second > 0
