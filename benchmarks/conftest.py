"""Shared configuration for the paper-reproduction benchmarks.

Each benchmark file regenerates one table or figure of the paper at a
scaled-down geometry (see DESIGN.md), prints the reproduced rows/series,
and asserts the paper's qualitative shape.  pytest-benchmark records the
wall time of each experiment; the simulated-time metrics are attached as
``extra_info`` and printed to stdout (run with ``-s`` to see them).
"""

from __future__ import annotations

import pytest

from repro.harness import ArrayScale
from repro.units import KiB, MiB

#: Geometry used by the microbenchmark figures: 5 devices, 13 data zones
#: of 2 MiB per device → a 104 MiB RAIZN volume.  Large enough for the
#: effects (parity logging, stripe cache, GC) to appear, small enough for
#: every figure to regenerate in seconds.
BENCH_SCALE = ArrayScale(num_zones=16, zone_capacity=2 * MiB)

#: Block sizes swept by Figures 7–9 (paper: 4 KiB – 1 MiB).
BENCH_BLOCK_SIZES = (4 * KiB, 64 * KiB, 256 * KiB, 1 * MiB)


@pytest.fixture
def print_rows(capsys):
    """Print a results table even under pytest's output capture."""
    def emit(title: str, text: str) -> None:
        with capsys.disabled():
            print(f"\n=== {title} ===")
            print(text)
    return emit


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
