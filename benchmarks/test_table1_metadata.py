"""Table 1: location and size of RAIZN metadata (paper §4.3).

Regenerates the table from real encoded metadata entries and a live
volume; checks the storage-per-update numbers the paper reports.
"""

from repro.harness import format_table, measured_entry_sizes, table1_rows
from repro.units import KiB

from conftest import BENCH_SCALE, run_once


def test_table1_metadata(benchmark, print_rows):
    rows = run_once(benchmark, lambda: table1_rows(BENCH_SCALE))
    print_rows("Table 1: RAIZN metadata", format_table(
        ["Metadata type", "Persistent location", "Storage per update",
         "Memory footprint"],
        [[r.metadata_type, r.persistent_location, r.storage_per_update,
          r.memory_footprint] for r in rows]))

    sizes = measured_entry_sizes()
    # Paper: every metadata update carries a 4 KiB header; stripe-unit
    # payloads add their sector-padded size.
    assert sizes["zone_reset"] == 4 * KiB
    assert sizes["generation"] == 4 * KiB
    assert sizes["relocated_su"] == 4 * KiB + 64 * KiB
    assert sizes["partial_parity_full"] == 4 * KiB + 64 * KiB
    benchmark.extra_info["entry_sizes"] = sizes
