"""Figure 14: sysbench OLTP (MyRocks-style) on RAIZN vs mdraid.

Paper shape: RAIZN performs within error or better than mdraid on TPS,
average latency, and p95 latency across oltp_read_only, oltp_write_only,
and oltp_read_write at both thread counts.
"""

from repro.harness import ArrayScale, format_table, sysbench_comparison
from repro.units import MiB

from conftest import run_once

OLTP_SCALE = ArrayScale(num_zones=19, zone_capacity=2 * MiB)


def test_fig14_sysbench(benchmark, print_rows):
    cells = run_once(benchmark, lambda: sysbench_comparison(
        thread_counts=(64, 128), transactions=256, tables=4, rows=1500,
        scale=OLTP_SCALE))
    print_rows("Figure 14: sysbench OLTP", format_table(
        ["system", "workload", "threads", "TPS", "avg ms", "p95 ms"],
        [[c.system, c.workload, c.threads, round(c.tps),
          round(c.avg_latency * 1e3, 2), round(c.p95_latency * 1e3, 2)]
         for c in cells]))

    by_key = {}
    for cell in cells:
        by_key.setdefault((cell.workload, cell.threads), {})[
            cell.system] = cell
    for (workload, threads), pair in by_key.items():
        ratio = pair["raizn"].tps / pair["mdraid"].tps
        assert ratio > 0.6, (workload, threads, ratio)
    benchmark.extra_info["pairs"] = len(by_key)
