"""Ablation: overprovisioning depth vs the Figure 10 GC collapse.

The paper attributes mdraid's collapse to the conventional SSDs
exhausting their overprovisioned blocks.  This ablation sweeps the FTL's
overprovisioning ratio and shows the mechanism directly: more OP delays
and softens the collapse (GC victims carry less valid data), while the
collapse depth at fixed OP is what Figure 10 measures.
"""

from repro.conv import ConventionalSSD
from repro.harness import format_table
from repro.mdraid import MdraidVolume
from repro.sim import Simulator
from repro.units import KiB, MiB
from repro.workloads import run_overwrite

from conftest import run_once

OP_RATIOS = (0.07, 0.15, 0.30)
CAPACITY = 48 * MiB


def _collapse_for(op_ratio: float):
    sim = Simulator()
    devices = [ConventionalSSD(sim, name=f"c{i}", capacity_bytes=CAPACITY,
                               op_ratio=op_ratio, seed=i)
               for i in range(5)]
    volume = MdraidVolume(sim, devices)
    result = run_overwrite(sim, volume, block_size=256 * KiB, iodepth=8,
                           threads=5, bucket_seconds=0.002)
    series = result.throughput_series()
    phase1 = [v for t, v in series if t < result.phase2_start and v > 0]
    phase2 = [v for t, v in series if t >= result.phase2_start and v > 0]
    phase1_mean = sum(phase1) / len(phase1)
    phase2_mean = sum(phase2) / len(phase2)
    wa = sum(d.write_amplification for d in devices) / len(devices)
    return phase1_mean, phase2_mean, wa


def test_ablation_overprovisioning(benchmark, print_rows):
    results = run_once(benchmark, lambda: {
        op: _collapse_for(op) for op in OP_RATIOS})
    rows = []
    for op, (phase1, phase2, wa) in results.items():
        rows.append([f"{op * 100:.0f}%", round(phase1), round(phase2),
                     f"{(1 - phase2 / phase1) * 100:.0f}%", round(wa, 2)])
    print_rows("Ablation: FTL overprovisioning vs GC collapse",
               format_table(["overprovision", "phase1 MiB/s",
                             "phase2 MiB/s", "drop", "write amp"], rows))

    # More overprovisioning → lower write amplification → softer collapse.
    was = [results[op][2] for op in OP_RATIOS]
    assert was[0] > was[-1]
    drops = [1 - results[op][1] / results[op][0] for op in OP_RATIOS]
    assert drops[0] > drops[-1]
    benchmark.extra_info["write_amp_by_op"] = {
        str(op): round(results[op][2], 2) for op in OP_RATIOS}
