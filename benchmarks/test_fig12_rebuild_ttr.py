"""Figure 12 (Observation 4): time to repair a replaced device.

Paper shape: mdraid's resync time is constant regardless of array fill
(it reconstructs the whole address space); RAIZN's scales linearly with
the valid data, and the two meet at 100% fill, both bottlenecked by the
replacement device's write throughput.
"""

import pytest

from repro.harness import ArrayScale, format_table, ttr_sweep
from repro.units import MiB

from conftest import run_once

TTR_SCALE = ArrayScale(num_zones=35, zone_capacity=2 * MiB)
FRACTIONS = (0.125, 0.25, 0.5, 0.75, 1.0)


def test_fig12_rebuild_ttr(benchmark, print_rows):
    points = run_once(benchmark,
                      lambda: ttr_sweep(FRACTIONS, scale=TTR_SCALE))
    print_rows("Figure 12: time to repair vs valid data", format_table(
        ["system", "fill", "valid MiB", "rebuilt MiB", "TTR (sim s)"],
        [[p.system, f"{p.fill_fraction:.3f}", p.valid_bytes // MiB,
          p.bytes_rebuilt // MiB, round(p.ttr_seconds, 4)]
         for p in points]))

    raizn = {p.fill_fraction: p for p in points if p.system == "raizn"}
    mdraid = {p.fill_fraction: p for p in points if p.system == "mdraid"}
    # mdraid: constant work regardless of fill.
    rebuilt = {p.bytes_rebuilt for p in mdraid.values()}
    assert len(rebuilt) == 1
    spread = max(p.ttr_seconds for p in mdraid.values()) / \
        min(p.ttr_seconds for p in mdraid.values())
    assert spread < 1.5
    # RAIZN: linear in valid data.
    assert raizn[1.0].ttr_seconds > 5 * raizn[0.125].ttr_seconds
    ratio = raizn[0.5].ttr_seconds / raizn[1.0].ttr_seconds
    assert 0.35 < ratio < 0.65
    # The curves meet at 100% fill.
    assert raizn[1.0].ttr_seconds == pytest.approx(
        mdraid[1.0].ttr_seconds, rel=0.35)
    benchmark.extra_info["raizn_full_ttr"] = raizn[1.0].ttr_seconds
