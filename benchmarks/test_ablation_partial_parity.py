"""Ablation: the cost and value of RAIZN's partial-parity logging (§5.1).

Two measurements around the design choice the paper motivates:

1. *Write-amplification cost*: the parity-log header adds one 4 KiB
   sector per non-stripe-aligned write, which is why RAIZN loses to
   mdraid on 4-64 KiB writes (Figure 9).  Measured as media bytes
   written per user byte across block sizes.

2. *Metadata-zone isolation*: partial parity gets its own metadata zone
   because it is generated "on every non stripe-aligned write" (§4.3);
   this measures how much more log traffic that zone takes than the
   general metadata zone under a small-write workload.
"""

from repro.harness import ArrayScale, format_table, make_raizn
from repro.raizn.mdzone import MetadataRole
from repro.sim import Simulator
from repro.units import KiB, MiB
from repro.workloads import FioJobSpec, run_fio

from conftest import run_once

SCALE = ArrayScale(num_zones=16, zone_capacity=2 * MiB)
BLOCK_SIZES = (4 * KiB, 16 * KiB, 64 * KiB, 256 * KiB)


def _write_amp_for(block_size: int):
    sim = Simulator()
    volume, devices = make_raizn(sim, SCALE)
    spec = FioJobSpec(rw="write", block_size=block_size, iodepth=16,
                      numjobs=4, size_per_job=2 * MiB,
                      region=(0, volume.capacity),
                      align=volume.zone_capacity)
    result = run_fio(sim, volume, spec)
    media = sum(d.stats.media_bytes_written for d in devices)
    pp_bytes = sum(mdz.appended_bytes for mdz in volume.mdzones)
    general = sum(mdz.used[mdz.role_zone[MetadataRole.GENERAL]]
                  for mdz in volume.mdzones)
    partial = sum(mdz.used[mdz.role_zone[MetadataRole.PARTIAL_PARITY]]
                  for mdz in volume.mdzones)
    return media / result.total_bytes, partial, general


def test_ablation_partial_parity_overhead(benchmark, print_rows):
    results = run_once(benchmark, lambda: {
        bs: _write_amp_for(bs) for bs in BLOCK_SIZES})
    rows = [[bs // KiB, round(wa, 2), pp // KiB, general // KiB]
            for bs, (wa, pp, general) in results.items()]
    print_rows(
        "Ablation: partial-parity logging cost by write size",
        format_table(["bs KiB", "media write amp",
                      "partial-parity log KiB", "general log KiB"], rows))

    # Small writes pay the 4 KiB header per write: 4 KiB user data ends
    # up as data + header + delta => ~3x media write amplification,
    # converging toward the ideal (D+P)/D = 1.25 for full stripes.
    assert results[4 * KiB][0] > 2.0
    assert results[256 * KiB][0] < 1.5
    # The partial-parity zone absorbs the log traffic; the general zone
    # stays orders of magnitude quieter (the §4.3 isolation argument).
    assert results[4 * KiB][1] > 10 * results[4 * KiB][2]
    benchmark.extra_info["write_amp"] = {
        str(bs): round(wa, 2) for bs, (wa, _p, _g) in results.items()}
