"""Figure 13 (Observation 5): RocksDB (db_bench) on F2FS, RAIZN vs
mdraid, at 4000- and 8000-byte values.

Paper shape: RAIZN achieves throughput and p99 tail latency within ~10%
of mdraid across fillseq, fillrandom, overwrite, and readwhilewriting
(we allow a wider band at simulation scale).
"""

from repro.harness import (
    ArrayScale,
    format_table,
    normalized_to_mdraid,
    rocksdb_comparison,
)
from repro.units import MiB

from conftest import run_once

# Large enough that the database and its compaction churn fit
# comfortably, as the paper's 2 TB arrays do; otherwise FTL GC
# (the Figure 10 effect) leaks into this comparison.
DB_SCALE = ArrayScale(num_zones=35, zone_capacity=2 * MiB)


def test_fig13_rocksdb(benchmark, print_rows):
    cells = run_once(benchmark, lambda: rocksdb_comparison(
        value_sizes=(4000, 8000), num_ops=2000, scale=DB_SCALE))
    print_rows("Figure 13: RocksDB db_bench", format_table(
        ["system", "workload", "value B", "ops/s", "p99 ms"],
        [[c.system, c.workload, c.value_size, round(c.ops_per_second),
          round(c.p99_latency * 1e3, 3)] for c in cells]))
    ratios = normalized_to_mdraid(cells)
    print_rows("Figure 13 normalized (RAIZN / mdraid)", format_table(
        ["workload/value", "throughput ratio", "p99 ratio"],
        [[key, round(ratios["throughput"][key], 3),
          round(ratios["p99"].get(key, float("nan")), 3)]
         for key in sorted(ratios["throughput"])]))

    # RAIZN stays in mdraid's ballpark on every workload/value size.
    for key, ratio in ratios["throughput"].items():
        assert ratio > 0.6, (key, ratio)
    benchmark.extra_info["throughput_ratios"] = {
        k: round(v, 3) for k, v in ratios["throughput"].items()}
