"""§6.1 raw-device measurement: ZNS within 2% (write) / 4% (read) of the
conventional SSD on the same platform."""

from repro.harness import format_table, measure_raw_devices
from repro.units import MiB

from conftest import run_once


def test_raw_device_throughput(benchmark, print_rows):
    result = run_once(benchmark, lambda: measure_raw_devices(
        num_zones=32, zone_capacity=4 * MiB))
    print_rows("Raw device throughput (MiB/s)", format_table(
        ["device", "write", "read"],
        [["ZNS (ZN540 model)", round(result.zns_write),
          round(result.zns_read)],
         ["conventional", round(result.conv_write),
          round(result.conv_read)],
         ["ZNS gap", f"{result.write_gap * 100:.1f}%",
          f"{result.read_gap * 100:.1f}%"]]))
    # Paper: "1052 MiB/s for writes and 3265 MiB/s for reads, 2% and 4%
    # lower respectively than the conventional SSD".
    assert 0.0 < result.write_gap < 0.05
    assert 0.01 < result.read_gap < 0.08
    assert abs(result.zns_write - 1052) / 1052 < 0.1
    assert abs(result.zns_read - 3265) / 3265 < 0.1
    benchmark.extra_info.update(
        zns_write=result.zns_write, zns_read=result.zns_read,
        conv_write=result.conv_write, conv_read=result.conv_read)
