"""Figure 11: degraded (one device removed) read performance.

Paper shape: RAIZN and mdraid are comparable in degraded mode — RAIZN
slightly worse on small IO, equal or better at larger sizes.
"""

from repro.harness import degraded_sweep, format_table, points_table
from repro.units import KiB, MiB

from conftest import BENCH_SCALE, run_once


def test_fig11_degraded_reads(benchmark, print_rows):
    points = run_once(benchmark, lambda: degraded_sweep(
        block_sizes=(4 * KiB, 64 * KiB, 256 * KiB, 1 * MiB),
        scale=BENCH_SCALE))
    print_rows("Figure 11: degraded reads (throughput MiB/s, latency us)",
               format_table(["system", "workload", "bs KiB", "MiB/s",
                             "p50 us", "p99.9 us"], points_table(points)))

    def get(system, workload, block_size):
        (point,) = [p for p in points
                    if p.system == f"{system}/degraded"
                    and p.workload == workload
                    and p.block_size == block_size]
        return point

    # Comparable degraded performance at every size (within 2x), with
    # RAIZN at least on par for large sequential reads.
    for workload in ("read", "randread"):
        for block_size in (4 * KiB, 64 * KiB, 256 * KiB, 1 * MiB):
            md = get("mdraid", workload, block_size)
            rz = get("raizn", workload, block_size)
            ratio = rz.throughput_mib_s / md.throughput_mib_s
            assert 0.5 < ratio < 2.5, (workload, block_size, ratio)
    md = get("mdraid", "read", 1 * MiB)
    rz = get("raizn", "read", 1 * MiB)
    assert rz.throughput_mib_s > 0.8 * md.throughput_mib_s
    benchmark.extra_info["cells"] = len(points)
