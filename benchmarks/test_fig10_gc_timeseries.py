"""Figure 10 (Observation 3): full-device overwrite timeseries.

Paper shape: once the conventional SSDs exhaust their overprovisioned
blocks, on-device garbage collection collapses mdraid's throughput (up to
93% in the paper) and inflates its tail latency (up to 14x); RAIZN stays
flat because ZNS SSDs perform no device-level GC.
"""

from repro.harness import (
    ArrayScale,
    format_series_table,
    run_gc_timeseries,
    throughput_vs_progress,
)
from repro.harness.results import Series
from repro.units import KiB, MiB

from conftest import run_once

GC_SCALE = ArrayScale(num_zones=19, zone_capacity=4 * MiB)


def test_fig10_gc_timeseries(benchmark, print_rows):
    def experiment():
        mdraid = run_gc_timeseries("mdraid", scale=GC_SCALE,
                                   block_size=256 * KiB)
        raizn = run_gc_timeseries("raizn", scale=GC_SCALE,
                                  block_size=256 * KiB)
        return mdraid, raizn

    mdraid, raizn = run_once(benchmark, experiment)
    print_rows(
        "Figure 10: phase-2 throughput vs fraction overwritten",
        format_series_table(
            [Series("mdraid", throughput_vs_progress(mdraid, points=10)),
             Series("RAIZN", throughput_vs_progress(raizn, points=10))],
            "overwritten", "MiB/s", buckets=10))
    print_rows("Figure 10 summary", "\n".join([
        f"mdraid phase 1 mean: {mdraid.phase1_mean_mib_s:8.0f} MiB/s",
        f"mdraid phase 2 worst:{mdraid.phase2_min_mib_s:8.0f} MiB/s "
        f"(drop {mdraid.throughput_drop * 100:.0f}%)",
        f"RAIZN  phase 1 mean: {raizn.phase1_mean_mib_s:8.0f} MiB/s",
        f"RAIZN  phase 2 mean: {raizn.phase2_mean_mib_s:8.0f} MiB/s",
        f"mdraid p99.9 phase2: {mdraid.phase2_p999_latency * 1e3:.2f} ms",
        f"RAIZN  p99.9 phase2: {raizn.phase2_p999_latency * 1e3:.2f} ms",
    ]))

    # mdraid collapses under device GC; RAIZN does not.
    assert mdraid.throughput_drop > 0.6
    assert raizn.phase2_mean_mib_s > 0.5 * raizn.phase1_mean_mib_s
    # GC also inflates mdraid's tail latency well beyond RAIZN's.
    assert mdraid.phase2_p999_latency > 2 * raizn.phase2_p999_latency
    benchmark.extra_info.update(
        mdraid_drop=round(mdraid.throughput_drop, 3),
        raizn_phase2=round(raizn.phase2_mean_mib_s))
