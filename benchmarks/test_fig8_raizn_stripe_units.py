"""Figure 8: RAIZN throughput by block size, 16 KiB vs 64 KiB stripe
units.

Paper shape: RAIZN performs better with 64 KiB stripe units on every
workload except 4 KiB sequential reads, which the authors dismiss as
impractical; 64 KiB is the configuration used for the rest of the
evaluation.
"""

from repro.harness import format_table, points_table, stripe_unit_sweep
from repro.units import KiB, MiB

from conftest import BENCH_BLOCK_SIZES, BENCH_SCALE, run_once


def _by(points, system_suffix, workload, block_size):
    (point,) = [p for p in points if p.system.endswith(system_suffix)
                and p.workload == workload and p.block_size == block_size]
    return point


def test_fig8_raizn_stripe_unit_sweep(benchmark, print_rows):
    points = run_once(benchmark, lambda: stripe_unit_sweep(
        "raizn", stripe_units=(16 * KiB, 64 * KiB),
        block_sizes=BENCH_BLOCK_SIZES, scale=BENCH_SCALE))
    print_rows(
        "Figure 8: RAIZN stripe-unit sweep (throughput MiB/s, latency us)",
        format_table(["system", "workload", "bs KiB", "MiB/s",
                      "p50 us", "p99.9 us"], points_table(points)))

    # 64 KiB SUs at least match 16 KiB on large sequential writes and on
    # random reads of stripe-unit-sized-or-larger blocks.
    for workload, block_size in (("write", 1 * MiB),
                                 ("randread", 256 * KiB),
                                 ("read", 1 * MiB)):
        su16 = _by(points, "su=16K", workload, block_size)
        su64 = _by(points, "su=64K", workload, block_size)
        assert su64.throughput_mib_s >= su16.throughput_mib_s * 0.9, \
            (workload, block_size)
    benchmark.extra_info["cells"] = len(points)
