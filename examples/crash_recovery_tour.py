#!/usr/bin/env python3
"""A tour of RAIZN's ZNS crash-consistency machinery (paper §5).

Demonstrates, with real byte-level verification, the edge cases that make
RAID-on-ZNS hard and how RAIZN solves each one:

1. *Partial stripe writes* — a crash persists only some stripe units;
   recovery repairs the hole from partial-parity logs, or rolls the zone
   back and relocates future conflicting writes (Figure 1).
2. *Zone reset atomicity* — a crash between per-device resets leaves the
   logical zone half-reset; the zone-reset write-ahead log finishes the
   job at mount time (§5.2).
3. *FUA persistence* — an acknowledged FUA write is never lost, and
   everything before it in the zone stays readable (§5.3, Figure 6).
4. *Generation counters* — metadata from a previous life of a zone is
   ignored after the zone is reset and rewritten (§4.3).

Run:  python examples/crash_recovery_tour.py
"""

import random

from repro.block import Bio, BioFlags
from repro.faults import power_cycle
from repro.raizn import RaiznConfig, RaiznVolume, mount
from repro.sim import Simulator
from repro.units import KiB, MiB
from repro.zns import ZNSDevice


def fresh_array(sim, seed=0):
    devices = [
        ZNSDevice(sim, name=f"zns{i}", num_zones=12, zone_capacity=1 * MiB,
                  seed=seed + i)
        for i in range(5)
    ]
    return RaiznVolume.create(
        sim, devices, RaiznConfig(num_data=4, stripe_unit_bytes=64 * KiB)
    ), devices


def payload(n, seed):
    return random.Random(seed).randbytes(n)


def partial_stripe_write() -> None:
    print("1) partial stripe write ".ljust(60, "-"))
    sim = Simulator()
    volume, devices = fresh_array(sim)
    data = payload(6 * 256 * KiB, seed=1)      # six full stripes
    volume.execute(Bio.write(0, data))          # ...never flushed
    power_cycle(devices, random.Random(7))      # arbitrary cache loss
    volume = mount(sim, devices)
    wp = volume.zone_info(0).write_pointer
    survived = volume.execute(Bio.read(0, wp)).result if wp else b""
    assert survived == data[:wp]
    print(f"   crash after 1.5 MiB of unflushed writes -> recovered a "
          f"consistent {wp // KiB} KiB prefix")
    more = payload(256 * KiB, seed=2)
    volume.execute(Bio.write(wp, more))
    assert volume.execute(Bio.read(wp, len(more))).result == more
    print(f"   continued writing over the hidden stale region "
          f"({len(volume.relocations)} stripe units relocated to "
          f"metadata zones)")


def partial_zone_reset() -> None:
    print("2) partial zone reset ".ljust(60, "-"))
    sim = Simulator()
    volume, devices = fresh_array(sim, seed=10)
    volume.execute(Bio.write(0, payload(512 * KiB, seed=3)))
    volume.execute(Bio.flush())
    # Log the reset intent the way the volume would, then "crash" after
    # only two of the five physical zones were reset.
    from repro.raizn.mdzone import MetadataRole
    from repro.raizn.metadata import encode_zone_reset
    layout = volume.mapper.stripe_layout(0, 0)
    for device_index in {layout.data_devices[0], layout.parity_device}:
        sim.run_process(volume.mdzones[device_index].append(
            MetadataRole.GENERAL,
            encode_zone_reset(0, volume.zone_descs[0].write_pointer,
                              volume.generation[0]), fua=True))
    devices[0].execute(Bio.zone_reset(0))
    devices[3].execute(Bio.zone_reset(0))
    power_cycle(devices, random.Random(11))
    volume = mount(sim, devices)
    info = volume.zone_info(0)
    assert info.write_pointer == 0 and info.state.name == "EMPTY"
    print("   crash with 2/5 physical zones reset -> WAL replay finished "
          "the reset at mount; logical zone is cleanly EMPTY")


def fua_persistence() -> None:
    print("3) FUA write persistence ".ljust(60, "-"))
    sim = Simulator()
    volume, devices = fresh_array(sim, seed=20)
    head = payload(256 * KiB, seed=4)           # one stripe, not flushed
    volume.execute(Bio.write(0, head))
    tail = payload(8 * KiB, seed=5)
    volume.execute(Bio.write(len(head), tail,
                             BioFlags.FUA | BioFlags.PREFLUSH))
    power_cycle(devices, random.Random(13))
    volume = mount(sim, devices)
    everything = volume.execute(Bio.read(0, len(head) + len(tail))).result
    assert everything == head + tail
    print("   the FUA write AND every byte before it in the zone "
          "survived the crash (persistence bitmap + flush fan-out)")


def generation_counters() -> None:
    print("4) generation counters ".ljust(60, "-"))
    sim = Simulator()
    volume, devices = fresh_array(sim, seed=30)
    volume.execute(Bio.write(0, payload(128 * KiB, seed=6)))
    generation = volume.generation[0]
    volume.execute(Bio.zone_reset(0))
    fresh = payload(256 * KiB, seed=7)
    volume.execute(Bio.write(0, fresh))
    volume.execute(Bio.flush())
    volume = mount(sim, devices)
    assert volume.execute(Bio.read(0, len(fresh))).result == fresh
    assert volume.generation[0] > generation
    print(f"   old partial-parity/reset logs (generation {generation}) "
          f"ignored; zone now at generation {volume.generation[0]}")


def main() -> None:
    partial_stripe_write()
    partial_zone_reset()
    fua_persistence()
    generation_counters()
    print("tour complete: every §5 edge case verified byte-for-byte.")


if __name__ == "__main__":
    main()
