#!/usr/bin/env python3
"""The paper's headline result (Figure 10): device GC vs host GC.

Runs the full-device overwrite benchmark on both arrays:

* phase 1 — five threads fill the array, each writing a disjoint 20% of
  the address space (this interleaves five streams into the conventional
  SSDs' erase blocks);
* phase 2 — one thread sequentially overwrites everything.

On mdraid, the conventional SSDs run out of overprovisioned blocks and
their on-device garbage collection steals bandwidth — throughput
collapses and recovers only as the overwrite invalidates old blocks.  On
RAIZN, the host resets each zone before rewriting it; there is no device
GC and throughput stays flat.

Run:  python examples/gc_impact.py
"""

from repro.harness import (
    ArrayScale,
    format_series_table,
    run_gc_timeseries,
    throughput_vs_progress,
)
from repro.harness.results import Series
from repro.units import KiB, MiB

SCALE = ArrayScale(num_zones=19, zone_capacity=4 * MiB)


def main() -> None:
    print("running the two-phase overwrite on mdraid "
          "(conventional SSDs + FTL GC)...")
    mdraid = run_gc_timeseries("mdraid", scale=SCALE, block_size=256 * KiB)
    print("running it on RAIZN (ZNS SSDs, host-controlled resets)...")
    raizn = run_gc_timeseries("raizn", scale=SCALE, block_size=256 * KiB)

    print("\nphase-2 throughput as the overwrite progresses:")
    print(format_series_table(
        [Series("mdraid", throughput_vs_progress(mdraid, points=10)),
         Series("RAIZN", throughput_vs_progress(raizn, points=10))],
        "fraction overwritten", "MiB/s", buckets=10))

    print(f"""
summary
-------
mdraid: phase-1 mean {mdraid.phase1_mean_mib_s:7.0f} MiB/s
        phase-2 worst {mdraid.phase2_min_mib_s:6.0f} MiB/s  """
          f"""(a {mdraid.throughput_drop * 100:.0f}% collapse)
        write amplification reported by the FTLs drives the loss
RAIZN:  phase-1 mean {raizn.phase1_mean_mib_s:7.0f} MiB/s
        phase-2 mean  {raizn.phase2_mean_mib_s:6.0f} MiB/s  (flat)

paper (Observation 3): "on-device garbage collection can reduce
throughput by up to 93% ... while RAIZN is not affected due to the
absence of on-device garbage collection."
""")


if __name__ == "__main__":
    main()
