#!/usr/bin/env python3
"""Time-to-repair (Figure 12): the ZNS rebuild advantage.

RAIZN knows exactly which addresses hold valid data (each zone's write
pointer), so it rebuilds a replaced device zone by zone, only up to each
logical zone's write pointer.  mdraid has no idea which blocks are live
and resyncs the *entire* address space, so its repair time is constant.

This example sweeps the array fill level and prints both curves.

Run:  python examples/rebuild_ttr.py
"""

from repro.harness import ArrayScale, format_table, mdraid_ttr, raizn_ttr
from repro.units import MiB

SCALE = ArrayScale(num_zones=35, zone_capacity=2 * MiB)
FRACTIONS = (0.125, 0.25, 0.5, 0.75, 1.0)


def main() -> None:
    rows = []
    print("sweeping fill level; each point fills a fresh array, fails "
          "device 0, and rebuilds onto a blank replacement...")
    for fraction in FRACTIONS:
        raizn = raizn_ttr(fraction, SCALE)
        mdraid = mdraid_ttr(fraction, SCALE)
        rows.append([
            f"{fraction * 100:.1f}%",
            raizn.valid_bytes // MiB,
            round(raizn.ttr_seconds * 1e3, 2),
            raizn.bytes_rebuilt // MiB,
            round(mdraid.ttr_seconds * 1e3, 2),
            mdraid.bytes_rebuilt // MiB,
        ])
    print()
    print(format_table(
        ["fill", "valid MiB", "RAIZN TTR ms", "RAIZN rebuilt MiB",
         "mdraid TTR ms", "mdraid rebuilt MiB"], rows))
    print("""
paper (Observation 4): "RAIZN's TTR scales with the amount of data
rebuilt ... mdraid always rebuilds the entire address space, resulting
in the same TTR regardless of the amount of valid data present."
Both systems meet at 100% fill, bottlenecked by the replacement
device's write throughput.""")


if __name__ == "__main__":
    main()
