#!/usr/bin/env python3
"""The paper's application stack (§6.3): RocksDB-style LSM on F2FS.

Builds the full stack on both arrays —

    db_bench-like driver -> LSM tree -> F2FS -> RAIZN / mdraid -> SSDs

— and runs the Figure 13 workloads, printing throughput and p99 latency
side by side.

Run:  python examples/rocksdb_on_raizn.py
"""

from repro.apps import F2FS, LSMTree, db_bench
from repro.harness import ArrayScale, format_table, make_mdraid, make_raizn
from repro.sim import Simulator
from repro.units import MiB

SCALE = ArrayScale(num_zones=19, zone_capacity=2 * MiB)
VALUE_SIZE = 4000
NUM_OPS = 2500


def run_stack(kind: str):
    results = {}
    for workload in ("fillseq", "fillrandom", "overwrite",
                     "readwhilewriting"):
        # Fresh stack per workload pair, like the paper's trials.
        sim = Simulator()
        if kind == "raizn":
            volume, _devices = make_raizn(sim, SCALE)
        else:
            volume, _devices = make_mdraid(sim, SCALE)
        fs = F2FS(sim, volume)
        lsm = LSMTree(sim, fs, memtable_bytes=1 * MiB,
                      level_base_bytes=8 * MiB)
        if workload != "fillseq":
            db_bench(sim, lsm, "fillrandom", num_ops=NUM_OPS,
                     value_size=VALUE_SIZE, key_space=NUM_OPS)
        result = db_bench(sim, lsm, workload, num_ops=NUM_OPS,
                          value_size=VALUE_SIZE, key_space=NUM_OPS)
        latency = (result.read_latency
                   if workload == "readwhilewriting"
                   else result.write_latency)
        results[workload] = (result.ops_per_second, latency.p99)
    return results


def main() -> None:
    print(f"db_bench, {VALUE_SIZE}-byte values, {NUM_OPS} ops/workload")
    print("running on mdraid (F2FS on RAID-5 over conventional SSDs)...")
    mdraid = run_stack("mdraid")
    print("running on RAIZN  (F2FS on RAIZN over ZNS SSDs)...")
    raizn = run_stack("raizn")

    rows = []
    for workload in mdraid:
        md_ops, md_p99 = mdraid[workload]
        rz_ops, rz_p99 = raizn[workload]
        rows.append([workload, round(md_ops), round(rz_ops),
                     f"{rz_ops / md_ops:.2f}x",
                     round(md_p99 * 1e3, 2), round(rz_p99 * 1e3, 2)])
    print()
    print(format_table(
        ["workload", "mdraid ops/s", "RAIZN ops/s", "ratio",
         "mdraid p99 ms", "RAIZN p99 ms"], rows))
    print("\npaper (Observation 5): RAIZN achieves throughput and 99th "
          "percentile tail latency within 10% of mdraid.")


if __name__ == "__main__":
    main()
