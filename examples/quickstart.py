#!/usr/bin/env python3
"""Quickstart: create a RAIZN array, do IO, survive failures.

Walks through the library's core API in five minutes:

1. build five simulated ZNS SSDs and format them into a RAIZN volume;
2. write and read data through the logical ZNS interface;
3. use FUA for durability, then power-fail the whole array and remount;
4. fail a device, keep serving reads (degraded mode), and rebuild.

Run:  python examples/quickstart.py
"""

import random

from repro.block import Bio, BioFlags
from repro.faults import fresh_replacement, power_cycle
from repro.raizn import RaiznConfig, RaiznVolume, mount, rebuild
from repro.sim import Simulator
from repro.units import KiB, MiB, fmt_bytes
from repro.zns import ZNSDevice


def main() -> None:
    sim = Simulator()

    # -- 1. Five ZNS SSDs, formatted as a D=4 + P=1 RAIZN array -----------
    devices = [
        ZNSDevice(sim, name=f"zns{i}", num_zones=16, zone_capacity=4 * MiB,
                  seed=i)
        for i in range(5)
    ]
    volume = RaiznVolume.create(
        sim, devices, RaiznConfig(num_data=4, stripe_unit_bytes=64 * KiB))
    print(f"RAIZN volume: {fmt_bytes(volume.capacity)} usable, "
          f"{volume.num_zones} logical zones of "
          f"{fmt_bytes(volume.zone_capacity)}")

    # -- 2. It behaves like one big ZNS device -----------------------------
    payload = random.Random(0).randbytes(1 * MiB)
    volume.execute(Bio.write(0, payload))
    readback = volume.execute(Bio.read(0, len(payload))).result
    assert readback == payload
    print(f"wrote and read back {fmt_bytes(len(payload))} "
          f"(zone 0 write pointer now at "
          f"{fmt_bytes(volume.zone_info(0).write_pointer)})")

    # -- 3. Durability: FUA write, then a power failure --------------------
    volume.execute(Bio.write(len(payload), b"precious!" + bytes(4087),
                             BioFlags.FUA | BioFlags.PREFLUSH))
    print("FUA write acknowledged; cutting power on all five devices...")
    power_cycle(devices, random.Random(42))
    volume = mount(sim, devices)
    recovered = volume.execute(Bio.read(len(payload), 4 * KiB)).result
    assert recovered.startswith(b"precious!")
    print(f"remounted; FUA data intact, write pointer recovered at "
          f"{fmt_bytes(volume.zone_info(0).write_pointer)}")

    # -- 4. Device failure, degraded reads, rebuild ------------------------
    volume.fail_device(2)
    degraded = volume.execute(Bio.read(0, len(payload))).result
    assert degraded == payload
    print("device 2 failed; reads served degraded via parity")

    replacement = fresh_replacement(sim, devices[0], name="replacement")
    report = rebuild(sim, volume, 2, replacement)
    print(f"rebuilt {fmt_bytes(report.bytes_written)} onto the replacement "
          f"in {report.duration * 1e3:.2f} simulated ms "
          f"(only written data is rebuilt — empty zones are skipped)")
    assert volume.execute(Bio.read(0, len(payload))).result == payload
    print("array redundancy restored. done!")


if __name__ == "__main__":
    main()
