"""Mount-time crash recovery (paper §4.3, §5.1–§5.3).

``mount`` reassembles a :class:`~repro.raizn.volume.RaiznVolume` from its
devices after a clean shutdown, a power loss, or a device failure:

1. locate and read the superblock on each device, reorder devices by their
   persisted index;
2. ingest every metadata log entry from every metadata zone (including
   swap zones holding partially-completed GC checkpoints), resolving
   duplicates by generation counter;
3. replay valid zone-reset write-ahead logs;
4. derive each logical zone's write pointer from the physical write
   pointers, detect stripe holes, repair them from (partial) parity when
   possible, and otherwise roll the write pointer back and arm stripe-unit
   relocation for the hidden region;
5. rebuild persistence bitmaps and the in-memory stripe buffers of
   incomplete tail stripes (reconstructing a missing device's data from
   partial parity logs);
6. compact the metadata zones so the volume restarts with a clean,
   checkpointed metadata state.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..block.bio import Bio
from ..errors import (
    DataLossError,
    DeviceFailedError,
    MediaError,
    RecoveryError,
)
from ..sim import Simulator
from ..zns.device import ZNSDevice
from ..zns.spec import ZoneState
from .config import RaiznConfig
from .mdzone import MetadataRole
from .metadata import (
    MetadataEntry,
    MetadataType,
    Superblock,
    decode_generation_block,
    decode_partial_parity,
    decode_zone_reset,
    encode_relocated_su,
)
from .parity import xor_into
from .volume import RaiznVolume


def _safe_rewrite_decode(entry):
    """Decode a rewrite WAL entry, tolerating other OP_WAL payloads."""
    from .maintenance import decode_rewrite_wal
    try:
        decoded = decode_rewrite_wal(entry)
    except Exception:
        return -1, None
    return decoded[0], decoded


def mount(sim: Simulator, devices: List[Optional[ZNSDevice]],
          **config_overrides) -> RaiznVolume:
    """Mount an existing RAIZN array; drains the event loop.

    ``devices`` may be given in any order; a failed/missing device is
    passed as ``None`` (or simply marked failed), producing a degraded
    volume that can later be repaired with ``rebuild``.

    ``config_overrides`` sets the user-modifiable (non-persisted) knobs,
    e.g. ``relocation_rebuild_threshold`` or ``stripe_buffers_per_zone``.
    """
    return sim.run_process(mount_process(sim, devices, **config_overrides))


def mount_process(sim: Simulator, devices: List[Optional[ZNSDevice]],
                  **config_overrides):
    """Process-style body of :func:`mount`."""
    recovery = _Recovery(sim, devices, config_overrides)
    yield from recovery.run()
    return recovery.volume


class _Recovery:
    """One mount attempt; holds all intermediate state."""

    def __init__(self, sim: Simulator, devices: List[Optional[ZNSDevice]],
                 config_overrides: Optional[dict] = None):
        self.sim = sim
        self.raw_devices = devices
        self.config_overrides = config_overrides or {}
        self.volume: Optional[RaiznVolume] = None
        self.entries: Dict[int, List[MetadataEntry]] = {}  # device -> entries

    # -- top level ------------------------------------------------------------

    def run(self):
        ordered, superblock = yield from self._identify_devices()
        config = RaiznConfig(
            num_data=superblock.num_data,
            num_parity=superblock.num_parity,
            stripe_unit_bytes=superblock.stripe_unit_bytes,
            num_metadata_zones=superblock.num_metadata_zones,
            **self.config_overrides)
        volume = RaiznVolume(self.sim, ordered, config,
                             array_uuid=superblock.array_uuid)
        self.volume = volume
        yield from self._scan_metadata()
        self._ingest_generation()
        self._sync_physical_descriptors()
        partial_parity = self._ingest_partial_parity()
        self._ingest_relocations()
        yield from self._resume_interrupted_rewrites()
        for zone in range(volume.num_data_zones):
            yield from self._recover_zone(zone, partial_parity.get(zone, {}))
        yield from self._audit_relocated_parity()
        yield from self._run_threshold_rewrites()
        yield from self._flush_repairs()
        self._bump_empty_generations()
        yield from self._finish_metadata()

    # -- device identification ----------------------------------------------------

    def _identify_devices(self):
        """Find superblocks, reorder devices into their array slots."""
        found: List[Tuple[ZNSDevice, Superblock]] = []
        for dev in self.raw_devices:
            if dev is None:
                continue
            try:
                superblock = yield from self._find_superblock(dev)
            except DeviceFailedError:
                # A device can be present but failed (evicted with
                # ``fail_device(remove=False)``); treat it exactly like a
                # missing device and mount degraded — rejecting the mount
                # would turn a within-tolerance fault into an outage.
                continue
            found.append((dev, superblock))
        if not found:
            raise RecoveryError("no device carries a RAIZN superblock")
        reference = found[0][1]
        width = reference.num_data + reference.num_parity
        if len(found) < width - reference.num_parity:
            raise DataLossError(
                f"only {len(found)} of {width} devices present; beyond "
                "parity tolerance")
        ordered: List[Optional[ZNSDevice]] = [None] * width
        for dev, superblock in found:
            if superblock.array_uuid != reference.array_uuid:
                raise RecoveryError(
                    f"device {dev.name} belongs to a different array")
            if ordered[superblock.device_index] is not None:
                raise RecoveryError(
                    f"duplicate device index {superblock.device_index}")
            ordered[superblock.device_index] = dev
        return ordered, reference

    def _find_superblock(self, dev: ZNSDevice):
        """Scan zones from the top of the device until a superblock appears.

        Metadata zones always occupy the device's last
        ``num_metadata_zones`` zones, and the general metadata zone always
        contains a superblock entry (written at format time and
        re-checkpointed by every metadata GC), so a bounded backwards scan
        finds it.
        """
        for index in range(dev.num_zones - 1,
                           max(-1, dev.num_zones - 17), -1):
            entries = yield from self._scan_zone(dev, index)
            for entry in entries:
                if entry.mdtype is MetadataType.SUPERBLOCK:
                    return Superblock.from_entry(entry)
        raise RecoveryError(f"no superblock found on {dev.name}")

    @staticmethod
    def _scan_zone(dev: ZNSDevice, zone_index: int):
        info = dev.zone_info(zone_index)
        written = info.write_pointer - info.start
        if written == 0:
            return []
        bio = yield dev.submit(Bio.read(info.start, written))
        return MetadataEntry.scan(bio.result)

    # -- metadata ingest --------------------------------------------------------------

    def _scan_metadata(self):
        volume = self.volume
        for index, dev in enumerate(volume.devices):
            if dev is None:
                continue
            entries: List[MetadataEntry] = []
            for zone_index in range(volume.num_data_zones, dev.num_zones):
                entries.extend((yield from self._scan_zone(dev, zone_index)))
                volume.mdzones[index].used[zone_index] = (
                    dev.zone_info(zone_index).write_pointer
                    - zone_index * volume.phys_zone_size)
            self.entries[index] = entries

    def _all_entries(self) -> List[Tuple[int, MetadataEntry]]:
        out = []
        for device, entries in self.entries.items():
            out.extend((device, e) for e in entries)
        return out

    def _ingest_generation(self) -> None:
        """Componentwise max over all persisted generation blocks.

        Counters only ever increase, so the maximum of every replica is
        exactly the newest persisted value for each zone.
        """
        volume = self.volume
        for _device, entry in self._all_entries():
            if entry.mdtype is not MetadataType.GENERATION:
                continue
            first_zone, counters = decode_generation_block(entry)
            for offset, value in enumerate(counters):
                zone = first_zone + offset
                if zone < volume.num_data_zones:
                    volume.generation[zone] = max(volume.generation[zone],
                                                  value)

    def _sync_physical_descriptors(self) -> None:
        volume = self.volume
        for index, dev in enumerate(volume.devices):
            if dev is None:
                continue
            for info in dev.report_zones():
                pdesc = volume.phys[index][info.index]
                pdesc.write_pointer = info.write_pointer
                pdesc.state = info.state

    def _ingest_partial_parity(self) -> Dict[int, Dict[int, List[MetadataEntry]]]:
        """Group generation-valid partial parity by (zone, stripe).

        Applies the paper's duplicate rule: a checkpointed entry whose LBA
        range overlaps a normal entry for the same stripe is discarded
        (§4.3).
        """
        volume = self.volume
        grouped: Dict[int, Dict[int, List[MetadataEntry]]] = {}
        for _device, entry in self._all_entries():
            if entry.mdtype is not MetadataType.PARTIAL_PARITY:
                continue
            zone = entry.start_lba // volume.zone_capacity
            if zone >= volume.num_data_zones:
                continue
            if entry.generation != volume.generation[zone]:
                continue  # stale: the zone was reset since this was logged
            in_zone = entry.start_lba - zone * volume.zone_capacity
            width = volume.mapper.stripe_width
            stripe = in_zone // width
            if in_zone % width == 0 and \
                    entry.end_lba - entry.start_lba == width:
                # A whole-stripe entry is the cumulative *relocated
                # parity* shape (logged when a completed stripe's parity
                # SU could not be written in place, and re-emitted by the
                # metadata-GC checkpoint).  It is self-contained full
                # parity, not a delta: folding it into the delta chain
                # would double-count any surviving deltas, and the §4.3
                # duplicate rule below would wrongly discard the
                # checkpointed copy whenever one delta survives.  Route
                # it to the relocated-parity map the read path prefers.
                offset, payload = decode_partial_parity(entry)
                if offset == 0 and \
                        len(payload) == volume.config.stripe_unit_bytes:
                    volume.relocated_parity[(zone, stripe)] = payload
                    continue
            grouped.setdefault(zone, {}).setdefault(stripe, []).append(entry)
        for zone_map in grouped.values():
            for stripe, entries in zone_map.items():
                normals = [e for e in entries if not e.checkpoint]
                if not normals:
                    continue
                keep = list(normals)
                for ckpt in (e for e in entries if e.checkpoint):
                    overlap = any(
                        ckpt.start_lba < n.end_lba and n.start_lba < ckpt.end_lba
                        for n in normals)
                    if not overlap:
                        keep.append(ckpt)
                zone_map[stripe] = keep
        return grouped

    def _ingest_relocations(self) -> None:
        volume = self.volume
        for device, entry in self._all_entries():
            if entry.mdtype is not MetadataType.RELOCATED_SU:
                continue
            zone = entry.start_lba // volume.zone_capacity
            if zone >= volume.num_data_zones:
                continue
            if entry.generation != volume.generation[zone]:
                continue
            su = volume.config.stripe_unit_bytes
            su_lba = entry.start_lba - (entry.start_lba % su)
            unit = volume.relocations.unit_for(su_lba, device, zone)
            if entry.payload:
                unit.write(entry.start_lba, entry.payload)
            volume.zone_descs[zone].has_relocations = True

    # -- per-zone recovery ---------------------------------------------------------------

    def _zone_reset_log(self, zone: int) -> Optional[MetadataEntry]:
        volume = self.volume
        for _device, entry in self._all_entries():
            if entry.mdtype is not MetadataType.ZONE_RESET_LOG:
                continue
            logged_zone, _reset_pointer = decode_zone_reset(entry)
            if logged_zone == zone and \
                    entry.generation == volume.generation[zone]:
                return entry
        return None

    def _zone_extents(self, zone: int) -> List[Optional[int]]:
        """Written bytes in each device's physical zone (None if missing)."""
        volume = self.volume
        extents: List[Optional[int]] = []
        for index in range(volume.config.num_devices):
            if volume.devices[index] is None or volume.failed[index]:
                extents.append(None)
                continue
            pdesc = volume.phys[index][zone]
            extents.append(pdesc.write_pointer - zone * volume.phys_zone_size)
        return extents

    def _recover_zone(self, zone: int,
                      partial_parity: Dict[int, List[MetadataEntry]]):
        volume = self.volume
        desc = volume.zone_descs[zone]
        extents = self._zone_extents(zone)
        known = [e for e in extents if e is not None]

        reset_log = self._zone_reset_log(zone)
        if reset_log is not None and any(known):
            # §5.2: a valid reset log plus a non-empty zone means the
            # reset was interrupted; complete it now.
            yield from self._complete_zone_reset(zone)
            return

        if not any(known):
            desc.reset()
            return

        state = _ZoneContent(volume, zone, extents, partial_parity)
        yield from state.analyze()
        desc.write_pointer = state.logical_wp
        if state.has_relocation_conflicts:
            desc.has_relocations = True
        if desc.write_pointer == desc.start_lba:
            desc.state = ZoneState.EMPTY
        elif self._all_full(zone) and \
                desc.write_pointer == desc.writable_end:
            desc.state = ZoneState.FULL
        else:
            desc.state = ZoneState.CLOSED
        yield from state.rebuild_tail_buffer(desc)
        if desc.written_bytes:
            # After the tail rebuild (which may roll the zone further back
            # over a torn tail SU).  Full SUs only: the recovered partial
            # tail SU is durable now, but a post-mount write can extend it
            # in the device cache and a set bit would go stale (see
            # volume._finish_write_flushed).
            desc.persistence.mark_up_to(desc.su_index_of(desc.write_pointer))

    def _all_full(self, zone: int) -> bool:
        volume = self.volume
        return all(
            volume.phys[i][zone].state is ZoneState.FULL
            for i in range(volume.config.num_devices)
            if volume.devices[i] is not None and not volume.failed[i])

    def _complete_zone_reset(self, zone: int):
        volume = self.volume
        events = []
        for index in volume._alive_devices():
            events.append(volume.devices[index].submit(
                Bio.zone_reset(zone * volume.phys_zone_size)))
            pdesc = volume.phys[index][zone]
            pdesc.write_pointer = zone * volume.phys_zone_size
            pdesc.state = ZoneState.EMPTY
        yield self.sim.all_of(events)
        volume.generation[zone] += 1
        volume.zone_descs[zone].reset()

    def _bump_empty_generations(self) -> None:
        """§4.3: every empty zone's counter is incremented at mount time."""
        volume = self.volume
        for zone in range(volume.num_data_zones):
            if volume.zone_descs[zone].write_pointer == \
                    volume.zone_descs[zone].start_lba:
                volume.generation[zone] += 1

    def _audit_relocated_parity(self):
        """Verify on-device parity of complete stripes in remapped zones.

        After a rollback recovery, the parity PBAs of re-filled stripes
        may hold stale pre-crash data that ZNS forbids overwriting; their
        true parity lives only in partial-parity logs.  Recompute the
        parity of every complete stripe in a relocation-flagged zone from
        its (relocation-aware) data and record mismatches in the
        in-memory relocated-parity map, which the metadata compaction
        below persists.  Skipped on a degraded mount: with a device
        missing, reads themselves depend on parity.
        """
        volume = self.volume
        if any(dev is None or volume.failed[i]
               for i, dev in enumerate(volume.devices)):
            return
        from ..block.bio import Bio as _Bio
        from .parity import stripe_parity
        su = volume.config.stripe_unit_bytes
        for desc in volume.zone_descs:
            if not desc.has_relocations:
                continue
            zone = desc.zone
            full_stripes = desc.written_bytes // desc.stripe_width
            for stripe in range(full_stripes):
                layout = volume.mapper.stripe_layout(zone, stripe)
                pba = zone * volume.phys_zone_size + stripe * su
                parity_wp = volume.phys[layout.parity_device][zone] \
                    .write_pointer
                stripe_lba = desc.start_lba + stripe * desc.stripe_width
                bio = yield volume.submit(
                    _Bio.read(stripe_lba, desc.stripe_width))
                units = [bio.result[i * su:(i + 1) * su]
                         for i in range(volume.config.num_data)]
                expected = stripe_parity(units, su)
                if parity_wp >= pba + su:
                    probe = _Bio.read(pba, su)
                    # A latent media error on the parity PBA is itself a
                    # mismatch — record the recomputed parity rather than
                    # failing the mount.
                    probe.errors_as_status = True
                    onboard = yield volume.devices[
                        layout.parity_device].submit(probe)
                    if onboard.error is None and onboard.result == expected:
                        continue
                volume.relocated_parity[(zone, stripe)] = expected

    def _resume_interrupted_rewrites(self):
        """Finish §5.2 zone rewrites whose copy phase completed pre-crash.

        A REWRITE_COPIED log means the swap zone holds a durable copy and
        the original physical zone may already be destroyed; the write-
        back must be redone before zone analysis looks at the zone.  A
        START log without COPIED means the original is intact — the
        rewrite simply re-runs from scratch via the threshold check.
        """
        from .maintenance import (
            OP_ZONE_REWRITE_COPIED,
            rewrite_physical_zone,
        )
        volume = self.volume
        copied = {}
        for _device, entry in self._all_entries():
            if entry.mdtype is not MetadataType.OP_WAL:
                continue
            opcode, payload = _safe_rewrite_decode(entry)
            if opcode != OP_ZONE_REWRITE_COPIED:
                continue
            _op, device_index, zone, length = payload
            if zone < volume.num_data_zones and \
                    entry.generation == volume.generation[zone]:
                copied[(device_index, zone)] = length
        for (device_index, zone), length in sorted(copied.items()):
            if volume.devices[device_index] is None or \
                    volume.failed[device_index]:
                continue
            yield from rewrite_physical_zone(volume, device_index, zone,
                                             resume_length=length)

    def _run_threshold_rewrites(self):
        """§5.2: rewrite physical zones with too many relocated SUs."""
        from .maintenance import rewrite_physical_zone, zones_needing_rewrite
        volume = self.volume
        for device_index, zone in zones_needing_rewrite(volume):
            if volume.devices[device_index] is None or \
                    volume.failed[device_index]:
                continue
            yield from rewrite_physical_zone(volume, device_index, zone)

    def _flush_repairs(self):
        """Make every repair patch durable before metadata finalization.

        Stripe repairs and parity heals are plain cached writes, yet the
        persistence bitmaps rebuilt by ``_recover_zone`` already declare
        the repaired region durable.  Metadata compaction flushes each
        device as a side effect, but device N's old metadata zones are
        reset before device N+1's patches are flushed, and the
        generation-maintenance path may not compact at all — so a second
        crash mid-finalization could lose patches the bitmap (and a
        subsequent mount) counts on.  An explicit all-device barrier
        closes that window and makes recovery re-entrant.
        """
        volume = self.volume
        events = [volume.devices[index].submit(Bio.flush())
                  for index in volume._alive_devices()]
        if events:
            yield self.sim.all_of(events)

    def _finish_metadata(self):
        """Compact metadata — or complete generation maintenance (§4.3)."""
        from .maintenance import (
            find_maintenance_wal,
            needs_generation_maintenance,
            run_generation_maintenance,
        )
        volume = self.volume
        wal_present = find_maintenance_wal(
            entry for _d, entry in self._all_entries())
        if wal_present or needs_generation_maintenance(volume):
            volume.read_only = True
            yield from run_generation_maintenance(self.sim, volume)
        else:
            yield from self._compact_metadata()

    def _compact_metadata(self):
        volume = self.volume
        for index in volume._alive_devices():
            yield from volume.mdzones[index].recovery_compact()


class _ZoneContent:
    """Stripe-hole analysis and repair for one logical zone."""

    def __init__(self, volume: RaiznVolume, zone: int,
                 extents: List[Optional[int]],
                 partial_parity: Dict[int, List[MetadataEntry]]):
        self.volume = volume
        self.zone = zone
        self.extents = extents
        self.partial_parity = partial_parity
        self.logical_wp = volume.mapper.zone_start(zone)
        self.has_relocation_conflicts = False
        #: (stripe, su_index) pairs currently being reconstructed from
        #: redundancy, to bound the media-error fallback's recursion.
        self._repairing: set = set()

    # Helper shorthand ---------------------------------------------------------

    @property
    def su(self) -> int:
        return self.volume.config.stripe_unit_bytes

    @property
    def width(self) -> int:
        return self.volume.mapper.stripe_width

    def _su_extent(self, stripe: int, device: int) -> Optional[int]:
        """Written bytes of the SU device ``device`` holds for ``stripe``."""
        extent = self.extents[device]
        if extent is None:
            return None
        return max(0, min(self.su, extent - stripe * self.su))

    def _data_extent(self, stripe: int, su_index: int,
                     device: int) -> Optional[int]:
        """Effective *valid* bytes of a data SU, relocation-aware.

        An SU with a relocation unit holds stale bytes on the device; its
        valid content is whatever the relocation log covers contiguously
        from the SU start (possibly nothing for a freshly armed marker).
        """
        su_lba = self.volume.mapper.su_lba(self.zone, stripe, su_index)
        unit = self.volume.relocations.lookup(su_lba)
        if unit is None:
            return self._su_extent(stripe, device)
        cover = 0
        for lo, hi in sorted(unit.extents):
            if lo <= cover:
                cover = max(cover, hi)
            else:
                break
        return cover

    def _read_su_prefix(self, stripe: int, su_index: int, device: int,
                        length: int):
        """Process-style: the first ``length`` valid bytes of a data SU,
        zero-padded past the valid extent, honouring relocation units."""
        volume = self.volume
        su_lba = volume.mapper.su_lba(self.zone, stripe, su_index)
        unit = volume.relocations.lookup(su_lba)
        if unit is not None:
            out = bytearray(length)
            for lo, hi in unit.overlaps(su_lba, length):
                out[lo:hi] = unit.read(su_lba + lo, hi - lo)
            return bytes(out)
        dev_extent = self._su_extent(stripe, device) or 0
        take = min(length, dev_extent)
        if take == 0 or volume.devices[device] is None:
            return bytes(length)
        zone_pba = self.zone * volume.phys_zone_size
        probe = Bio.read(zone_pba + stripe * self.su, take)
        probe.errors_as_status = True
        bio = yield volume.devices[device].submit(probe)
        if bio.error is None:
            # join() materializes bytes whether the device returned bytes
            # or a media view.
            return b"".join((bio.result, bytes(length - take)))
        # A latent (UNC) media error under a recovery read — the compound
        # case: the crash landed on an extent no scrub had healed yet.
        # Rebuild this SU from the stripe's redundancy instead of failing
        # the whole mount; the live read path re-heals the extent after
        # mount.  A second fault inside the same stripe (recursion guard)
        # is beyond single parity and genuinely unrecoverable.
        key = (stripe, su_index)
        if key in self._repairing:
            raise bio.error
        self._repairing.add(key)
        try:
            layout = volume.mapper.stripe_layout(self.zone, stripe)
            rebuilt = yield from self._reconstruct_su(
                stripe, layout, su_index,
                volume.mapper.zone_start(self.zone)
                + (stripe + 1) * self.width)
        finally:
            self._repairing.discard(key)
        if rebuilt is None or len(rebuilt) < take:
            raise bio.error
        return b"".join((rebuilt[:take], bytes(length - take)))

    # Analysis -----------------------------------------------------------------

    def analyze(self):
        """Derive the logical write pointer; repair or hide stripe holes."""
        volume = self.volume
        zone_start = volume.mapper.zone_start(self.zone)
        stripes = volume.mapper.stripes_per_zone
        first_gap: Optional[int] = None  # LBA of first missing byte
        max_written = zone_start

        for stripe in range(stripes):
            layout = volume.mapper.stripe_layout(self.zone, stripe)
            any_data = False
            for i, device in enumerate(layout.data_devices):
                extent = self._data_extent(stripe, i, device)
                su_lba = volume.mapper.su_lba(self.zone, stripe, i)
                if extent is None:
                    # Missing device: infer from parity coverage below.
                    continue
                if extent > 0:
                    any_data = True
                    max_written = max(max_written, su_lba + extent)
                if extent < self.su and first_gap is None:
                    first_gap = su_lba + extent
            parity_extent = self._su_extent(stripe, layout.parity_device)
            if parity_extent:
                any_data = True
            if not any_data and first_gap is not None:
                break  # past the end of written data

        missing_index = self._missing_device()
        if missing_index is not None:
            yield from self._analyze_degraded(max_written)
            return

        if first_gap is None or first_gap >= max_written:
            self.logical_wp = max_written
            return
        yield from self._repair_holes(first_gap, max_written)

    def _missing_device(self) -> Optional[int]:
        for index, extent in enumerate(self.extents):
            if extent is None:
                return index
        return None

    # Hole repair (all devices present) -------------------------------------------

    def _repair_holes(self, first_gap: int, max_written: int):
        """Fill stripe holes from parity, or roll back and arm relocation."""
        volume = self.volume
        zone_start = volume.mapper.zone_start(self.zone)
        # Start from the first stripe any device is short in — a torn
        # *parity* SU does not show up as a logical-address gap but still
        # blocks that device's zone and must be healed in stripe order.
        min_extent = min(e for e in self.extents if e is not None)
        first_stripe = min((first_gap - zone_start) // self.width,
                           min_extent // self.su)
        last_stripe = (max_written - 1 - zone_start) // self.width
        rolled_back = False
        for stripe in range(first_stripe, last_stripe + 1):
            if rolled_back:
                break
            repaired = yield from self._repair_stripe(stripe, max_written)
            if not repaired:
                rolled_back = True
        if rolled_back:
            # Hide the corrupted stripe unit(s): the write pointer rolls
            # back to the first still-missing byte; stale data persisted
            # beyond it is armed with relocation markers so this mount —
            # and any future mount — can tell stale bytes from new ones.
            self.logical_wp = self._first_missing_lba(max_written)
            self.has_relocation_conflicts = True
            yield from self._arm_stale_relocations(self.logical_wp)
        else:
            self.logical_wp = max_written

    def _arm_stale_relocations(self, rollback_lwp: int):
        """Create persisted relocation markers for every stale SU.

        Data persisted beyond the rollback point can never be served
        again (ZNS forbids overwriting it in place); marking each such SU
        relocated makes the distinction durable, so a second crash cannot
        resurrect stale bytes (§5.2's remapped zones).
        """
        volume = self.volume
        known = [e for e in self.extents if e is not None]
        max_extent = max(known) if known else 0
        if max_extent == 0:
            return
        last_stripe = (max_extent - 1) // self.su
        events = []
        for stripe in range(last_stripe + 1):
            layout = volume.mapper.stripe_layout(self.zone, stripe)
            for i, device in enumerate(layout.data_devices):
                su_lba = volume.mapper.su_lba(self.zone, stripe, i)
                if su_lba < rollback_lwp:
                    continue  # valid region (or the hole device's prefix)
                dev_extent = self._su_extent(stripe, device) or 0
                if dev_extent == 0:
                    continue  # nothing stale at this SU
                if volume.relocations.lookup(su_lba) is not None:
                    continue
                volume.relocations.unit_for(su_lba, device, self.zone)
                entry = encode_relocated_su(
                    su_lba, b"", volume.generation[self.zone])
                events.append(volume.sim.process(
                    volume.mdzones[device].append(
                        MetadataRole.GENERAL, entry, fua=True)))
        if events:
            yield volume.sim.all_of(events)

    def _first_missing_lba(self, max_written: int) -> int:
        volume = self.volume
        zone_start = volume.mapper.zone_start(self.zone)
        position = zone_start
        while position < max_written:
            stripe = (position - zone_start) // self.width
            in_stripe = (position - zone_start) % self.width
            i = in_stripe // self.su
            layout = volume.mapper.stripe_layout(self.zone, stripe)
            extent = self._data_extent(stripe, i,
                                       layout.data_devices[i]) or 0
            su_lba = volume.mapper.su_lba(self.zone, stripe, i)
            if extent < min(self.su, max_written - su_lba):
                return su_lba + extent
            position = su_lba + self.su
        return max_written

    def _repair_stripe(self, stripe: int, max_written: int):
        """Rebuild this stripe's missing stripe-unit bytes, if possible."""
        volume = self.volume
        layout = volume.mapper.stripe_layout(self.zone, stripe)
        zone_start = volume.mapper.zone_start(self.zone)
        stripe_lba = zone_start + stripe * self.width
        # Expected extent of each data SU given data beyond it exists.
        shorts: List[Tuple[int, int, int]] = []  # (su index, device, have)
        for i, device in enumerate(layout.data_devices):
            su_lba = volume.mapper.su_lba(self.zone, stripe, i)
            expected = max(0, min(self.su, max_written - su_lba))
            have = self._data_extent(stripe, i, device) or 0
            if have < expected:
                if volume.relocations.lookup(su_lba) is not None:
                    # The missing bytes belong to a relocated SU; there
                    # is no writable hole on the device to repair into.
                    return False
                shorts.append((i, device, have))
        if len(shorts) > 1:
            return False  # single parity cannot repair two holes
        if shorts:
            su_index, device, have = shorts[0]
            su_lba = volume.mapper.su_lba(self.zone, stripe, su_index)
            needed_end = max(0, min(self.su, max_written - su_lba))
            reconstructed = yield from self._reconstruct_su(
                stripe, layout, su_index, max_written)
            if reconstructed is None or len(reconstructed) < needed_end:
                return False
            # Write the recovered bytes back at the device's write
            # pointer — the hole is exactly where the zone is writable.
            pba = self.zone * volume.phys_zone_size + stripe * self.su + have
            patch = reconstructed[have:needed_end]
            if patch:
                yield volume.devices[device].submit(Bio.write(pba, patch))
                pdesc = volume.phys[device][self.zone]
                pdesc.write_pointer = pba + len(patch)
                self.extents[device] = stripe * self.su + have + len(patch)
        yield from self._heal_parity(stripe, layout, stripe_lba, max_written)
        return True

    def _heal_parity(self, stripe: int, layout, stripe_lba: int,
                     max_written: int):
        """Complete a torn or missing parity SU of a fully-written stripe.

        A torn parity write would otherwise block future writes on that
        device's zone (its write pointer sits mid-SU).  After the data
        SUs are repaired, the parity is recomputed and its missing tail
        appended in place.
        """
        volume = self.volume
        if max_written < stripe_lba + self.width:
            return  # incomplete stripe: no full parity SU exists yet
        parity_extent = self._su_extent(stripe, layout.parity_device) or 0
        if parity_extent >= self.su:
            return
        if (self.extents[layout.parity_device] or 0) != \
                stripe * self.su + parity_extent:
            # The device holds (stale) data beyond this parity SU; it
            # cannot be appended in place — the mount-time parity audit
            # records the true parity instead.
            return
        zone_pba = self.zone * volume.phys_zone_size
        from .parity import stripe_parity
        units = []
        for j, other in enumerate(layout.data_devices):
            data = yield from self._read_su_prefix(stripe, j, other, self.su)
            units.append(data)
        parity = stripe_parity(units, self.su)
        pba = zone_pba + stripe * self.su + parity_extent
        yield volume.devices[layout.parity_device].submit(
            Bio.write(pba, parity[parity_extent:]))
        pdesc = volume.phys[layout.parity_device][self.zone]
        pdesc.write_pointer = zone_pba + (stripe + 1) * self.su
        self.extents[layout.parity_device] = (stripe + 1) * self.su

    def _reconstruct_su(self, stripe: int, layout, su_index: int,
                        max_written: int):
        """Missing-SU bytes from full parity or partial parity logs.

        Returns as many bytes as are recoverable (possibly fewer than
        requested when partial parity coverage ends early), or None when
        no parity information exists.
        """
        volume = self.volume
        relocated = volume.relocated_parity.get((self.zone, stripe))
        if relocated is not None and len(relocated) == self.su:
            # Relocated parity (in-place write conflicted, §5.2): the
            # true full parity — the on-device parity SU, if any, holds
            # stale bytes and must not be read.
            return (yield from self._xor_siblings(stripe, layout,
                                                  su_index, relocated))
        parity_extent = self._su_extent(stripe, layout.parity_device)
        zone_pba = self.zone * volume.phys_zone_size
        if parity_extent == self.su:
            # Full parity was persisted: XOR it with the other data SUs.
            # A full parity SU is computed over a *completely* written
            # stripe, so a sibling data SU shorter than the stripe unit
            # means real bytes were lost to crash rollback — the zero
            # padding ``_read_su_prefix`` applies past its extent does
            # not match what went into the parity, and XOR results at
            # those positions are garbage.  (§5.1's "treated as zeroes"
            # rule covers only partial parity, which is computed over
            # zero-padded buffers.)  Reconstruction is therefore exact
            # only up to the shortest sibling extent; returning the
            # shorter prefix makes ``_repair_stripe`` roll the zone back
            # instead of patching corrupt bytes onto the device.
            probe = Bio.read(zone_pba + stripe * self.su, self.su)
            # A latent media error on the parity PBA is tolerated: the
            # partial-parity fallback below may still reconstruct.
            probe.errors_as_status = True
            bio = yield volume.devices[layout.parity_device].submit(probe)
            if bio.error is None:
                return (yield from self._xor_siblings(stripe, layout,
                                                      su_index, bio.result))
        return (yield from self._reconstruct_from_partial_parity(
            stripe, layout, su_index))

    def _xor_siblings(self, stripe: int, layout, su_index: int, parity):
        """XOR full parity against the sibling data SUs.

        Exact only up to the shortest sibling extent (see the caller's
        rollback rationale); the returned prefix is clipped accordingly.
        """
        acc = bytearray(parity)
        valid = self.su
        for j, other in enumerate(layout.data_devices):
            if j == su_index:
                continue
            valid = min(valid, self._data_extent(stripe, j, other) or 0)
            data = yield from self._read_su_prefix(stripe, j, other, self.su)
            xor_into(acc, data)
        return bytes(acc[:valid])

    def _reconstruct_from_partial_parity(self, stripe: int, layout,
                                         su_index: int):
        """§5.1's reconstruction: ordered XOR of partial parity deltas."""
        volume = self.volume
        entries = self.partial_parity.get(stripe, [])
        if not entries:
            return None
        zone_start = volume.mapper.zone_start(self.zone)
        stripe_lba = zone_start + stripe * self.width
        haves = {j: self._data_extent(stripe, j, other) or 0
                 for j, other in enumerate(layout.data_devices)
                 if j != su_index}
        # Choose the longest *usable* prefix of the (disjoint, append-
        # ordered) delta chain.  An entry describing sibling-SU bytes
        # that did not survive the crash pollutes the parity positions at
        # and past that sibling's extent — those bytes fall under §5.1's
        # rollback rule ("data at any LBAs at or higher than this missing
        # data is discarded") and cannot be cancelled out of the XOR.
        # A longer chain therefore does not always recover more of the
        # target SU: a late multi-SU delta can wipe out positions an
        # earlier single-SU prefix reconstructed exactly.  Scan prefixes,
        # tracking contiguous coverage and the first polluted parity
        # offset, and keep the best trade-off.
        best = 0
        best_end = stripe_lba
        coverage = stripe_lba
        first_polluted = self.su
        for start, stop in sorted((e.start_lba, e.end_lba) for e in entries):
            if start > coverage:
                break  # gap in the chain; later deltas are unusable
            for j, have in haves.items():
                su_lo = stripe_lba + j * self.su
                lo = max(start, su_lo + have)
                hi = min(stop, su_lo + self.su)
                if lo < hi:
                    first_polluted = min(first_polluted, lo - su_lo)
            coverage = max(coverage, stop)
            t_cov = max(0, min(self.su,
                               (coverage - stripe_lba) - su_index * self.su))
            usable = min(t_cov, first_polluted)
            if usable > best:
                best = usable
                best_end = coverage
        if best <= 0:
            return None
        acc = bytearray(self.su)
        for entry in entries:
            if entry.end_lba > best_end:
                continue
            parity_offset, delta = decode_partial_parity(entry)
            xor_into(acc, delta, parity_offset)
        # Fold in the surviving data SUs up to the covered end, zero
        # padding beyond each unit's persisted extent.  Positions past
        # ``best`` may be garbage (polluted or uncovered) — sliced off.
        covered = best_end - stripe_lba
        for j, other in enumerate(layout.data_devices):
            if j == su_index:
                continue
            su_covered = max(0, min(self.su, covered - j * self.su))
            if su_covered:
                data = yield from self._read_su_prefix(stripe, j, other,
                                                       su_covered)
                xor_into(acc, data)
        return bytes(acc[:best])

    @staticmethod
    def _contiguous_coverage(entries: List[MetadataEntry],
                             stripe_lba: int) -> int:
        """End LBA of the gap-free partial-parity chain from stripe start."""
        spans = sorted((e.start_lba, e.end_lba) for e in entries)
        end = stripe_lba
        for start, stop in spans:
            if start > end:
                break
            end = max(end, stop)
        return end

    # Degraded mount --------------------------------------------------------------

    def _analyze_degraded(self, max_written: int):
        """One device missing: trust parity for complete stripes; bound the
        tail by partial-parity coverage (§5.1)."""
        volume = self.volume
        zone_start = volume.mapper.zone_start(self.zone)
        if max_written == zone_start and not self.partial_parity:
            self.logical_wp = zone_start
            return
        missing = self._missing_device()
        # Find the last stripe with any evidence of data.
        last = (max(max_written - 1, zone_start) - zone_start) // self.width
        if self.partial_parity:
            last = max(last, max(self.partial_parity))
        wp = zone_start
        torn_parity: List[int] = []
        for stripe in range(last + 1):
            layout = volume.mapper.stripe_layout(self.zone, stripe)
            stripe_lba = zone_start + stripe * self.width
            complete = True
            for i, device in enumerate(layout.data_devices):
                if device == missing:
                    continue
                # Relocation-aware: an SU whose valid bytes live in the
                # relocation log is complete even though the device's
                # data zone holds fewer (or stale) bytes.
                if (self._data_extent(stripe, i, device) or 0) < self.su:
                    complete = False
                    break
            parity_ok = (layout.parity_device == missing
                         or (self._su_extent(stripe, layout.parity_device)
                             or 0) == self.su
                         or (self.zone, stripe) in volume.relocated_parity)
            if complete and parity_ok:
                wp = stripe_lba + self.width
                continue
            # Tail stripe: the missing device's contribution is bounded by
            # partial parity coverage; data beyond it is discarded.
            wp = self._degraded_tail_wp(stripe, layout, missing, stripe_lba,
                                        max_written)
            if wp < stripe_lba + self.width:
                break
            # Every data SU is fully covered (device, relocation log, or
            # partial parity) — only the parity SU is torn or missing.
            # That does not cap the write pointer any more than it does
            # in non-degraded recovery (``_heal_parity``); keep scanning,
            # and materialize the true parity below so degraded reads of
            # the missing device's SU do not XOR the torn on-device copy.
            if layout.parity_device != missing:
                torn_parity.append(stripe)
        self.logical_wp = min(wp, zone_start + volume.zone_capacity)
        for stripe in torn_parity:
            yield from self._record_degraded_parity(stripe, missing)

    def _record_degraded_parity(self, stripe: int, missing: int):
        """True parity of a fully-covered stripe whose on-device parity
        SU is torn, recorded in ``relocated_parity`` (the map the read
        path's reconstruction already prefers over the device copy).

        The missing device's data SU is rebuilt from its relocation unit
        or the partial-parity chain — both verified to cover the full SU
        by the write-pointer scan above.
        """
        volume = self.volume
        layout = volume.mapper.stripe_layout(self.zone, stripe)
        if (self.zone, stripe) in volume.relocated_parity:
            return
        from .parity import stripe_parity
        units = []
        for j, device in enumerate(layout.data_devices):
            if device == missing and \
                    (self._data_extent(stripe, j, device) or 0) < self.su:
                chunk = yield from self._reconstruct_degraded_chunk(
                    stripe, layout, j, self.su)
            else:
                chunk = yield from self._read_su_prefix(stripe, j, device,
                                                        self.su)
            units.append(chunk)
        volume.relocated_parity[(self.zone, stripe)] = \
            stripe_parity(units, self.su)

    def _degraded_tail_wp(self, stripe: int, layout, missing: int,
                          stripe_lba: int, max_written: int) -> int:
        entries = self.partial_parity.get(stripe, [])
        pp_end = self._contiguous_coverage(entries, stripe_lba)
        if layout.parity_device == missing:
            # Data devices all survive, but each may hold a crash-torn SU;
            # the tail ends at the first gap among them.  Bytes beyond a
            # gap were never flush-acknowledged (a flush ack requires
            # every piece durable), so discarding them is legal — and with
            # the parity device gone there is no redundancy to repair the
            # hole from.  ``max_written`` alone would leap over the gap
            # and resurrect unacknowledged data.
            wp = stripe_lba
            for i, device in enumerate(layout.data_devices):
                su_lba = stripe_lba + i * self.su
                extent = self._data_extent(stripe, i, device) or 0
                if extent < self.su:
                    return su_lba + extent
                wp = su_lba + extent
            return wp
        wp = stripe_lba
        for i, device in enumerate(layout.data_devices):
            su_lba = stripe_lba + i * self.su
            if device == missing:
                # A relocation unit (device-independent, replayed from
                # the surviving metadata logs) can cover the missing
                # device's SU; otherwise partial parity bounds it.
                extent = self._data_extent(stripe, i, device)
                if extent is None:
                    extent = max(0, min(self.su, pp_end - su_lba))
                    if (self.zone, stripe) in self.volume.relocated_parity:
                        # Full relocated parity survives: the missing SU
                        # is reconstructable wherever every live sibling
                        # holds valid bytes.
                        sib = min((self._data_extent(stripe, j, other) or 0
                                   for j, other in
                                   enumerate(layout.data_devices) if j != i),
                                  default=self.su)
                        extent = max(extent, sib)
            else:
                extent = self._data_extent(stripe, i, device) or 0
            if extent < self.su:
                return su_lba + extent
            wp = su_lba + extent
        return wp

    # Tail stripe buffer -------------------------------------------------------------

    def rebuild_tail_buffer(self, desc):
        """Reload the stripe buffer of an incomplete tail stripe.

        The buffer must exist so that future writes completing the stripe
        can compute full parity, and so degraded reads of the tail work.
        A missing device's portion is reconstructed from partial parity.
        """
        volume = self.volume
        zone_start = desc.start_lba
        in_zone = desc.write_pointer - zone_start
        if in_zone == 0 or in_zone % self.width == 0:
            return
        stripe = in_zone // self.width
        fill = in_zone % self.width
        layout = volume.mapper.stripe_layout(self.zone, stripe)
        data = bytearray(fill)
        missing = self._missing_device()
        for i, device in enumerate(layout.data_devices):
            lo = i * self.su
            if lo >= fill:
                break
            take = min(self.su, fill - lo)
            if device == missing or volume.devices[device] is None:
                chunk = yield from self._reconstruct_degraded_chunk(
                    stripe, layout, i, take)
            else:
                try:
                    chunk = yield from self._read_su_prefix(
                        stripe, i, device, take)
                except MediaError:
                    # Compound fault: a latent extent under the tail SU
                    # that parity could not fully rebuild.  Salvage the
                    # genuine prefix and roll the zone back instead of
                    # failing the mount.
                    yield from self._rollback_torn_tail(
                        desc, stripe, layout, i, device, take)
                    return
            data[lo:lo + take] = chunk
        buffer = desc.buffers.acquire(stripe)
        buffer.absorb(0, bytes(data))

    def _rollback_torn_tail(self, desc, stripe: int, layout, su_index: int,
                            device: int, take: int):
        """§5.2-style rollback over an unreconstructable torn tail SU.

        The SU cannot be read (unrecoverable media error) nor fully
        rebuilt (the partial-parity chain falls short of the device
        extent).  That combination is only possible for bytes that were
        never durably acknowledged: a durable ack — FUA or flush —
        requires the covering partial parity to be durable first, so any
        acknowledged byte of this SU is reconstructable.  Salvage the
        longest genuine prefix — the clean on-media bytes before the bad
        extent, or the partial-parity rebuild, whichever is longer —
        into a persisted relocation unit (the media copy is untrustworthy
        past the bad extent's start), roll the logical write pointer back
        to its end, and arm relocation markers over the stale remainder.
        """
        volume = self.volume
        su_lba = volume.mapper.su_lba(self.zone, stripe, su_index)
        try:
            rebuilt = yield from self._reconstruct_su(
                stripe, layout, su_index, su_lba + take)
        except MediaError:
            rebuilt = None
        content = bytes(rebuilt[:take]) if rebuilt else b""
        dev = volume.devices[device]
        pba = self.zone * volume.phys_zone_size + stripe * self.su
        bad = [max(0, lo - pba) for lo, hi in dev.bad_extents(self.zone)
               if lo < pba + take and hi > pba]
        clean = min(bad) if bad else 0
        if clean > len(content):
            bio = yield dev.submit(Bio.read(pba, clean))
            content = bytes(bio.result)
        if content:
            unit = volume.relocations.unit_for(su_lba, device, self.zone)
            unit.write(su_lba, content)
            entry = encode_relocated_su(su_lba, content,
                                        volume.generation[self.zone])
            yield from volume.mdzones[device].append(
                MetadataRole.GENERAL, entry, fua=True)
            desc.has_relocations = True
        new_wp = su_lba + len(content)
        self.logical_wp = new_wp
        desc.write_pointer = new_wp
        if new_wp == desc.start_lba:
            desc.state = ZoneState.EMPTY
        elif desc.state is ZoneState.FULL:
            desc.state = ZoneState.CLOSED
        self.has_relocation_conflicts = True
        yield from self._arm_stale_relocations(new_wp)
        # The tail stripe changed: rebuild the buffer for the new tail.
        # The salvaged SU is now served from its relocation unit, so
        # this cannot re-raise for the same extent.
        yield from self.rebuild_tail_buffer(desc)

    def _reconstruct_degraded_chunk(self, stripe: int, layout, su_index: int,
                                    take: int):
        relocated = self.volume.relocated_parity.get((self.zone, stripe))
        if relocated is not None and len(relocated) == self.su:
            rebuilt = yield from self._xor_siblings(stripe, layout, su_index,
                                                    relocated)
            if len(rebuilt) >= take:
                return rebuilt[:take]
        reconstructed = yield from self._reconstruct_from_partial_parity(
            stripe, layout, su_index)
        if reconstructed is None or len(reconstructed) < take:
            raise RecoveryError(
                f"zone {self.zone} stripe {stripe}: cannot reconstruct "
                "missing tail data (insufficient partial parity)")
        return reconstructed[:take]
