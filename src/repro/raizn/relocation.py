"""Relocated stripe units (§5.2, Figure 1).

After an unrecoverable partial stripe write, RAIZN rolls the logical zone
write pointer back to hide the corrupted stripe unit(s).  The stale data
already persisted at higher PBAs cannot be overwritten, so future writes
to those LBAs are redirected ("relocated") to the affected device's
metadata zone.  Relocations are uncommon, so relocated stripe units are
cached in memory in addition to being persisted.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple


class RelocatedUnit:
    """The in-memory cache of one relocated stripe unit."""

    __slots__ = ("su_lba", "device", "su_size", "buffer", "extents")

    def __init__(self, su_lba: int, device: int, su_size: int):
        self.su_lba = su_lba
        self.device = device
        self.su_size = su_size
        self.buffer = bytearray(su_size)
        #: Sorted, disjoint (start, end) byte intervals, SU-relative.
        self.extents: List[Tuple[int, int]] = []

    def write(self, lba: int, data: bytes) -> None:
        """Absorb a redirected write covering ``[lba, lba+len)``."""
        offset = lba - self.su_lba
        end = offset + len(data)
        if offset < 0 or end > self.su_size:
            raise ValueError("write outside the relocated stripe unit")
        self.buffer[offset:end] = data
        self._add_extent(offset, end)

    def _add_extent(self, start: int, end: int) -> None:
        merged = []
        for lo, hi in self.extents:
            if hi < start or lo > end:
                merged.append((lo, hi))
            else:
                start, end = min(start, lo), max(end, hi)
        merged.append((start, end))
        merged.sort()
        self.extents = merged

    def covers(self, lba: int, length: int) -> bool:
        """True when ``[lba, lba+length)`` lies within one written extent."""
        offset = lba - self.su_lba
        end = offset + length
        return any(lo <= offset and end <= hi for lo, hi in self.extents)

    def read(self, lba: int, length: int) -> bytes:
        """Bytes of a covered range (call :meth:`covers` first)."""
        offset = lba - self.su_lba
        return bytes(self.buffer[offset:offset + length])

    def overlaps(self, lba: int, length: int) -> List[Tuple[int, int]]:
        """Written intervals intersecting ``[lba, lba+length)``.

        Returned as (start, end) offsets *relative to the queried range* —
        used by the read path to stitch relocated bytes together with
        still-valid on-device bytes when a read straddles the two.
        """
        offset = lba - self.su_lba
        end = offset + length
        out = []
        for lo, hi in self.extents:
            inter_lo, inter_hi = max(lo, offset), min(hi, end)
            if inter_lo < inter_hi:
                out.append((inter_lo - offset, inter_hi - offset))
        return out


class RelocationStore:
    """All relocated stripe units of the volume, keyed by SU start LBA."""

    def __init__(self, su_size: int):
        self.su_size = su_size
        self._units: Dict[int, RelocatedUnit] = {}
        #: Relocations per (device, physical zone), for the rebuild
        #: threshold of §5.2.
        self.per_phys_zone: Dict[Tuple[int, int], int] = {}

    def unit_for(self, su_lba: int, device: int,
                 phys_zone: int) -> RelocatedUnit:
        """The unit for ``su_lba``, creating (and counting) it if new."""
        unit = self._units.get(su_lba)
        if unit is None:
            unit = RelocatedUnit(su_lba, device, self.su_size)
            self._units[su_lba] = unit
            key = (device, phys_zone)
            self.per_phys_zone[key] = self.per_phys_zone.get(key, 0) + 1
        return unit

    def lookup(self, su_lba: int) -> Optional[RelocatedUnit]:
        return self._units.get(su_lba)

    def units(self) -> List[RelocatedUnit]:
        return [self._units[k] for k in sorted(self._units)]

    def units_on_device(self, device: int) -> List[RelocatedUnit]:
        return [u for u in self.units() if u.device == device]

    def drop_zone(self, zone_start_lba: int, zone_capacity: int) -> None:
        """Forget relocations inside a logical zone (after its reset).

        The volume must call :meth:`rebuild_counters` afterwards to refresh
        the per-physical-zone relocation counts; resets are rare enough
        that recomputing from scratch is fine.
        """
        doomed = [lba for lba in self._units
                  if zone_start_lba <= lba < zone_start_lba + zone_capacity]
        for lba in doomed:
            del self._units[lba]

    def rebuild_counters(self, phys_zone_of) -> None:
        """Recompute per-physical-zone counters; ``phys_zone_of(unit)->int``."""
        self.per_phys_zone.clear()
        for unit in self._units.values():
            key = (unit.device, phys_zone_of(unit))
            self.per_phys_zone[key] = self.per_phys_zone.get(key, 0) + 1

    def __len__(self) -> int:
        return len(self._units)
