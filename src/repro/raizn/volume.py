"""The RAIZN logical volume (paper §4–§5).

``RaiznVolume`` exposes a single logical host-managed zoned device over an
array of ZNS devices, striping data RAID-5 style with rotated parity.  It
accepts the same ``Bio`` vocabulary as a physical device, so any
ZNS-compatible layer (the fio-like workload driver, the F2FS-like
filesystem) runs unmodified on a volume.

The write path mirrors the kernel implementation's ordering discipline:
logical requests are validated and their sub-IOs generated *in submission
order* (the simulator's synchronous-submit model plays the role of §4.3's
write-pointer-matching worker threads), while completions — and the
FUA/flush persistence protocol of §5.3 — are handled asynchronously.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Set, Tuple

from ..block.bio import Bio, BioFlags, Op
from ..block.device import DeviceStats, submit_many
from ..errors import (
    DataLossError,
    DegradedModeError,
    DeviceError,
    DeviceFailedError,
    InvalidAddressError,
    MediaError,
    PowerLossError,
    RaiznError,
    ReadUnwrittenError,
    TransientCommandError,
    VolumeStateError,
    WritePointerViolation,
    ZoneStateError,
)
from ..sim import Event, Simulator
from ..sim.engine import _run_batch
from ..trace import Tracer
from ..units import SECTOR_SIZE
from ..trace.tracer import SITE_BITS
from ..zns.device import ZNSDevice
from ..zns.spec import ZoneInfo, ZoneState
from .address import AddressMapper
from .config import RaiznConfig
from .mdzone import DeviceMetadataZones, MetadataRole
from .metadata import (
    GENERATION_BLOCK_COUNTERS,
    MetadataEntry,
    Superblock,
    encode_generation_block,
    encode_partial_parity,
    encode_partial_parity_bytes,
    encode_relocated_su,
    encode_zone_reset,
)
from .parity import xor_into
from .relocation import RelocationStore
from .stripebuf import StripeBuffer, enable_pool_poisoning
from .zonedesc import LogicalZoneDesc, PhysicalZoneDesc

#: Plain-int FUA mask: the write fan-out tests sub-IO flags per piece,
#: and ``IntFlag.__and__`` costs a dynamic class lookup per call.
_FUA = int(BioFlags.FUA)
_SECTOR_MASK = SECTOR_SIZE - 1
_PREFLUSH = int(BioFlags.PREFLUSH)
_FUA_OR_PREFLUSH = _FUA | _PREFLUSH

#: Upper bound on the per-volume write-plan cache.  Keys are
#: ``(zone, offset-in-zone, length)``; steady-state workloads cycle
#: through a tiny working set, so the cap exists only to bound a
#: pathological scan over every possible offset.
_PLAN_CACHE_MAX = 65536

SUPERBLOCK_VERSION = 1


class _WriteJoin:
    """Join point for one logical write's fan-out (pooled, hop-exact).

    Replaces the per-write ``Gather`` over per-piece outcome events with
    direct counting: device completions and metadata appends report in
    via one shared object instead of allocating an outcome ``Event`` and
    a closure per piece.  Every reporting path queues exactly the same
    number of now-queue hops the event/gather implementation used, so
    fixed-seed event ordering — and with it every RNG draw and digest —
    is byte-identical (see DESIGN.md).

    Children come in three flavours, matching the old hop structure:

    - device pieces: ``_write_attempted`` queues ``_child_ok`` /
      ``_child_fail`` where the outcome event used to trigger the
      gather's callback (one hop);
    - metadata appends: ``_on_child`` runs as the append event's own
      callback (one hop, like ``Gather._on_child``);
    - redirected pieces: ``_on_child_hop`` adds the extra hop the old
      ``_chain`` forwarder introduced (two hops).
    """

    __slots__ = ("volume", "sim", "bio", "done", "desc", "fua_devices",
                 "_count", "_armed", "_failed", "_flush_pending",
                 "_flush_failed")

    def __init__(self, volume: "RaiznVolume"):
        self.volume = volume
        self.sim = volume.sim
        self.bio: Optional[Bio] = None
        self.done: Optional[Event] = None
        self.desc = None
        self.fua_devices: Set[int] = set()
        self._count = 0
        self._armed = False
        self._failed = False
        self._flush_pending = 0
        self._flush_failed = False

    def _reset(self, bio: Bio, done: Event, desc) -> None:
        self.bio = bio
        self.done = done
        self.desc = desc
        self.fua_devices.clear()
        self._count = 0
        self._armed = False
        self._failed = False
        self._flush_pending = 0
        self._flush_failed = False

    # -- fan-out bookkeeping ------------------------------------------------

    def _arm(self) -> None:
        """Last call of the fan-out batch: all children are registered."""
        self._armed = True
        if self._count == 0 and not self._failed:
            # Degenerate fan-out (fully degraded write): mimic the empty
            # gather's two-hop completion so event order is unchanged.
            self.sim.schedule(0.0, self._queue_fired)

    def _queue_fired(self) -> None:
        self.sim._now_queue.append((self._fired, ()))

    def _child_ok(self) -> None:
        if self._failed:
            return
        self._count -= 1
        if self._count == 0 and self._armed:
            self.sim._now_queue.append((self._fired, ()))

    def _child_fail(self, exc: BaseException) -> None:
        if self._failed:
            return
        self._failed = True
        self.sim._now_queue.append((self._fired_fail, (exc,)))

    def _on_child(self, event: Event) -> None:
        """Completion callback of a metadata-append child."""
        if self._failed:
            return
        if not event.ok:
            self._failed = True
            self.sim._now_queue.append((self._fired_fail, (event.value,)))
            return
        self.sim.recycle(event)
        self._count -= 1
        if self._count == 0 and self._armed:
            self.sim._now_queue.append((self._fired, ()))

    def _on_child_hop(self, event: Event) -> None:
        """Completion callback of a redirected child (extra hop, as _chain)."""
        if event.ok:
            self.sim.recycle(event)
            self.sim._now_queue.append((self._child_ok, ()))
        else:
            self.sim._now_queue.append((self._child_fail, (event.value,)))

    # -- completion ---------------------------------------------------------

    def _fired(self) -> None:
        bio = self.bio
        if bio.flags & _FUA_OR_PREFLUSH:
            events = self.volume._flush_unpersisted(self.desc, bio,
                                                    self.fua_devices)
            self._flush_pending = len(events)
            if not events:
                self.sim._now_queue.append((self._queue_flushed, ()))
                return
            callback = self._on_flush_child
            for event in events:
                event.add_callback(callback)
            return
        bio.complete_time = self.sim.now
        done = self.done
        self._release()
        done.succeed(bio)

    def _fired_fail(self, exc: BaseException) -> None:
        if self.done.triggered:
            # The fan-out itself raised at submission; ``submit`` already
            # failed the logical bio and this straggler has nothing to add
            # (the gather implementation never even saw it).
            return
        if isinstance(exc, DeviceError):
            self.done.fail(exc)
            return
        raise exc

    def _queue_flushed(self) -> None:
        self.sim._now_queue.append((self._flushed, ()))

    def _on_flush_child(self, event: Event) -> None:
        if self._flush_failed:
            return
        if not event.ok:
            self._flush_failed = True
            self.sim._now_queue.append((self._flushed_fail, (event.value,)))
            return
        self.sim.recycle(event)
        self._flush_pending -= 1
        if self._flush_pending == 0:
            self.sim._now_queue.append((self._flushed, ()))

    def _flushed(self) -> None:
        bio = self.bio
        desc = self.desc
        # Only stripe units *fully* below the durable point may be marked.
        # A partial tail SU is durable right now, but a later plain write
        # can extend it in the device cache — a set bit would then be
        # stale, the next FUA would skip flushing that device, and a crash
        # could lose acknowledged data.
        desc.persistence.mark_up_to(
            (bio.offset + bio.length - desc.start_lba) // desc.su)
        bio.complete_time = self.sim.now
        done = self.done
        self._release()
        done.succeed(bio)

    def _flushed_fail(self, exc: BaseException) -> None:
        if isinstance(exc, DeviceError):
            self.done.fail(exc)
            return
        raise exc

    def _release(self) -> None:
        """Return this join to the volume pool (clean completions only).

        Failure paths leave the join to the garbage collector: stragglers
        of a failed fan-out may still hold a reference and report in.
        """
        free = self.volume._join_free
        if len(free) < 64:
            self.bio = None
            self.done = None
            self.desc = None
            self.fua_devices.clear()
            free.append(self)


class RebuildState:
    """Progress of an in-flight device rebuild (§4.2)."""

    def __init__(self, device_index: int):
        self.device_index = device_index
        self.rebuilt_zones: Set[int] = set()
        self.bytes_rebuilt = 0
        self.done = False


class HealthStats:
    """Volume-level error and self-healing accounting.

    Every counter is cumulative over the volume's lifetime; the errortest
    harness reports them and the eviction policy consumes the per-device
    counts kept separately in ``RaiznVolume.error_counts``.

    Accounting discipline: ``error_counts`` (which drives threshold
    eviction) is charged only by *hard* evidence — media errors, wear
    transitions, exhausted retry budgets.  Transient retries that later
    succeed and hedged reads whose straggler eventually completes are
    recorded in their own counters (``transient_retries``,
    ``slow_hedges``) and never reach ``error_counts``; latency outliers
    feed the separate :class:`DeviceHealth` score instead.
    """

    def __init__(self) -> None:
        #: Unrecoverable (UNC) media errors observed on reads.
        self.media_errors = 0
        #: Transient command failures that were retried.
        self.transient_retries = 0
        #: Transient command failures that exhausted their retry budget.
        self.transient_escalations = 0
        #: Zone wear-out transitions the datapath ran into (READ_ONLY or
        #: OFFLINE physical zones discovered via a failing command).
        self.wear_errors = 0
        #: Stripe units reconstructed from redundancy and relocated so the
        #: next read hits clean media (read-repair).
        self.heals = 0
        #: Parity stripe units recomputed and re-logged by the scrubber.
        self.parity_heals = 0
        #: Devices evicted into degraded mode by the error threshold.
        self.evictions = 0
        #: Reads served from corrupt media because read-repair was
        #: disabled (only reachable with ``config.read_repair=False``).
        self.unrepaired_serves = 0
        #: Hedged reconstruction reads fired against stragglers.  A hedge
        #: is a latency defense, not an error: the straggler is charged
        #: here (and in the device's :class:`DeviceHealth`), never in
        #: ``error_counts``.
        self.slow_hedges = 0
        #: Hedges where the reconstruction beat the straggler and served
        #: the read.
        self.hedge_wins = 0
        #: Devices demoted to "avoid for reads" by their health score.
        self.slow_demotions = 0
        #: Evictions (a subset of ``evictions``) triggered by a
        #: persistently bad health score rather than the error threshold.
        self.slow_evictions = 0

    def to_dict(self) -> Dict[str, int]:
        return {
            "media_errors": self.media_errors,
            "transient_retries": self.transient_retries,
            "transient_escalations": self.transient_escalations,
            "wear_errors": self.wear_errors,
            "heals": self.heals,
            "parity_heals": self.parity_heals,
            "evictions": self.evictions,
            "unrepaired_serves": self.unrepaired_serves,
            "slow_hedges": self.slow_hedges,
            "hedge_wins": self.hedge_wins,
            "slow_demotions": self.slow_demotions,
            "slow_evictions": self.slow_evictions,
        }


class _LatencyEwma:
    """EWMA of completion latency plus its mean absolute deviation.

    Outlier samples (past the adaptive threshold) are *excluded* from the
    running mean: the threshold must track the device's healthy
    behaviour, not chase a stall upward until hedging stops firing.
    """

    __slots__ = ("mean", "dev", "samples")

    def __init__(self) -> None:
        self.mean = 0.0
        self.dev = 0.0
        self.samples = 0

    def threshold(self, config: RaiznConfig) -> Optional[float]:
        """Adaptive slow-completion threshold, or None before the
        distribution has ``hedge_min_samples`` observations."""
        if self.samples < config.hedge_min_samples:
            return None
        return max(config.hedge_floor_s,
                   self.mean * config.hedge_latency_multiplier,
                   self.mean + config.hedge_slack_deviations * self.dev)

    def observe(self, seconds: float, config: RaiznConfig) -> bool:
        """Fold one sample in; returns True if it was a slow outlier."""
        if self.samples == 0:
            self.mean = seconds
            self.samples = 1
            return False
        threshold = self.threshold(config)
        outlier = threshold is not None and seconds > threshold
        self.samples += 1
        if not outlier:
            alpha = config.latency_ewma_alpha
            self.dev += alpha * (abs(seconds - self.mean) - self.dev)
            self.mean += alpha * (seconds - self.mean)
        return outlier


class DeviceHealth:
    """Latency health of one array device (gray-failure scoring).

    Read and write completion latencies feed separate EWMAs (their
    service times differ by channel bandwidth); each completion is
    classified healthy/slow against the adaptive threshold, and the
    slow-indicator EWMA forms the health score: ``score`` is 1.0 for a
    healthy device and falls toward 0.0 as outliers dominate.  The
    volume demotes (avoid for reads) and eventually evicts on the score
    — see :meth:`RaiznVolume._note_latency`.
    """

    __slots__ = ("read", "write", "slow_score", "slow_outliers",
                 "slow_hedges", "hedge_wins", "demoted",
                 "samples_since_demote")

    def __init__(self) -> None:
        #: Read / write completion-latency distributions.
        self.read = _LatencyEwma()
        self.write = _LatencyEwma()
        #: EWMA of the slow-outlier indicator, in [0, 1].
        self.slow_score = 0.0
        #: Cumulative completions classified slow.
        self.slow_outliers = 0
        #: Hedged reconstruction reads fired against this device.
        self.slow_hedges = 0
        #: Hedges the reconstruction won against this device.
        self.hedge_wins = 0
        #: Demoted: reads avoid this device (served by reconstruction).
        self.demoted = False
        #: Latency samples observed since demotion (eviction grace gate).
        self.samples_since_demote = 0

    @property
    def score(self) -> float:
        """Health score in [0, 1]; 1.0 is healthy."""
        return 1.0 - self.slow_score

    def observe(self, is_read: bool, seconds: float,
                config: RaiznConfig) -> bool:
        """Fold one completion latency in; returns True on an outlier."""
        ewma = self.read if is_read else self.write
        outlier = ewma.observe(seconds, config)
        if outlier:
            self.slow_outliers += 1
        self.slow_score += config.slow_score_alpha * \
            ((1.0 if outlier else 0.0) - self.slow_score)
        if self.demoted:
            self.samples_since_demote += 1
        return outlier

    def to_dict(self) -> dict:
        return {
            "read_ewma_ms": round(self.read.mean * 1e3, 4),
            "write_ewma_ms": round(self.write.mean * 1e3, 4),
            "score": round(self.score, 4),
            "slow_outliers": self.slow_outliers,
            "slow_hedges": self.slow_hedges,
            "hedge_wins": self.hedge_wins,
            "demoted": self.demoted,
        }


class _HedgeState:
    """Flags shared between a straggler read and its hedge timer."""

    __slots__ = ("primary", "served", "served_at")

    def __init__(self, primary: Event):
        #: The straggler's device completion event.
        self.primary = primary
        #: True once the hedged reconstruction served the piece; the
        #: straggler's eventual completion is then accounting-only.
        self.served = False
        #: Simulated time at which the reconstruction served the piece.
        #: A straggler completing in the *same tick* tied the race — the
        #: AnyOf winner is exclusive, so the tie is not charged to the
        #: primary's latency EWMA (see ``_read_attempted``).
        self.served_at: Optional[float] = None


class RaiznVolume:
    """A logical ZNS volume striped over an array of ZNS devices."""

    def __init__(self, sim: Simulator, devices: List[Optional[ZNSDevice]],
                 config: RaiznConfig, array_uuid: bytes):
        if len(devices) != config.num_devices:
            raise RaiznError(
                f"config wants {config.num_devices} devices, got {len(devices)}")
        template = next(d for d in devices if d is not None)
        for dev in devices:
            if dev is None:
                continue
            if (dev.num_zones != template.num_zones
                    or dev.zone_capacity != template.zone_capacity
                    or dev.zone_size != template.zone_size):
                raise RaiznError("array devices must have identical geometry")
        self.sim = sim
        self.devices: List[Optional[ZNSDevice]] = list(devices)
        self.config = config
        if config.poison_pools:
            # Audit mode: recycled stripe-buffer arrays are filled with
            # 0xA5 so stale reads past ``fill_end`` are unmistakable.
            # Process-wide by design — the pool itself is process-wide.
            enable_pool_poisoning()
        self.array_uuid = array_uuid
        self.num_data_zones = template.num_zones - config.num_metadata_zones
        if self.num_data_zones < 1:
            raise RaiznError("devices too small for the metadata reservation")
        self.mapper = AddressMapper(config, template.zone_capacity,
                                    self.num_data_zones)
        self.phys_zone_size = template.zone_size
        self.phys_zone_capacity = template.zone_capacity

        self.zone_descs = [
            LogicalZoneDesc(z, self.mapper.zone_start(z),
                            self.mapper.zone_capacity, config.num_data,
                            config.stripe_unit_bytes,
                            config.stripe_buffers_per_zone)
            for z in range(self.num_data_zones)
        ]
        self.phys: List[List[PhysicalZoneDesc]] = [
            [PhysicalZoneDesc(d, z, z * self.phys_zone_size)
             for z in range(template.num_zones)]
            for d in range(config.num_devices)
        ]
        self.generation = [1] * self.num_data_zones
        md_indices = list(range(self.num_data_zones, template.num_zones))
        self.mdzones: List[Optional[DeviceMetadataZones]] = [
            DeviceMetadataZones(sim, dev, i, md_indices, self.phys_zone_size,
                                self.phys_zone_capacity, self._checkpoint)
            if dev is not None else None
            for i, dev in enumerate(self.devices)
        ]
        self.relocations = RelocationStore(config.stripe_unit_bytes)
        #: Full parity of stripes whose parity SU could not be written in
        #: place (stale data occupies its PBA after a rollback recovery).
        #: Persisted via partial-parity log entries; keyed (zone, stripe).
        self.relocated_parity: Dict[Tuple[int, int], bytes] = {}
        self.failed: List[bool] = [dev is None for dev in self.devices]
        #: Media/command errors charged per device; crossing
        #: ``config.device_error_threshold`` evicts the device (§4.2).
        self.error_counts: List[int] = [0] * config.num_devices
        self.health = HealthStats()
        #: Per-device latency-health scores (gray-failure defense).
        self.device_health: List[DeviceHealth] = [
            DeviceHealth() for _ in range(config.num_devices)]
        # Cached master switch: the hedging/health machinery sits on the
        # hot read/write completion path, so the disabled case must cost
        # one attribute test and nothing else.
        self._failslow_on = config.failslow_protection
        self.rebuild_state: Optional[RebuildState] = None
        self.read_only = False
        self.stats = DeviceStats()
        #: Shared span tracer (see :mod:`repro.trace`); None unless
        #: ``config.tracing`` — the hot paths test this one attribute.
        self.tracer: Optional[Tracer] = None
        #: Cached live aggregate rows for the zero-duration counters
        #: (stripe assembly, parity computation): bumping a cached row
        #: in place is the cheapest possible instrumentation.
        self._tr_stripe_row: Optional[list] = None
        self._tr_parity_full_row: Optional[list] = None
        self._tr_parity_partial_row: Optional[list] = None
        #: Interned per-op root-span sites, filled lazily per sink.
        self._tr_vol_sites: dict = {}
        #: Shared root-span completion callback (set by attach_tracer).
        self._tr_root_cb = None
        if config.tracing:
            self.attach_tracer(Tracer(sim))
        #: Pending (bio, done) pairs per zone blocked by an in-flight reset.
        self._reset_pending: Dict[int, List[Tuple[Bio, Event]]] = {}
        #: Cached submission schedules keyed (rotation phase, offset in
        #: first stripe, length): the pure-geometry half of the write
        #: fan-out (stripe/piece bounds, target devices, stripe-relative
        #: addresses), so steady-state appends skip the address
        #: arithmetic.  Runtime state — device availability, write-pointer
        #: conflicts, relocations — is still checked at execution.  The
        #: cache is valid only within one array-membership epoch: any
        #: eviction/degraded-mode/rejoin transition must call
        #: :meth:`invalidate_write_plans` so no plan built under the old
        #: membership is replayed under the new one.
        self._plan_cache: Dict[Tuple[int, int, int], tuple] = {}
        #: Bumped on every membership/degraded transition (eviction,
        #: rebuild start, rebuild completion).
        self._membership_epoch = 0
        self._num_rotations = self.mapper.num_rotations
        #: Recycled :class:`_WriteJoin` objects (see its docstring).
        self._join_free: List[_WriteJoin] = []
        # Logical open-zone budget: each device spends open slots on its
        # partial-parity and general metadata zones.
        self.max_open_logical = max(1, template.max_open_zones - 2)
        self._open_logical = 0

    # ------------------------------------------------------------------ geometry

    @property
    def capacity(self) -> int:
        """User-visible bytes."""
        return self.mapper.logical_capacity

    @property
    def zone_capacity(self) -> int:
        """Bytes per logical zone (D physical zone capacities)."""
        return self.mapper.zone_capacity

    @property
    def num_zones(self) -> int:
        return self.num_data_zones

    def zone_info(self, zone: int) -> ZoneInfo:
        """Logical zone report entry."""
        desc = self.zone_descs[zone]
        return ZoneInfo(index=zone, start=desc.start_lba,
                        capacity=desc.capacity,
                        write_pointer=desc.write_pointer, state=desc.state)

    def report_zones(self) -> List[ZoneInfo]:
        """Logical zone report for the whole volume."""
        return [self.zone_info(z) for z in range(self.num_data_zones)]

    # ------------------------------------------------------------------ lifecycle

    @classmethod
    def create(cls, sim: Simulator, devices: List[ZNSDevice],
               config: Optional[RaiznConfig] = None,
               array_uuid: Optional[bytes] = None) -> "RaiznVolume":
        """Format ``devices`` into a fresh RAIZN array.

        Resets every zone, assigns device indices, and persists the
        superblock and initial generation counters to every device.
        Drains the event loop before returning.  ``array_uuid`` may be
        pinned for reproducible media contents (perf/determinism
        harnesses); by default a random UUID is generated.
        """
        config = config or RaiznConfig(num_data=len(devices) - 1)
        volume = cls(sim, list(devices), config,
                     array_uuid=array_uuid or os.urandom(16))
        sim.run_process(volume._format())
        return volume

    def _format(self):
        for index, dev in enumerate(self.devices):
            assert dev is not None
            for info in dev.report_zones():
                if info.state is not ZoneState.EMPTY:
                    yield dev.submit(Bio.zone_reset(info.start))
        events = []
        for index in range(len(self.devices)):
            superblock = Superblock(
                version=SUPERBLOCK_VERSION, num_data=self.config.num_data,
                num_parity=self.config.num_parity,
                stripe_unit_bytes=self.config.stripe_unit_bytes,
                num_zones=self.devices[index].num_zones,
                zone_capacity=self.phys_zone_capacity,
                num_metadata_zones=self.config.num_metadata_zones,
                device_index=index, array_uuid=self.array_uuid)
            events.append(self.mdzones[index].append_async(
                MetadataRole.GENERAL, superblock.to_entry(), fua=True))
        events.extend(self._persist_generation())
        yield self.sim.all_of(events)

    # ------------------------------------------------------------------ submission

    def attach_tracer(self, tracer: Tracer) -> None:
        """Arm span tracing: share ``tracer`` with every array device.

        Normally driven by ``config.tracing`` at construction; harnesses
        may attach later to trace only part of a run.
        """
        self.tracer = tracer
        self._tr_stripe_row = tracer.aggregate_row("stripe", "assemble")
        self._tr_parity_full_row = tracer.aggregate_row("parity", "full")
        self._tr_parity_partial_row = tracer.aggregate_row("parity",
                                                           "partial")
        self._tr_vol_sites = {}  # ids are per-sink; drop stale ones
        for dev in self.devices:
            if dev is not None:
                dev.tracer = tracer
                dev._trace_sites = {}
        for mdz in self.mdzones:
            if mdz is not None:
                mdz._tr_sites = {}

        def _root_cb(event) -> None:
            # Shared completion callback for every logical bio's root
            # span.  Only successful completions are charged (the device
            # layer follows the same rule), and those events succeed
            # with the bio itself, which carries the packed id/site
            # code, the submit time, and the length.
            if not event.ok:
                return
            bio = event.value
            code = bio.span
            if code is None:
                return
            bio.span = None
            tracer.record_root(code, bio.submit_time, bio.length)

        self._tr_root_cb = _root_cb

    def submit(self, bio: Bio) -> Event:
        """Submit a logical bio; the event succeeds with the completed bio."""
        sim = self.sim
        bio.submit_time = sim.now
        # ``sim.event()`` inlined: one call per logical bio.
        free = sim._event_free
        if free:
            done = free.pop()
            done.triggered = False
            done.ok = True
        else:
            done = Event(sim)
        tracer = self.tracer
        if tracer is not None:
            sites = self._tr_vol_sites
            opname = bio.op._value_  # str key: Enum.__hash__ is Python-level
            try:
                site = sites[opname]
            except KeyError:
                site = sites[opname] = tracer.site("volume", bio.op)
            # The root span is two ints parked on the bio (id + site,
            # packed) and a shared callback — no per-bio trace objects.
            code = tracer.root_code(site)
            bio.span = code
            done.add_callback(self._tr_root_cb)
            # The fan-out below is synchronous: device commands and
            # metadata appends it spawns parent themselves under this
            # bio's root span via the tracer's current-parent slot.
            tracer.current_parent = code >> SITE_BITS
            try:
                self._dispatch(bio, done)
            except (RaiznError, DeviceError) as exc:
                self.sim.schedule(0.0, done.fail, exc)
            finally:
                tracer.current_parent = -1
            return done
        try:
            # ``_dispatch``'s write branch inlined (the hot op, one frame
            # per logical write).  Every gate condition is a pure read, so
            # any miss falls through to ``_dispatch`` and raises exactly
            # what it always raised, in the original check order.
            op = bio.op
            if (op is Op.WRITE or op is Op.ZONE_APPEND) \
                    and not (bio.offset | bio.length) & _SECTOR_MASK \
                    and not self.read_only and True not in self.failed:
                zone = self.mapper.zone_of(bio.offset)
                desc = self.zone_descs[zone]
                if desc.reset_in_progress:
                    self._reset_pending.setdefault(zone, []).append(
                        (bio, done))
                else:
                    self._start_write(bio, done, zone, desc)
            else:
                self._dispatch(bio, done)
        except (RaiznError, DeviceError) as exc:
            self.sim.schedule(0.0, done.fail, exc)
        return done

    def execute(self, bio: Bio) -> Bio:
        """Synchronously run one bio to completion (drains the event loop)."""
        done = self.submit(bio)
        self.sim.run()
        if not done.triggered:
            raise RaiznError("logical bio never completed")
        if not done.ok:
            raise done.value
        return done.value

    def _dispatch(self, bio: Bio, done: Event) -> None:
        if (bio.offset | bio.length) & _SECTOR_MASK:
            bio.check_alignment()
        op = bio.op
        if (op is Op.WRITE or op is Op.ZONE_APPEND or op is Op.READ) and \
                self.failed.count(True) > self.config.num_parity:
            raise DegradedModeError(
                f"{self.failed.count(True)} devices unavailable; single "
                "parity serves IO through at most one loss")
        if op is Op.WRITE or op is Op.ZONE_APPEND:
            if self.read_only:
                raise VolumeStateError("volume is read-only")
            zone = self.mapper.zone_of(bio.offset)
            desc = self.zone_descs[zone]
            if desc.reset_in_progress:
                self._reset_pending.setdefault(zone, []).append((bio, done))
                return
            self._start_write(bio, done, zone, desc)
        elif op is Op.READ:
            self._start_read(bio, done)
        elif op is Op.FLUSH:
            self.sim.schedule(0.0, self._run_flush, bio, done)
        elif op is Op.ZONE_RESET:
            if self.read_only:
                raise VolumeStateError("volume is read-only")
            self._start_reset(bio, done)
        elif op is Op.ZONE_FINISH:
            self.sim.process(self._run_finish(bio, done))
        elif op is Op.ZONE_OPEN:
            self.sim.process(self._run_open_close(bio, done, explicit_open=True))
        elif op is Op.ZONE_CLOSE:
            self.sim.process(self._run_open_close(bio, done, explicit_open=False))
        else:
            raise ZoneStateError(f"unsupported logical op: {bio.op}")

    # ------------------------------------------------------------------ helpers

    def _device_available(self, index: int, zone: int) -> bool:
        """Can device ``index`` serve IO for logical zone ``zone``?"""
        if self.failed[index] or self.devices[index] is None:
            return False
        state = self.rebuild_state
        if state is not None and state.device_index == index \
                and not state.done and zone not in state.rebuilt_zones:
            return False
        return True

    def _alive_devices(self) -> List[int]:
        return [i for i in range(len(self.devices)) if not self.failed[i]
                and self.devices[i] is not None]

    def _sync_phys_desc(self, index: int, zone: int) -> None:
        """Refresh one physical zone descriptor from device truth.

        Called after a command error: the volume's optimistic write
        pointer may be ahead of what actually applied, and the zone may
        have transitioned (wear-out) without the volume noticing.
        """
        dev = self.devices[index]
        if dev is None:
            return
        info = dev.zone_info(zone)
        pdesc = self.phys[index][zone]
        pdesc.write_pointer = info.write_pointer
        pdesc.state = info.state

    def _note_device_error(self, index: int) -> None:
        """Charge one error to a device; evict it past the threshold.

        Eviction only happens while the array retains parity tolerance —
        with redundancy already exhausted, the erroring device limps on
        (an evicted second device would turn every stripe unreadable).
        """
        self.error_counts[index] += 1
        if self.error_counts[index] < self.config.device_error_threshold:
            return
        if self.failed[index]:
            return
        if sum(self.failed) >= self.config.num_parity:
            return
        self.fail_device(index, remove=False)
        self.health.evictions += 1

    def _note_latency(self, index: int, is_read: bool,
                      seconds: float) -> None:
        """Feed one completion latency into device ``index``'s health.

        Escalation ladder: a score past ``slow_demote_score`` demotes the
        device (reads are served from redundancy instead, writes still
        land on it and keep feeding the score); a demoted device whose
        score recovers is reinstated; one that stays past
        ``slow_evict_score`` through the grace window is evicted through
        the standard flow, gated on parity tolerance like
        :meth:`_note_device_error`.  Latency outliers never touch
        ``error_counts`` — slowness and hard errors escalate separately.
        """
        health = self.device_health[index]
        health.observe(is_read, seconds, self.config)
        config = self.config
        if not health.demoted:
            if health.slow_score >= config.slow_demote_score:
                health.demoted = True
                health.samples_since_demote = 0
                self.health.slow_demotions += 1
            return
        if health.slow_score <= config.slow_demote_score * 0.5:
            # Sustained recovery (hysteresis at half the demote score):
            # lift the demotion and give the device its reads back.
            health.demoted = False
            return
        if health.slow_score >= config.slow_evict_score \
                and health.samples_since_demote >= \
                config.slow_evict_min_samples \
                and not self.failed[index] \
                and sum(self.failed) < config.num_parity:
            self.fail_device(index, remove=False)
            self.health.evictions += 1
            self.health.slow_evictions += 1

    def device_health_report(self) -> List[dict]:
        """Per-device latency-health snapshot (see :class:`DeviceHealth`)."""
        return [health.to_dict() for health in self.device_health]

    def _tolerant_zone_op(self, device: int, bio: Bio) -> Event:
        """Submit a zone-management bio that tolerates wear-out races.

        A ``ZoneStateError`` means the zone went READ_ONLY/OFFLINE between
        the volume's descriptor check and the device's own — the zone is
        already immutable, so the op's intent is moot; resync the
        descriptor and count the completion as success.  Other errors
        propagate normally.
        """
        bio.errors_as_status = True
        outcome = Event(self.sim)
        event = self.devices[device].submit(bio)

        def on_done(ev: Event) -> None:
            completed = ev.value
            exc = completed.error
            if exc is None:
                outcome.succeed(completed)
            elif isinstance(exc, ZoneStateError):
                self.health.wear_errors += 1
                self._sync_phys_desc(device,
                                     completed.offset // self.phys_zone_size)
                outcome.succeed(completed)
            else:
                outcome.fail(exc)
        event.add_callback(on_done)
        return outcome

    def _su_device(self, zone: int, su_index_in_zone: int) -> int:
        """Device holding data SU number ``su_index_in_zone`` of a zone."""
        stripe = su_index_in_zone // self.config.num_data
        i = su_index_in_zone % self.config.num_data
        return self.mapper.stripe_layout(zone, stripe).data_devices[i]

    def _persist_generation(self, fua: bool = False) -> List[Event]:
        """Append the generation-counter block(s) to every live device."""
        events = []
        for first in range(0, self.num_data_zones, GENERATION_BLOCK_COUNTERS):
            counters = self.generation[first:first + GENERATION_BLOCK_COUNTERS]
            for index in self._alive_devices():
                entry = encode_generation_block(first, list(counters))
                events.append(self.mdzones[index].append_async(
                    MetadataRole.GENERAL, entry, fua=fua))
        return events

    def _checkpoint(self, role: MetadataRole,
                    device_index: int) -> List[MetadataEntry]:
        """Live metadata to checkpoint during metadata GC (§4.3, Figure 4)."""
        entries: List[MetadataEntry] = []
        if role is MetadataRole.GENERAL:
            superblock = Superblock(
                version=SUPERBLOCK_VERSION, num_data=self.config.num_data,
                num_parity=self.config.num_parity,
                stripe_unit_bytes=self.config.stripe_unit_bytes,
                num_zones=self.num_data_zones + self.config.num_metadata_zones,
                zone_capacity=self.phys_zone_capacity,
                num_metadata_zones=self.config.num_metadata_zones,
                device_index=device_index, array_uuid=self.array_uuid)
            entries.append(superblock.to_entry())
            for first in range(0, self.num_data_zones,
                               GENERATION_BLOCK_COUNTERS):
                counters = self.generation[
                    first:first + GENERATION_BLOCK_COUNTERS]
                entries.append(encode_generation_block(first, list(counters)))
            for unit in self.relocations.units_on_device(device_index):
                zone = self.mapper.zone_of(unit.su_lba)
                # The zero-length marker records that this SU is
                # relocated even when nothing has been written into it
                # yet — without it, a crash after this checkpoint could
                # resurrect the stale on-device bytes.
                entries.append(encode_relocated_su(
                    unit.su_lba, b"", self.generation[zone]))
                for lo, hi in unit.extents:
                    entries.append(encode_relocated_su(
                        unit.su_lba + lo, bytes(unit.buffer[lo:hi]),
                        self.generation[zone]))
        else:
            # Partial parity: serialize the cumulative parity of every
            # incomplete stripe buffer whose parity lives on this device.
            for desc in self.zone_descs:
                for buffer in desc.buffers.active():
                    if buffer.fill_end == 0 or buffer.full:
                        continue
                    layout = self.mapper.stripe_layout(desc.zone, buffer.stripe)
                    if layout.parity_device != device_index:
                        continue
                    stripe_lba = desc.start_lba + buffer.stripe * desc.stripe_width
                    parity = buffer.full_parity()
                    hi = min(buffer.fill_end, len(parity))
                    entries.append(encode_partial_parity(
                        stripe_lba, stripe_lba + buffer.fill_end,
                        self.generation[desc.zone], 0, parity[:hi]))
            # Relocated parity of completed stripes whose parity SU could
            # not be written in place: one cumulative entry covering the
            # whole stripe keeps it recoverable after the delta logs are
            # garbage collected.
            for (zone, stripe), parity in sorted(self.relocated_parity.items()):
                layout = self.mapper.stripe_layout(zone, stripe)
                if layout.parity_device != device_index:
                    continue
                desc = self.zone_descs[zone]
                stripe_lba = desc.start_lba + stripe * desc.stripe_width
                entries.append(encode_partial_parity(
                    stripe_lba, stripe_lba + desc.stripe_width,
                    self.generation[zone], 0, parity))
        return entries

    # ------------------------------------------------------------------ write path

    def _start_write(self, bio: Bio, done: Event, zone: int,
                     desc: LogicalZoneDesc) -> None:
        """Synchronous half of the write path: validate, absorb, fan out.

        ``zone``/``desc`` come from ``_dispatch``, which already resolved
        (and range-checked) the logical zone for this bio.
        """
        if bio.op is Op.ZONE_APPEND:
            # §5.4: RAIZN serializes zone appends; emulate as a write at
            # the logical write pointer (as dm-level append emulation does).
            if bio.offset != desc.start_lba:
                raise InvalidAddressError(
                    "zone append offset must be the zone start LBA")
            bio.offset = desc.write_pointer
            bio.result = bio.offset
        # Identity-check the two open states before falling back to the
        # is_writable property: writability is tested once per logical
        # write and the steady state is an open zone.
        state = desc.state
        if state is not ZoneState.IMPLICIT_OPEN \
                and state is not ZoneState.EXPLICIT_OPEN \
                and not state.is_writable:
            raise ZoneStateError(
                f"logical zone {zone} not writable (state={state.value})")
        if bio.offset != desc.write_pointer:
            raise WritePointerViolation(
                f"logical write at {bio.offset:#x} != zone {zone} write "
                f"pointer {desc.write_pointer:#x}")
        end_offset = bio.offset + bio.length
        writable_end = desc.writable_end
        if end_offset > writable_end:
            raise InvalidAddressError("write past logical zone capacity")
        if state is not ZoneState.IMPLICIT_OPEN \
                and state is not ZoneState.EXPLICIT_OPEN:
            self._open_logical_zone(desc)
        desc.write_pointer = end_offset
        desc.last_write_time = self.sim.now
        if end_offset == writable_end:
            self._set_logical_state(desc, ZoneState.FULL)

        # Pure geometry of this write — stripe segmentation, per-device
        # piece bounds, target addresses — is cached in stripe-relative
        # form.  Device assignment repeats every ``num_rotations`` stripes
        # and everything else is an offset from the write's first stripe,
        # so the key is (rotation phase, offset within stripe, length):
        # a steady sequential workload cycles through a handful of keys
        # and skips the per-piece address arithmetic entirely.  Runtime
        # checks (availability, conflicts) still happen below.
        width = desc.stripe_width
        in_zone = bio.offset - desc.start_lba
        stripe0 = in_zone // width
        key = ((stripe0 + zone) % self._num_rotations,
               in_zone - stripe0 * width, bio.length)
        cached = self._plan_cache.get(key)
        if cached is None:
            if len(self._plan_cache) >= _PLAN_CACHE_MAX:
                self._plan_cache.clear()
            plan = self._build_write_plan(desc, bio.offset, bio.length)
            # Pre-flatten the dominant small-write shape (one segment,
            # one device piece, stripe not completed): the fast path
            # below then does a single tuple unpack per write instead of
            # re-deriving the nested indices every time.
            if len(plan) == 1 and len(plan[0][4]) == 1 and not plan[0][5]:
                seg = plan[0]
                piece = seg[4][0]
                fast = (piece[0], piece[1], piece[2], seg[1], seg[6],
                        seg[8], seg[1] % self.config.stripe_unit_bytes)
            else:
                fast = None
            cached = self._plan_cache[key] = (plan, fast)
        plan, fast = cached
        pba_base = zone * self.phys_zone_size + \
            stripe0 * self.config.stripe_unit_bytes
        lba_base = desc.start_lba + stripe0 * width

        free = self._join_free
        if free:
            join = free.pop()
            # ``_reset`` inlined; ``fua_devices`` is cleared by ``_release``
            # on the pooled path, so only the scalar slots need setting.
            join.bio = bio
            join.done = done
            join.desc = desc
            join._count = 0
            join._armed = False
            join._failed = False
            join._flush_pending = 0
            join._flush_failed = False
        else:
            join = _WriteJoin(self)
            join._reset(bio, done, desc)
        # Plain int (0 or FUA): tested per fan-out piece below, and Bio
        # stores flags as an int anyway.
        sub_flags = bio.flags & _FUA
        # Fan out through a memoryview so every per-stripe chunk and
        # per-device piece below is a zero-copy slice of the caller's
        # payload; devices copy exactly once, into their media.
        data = memoryview(bio.data) if bio.data else memoryview(b"")
        # Device commands and deferred zero-delay hops are collected and
        # dispatched together at the end of the fan-out: the whole
        # stripe's commands go to the block layer in one ``submit_many``
        # step and its metadata appends ride one batched scheduler entry.
        # Per-device submission order is the piece order either way, so
        # every channel grant — and with it every RNG draw — is unmoved.
        cmds: List[tuple] = []
        batch: List[tuple] = []
        try:
            row = self._tr_stripe_row
            # Healthy-array fast loop: with every device present, no
            # rebuild under way and no relocations armed in this zone,
            # the per-piece availability and relocation-map checks in
            # ``_emit_data_piece`` can never redirect — only the write-
            # pointer conflict check stays (it is semantic, §5.2).  The
            # emitted commands, their order, and the join bookkeeping are
            # exactly those of the general path; pieces that DO conflict
            # fall back to ``_emit_data_piece`` for the redirect flow.
            if row is None and self.rebuild_state is None \
                    and not desc.has_relocations \
                    and True not in self.failed \
                    and None not in self.devices:
                sim = self.sim
                devices = self.devices
                phys = self.phys
                buffers = desc.buffers
                free_events = sim._event_free
                write_attempted = self._write_attempted
                fast_write = Bio.fast_write
                read_only = ZoneState.READ_ONLY
                offline = ZoneState.OFFLINE
                if fast is not None:
                    # Straight-line emission for the dominant small-write
                    # shape: one stripe segment, one device piece, stripe
                    # not completed (partial parity).  Same operations in
                    # the same order as one iteration of the loop below,
                    # minus the per-segment slicing and list plumbing; a
                    # write-pointer conflict bails to the general loop
                    # before any state is touched.
                    (device, rel_pba, rel_lba, f_in_stripe, parity_dev,
                     rel_slba, in_su) = fast
                    pba = pba_base + rel_pba
                    pdesc = phys[device][zone]
                    state = pdesc.state
                    if pdesc.write_pointer == pba and state is not read_only \
                            and state is not offline:
                        in_stripe = f_in_stripe
                        # ``StripeBufferPool.acquire`` inlined for the hit
                        # (the steady state: the tail stripe's buffer is
                        # live); misses allocate through the method.
                        buffer = buffers._buffers.get(stripe0)
                        if buffer is None:
                            buffer = buffers.acquire(stripe0)
                        if buffer is None:
                            raise RaiznError(
                                f"zone {zone}: all "
                                f"{self.config.stripe_buffers_per_zone} "
                                "stripe buffers occupied (should not happen: "
                                "writes are sequential, so only the tail "
                                "stripe is ever incomplete)")
                        payload = bio.data
                        fill = in_stripe + bio.length
                        if buffer.fill_end == in_stripe and \
                                fill <= buffer.width_bytes:
                            buffer.data[in_stripe:fill] = payload
                            buffer.fill_end = fill
                        else:
                            buffer.absorb(in_stripe, payload)
                        pdesc.write_pointer = pba + bio.length
                        wbio = fast_write(pba, payload, sub_flags)
                        wbio.errors_as_status = True
                        wbio.wctx = (join, device, desc, lba_base + rel_lba,
                                     0)
                        if free_events:
                            event = free_events.pop()
                            event.triggered = False
                            event.ok = True
                        else:
                            event = Event(sim)
                        event.callback = write_attempted
                        join._count += 1
                        if sub_flags:
                            join.fua_devices.add(device)
                        try:
                            mdz = self.mdzones[parity_dev]
                            if mdz.device.tracer is None:
                                # ``_emit_partial_parity`` inlined for the
                                # untraced healthy case.  The single piece
                                # sits inside one stripe unit by
                                # construction, so its delta is the payload
                                # itself (``delta_parity``'s fast path) and
                                # its SU-relative offset came precomputed
                                # with the plan.
                                row = self._tr_parity_partial_row
                                if row is not None:
                                    row[0] += 1
                                    row[2] += bio.length
                                stripe_lba = lba_base + rel_slba + in_stripe
                                encoded = encode_partial_parity_bytes(
                                    stripe_lba, stripe_lba + bio.length,
                                    self.generation[desc.zone], in_su,
                                    payload)
                                if free_events:
                                    pp_done = free_events.pop()
                                    pp_done.triggered = False
                                    pp_done.ok = True
                                else:
                                    pp_done = Event(sim)
                                pp_done.callback = join._on_child
                                batch.append((mdz._append_start_encoded,
                                              (MetadataRole.PARTIAL_PARITY,
                                               encoded, bool(sub_flags),
                                               pp_done)))
                                join._count += 1
                            else:
                                self._emit_partial_parity(
                                    join, desc, stripe0, parity_dev,
                                    lba_base + rel_slba, in_stripe, payload,
                                    bool(sub_flags), batch)
                        except BaseException:
                            # Mirror ``submit_many`` on the shared except
                            # path below: the built command still goes out
                            # (the outer handler schedules ``batch``).
                            devices[device].submit(wbio, event)
                            raise
                        stats = self.stats
                        stats.writes += 1
                        stats.bytes_written += bio.length
                        stats.media_bytes_written += bio.length
                        devices[device].submit(wbio, event)
                        batch.append((join._arm, ()))
                        sim._now_queue.append((_run_batch, (batch,)))
                        return
                for (dstripe, in_stripe, seg_lo, seg_hi, pieces, completes,
                     parity_device, rel_ppba, rel_slba) in plan:
                    stripe = stripe0 + dstripe
                    chunk = data[seg_lo:seg_hi]
                    buffer = buffers.acquire(stripe)
                    if buffer is None:
                        raise RaiznError(
                            f"zone {zone}: all "
                            f"{self.config.stripe_buffers_per_zone} "
                            "stripe buffers occupied (should not happen: "
                            "writes are sequential, so only the tail stripe "
                            "is ever incomplete)")
                    # ``absorb`` inlined (sequential-fill invariant holds
                    # by construction here; misses take the checked path).
                    fill = in_stripe + seg_hi - seg_lo
                    if buffer.fill_end == in_stripe and \
                            fill <= buffer.width_bytes:
                        buffer.data[in_stripe:fill] = chunk
                        buffer.fill_end = fill
                    else:
                        buffer.absorb(in_stripe, chunk)
                    for device, rel_pba, rel_lba, piece_lo, piece_hi in pieces:
                        pba = pba_base + rel_pba
                        pdesc = phys[device][zone]
                        state = pdesc.state
                        if pdesc.write_pointer != pba or state is read_only \
                                or state is offline:
                            self._emit_data_piece(join, desc, device, pba,
                                                  lba_base + rel_lba,
                                                  data[piece_lo:piece_hi],
                                                  sub_flags, cmds, batch)
                            continue
                        pdesc.write_pointer = pba + piece_hi - piece_lo
                        wbio = fast_write(pba, data[piece_lo:piece_hi],
                                          sub_flags)
                        wbio.errors_as_status = True
                        wbio.wctx = (join, device, desc, lba_base + rel_lba, 0)
                        if free_events:
                            event = free_events.pop()
                            event.triggered = False
                            event.ok = True
                        else:
                            event = Event(sim)
                        event.callback = write_attempted
                        join._count += 1
                        cmds.append((devices[device], wbio, event))
                        if sub_flags:
                            join.fua_devices.add(device)
                    if completes:
                        self._emit_full_parity(join, desc, stripe,
                                               parity_device,
                                               pba_base + rel_ppba,
                                               lba_base + rel_slba, buffer,
                                               in_stripe, chunk, sub_flags,
                                               cmds, batch)
                        buffers.release(stripe)
                    else:
                        self._emit_partial_parity(join, desc, stripe,
                                                  parity_device,
                                                  lba_base + rel_slba,
                                                  in_stripe, chunk,
                                                  bool(sub_flags), batch)
            else:
                for (dstripe, in_stripe, seg_lo, seg_hi, pieces, completes,
                     parity_device, rel_ppba, rel_slba) in plan:
                    stripe = stripe0 + dstripe
                    chunk = data[seg_lo:seg_hi]
                    buffer = desc.buffers.acquire(stripe)
                    if buffer is None:
                        raise RaiznError(
                            f"zone {zone}: all "
                            f"{self.config.stripe_buffers_per_zone} "
                            "stripe buffers occupied (should not happen: "
                            "writes are sequential, so only the tail stripe "
                            "is ever incomplete)")
                    buffer.absorb(in_stripe, chunk)
                    if row is not None:
                        row[0] += 1
                        row[2] += seg_hi - seg_lo
                    for device, rel_pba, rel_lba, piece_lo, piece_hi in pieces:
                        self._emit_data_piece(join, desc, device,
                                              pba_base + rel_pba,
                                              lba_base + rel_lba,
                                              data[piece_lo:piece_hi],
                                              sub_flags, cmds, batch)
                    if completes:
                        self._emit_full_parity(join, desc, stripe,
                                               parity_device,
                                               pba_base + rel_ppba,
                                               lba_base + rel_slba, buffer,
                                               in_stripe, chunk, sub_flags,
                                               cmds, batch)
                        desc.buffers.release(stripe)
                    else:
                        self._emit_partial_parity(join, desc, stripe,
                                                  parity_device,
                                                  lba_base + rel_slba,
                                                  in_stripe, chunk,
                                                  bool(sub_flags), batch)
        except BaseException:
            # Mirror the pre-batch failure shape: everything emitted before
            # the raise was already submitted/scheduled, and the join is
            # never armed (``submit`` fails the logical bio).
            submit_many(cmds)
            if batch:
                self.sim.schedule_batch(0.0, batch)
            raise

        # ``DeviceStats.account`` inlined for the only two ops that reach
        # this function.
        stats = self.stats
        stats.writes += 1
        stats.bytes_written += bio.length
        stats.media_bytes_written += bio.length
        # ``submit_many`` unrolled: same strict batch order, no result list.
        for cmd_device, cmd_bio, cmd_done in cmds:
            cmd_device.submit(cmd_bio, cmd_done)
        # The arm call runs after every sibling append's start hop, in the
        # now-queue slot the old completion-chain hop occupied.
        batch.append((join._arm, ()))
        self.sim._now_queue.append((_run_batch, (batch,)))

    def _build_write_plan(self, desc: LogicalZoneDesc, offset: int,
                          length: int) -> tuple:
        """Precompute the submission schedule for a write at ``offset``.

        Returns a tuple of per-stripe segments
        ``(dstripe, in_stripe, seg_lo, seg_hi, pieces, completes,
        parity_device, rel_ppba, rel_slba)`` where ``pieces`` is a tuple
        of ``(device, rel_pba, rel_lba, piece_lo, piece_hi)``.  The
        ``*_lo``/``*_hi`` bounds index the bio payload; all other
        addresses are relative to the write's first stripe (``dstripe``
        counts stripes from it, ``rel_pba``/``rel_ppba`` are offsets
        from its first PBA in the zone, ``rel_lba``/``rel_slba`` from
        its first LBA).  Device assignment depends only on the parity
        rotation phase of the first stripe, so the relative plan is
        shared by every (zone, offset) with the same phase — the caller
        keys the cache accordingly and adds the bases back.
        """
        su = self.config.stripe_unit_bytes
        zone = desc.zone
        width = desc.stripe_width
        stripe0 = (offset - desc.start_lba) // width
        segments = []
        position = 0
        while position < length:
            in_zone = offset + position - desc.start_lba
            stripe = in_zone // width
            in_stripe = in_zone % width
            take = min(length - position, width - in_stripe)
            layout = self.mapper.stripe_layout(zone, stripe)
            dstripe = stripe - stripe0
            pieces = []
            piece_pos = 0
            while piece_pos < take:
                stripe_offset = in_stripe + piece_pos
                in_su = stripe_offset % su
                piece_take = min(take - piece_pos, su - in_su)
                pieces.append((layout.data_devices[stripe_offset // su],
                               dstripe * su + in_su,
                               dstripe * width + stripe_offset,
                               position + piece_pos,
                               position + piece_pos + piece_take))
                piece_pos += piece_take
            segments.append((dstripe, in_stripe, position, position + take,
                             tuple(pieces), in_stripe + take == width,
                             layout.parity_device, dstripe * su,
                             dstripe * width))
            position += take
        return tuple(segments)

    def _emit_data_piece(self, join: _WriteJoin, desc: LogicalZoneDesc,
                         device: int, pba: int, lba: int, piece, sub_flags: int,
                         cmds: List[tuple], batch: List[tuple]) -> None:
        zone = desc.zone
        if not self._device_available(device, zone):
            return  # degraded write: the missing SU is omitted (§4.2)
        pdesc = self.phys[device][zone]
        if pdesc.state is ZoneState.READ_ONLY or \
                pdesc.state is ZoneState.OFFLINE:
            # The physical zone wore out (end-of-life transition); its
            # write pointer is frozen, so every further piece for it is
            # redirected to the metadata log like a §5.2 conflict.
            self._relocate_join(join, desc, device, lba, piece,
                                bool(sub_flags), batch)
            return
        if pdesc.write_pointer != pba or (
                desc.has_relocations and
                self.relocations.lookup(
                    lba - (lba % self.config.stripe_unit_bytes)) is not None):
            # Conflicting stripe unit (§5.2): either stale persisted data
            # occupies this PBA (pointer ahead) or a stale gap sits below
            # it (pointer behind, mid-stale-SU after a rollback); both
            # redirect to the metadata zone.  An SU whose relocation unit
            # is already armed always stays in the log even when the stale
            # write pointer happens to line up with this piece's PBA —
            # writing in place would split the SU between a garbage-
            # prefixed device zone and the log, and recovery could not
            # tell the stale prefix from real bytes.
            self._relocate_join(join, desc, device, lba, piece,
                                bool(sub_flags), batch)
            return
        pdesc.write_pointer = pba + len(piece)
        wbio = Bio.write(pba, piece, sub_flags)
        wbio.errors_as_status = True
        # The integer lba doubles as the redirect tag: should the write
        # come back with a wear-out error, ``_redirect_attempt`` rebuilds
        # the relocation from (desc, device, lba, bio.data) — no closure.
        wbio.wctx = (join, device, desc, lba, 0)
        event = self.sim.event()
        event.add_callback(self._write_attempted)
        join._count += 1
        cmds.append((self.devices[device], wbio, event))
        if sub_flags:
            join.fua_devices.add(device)

    def _relocate_join(self, join: _WriteJoin, desc: LogicalZoneDesc,
                       device: int, lba: int, piece, fua: bool,
                       batch: List[tuple]) -> None:
        """Fan-out-time relocation: register the log append on the join."""
        done = self._relocate_write(desc, device, lba, piece, fua, batch)
        done.add_callback(join._on_child)
        join._count += 1

    def _relocate_write(self, desc: LogicalZoneDesc, device: int, lba: int,
                        piece, fua: bool,
                        batch: Optional[List[tuple]] = None) -> Event:
        su = self.config.stripe_unit_bytes
        su_lba = lba - (lba % su)
        unit = self.relocations.unit_for(su_lba, device,
                                         self.mapper.zone_of(lba))
        unit.write(lba, piece)
        desc.has_relocations = True
        entry = encode_relocated_su(lba, piece, self.generation[desc.zone])
        # A FUA write must be durable before it is acknowledged; when the
        # piece is redirected into the metadata log, the log append has to
        # carry the FUA flag — ``_flush_unpersisted`` only covers SUs from
        # *earlier* writes, so nothing else persists this entry before the
        # ack and a crash could cut it from the log tail.
        return self.mdzones[device].append_async(MetadataRole.GENERAL, entry,
                                                 fua=fua, batch=batch)

    @staticmethod
    def _chain(event: Event, outcome: Event) -> None:
        """Forward ``event``'s completion (success or failure) to ``outcome``."""
        def forward(ev: Event) -> None:
            if ev.ok:
                outcome.succeed(ev.value)
            else:
                outcome.fail(ev.value)
        event.add_callback(forward)

    def _attempt_write(self, join: _WriteJoin, device: int, desc, tag,
                       pba: int, piece, flags: int, attempt: int) -> None:
        """(Re)submit one protected device write (retry path)."""
        wbio = Bio.write(pba, piece, flags)
        wbio.errors_as_status = True
        wbio.wctx = (join, device, desc, tag, attempt)
        event = self.sim.event()
        event.add_callback(self._write_attempted)
        self.devices[device].submit(wbio, event)

    def _write_attempted(self, event: Event) -> None:
        """Completion of a protected device write — self-healing policy.

        One shared bound method for every data/parity piece: the
        per-attempt context rides on ``bio.wctx`` instead of a closure.
        Transient command failures are retried up to
        ``config.max_transient_retries`` times with a simulated backoff;
        a zone-state failure (wear-out discovered mid-write) resyncs the
        physical descriptor and redirects the piece to the metadata log;
        a failed device degrades the write (§4.2: the piece is omitted
        and parity covers it).  Anything else fails the logical write.
        """
        bio = event.value
        self.sim.recycle(event)
        join, device, desc, tag, attempt = bio.wctx
        exc = bio.error
        if exc is None:
            if self._failslow_on:
                self._note_latency(device, False,
                                   self.sim.now - bio.submit_time)
            # ``join._child_ok`` inlined (the all-healthy hot path).
            if not join._failed:
                join._count = count = join._count - 1
                if count == 0 and join._armed:
                    self.sim._now_queue.append((join._fired, ()))
            return
        if isinstance(exc, (TransientCommandError, WritePointerViolation)):
            # A WritePointerViolation here is collateral of a transient
            # fault on an *earlier* piece of the same zone: that piece was
            # rejected at submission (device pointer not advanced), so this
            # piece arrived ahead of the pointer.  The earlier piece's
            # retry fires first (same backoff, scheduled earlier), after
            # which this retry lands at the right pointer — mirroring the
            # kernel's zone-write requeue ordering.
            if attempt < self.config.max_transient_retries:
                self.health.transient_retries += 1
                self.sim.schedule(self.config.transient_backoff_s,
                                  self._attempt_write, join, device, desc,
                                  tag, bio.offset, bio.data, bio.flags,
                                  attempt + 1)
                return
            self.health.transient_escalations += 1
            self._note_device_error(device)
            self.sim._now_queue.append((join._child_fail, (exc,)))
            return
        if isinstance(exc, ZoneStateError):
            self.health.wear_errors += 1
            self._note_device_error(device)
            self._sync_phys_desc(device, bio.offset // self.phys_zone_size)
            self._redirect_attempt(join, device, desc, tag, bio)
            return
        if isinstance(exc, (DeviceFailedError, PowerLossError)):
            if isinstance(exc, DeviceFailedError) and not self.failed[device]:
                try:
                    self.fail_device(device, remove=False)
                except DataLossError as loss:
                    self.sim._now_queue.append((join._child_fail, (loss,)))
                    return
            if self.failed[device]:
                # Degraded write: piece omitted (§4.2).
                self.sim._now_queue.append((join._child_ok, ()))
                return
        self.sim._now_queue.append((join._child_fail, (exc,)))

    def _redirect_attempt(self, join: _WriteJoin, device: int,
                          desc: LogicalZoneDesc, tag, bio: Bio) -> None:
        """Wear-out discovered by the failing write itself: redirect.

        ``tag`` discriminates the piece kind: an ``int`` is a data
        piece's lba (relocate into the general log); a ``(stripe,
        stripe_lba)`` tuple is a full-parity write (keep the parity in
        memory plus one cumulative partial-parity log entry covering the
        whole stripe — the shape the metadata-GC checkpoint uses).
        """
        if not self._device_available(device, desc.zone):
            # Degraded: omitted, parity (or memory) covers it.
            self.sim._now_queue.append((join._child_ok, ()))
            return
        fua = bool(bio.flags & _FUA)
        if type(tag) is int:
            try:
                done = self._relocate_write(desc, device, tag, bio.data, fua)
            except (RaiznError, DeviceError) as exc:
                self.sim._now_queue.append((join._child_fail, (exc,)))
                return
            done.add_callback(join._on_child_hop)
            return
        stripe, stripe_lba = tag
        parity = bio.data
        self.relocated_parity[(desc.zone, stripe)] = parity
        entry = encode_partial_parity(
            stripe_lba, stripe_lba + desc.stripe_width,
            self.generation[desc.zone], 0, parity)
        done = self.mdzones[device].append_async(
            MetadataRole.PARTIAL_PARITY, entry, fua=fua)
        done.add_callback(join._on_child_hop)

    def _emit_full_parity(self, join: _WriteJoin, desc: LogicalZoneDesc,
                          stripe: int, device: int, pba: int,
                          stripe_lba: int, buffer: StripeBuffer,
                          in_stripe: int, chunk, sub_flags: int,
                          cmds: List[tuple], batch: List[tuple]) -> None:
        if not self._device_available(device, desc.zone):
            return
        parity = buffer.full_parity()
        row = self._tr_parity_full_row
        if row is not None:
            row[0] += 1
            row[2] += len(parity)
        pdesc = self.phys[device][desc.zone]
        if pdesc.write_pointer != pba or \
                pdesc.state is ZoneState.READ_ONLY or \
                pdesc.state is ZoneState.OFFLINE:
            # The parity SU's PBA conflicts with stale data (§5.2 after a
            # rollback recovery) or the zone wore out.  Keep the full
            # parity in memory and log the completing segment's delta to
            # the partial-parity zone — XOR of all the stripe's deltas
            # equals the full parity.
            self.relocated_parity[(desc.zone, stripe)] = parity
            self._emit_partial_parity(join, desc, stripe, device, stripe_lba,
                                      in_stripe, chunk, bool(sub_flags),
                                      batch)
            return
        pdesc.write_pointer = pba + len(parity)
        wbio = Bio.write(pba, parity, sub_flags)
        wbio.errors_as_status = True
        # Tuple tag marks a parity piece for ``_redirect_attempt``.
        wbio.wctx = (join, device, desc, (stripe, stripe_lba), 0)
        event = self.sim.event()
        event.add_callback(self._write_attempted)
        join._count += 1
        cmds.append((self.devices[device], wbio, event))
        if sub_flags:
            join.fua_devices.add(device)

    def _emit_partial_parity(self, join: _WriteJoin, desc: LogicalZoneDesc,
                             stripe: int, device: int, stripe_lba: int,
                             in_stripe: int, chunk, fua: bool,
                             batch: List[tuple]) -> None:
        # Healthy-array short circuit; _device_available decides the
        # degraded/rebuilding cases.
        if self.failed[device] or self.devices[device] is None \
                or self.rebuild_state is not None:
            if not self._device_available(device, desc.zone):
                return
        offset, delta = StripeBuffer.delta_parity(
            in_stripe, chunk, self.config.stripe_unit_bytes)
        row = self._tr_parity_partial_row
        if row is not None:
            row[0] += 1
            row[2] += len(delta)
        encoded = encode_partial_parity_bytes(
            stripe_lba + in_stripe, stripe_lba + in_stripe + len(chunk),
            self.generation[desc.zone], offset, delta)
        done = self.mdzones[device].append_encoded_async(
            MetadataRole.PARTIAL_PARITY, encoded, fua=fua, batch=batch)
        done.add_callback(join._on_child)
        join._count += 1

    def _flush_unpersisted(self, desc: LogicalZoneDesc, bio: Bio,
                           fua_devices: Set[int]) -> List[Event]:
        """Flush every device holding a non-persisted SU below this write.

        Implements §5.3 with the paper's optimization: only the bitmap
        from the stripe immediately preceding the write onwards needs
        checking, because a set bit implies all earlier SUs on all
        devices are persisted.
        """
        num_data = self.config.num_data
        write_su = desc.su_index_of(bio.offset)
        prev_stripe_su = (write_su // num_data - 1) * num_data
        if prev_stripe_su < 0:
            prev_stripe_su = 0
        check_from = desc.persistence.frontier
        if prev_stripe_su > check_from:
            check_from = prev_stripe_su
        # The steady state has nothing to flush (everything below the
        # write went out FUA); defer the set until a device qualifies.
        devices_to_flush: Optional[Set[int]] = None
        for su_index in desc.persistence.unpersisted_in(check_from, write_su):
            device = self._su_device(desc.zone, su_index)
            if device not in fua_devices and \
                    self._device_available(device, desc.zone):
                if devices_to_flush is None:
                    devices_to_flush = {device}
                else:
                    devices_to_flush.add(device)
        if devices_to_flush is None:
            return []
        return [self.devices[d].submit(Bio.flush())
                for d in devices_to_flush]

    # ------------------------------------------------------------------ read path

    def _start_read(self, bio: Bio, done: Event) -> None:
        # Reads may cross logical zone boundaries (the device-mapper layer
        # splits them); every crossed zone must be written through the
        # requested range.
        position = bio.offset
        while position < bio.end_offset:
            zone = self.mapper.zone_of(position)
            desc = self.zone_descs[zone]
            end_in_zone = min(bio.end_offset, desc.writable_end)
            if end_in_zone > desc.write_pointer:
                raise ReadUnwrittenError(
                    f"read [{bio.offset:#x},{bio.end_offset:#x}) beyond "
                    f"logical zone {zone} write pointer "
                    f"{desc.write_pointer:#x}")
            position = end_in_zone
        self.sim.process(self._run_read(bio, done))

    def _run_read(self, bio: Bio, done: Event):
        pieces = self.mapper.split_extent(bio.offset, bio.length)
        chunks: List[Optional[bytes]] = [None] * len(pieces)
        events = []
        lba = bio.offset
        try:
            for index, (device, pba, length) in enumerate(pieces):
                desc = self.zone_descs[self.mapper.zone_of(lba)]
                chunk = self._read_piece(device, pba, lba, length, desc,
                                         events, chunks, index)
                if chunk is not None:
                    chunks[index] = chunk
                lba += length
            if events:
                yield self.sim.gather(events)
        except (DeviceError, RaiznError) as exc:
            done.fail(exc)
            return
        bio.result = b"".join(chunks)  # type: ignore[arg-type]
        self.stats.account(bio)
        bio.complete_time = self.sim.now
        done.succeed(bio)

    def _read_piece(self, device: int, pba: int, lba: int, length: int,
                    desc: LogicalZoneDesc, events: List[Event],
                    chunks: List[Optional[bytes]],
                    index: int) -> Optional[bytes]:
        """Route one ≤SU-sized piece; returns data if served from memory."""
        su = self.config.stripe_unit_bytes
        if desc.has_relocations:
            unit = self.relocations.lookup(lba - (lba % su))
            if unit is not None:
                overlaps = unit.overlaps(lba, length)
                if overlaps == [(0, length)]:
                    return unit.read(lba, length)
                if overlaps and \
                        self._device_available(device, desc.zone) and \
                        self.phys[device][desc.zone].state \
                        is not ZoneState.OFFLINE:
                    return self._stitched_read_piece(
                        unit, overlaps, device, pba, lba, length, desc,
                        events, chunks, index)
                # Partially relocated but the on-device gap bytes are
                # unreadable (device lost or zone OFFLINE): fall through —
                # the protected/degraded machinery reconstructs the whole
                # range from redundancy.
        if self._device_available(device, desc.zone):
            if self._avoid_for_reads(device, desc.zone):
                # Demoted by its health score: serve from redundancy and
                # spare the read the gray-failing device's tail.
                return self._degraded_read_piece(device, pba, lba, length,
                                                 desc, events, chunks, index)
            events.append(self._protected_read(device, pba, lba, length,
                                               desc, chunks, index))
            return None
        return self._degraded_read_piece(device, pba, lba, length, desc,
                                         events, chunks, index)

    def _avoid_for_reads(self, device: int, zone: int) -> bool:
        """Should reads skip this (demoted) device in favour of
        reconstruction?  Only while every *other* device is available —
        reconstruction needs all of them, so with a second device down
        the demoted straggler is still the best source."""
        if not self._failslow_on or not self.device_health[device].demoted:
            return False
        for other in range(self.config.num_devices):
            if other != device and not self._device_available(other, zone):
                return False
        return True

    # -- self-healing device reads ------------------------------------------------

    def _protected_read(self, device: int, pba: int, lba: int, length: int,
                        desc: LogicalZoneDesc,
                        chunks: List[Optional[bytes]], index: int) -> Event:
        """Device read with the self-healing error policy.

        Transient command failures get a bounded retry with simulated
        backoff; a media (UNC) error triggers read-repair — the stripe
        unit is reconstructed from the surviving devices plus parity and
        relocated so the next read hits clean media (§5.2 machinery); a
        wear-out (offline zone) or failed device degrades the read to
        reconstruction.  The returned event completes when the piece has
        been delivered into ``chunks[index]``.
        """
        outcome = Event(self.sim)
        self._attempt_read(device, pba, lba, length, desc, chunks, index,
                           outcome, 0)
        return outcome

    def _attempt_read(self, device: int, pba: int, lba: int, length: int,
                      desc: LogicalZoneDesc, chunks: List[Optional[bytes]],
                      index: int, outcome: Event, attempt: int) -> None:
        bio = Bio.read(pba, length)
        bio.errors_as_status = True
        event = self.devices[device].submit(bio)
        hedge = None
        if attempt == 0 and self._failslow_on:
            # Hedge timer: if the read outlives the deadline derived from
            # this device's own latency distribution, race a parity
            # reconstruction against the straggler.
            deadline = self.device_health[device].read.threshold(self.config)
            if deadline is not None:
                hedge = _HedgeState(event)
                self.sim.schedule(deadline, self._fire_hedge, device, lba,
                                  length, desc, chunks, index, outcome,
                                  hedge)
        event.add_callback(
            lambda ev: self._read_attempted(ev, device, pba, lba, length,
                                            desc, chunks, index, outcome,
                                            attempt, hedge))

    def _read_attempted(self, event: Event, device: int, pba: int, lba: int,
                        length: int, desc: LogicalZoneDesc,
                        chunks: List[Optional[bytes]], index: int,
                        outcome: Event, attempt: int,
                        hedge: Optional[_HedgeState] = None) -> None:
        bio = event.value
        exc = bio.error
        if self._failslow_on and exc is None and \
                not (hedge is not None and hedge.served
                     and hedge.served_at == self.sim.now):
            # The AnyOf winner is exclusive: when the reconstruction and
            # the primary complete in the same tick, the hedge already
            # owns the serve (and its win counters), so the primary's
            # sample is dropped — it met the deadline to the tick, and
            # charging it as a straggler on top of the hedge win would
            # double-count the event and skew the slow-score.  A genuine
            # straggler (completing in a *later* tick) still feeds the
            # health score.
            self._note_latency(device, True, self.sim.now - bio.submit_time)
        if hedge is not None and hedge.served:
            # The hedged reconstruction won the race and served this
            # piece; the straggler's completion fed the health score
            # above (unless it tied) and nothing else is owed.  A latent
            # error surfacing on the abandoned straggler is left for the
            # scrubber.
            return
        if exc is None:
            chunks[index] = bio.result
            outcome.succeed(bio)
            return
        if isinstance(exc, TransientCommandError):
            if attempt < self.config.max_transient_retries:
                self.health.transient_retries += 1
                self.sim.schedule(self.config.transient_backoff_s,
                                  self._attempt_read, device, pba, lba,
                                  length, desc, chunks, index, outcome,
                                  attempt + 1)
                return
            # Retries exhausted: charge the device and serve the read
            # from redundancy instead of failing it.
            self.health.transient_escalations += 1
            self._note_device_error(device)
        elif isinstance(exc, MediaError):
            self.health.media_errors += 1
            if not self.config.read_repair:
                # Detection-power path: serve the corrupt media view the
                # way an unprotected consumer would have seen it.
                self.health.unrepaired_serves += 1
                chunks[index] = bio.result
                outcome.succeed(bio)
                return
            self._note_device_error(device)
            if not self.failed[device]:
                self._heal_and_serve(device, lba, length, desc, chunks,
                                     index, outcome)
                return
            # The charge just evicted the device; fall through to plain
            # reconstruction (no relocation log left to heal into).
        elif isinstance(exc, ZoneStateError):
            # The physical zone went OFFLINE (end-of-life): its media is
            # gone for good, so reconstruct *and* relocate like a media
            # error.
            self.health.wear_errors += 1
            self._note_device_error(device)
            self._sync_phys_desc(device, desc.zone)
            if not self.failed[device]:
                self._heal_and_serve(device, lba, length, desc, chunks,
                                     index, outcome)
                return
        elif isinstance(exc, DeviceFailedError) and not self.failed[device]:
            try:
                self.fail_device(device, remove=False)
            except DataLossError as loss:
                outcome.fail(loss)
                return
        # Unavailable device (failed, evicted, or powered off): serve the
        # piece degraded from the surviving devices plus parity.
        sub_events: List[Event] = []
        try:
            served = self._degraded_read_piece(device, pba, lba, length,
                                               desc, sub_events, chunks,
                                               index)
        except (RaiznError, DeviceError) as degraded_exc:
            outcome.fail(degraded_exc)
            return
        if served is not None:
            chunks[index] = served
            outcome.succeed(None)
        else:
            self._chain(sub_events[0], outcome)

    def _fire_hedge(self, device: int, lba: int, length: int,
                    desc: LogicalZoneDesc, chunks: List[Optional[bytes]],
                    index: int, outcome: Event,
                    hedge: _HedgeState) -> None:
        """The primary read outlived its adaptive deadline: hedge it.

        A parity reconstruction of the same range is raced against the
        straggler via ``AnyOf``; the first winner delivers
        ``chunks[index]``.  The loser is accounted as a hedge — never as
        a device error, so hedging cannot push a merely-slow device over
        the error-threshold eviction.
        """
        if hedge.primary.triggered or outcome.triggered:
            return
        su = self.config.stripe_unit_bytes
        zone = desc.zone
        in_zone = lba - desc.start_lba
        stripe = in_zone // desc.stripe_width
        in_su = (in_zone % desc.stripe_width) % su
        self.health.slow_hedges += 1
        self.device_health[device].slow_hedges += 1
        buffer = desc.buffers.get(stripe)
        if buffer is not None:
            # Incomplete tail stripe: its parity is not on media yet, but
            # the stripe buffer holds the bytes — instant win from memory.
            stripe_offset = in_zone % desc.stripe_width
            hedge.served = True
            hedge.served_at = self.sim.now
            self.health.hedge_wins += 1
            self.device_health[device].hedge_wins += 1
            chunks[index] = bytes(
                buffer.data[stripe_offset:stripe_offset + length])
            outcome.succeed(None)
            return
        accumulator = bytearray(length)
        try:
            sources = self._reconstruct_sources(device, zone, stripe, in_su,
                                                length, accumulator)
        except (RaiznError, DeviceError):
            # Another device is unavailable (failed or mid-rebuild):
            # reconstruction cannot race, keep waiting on the straggler.
            return
        recon = self.sim.gather(sources)
        race = self.sim.any_of([hedge.primary, recon])
        race.add_callback(
            lambda ev: self._hedge_settled(ev, recon, accumulator, device,
                                           chunks, index, outcome, hedge))

    def _hedge_settled(self, race: Event, recon: Event,
                       accumulator: bytearray, device: int,
                       chunks: List[Optional[bytes]], index: int,
                       outcome: Event, hedge: _HedgeState) -> None:
        if outcome.triggered or hedge.primary.triggered:
            # The straggler won the race (its own callback, attached
            # first, already served or escalated); the reconstruction is
            # abandoned — its source reads drain into a dead buffer.
            return
        if not race.ok or not recon.triggered:
            # The reconstruction itself failed (a fault on a survivor is
            # a double fault): keep waiting on the straggler.
            return
        hedge.served = True
        hedge.served_at = self.sim.now
        self.health.hedge_wins += 1
        self.device_health[device].hedge_wins += 1
        chunks[index] = bytes(accumulator)
        outcome.succeed(None)

    def _heal_and_serve(self, device: int, lba: int, length: int,
                        desc: LogicalZoneDesc,
                        chunks: List[Optional[bytes]], index: int,
                        outcome: Event) -> None:
        """Read-repair: reconstruct the whole written extent of the SU,
        relocate it (persisted in the device's metadata log, §5.2), and
        serve the requested range from the reconstruction."""
        su = self.config.stripe_unit_bytes
        zone = desc.zone
        in_zone = lba - desc.start_lba
        stripe = in_zone // desc.stripe_width
        buffer = desc.buffers.get(stripe)
        if buffer is not None:
            # Incomplete tail stripe: the stripe buffer still holds the
            # data; serve from memory and let a future read of the sealed
            # stripe do the durable heal.
            stripe_offset = in_zone % desc.stripe_width
            chunks[index] = bytes(
                buffer.data[stripe_offset:stripe_offset + length])
            outcome.succeed(None)
            return
        su_lba = lba - (lba % su)
        in_su = lba - su_lba
        su_pba = zone * self.phys_zone_size + stripe * su
        written = min(su, self.phys[device][zone].write_pointer - su_pba)
        if written < in_su + length:
            # A worn zone's frozen pointer can sit below the data we know
            # was written; reconstruct at least the requested range.
            written = in_su + length
        accumulator = bytearray(written)
        try:
            sources = self._reconstruct_sources(device, zone, stripe, 0,
                                                written, accumulator)
        except (RaiznError, DeviceError) as exc:
            outcome.fail(exc)
            return
        gather = self.sim.gather(sources)
        gather.add_callback(
            lambda ev: self._healed(ev, device, su_lba, accumulator, desc,
                                    chunks, index, in_su, length, outcome))

    def _healed(self, gather: Event, device: int, su_lba: int,
                accumulator: bytearray, desc: LogicalZoneDesc,
                chunks: List[Optional[bytes]], index: int, in_su: int,
                length: int, outcome: Event) -> None:
        if not gather.ok:
            outcome.fail(gather.value)
            return
        data = bytes(accumulator)
        zone = desc.zone
        unit = self.relocations.unit_for(su_lba, device, zone)
        unit.write(su_lba, data)
        desc.has_relocations = True
        self.health.heals += 1
        chunks[index] = data[in_su:in_su + length]
        # The original bytes may have been acknowledged durable (FUA), so
        # the healed copy is persisted FUA before the read completes.
        entry = encode_relocated_su(su_lba, data, self.generation[zone])
        self._chain(self.mdzones[device].append_async(
            MetadataRole.GENERAL, entry, fua=True), outcome)

    def _stitched_read_piece(self, unit, overlaps, device: int, pba: int,
                             lba: int, length: int, desc: LogicalZoneDesc,
                             events: List[Event],
                             chunks: List[Optional[bytes]],
                             index: int) -> Optional[bytes]:
        """Merge relocated bytes with on-device bytes for one piece.

        A read can straddle the relocation boundary when recovery rolled
        the logical write pointer back into the middle of a stripe unit:
        the prefix below the rollback point is valid on the device while
        the redirected suffix lives in the relocated unit (§5.2).
        """
        container = bytearray(length)
        for rel_lo, rel_hi in overlaps:
            container[rel_lo:rel_hi] = unit.read(lba + rel_lo,
                                                 rel_hi - rel_lo)
        gap_events = []
        cursor = 0
        gaps = []
        for rel_lo, rel_hi in sorted(overlaps):
            if cursor < rel_lo:
                gaps.append((cursor, rel_lo))
            cursor = max(cursor, rel_hi)
        if cursor < length:
            gaps.append((cursor, length))
        for gap_lo, gap_hi in gaps:
            if not self._device_available(device, desc.zone):
                raise DegradedModeError(
                    "cannot read non-relocated bytes of a relocated stripe "
                    "unit on an unavailable device")
            # Gap bytes go through the same self-healing policy as whole
            # pieces: retry transients, read-repair media errors.
            slot: List[Optional[bytes]] = [None]
            event = self._protected_read(device, pba + gap_lo, lba + gap_lo,
                                         gap_hi - gap_lo, desc, slot, 0)

            def on_gap(ev: Event, lo: int = gap_lo, hi: int = gap_hi,
                       filled: List[Optional[bytes]] = slot) -> None:
                if ev.ok and filled[0] is not None:
                    container[lo:hi] = filled[0]
            event.add_callback(on_gap)
            gap_events.append(event)
        if not gap_events:
            return bytes(container)
        gather = self.sim.gather(gap_events)

        def on_all(ev: Event) -> None:
            if ev.ok:
                chunks[index] = bytes(container)
        gather.add_callback(on_all)
        events.append(gather)
        return None

    def _degraded_read_piece(self, device: int, pba: int, lba: int,
                             length: int, desc: LogicalZoneDesc,
                             events: List[Event],
                             chunks: List[Optional[bytes]],
                             index: int) -> Optional[bytes]:
        """Reconstruct a piece whose device is unavailable (§4.2)."""
        su = self.config.stripe_unit_bytes
        zone = desc.zone
        in_zone = lba - desc.start_lba
        stripe = in_zone // desc.stripe_width
        in_su = (in_zone % desc.stripe_width) % su
        buffer = desc.buffers.get(stripe)
        if buffer is not None:
            # Incomplete tail stripe: the stripe buffer has the data.
            stripe_offset = in_zone % desc.stripe_width
            return bytes(buffer.data[stripe_offset:stripe_offset + length])
        accumulator = bytearray(length)
        sources = self._reconstruct_sources(device, zone, stripe, in_su,
                                            length, accumulator)
        gather = self.sim.gather(sources)

        def on_sources(event: Event) -> None:
            if event.ok:
                chunks[index] = bytes(accumulator)
        gather.add_callback(on_sources)
        events.append(gather)
        return None

    def _reconstruct_sources(self, device: int, zone: int, stripe: int,
                             in_su: int, length: int,
                             accumulator: bytearray) -> List[Event]:
        """XOR-fold every surviving source of one SU range into ``accumulator``.

        Returns the source read events; the accumulator holds the
        reconstruction once all of them have completed.  Raises
        ``DegradedModeError`` when a second device is unavailable — single
        parity cannot reconstruct through two losses.
        """
        su = self.config.stripe_unit_bytes
        layout = self.mapper.stripe_layout(zone, stripe)
        sources: List[Event] = []
        relocated = self.relocated_parity.get((zone, stripe))
        for other in range(self.config.num_devices):
            if other == device:
                continue
            if not self._device_available(other, zone):
                raise DegradedModeError(
                    f"two unavailable devices ({device}, {other}); "
                    "single parity cannot reconstruct")
            if other == layout.parity_device and relocated is not None:
                # The stripe's true parity lives in memory / the metadata
                # zone; the on-device parity PBA holds stale data.
                xor_into(accumulator, relocated[in_su:in_su + length])
                continue
            if other != layout.parity_device:
                su_index = layout.data_devices.index(other)
                unit = self.relocations.lookup(
                    self.mapper.su_lba(zone, stripe, su_index))
                if unit is not None and unit.covers(unit.su_lba + in_su,
                                                    length):
                    # This source SU was itself relocated; its on-device
                    # bytes are stale.
                    xor_into(accumulator,
                             unit.read(unit.su_lba + in_su, length))
                    continue
            other_pba = zone * self.phys_zone_size + stripe * su + in_su
            # A source SU may be shorter than the requested range (the
            # tail stripe of a finished zone); its unwritten suffix
            # counts as zeroes, matching the parity computation (§5.1).
            available = self.phys[other][zone].write_pointer - other_pba
            take = max(0, min(length, available))
            if take == 0:
                continue
            sources.append(
                self._source_read(other, other_pba, take, accumulator))
        return sources

    def _source_read(self, device: int, pba: int, length: int,
                     accumulator: bytearray) -> Event:
        """Survivor read feeding a reconstruction, with transient retry.

        Transient command failures are retried like any protected read;
        any other error (a media error on a survivor is a double fault)
        fails the reconstruction loudly.
        """
        outcome = Event(self.sim)
        self._attempt_source_read(device, pba, length, accumulator,
                                  outcome, 0)
        return outcome

    def _attempt_source_read(self, device: int, pba: int, length: int,
                             accumulator: bytearray, outcome: Event,
                             attempt: int) -> None:
        bio = Bio.read(pba, length)
        bio.errors_as_status = True
        event = self.devices[device].submit(bio)

        def done(ev: Event) -> None:
            completed = ev.value
            exc = completed.error
            if exc is None:
                if self._failslow_on:
                    self._note_latency(device, True,
                                       self.sim.now - completed.submit_time)
                xor_into(accumulator, completed.result)
                outcome.succeed(completed)
            elif isinstance(exc, TransientCommandError) and \
                    attempt < self.config.max_transient_retries:
                self.health.transient_retries += 1
                self.sim.schedule(self.config.transient_backoff_s,
                                  self._attempt_source_read, device, pba,
                                  length, accumulator, outcome, attempt + 1)
            else:
                outcome.fail(exc)
        event.add_callback(done)

    # ------------------------------------------------------------------ flush

    def _run_flush(self, bio: Bio, done: Event) -> None:
        """REQ_OP_FLUSH: duplicated to each array device (§5.3)."""
        gather = self.sim.gather([
            self.devices[d].submit(Bio.flush())
            for d in self._alive_devices()])
        gather.add_callback(lambda ev: self._flush_gathered(ev, bio, done))

    def _flush_gathered(self, gather: Event, bio: Bio, done: Event) -> None:
        if not gather.ok:
            if isinstance(gather.value, DeviceError):
                done.fail(gather.value)
                return
            raise gather.value
        for desc in self.zone_descs:
            if desc.state.is_active or desc.state is ZoneState.FULL:
                if desc.written_bytes:
                    # Full SUs only: a partial tail SU can be extended by
                    # a later write, which would make its bit stale (see
                    # _WriteJoin._flushed).
                    desc.persistence.mark_up_to(
                        desc.su_index_of(desc.write_pointer))
        self.stats.account(bio)
        bio.complete_time = self.sim.now
        done.succeed(bio)

    # ------------------------------------------------------------------ zone reset

    def _start_reset(self, bio: Bio, done: Event) -> None:
        if bio.offset % self.zone_capacity:
            raise InvalidAddressError(
                f"zone reset offset {bio.offset:#x} is not a logical "
                "zone start")
        zone = self.mapper.zone_of(bio.offset)
        desc = self.zone_descs[zone]
        if desc.reset_in_progress:
            self._reset_pending.setdefault(zone, []).append((bio, done))
            return
        desc.reset_in_progress = True
        # §4.3: the reset pointer orders the reset against in-flight writes.
        desc.reset_pointer = desc.write_pointer
        self.sim.process(self._run_reset(bio, done, desc))

    def _run_reset(self, bio: Bio, done: Event, desc: LogicalZoneDesc):
        zone = desc.zone
        try:
            # Write-ahead log the reset intent to the device holding the
            # zone's first stripe unit and the device with the parity of
            # the first stripe (§5.2), persisted before any reset.
            layout = self.mapper.stripe_layout(zone, 0)
            wal_devices = {layout.data_devices[0], layout.parity_device}
            wal_events = []
            for device in wal_devices:
                if self._device_available(device, zone):
                    entry = encode_zone_reset(zone, desc.reset_pointer or 0,
                                              self.generation[zone])
                    wal_events.append(self.mdzones[device].append_async(
                        MetadataRole.GENERAL, entry, fua=True))
            yield self.sim.all_of(wal_events)
            # Reset every physical zone in the logical zone.  Worn-out
            # zones (READ_ONLY/OFFLINE) cannot be reset by spec; they are
            # skipped and keep their frozen state — post-reset writes
            # landing on them redirect through the relocation path.
            reset_events = []
            for device in self._alive_devices():
                pdesc = self.phys[device][zone]
                if pdesc.state is ZoneState.READ_ONLY or \
                        pdesc.state is ZoneState.OFFLINE:
                    continue
                reset_events.append(self._tolerant_zone_op(
                    device, Bio.zone_reset(zone * self.phys_zone_size)))
                pdesc.write_pointer = zone * self.phys_zone_size
                pdesc.state = ZoneState.EMPTY
            yield self.sim.all_of(reset_events)
            # Bump and persist the generation counter, invalidating every
            # metadata log entry that referenced the old zone contents.
            # The persist must be FUA: if the new counter were lost in a
            # crash, the (FUA'd) reset WAL entry would still match the old
            # generation and recovery would replay the reset — discarding
            # any acknowledged post-reset writes.
            self.generation[zone] += 1
            self._check_generation_overflow(zone)
            gen_events = self._persist_generation(fua=True)
            self._set_logical_state(desc, ZoneState.EMPTY)
            self.relocations.drop_zone(desc.start_lba, desc.capacity)
            self.relocations.rebuild_counters(
                lambda unit: self.mapper.zone_of(unit.su_lba))
            for key in [k for k in self.relocated_parity if k[0] == zone]:
                del self.relocated_parity[key]
            desc.reset()
            yield self.sim.all_of(gen_events)
        except DeviceError as exc:
            desc.reset_in_progress = False
            done.fail(exc)
            return
        self.stats.account(bio)
        bio.complete_time = self.sim.now
        done.succeed(bio)
        self._drain_reset_pending(zone)

    def _drain_reset_pending(self, zone: int) -> None:
        pending = self._reset_pending.pop(zone, [])
        for queued_bio, queued_done in pending:
            try:
                self._dispatch(queued_bio, queued_done)
            except (RaiznError, DeviceError) as exc:
                self.sim.schedule(0.0, queued_done.fail, exc)

    def _check_generation_overflow(self, zone: int) -> None:
        if self.generation[zone] >= 2 ** 64 - 1:
            # §4.3: the volume goes read-only and requires maintenance.
            self.read_only = True

    # ------------------------------------------------------------------ finish/open/close

    def _run_finish(self, bio: Bio, done: Event):
        zone = self.mapper.zone_of(bio.offset)
        desc = self.zone_descs[zone]
        try:
            events: List[Event] = []
            fua_devices: Set[int] = set()
            # Seal the incomplete tail stripe's parity so degraded reads
            # work without consulting partial parity logs.
            for buffer in list(desc.buffers.active()):
                if buffer.fill_end and not buffer.full:
                    layout = self.mapper.stripe_layout(zone, buffer.stripe)
                    device = layout.parity_device
                    if self._device_available(device, zone):
                        parity = buffer.full_parity()
                        pba = zone * self.phys_zone_size + \
                            buffer.stripe * self.config.stripe_unit_bytes
                        pdesc = self.phys[device][zone]
                        if pdesc.write_pointer == pba and \
                                pdesc.state is not ZoneState.READ_ONLY and \
                                pdesc.state is not ZoneState.OFFLINE:
                            pdesc.write_pointer = pba + len(parity)
                            events.append(self.devices[device].submit(
                                Bio.write(pba, parity)))
                        else:
                            # Conflicting parity PBA (or a worn-out parity
                            # zone): the delta logs already cover the tail
                            # stripe; keep the sealed parity in memory
                            # (§5.2).
                            self.relocated_parity[
                                (zone, buffer.stripe)] = parity
                desc.buffers.release(buffer.stripe)
            for device in self._alive_devices():
                pdesc = self.phys[device][zone]
                if pdesc.state is ZoneState.READ_ONLY or \
                        pdesc.state is ZoneState.OFFLINE:
                    # A worn-out physical zone is already immutable; there
                    # is nothing left to finish on it.
                    continue
                events.append(self._tolerant_zone_op(
                    device, Bio.zone_finish(zone * self.phys_zone_size)))
                pdesc.state = ZoneState.FULL
            yield self.sim.all_of(events)
        except DeviceError as exc:
            done.fail(exc)
            return
        self._set_logical_state(desc, ZoneState.FULL)
        self.stats.account(bio)
        bio.complete_time = self.sim.now
        done.succeed(bio)

    def _run_open_close(self, bio: Bio, done: Event, explicit_open: bool):
        zone = self.mapper.zone_of(bio.offset)
        desc = self.zone_descs[zone]
        try:
            op = Bio.zone_open if explicit_open else Bio.zone_close
            yield self.sim.all_of([
                self.devices[d].submit(op(zone * self.phys_zone_size))
                for d in self._alive_devices()])
        except DeviceError as exc:
            done.fail(exc)
            return
        if explicit_open:
            self._open_logical_zone(desc, explicit=True)
        elif desc.state.is_open:
            new_state = (ZoneState.EMPTY
                         if desc.write_pointer == desc.start_lba
                         else ZoneState.CLOSED)
            self._set_logical_state(desc, new_state)
        self.stats.account(bio)
        bio.complete_time = self.sim.now
        done.succeed(bio)

    # ------------------------------------------------------------------ logical zone state

    def _set_logical_state(self, desc: LogicalZoneDesc,
                           state: ZoneState) -> None:
        if desc.state.is_open and not state.is_open:
            self._open_logical -= 1
        elif not desc.state.is_open and state.is_open:
            self._open_logical += 1
        desc.state = state

    def _open_logical_zone(self, desc: LogicalZoneDesc,
                           explicit: bool = False) -> None:
        if desc.state.is_open:
            if explicit and desc.state is ZoneState.IMPLICIT_OPEN:
                desc.state = ZoneState.EXPLICIT_OPEN
            return
        if self._open_logical >= self.max_open_logical:
            self._auto_close_logical()
        target = (ZoneState.EXPLICIT_OPEN if explicit
                  else ZoneState.IMPLICIT_OPEN)
        self._set_logical_state(desc, target)

    def _auto_close_logical(self) -> None:
        candidates = [d for d in self.zone_descs
                      if d.state is ZoneState.IMPLICIT_OPEN]
        if not candidates:
            raise ZoneStateError(
                f"logical open zone limit {self.max_open_logical} reached")
        victim = min(candidates, key=lambda d: d.last_write_time)
        for device in self._alive_devices():
            self.devices[device].submit(
                Bio.zone_close(victim.zone * self.phys_zone_size))
        self._set_logical_state(victim, ZoneState.CLOSED)

    # ------------------------------------------------------------------ fault handling

    def invalidate_write_plans(self) -> None:
        """Drop cached write plans on a membership/degraded transition.

        Cached plans are pure geometry, but they are consumed under
        emit-time availability/conflict checks that assume the
        membership they were built under; clearing the cache (and
        bumping the epoch) on every eviction, rebuild start, and rejoin
        keeps each cached plan trivially confined to a single
        membership epoch.
        """
        self._membership_epoch += 1
        self._plan_cache.clear()

    def fail_device(self, index: int, remove: bool = True) -> None:
        """Fail (and optionally remove) one array device."""
        if self.failed[index]:
            return
        others_failed = sum(self.failed)
        if others_failed >= self.config.num_parity:
            raise DataLossError(
                "failing another device exceeds the parity tolerance")
        dev = self.devices[index]
        if dev is not None:
            dev.fail_device()
        self.failed[index] = True
        if remove:
            self.devices[index] = None
            self.mdzones[index] = None
        self.invalidate_write_plans()
