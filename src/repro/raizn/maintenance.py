"""Maintenance operations (paper §4.3, §5.2).

Two multi-step operations need write-ahead logging so they can resume
after power loss:

* **Physical zone rewrite** (§5.2): when a physical zone accumulates more
  relocated stripe units than the configured threshold, its live contents
  are copied into a swap zone, the zone is reset, and the data is written
  back with every relocated stripe unit at its correct address — healing
  the relocations.  Runs during initialization.

* **Generation counter maintenance** (§4.3): if any counter reaches its
  maximum, the volume goes read-only; maintenance garbage collects and
  resets all metadata zones, then resets the counters.  The atomicity of
  the operation (WAL + idempotent re-run) lets counters restart without
  impacting data consistency.
"""

from __future__ import annotations

import struct
from typing import List, Optional, Tuple

from ..block.bio import Bio
from ..errors import MetadataError, RaiznError
from ..sim import Simulator
from .mdzone import MetadataRole
from .metadata import MetadataEntry, MetadataType, decode_op_wal, encode_op_wal

#: OP_WAL opcodes.
OP_ZONE_REWRITE_START = 1   # copy phase beginning (original intact)
OP_ZONE_REWRITE_COPIED = 2  # swap copy durable; original may be destroyed
OP_GEN_MAINTENANCE = 3      # generation counter maintenance in progress

_REWRITE = struct.Struct("<QQQ")  # device, zone, content length


def encode_rewrite_wal(opcode: int, device: int, zone: int, length: int,
                       generation: int) -> MetadataEntry:
    """A zone-rewrite WAL entry."""
    return encode_op_wal(opcode, _REWRITE.pack(device, zone, length),
                         generation=generation)


def decode_rewrite_wal(entry: MetadataEntry) -> Tuple[int, int, int, int]:
    """Returns ``(opcode, device, zone, content_length)``."""
    opcode, payload = decode_op_wal(entry)
    device, zone, length = _REWRITE.unpack_from(payload)
    return opcode, device, zone, length


def zones_needing_rewrite(volume) -> List[Tuple[int, int]]:
    """(device, zone) pairs whose relocation count exceeds the threshold."""
    threshold = volume.config.relocation_rebuild_threshold
    return sorted(key for key, count in
                  volume.relocations.per_phys_zone.items()
                  if count >= threshold)


def rewrite_physical_zone(volume, device_index: int, zone: int,
                          resume_length: Optional[int] = None):
    """Process-style §5.2 zone rewrite for one (device, zone).

    ``resume_length`` indicates a crash-interrupted rewrite whose swap
    copy (of that many bytes) is already durable; the copy phase is
    skipped and the write-back redone.
    """
    sim = volume.sim
    device = volume.devices[device_index]
    if device is None or volume.failed[device_index]:
        raise RaiznError("cannot rewrite a zone on a missing device")
    mdz = volume.mdzones[device_index]
    if not mdz.swap_zones:
        raise MetadataError("no swap zone available for a zone rewrite")
    swap = mdz.swap_zones[0]
    swap_start = swap * volume.phys_zone_size
    zone_pba = zone * volume.phys_zone_size
    generation = volume.generation[zone]

    if resume_length is None:
        content = yield from _desired_content(volume, device_index, zone)
        # Stage 1: log intent, copy into the swap zone, make it durable.
        yield from mdz.append(MetadataRole.GENERAL, encode_rewrite_wal(
            OP_ZONE_REWRITE_START, device_index, zone, len(content),
            generation), fua=True)
        swap_info = device.zone_info(swap)
        if swap_info.write_pointer != swap_info.start:
            yield device.submit(Bio.zone_reset(swap_start))
        if content:
            yield device.submit(Bio.write(swap_start, content))
        yield device.submit(Bio.flush())
        yield from mdz.append(MetadataRole.GENERAL, encode_rewrite_wal(
            OP_ZONE_REWRITE_COPIED, device_index, zone, len(content),
            generation), fua=True)
    else:
        if resume_length:
            bio = yield device.submit(Bio.read(swap_start, resume_length))
            # Copy out of the media view: stage 2 resets the swap zone,
            # which would zero the bytes a borrowed view points at.
            content = bytes(bio.result)
        else:
            content = b""

    # Stage 2: destroy and rewrite the zone with the corrected layout.
    yield device.submit(Bio.zone_reset(zone_pba))
    if content:
        yield device.submit(Bio.write(zone_pba, content))
    yield device.submit(Bio.flush())
    yield device.submit(Bio.zone_reset(swap_start))
    mdz.used[swap] = 0

    # The relocations this device held in the zone are healed in place.
    pdesc = volume.phys[device_index][zone]
    pdesc.write_pointer = zone_pba + len(content)
    _drop_healed_relocations(volume, device_index, zone)
    return len(content)


def _desired_content(volume, device_index: int, zone: int):
    """The corrected byte image of one device's physical zone.

    Regenerated through the volume's logical read path (which consults
    relocation units and relocated parity), exactly like a rebuild — the
    only difference is that the destination device is the same one.
    """
    from .rebuild import _device_target_extent, _parity_of
    desc = volume.zone_descs[zone]
    su = volume.config.stripe_unit_bytes
    target = _device_target_extent(volume, device_index, zone,
                                   desc.write_pointer)
    out = bytearray()
    position = 0
    while position < target:
        stripe = position // su
        layout = volume.mapper.stripe_layout(zone, stripe)
        stripe_lba = desc.start_lba + stripe * desc.stripe_width
        read_len = min(desc.stripe_width, desc.write_pointer - stripe_lba)
        bio = yield volume.submit(Bio.read(stripe_lba, read_len))
        if device_index == layout.parity_device:
            chunk = _parity_of(bio.result, volume.config.num_data, su)
        else:
            i = layout.data_devices.index(device_index)
            chunk = bio.result[i * su:min((i + 1) * su, read_len)]
        take = min(len(chunk), target - position)
        out.extend(chunk[:take])
        position += take
    return bytes(out)


def _drop_healed_relocations(volume, device_index: int, zone: int) -> None:
    desc = volume.zone_descs[zone]
    doomed = [unit.su_lba for unit in
              volume.relocations.units_on_device(device_index)
              if volume.mapper.zone_of(unit.su_lba) == zone]
    for su_lba in doomed:
        volume.relocations._units.pop(su_lba, None)
    volume.relocations.rebuild_counters(
        lambda unit: volume.mapper.zone_of(unit.su_lba))
    for key in [k for k in volume.relocated_parity if k[0] == zone
                and volume.mapper.stripe_layout(zone, k[1]).parity_device
                == device_index]:
        del volume.relocated_parity[key]
    desc.has_relocations = any(
        volume.mapper.zone_of(unit.su_lba) == zone
        for unit in volume.relocations.units())


def run_pending_rewrites(volume):
    """Process-style: rewrite every over-threshold zone (mount time)."""
    rewritten = []
    for device_index, zone in zones_needing_rewrite(volume):
        yield from rewrite_physical_zone(volume, device_index, zone)
        rewritten.append((device_index, zone))
    return rewritten


# -- generation counter maintenance (§4.3) ------------------------------------


GENERATION_LIMIT = 2 ** 64 - 1


def needs_generation_maintenance(volume) -> bool:
    """True when any counter is at (or one step from) its maximum."""
    return any(g >= GENERATION_LIMIT - 1 for g in volume.generation)


def run_generation_maintenance(sim: Simulator, volume):
    """Process-style §4.3 maintenance: reset every generation counter.

    The caller must hold the volume read-only (the volume enters that
    state automatically on counter overflow).  Idempotent — a crash at
    any point re-runs the whole operation at the next mount, guided by
    the OP_GEN_MAINTENANCE write-ahead log.
    """
    if not volume.read_only:
        raise RaiznError("generation maintenance requires a read-only volume")
    # WAL the intent on every device before mutating anything.
    events = []
    for index in volume._alive_devices():
        events.append(sim.process(volume.mdzones[index].append(
            MetadataRole.GENERAL,
            encode_op_wal(OP_GEN_MAINTENANCE, b"", generation=0),
            fua=True)))
    yield sim.all_of(events)
    # New counters first, so the compaction checkpoints carry them; every
    # stale metadata entry (old, huge generations) dies with the old
    # metadata zones — the guarantee that lets counters restart (§4.3).
    volume.generation = [1] * volume.num_data_zones
    for index in volume._alive_devices():
        yield from volume.mdzones[index].recovery_compact()
    volume.read_only = False
    return True


def find_maintenance_wal(entries) -> bool:
    """True if a generation-maintenance WAL entry is present."""
    for entry in entries:
        if entry.mdtype is MetadataType.OP_WAL:
            opcode, _payload = decode_op_wal(entry)
            if opcode == OP_GEN_MAINTENANCE:
                return True
    return False


# -- background scrubbing ------------------------------------------------------


class ScrubReport:
    """What one scrub pass found and fixed."""

    def __init__(self) -> None:
        #: Complete stripes whose parity was checked.
        self.stripes_scanned = 0
        #: Data stripe units the logical read path healed along the way
        #: (latent media errors surfaced by the scrub's own reads).
        self.data_heals = 0
        #: Parity copies that did not match the recomputed value.
        self.parity_mismatches = 0
        #: Parity media errors found on the parity PBA itself.
        self.parity_media_errors = 0
        #: Parity copies re-established (in memory + partial-parity log).
        self.parity_heals = 0

    def to_dict(self) -> dict:
        return {
            "stripes_scanned": self.stripes_scanned,
            "data_heals": self.data_heals,
            "parity_mismatches": self.parity_mismatches,
            "parity_media_errors": self.parity_media_errors,
            "parity_heals": self.parity_heals,
        }


def scrub_process(sim: Simulator, volume, idle_delay: float = 0.0,
                  report: Optional[ScrubReport] = None):
    """Process-style background scrub pass over every written stripe.

    Walks each logical zone's complete stripes, reading the stripe
    through the volume's logical read path — which transparently heals
    latent data errors via read-repair — and verifying that the stored
    parity matches the parity recomputed from the data.  Mismatched or
    unreadable parity is routed through the same heal machinery the
    datapath uses: the true parity is recorded in the relocated-parity
    map and persisted to the parity device's partial-parity log (§5.2).

    ``idle_delay`` seconds of simulated idle time are inserted between
    stripes so the scrub trickles along behind foreground IO instead of
    monopolising the channels.
    """
    from ..errors import MediaError
    from ..zns.spec import ZoneState
    from .parity import stripe_parity

    if report is None:
        report = ScrubReport()
    su = volume.config.stripe_unit_bytes
    heals_before = volume.health.heals
    for desc in volume.zone_descs:
        zone = desc.zone
        full_stripes = desc.written_bytes // desc.stripe_width
        for stripe in range(full_stripes):
            stripe_lba = desc.start_lba + stripe * desc.stripe_width
            bio = yield volume.submit(Bio.read(stripe_lba,
                                               desc.stripe_width))
            report.stripes_scanned += 1
            units = [bio.result[i * su:(i + 1) * su]
                     for i in range(volume.config.num_data)]
            expected = stripe_parity(units, su)
            layout = volume.mapper.stripe_layout(zone, stripe)
            parity_device = layout.parity_device
            key = (zone, stripe)
            relocated = volume.relocated_parity.get(key)
            if relocated is not None:
                # The authoritative parity is the in-memory/logged copy.
                if bytes(relocated) != expected:
                    report.parity_mismatches += 1
                    yield from _heal_parity_copy(volume, desc, stripe,
                                                 expected, report)
                if idle_delay:
                    yield sim.timeout(idle_delay)
                continue
            if not volume._device_available(parity_device, zone):
                # Degraded: the parity is gone with the device; the
                # rebuild recreates it.
                if idle_delay:
                    yield sim.timeout(idle_delay)
                continue
            pdesc = volume.phys[parity_device][zone]
            pba = zone * volume.phys_zone_size + stripe * su
            if pdesc.state is ZoneState.OFFLINE or \
                    pdesc.write_pointer < pba + su:
                # The parity PBA is unreadable (worn-out zone) or holds
                # nothing; until healed, this stripe's parity exists only
                # in partial-parity deltas.  Re-establish a full copy so
                # degraded reads stop depending on the log.
                if pdesc.state is ZoneState.OFFLINE:
                    report.parity_media_errors += 1
                else:
                    report.parity_mismatches += 1
                yield from _heal_parity_copy(volume, desc, stripe,
                                             expected, report)
                if idle_delay:
                    yield sim.timeout(idle_delay)
                continue
            probe = Bio.read(pba, su)
            probe.errors_as_status = True
            onboard = yield volume.devices[parity_device].submit(probe)
            if onboard.error is not None:
                if isinstance(onboard.error, MediaError):
                    report.parity_media_errors += 1
                    volume.health.media_errors += 1
                    volume._note_device_error(parity_device)
                yield from _heal_parity_copy(volume, desc, stripe,
                                             expected, report)
            elif onboard.result != expected:
                report.parity_mismatches += 1
                yield from _heal_parity_copy(volume, desc, stripe,
                                             expected, report)
            if idle_delay:
                yield sim.timeout(idle_delay)
    report.data_heals = volume.health.heals - heals_before
    return report


def _heal_parity_copy(volume, desc, stripe: int, parity: bytes, report):
    """Re-establish one stripe's parity: remember it in the relocated-
    parity map and persist it to the parity device's partial-parity log
    as a whole-stripe delta (offset 0), the same §5.2 path the write
    datapath uses when a parity PBA is unusable."""
    from .metadata import encode_partial_parity
    zone = desc.zone
    layout = volume.mapper.stripe_layout(zone, stripe)
    volume.relocated_parity[(zone, stripe)] = parity
    stripe_lba = desc.start_lba + stripe * desc.stripe_width
    entry = encode_partial_parity(stripe_lba, stripe_lba + desc.stripe_width,
                                  volume.generation[zone], 0, parity)
    mdz = volume.mdzones[layout.parity_device]
    if mdz is not None:
        yield from mdz.append(MetadataRole.PARTIAL_PARITY, entry, fua=True)
    volume.health.parity_heals += 1
    report.parity_heals += 1


def run_scrub(sim: Simulator, volume, idle_delay: float = 0.0) -> ScrubReport:
    """Synchronously run one full scrub pass (drains the event loop)."""
    report = ScrubReport()
    process = sim.process(scrub_process(sim, volume, idle_delay, report))
    sim.run()
    if not process.triggered:
        raise RaiznError("scrub never completed")
    if not process.ok:
        raise process.value
    return report


# ---------------------------------------------------------------- health sweep


class HealthSweepReport:
    """Outcome of one gray-failure health-maintenance sweep."""

    def __init__(self) -> None:
        #: Slots currently demoted (reads served from redundancy) but not
        #: yet evicted — on watch, no action taken.
        self.demoted: List[int] = []
        #: Slots replaced this sweep (slow-evicted devices rebuilt onto
        #: fresh replacements).
        self.replaced: List[int] = []
        #: The :class:`~repro.raizn.rebuild.RebuildReport` per replacement.
        self.rebuild_reports: list = []

    def to_dict(self) -> dict:
        return {
            "demoted": list(self.demoted),
            "replaced": list(self.replaced),
            "zones_rebuilt": sum(r.zones_rebuilt
                                 for r in self.rebuild_reports),
        }


def slow_evicted_devices(volume) -> List[int]:
    """Array slots evicted for persistent slowness.

    A slow eviction leaves the device object in place (``remove=False``)
    with its demotion flag still set — distinguishable from a plain
    device loss, whose slot holds ``None`` or a never-demoted device.
    """
    return [index for index in range(volume.config.num_devices)
            if volume.failed[index] and volume.device_health[index].demoted]


def run_health_maintenance(sim: Simulator, volume,
                           replacement_factory) -> HealthSweepReport:
    """Feed slow-evicted devices into the standard rebuild flow.

    The escalation ladder's last rung: a device whose health score stayed
    bad was evicted by the volume (``HealthStats.slow_evictions``); this
    sweep replaces each such device with ``replacement_factory(index)``
    and rebuilds its contents from redundancy, exactly as a fail-stop
    loss would be handled.  The slot's health score is reset afterwards —
    the replacement starts with a clean latency distribution.  Demoted
    but not-yet-evicted devices are only reported: demotion is reversible
    and the volume lifts it on sustained recovery.
    """
    from .rebuild import rebuild
    from .volume import DeviceHealth

    report = HealthSweepReport()
    report.demoted = [
        index for index in range(volume.config.num_devices)
        if not volume.failed[index] and volume.device_health[index].demoted]
    for index in slow_evicted_devices(volume):
        new_device = replacement_factory(index)
        report.rebuild_reports.append(rebuild(sim, volume, index, new_device))
        volume.device_health[index] = DeviceHealth()
        report.replaced.append(index)
    return report
