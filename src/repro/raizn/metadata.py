"""On-disk metadata log format (paper §4.3, Figure 3).

Every persisted metadata log entry starts with a 4 KiB header sector:

* bytes 0–4   magic (``RAIZ``)
* bytes 4–8   metadata type (high bit = checkpoint flag, set by the
  metadata garbage collector to distinguish checkpointed entries from
  normal updates)
* bytes 8–16  start LBA
* bytes 16–24 end LBA
* bytes 24–32 generation counter of the logical zone containing the LBA
* bytes 32–4096 inline metadata

The first 8 bytes of the inline area hold the external payload length;
small metadata (superblock, zone reset logs, generation counters) lives
entirely in the remaining inline bytes, while stripe-unit-sized payloads
(partial parity, relocated stripe units) follow the header in
sector-padded form — matching Table 1's "4 KiB (header) + ≤64 KiB
(stripe unit)" accounting.

Entries are written with zone appends and parsed back by scanning a
metadata zone from its start to its write pointer.  The ZNS per-zone
prefix-persistence guarantee means a torn entry can only be a truncated
suffix, which the parser detects by length, so no checksum is needed.
"""

from __future__ import annotations

import dataclasses
import enum
import struct
from typing import List, Optional, Tuple

from ..errors import MetadataError
from ..units import SECTOR_SIZE

#: "RAIZ" — the fixed magic identifying the start of a metadata entry.
MAGIC = 0x5241495A

#: Set in the type field for entries written by the metadata garbage
#: collector's checkpoint pass (§4.3).
CHECKPOINT_FLAG = 0x8000_0000

_HEADER = struct.Struct("<IIQQQQ")  # magic, type, start, end, gen, payload_len
HEADER_BYTES = 32 + 8  # fixed header + payload length word
INLINE_CAPACITY = SECTOR_SIZE - HEADER_BYTES


class MetadataType(enum.IntEnum):
    """Metadata entry types (Table 1 plus the maintenance WAL)."""

    SUPERBLOCK = 1
    GENERATION = 2
    ZONE_RESET_LOG = 3
    PARTIAL_PARITY = 4
    RELOCATED_SU = 5
    #: Write-ahead log for multi-step maintenance operations (metadata
    #: zone rewrite after too many relocations, generation counter
    #: maintenance) so they can resume after power loss (§4.3, §5.2).
    OP_WAL = 6


@dataclasses.dataclass
class MetadataEntry:
    """One decoded (or to-be-encoded) metadata log entry."""

    mdtype: MetadataType
    start_lba: int
    end_lba: int
    generation: int
    inline: bytes = b""
    payload: bytes = b""
    checkpoint: bool = False

    def __post_init__(self) -> None:
        if len(self.inline) > INLINE_CAPACITY:
            raise MetadataError(
                f"inline metadata of {len(self.inline)} bytes exceeds the "
                f"{INLINE_CAPACITY}-byte inline area")

    @property
    def total_bytes(self) -> int:
        """On-disk footprint: header sector + sector-padded payload."""
        payload_len = len(self.payload)
        return SECTOR_SIZE + -(-payload_len // SECTOR_SIZE) * SECTOR_SIZE

    def encode(self) -> bytes:
        """Serialize to the on-disk byte layout.

        ``payload`` may be any readable buffer (the write path hands over
        memoryview slices of the caller's data); join() materializes it.
        """
        type_field = int(self.mdtype)
        if self.checkpoint:
            type_field |= CHECKPOINT_FLAG
        payload_len = len(self.payload)
        header = _HEADER.pack(MAGIC, type_field, self.start_lba, self.end_lba,
                              self.generation, payload_len)
        pad = payload_len % SECTOR_SIZE
        return b"".join((
            header, self.inline,
            bytes(SECTOR_SIZE - HEADER_BYTES - len(self.inline)),
            self.payload,
            bytes(SECTOR_SIZE - pad) if pad else b"",
        ))

    @classmethod
    def decode(cls, buffer: bytes, offset: int = 0) -> Optional[Tuple["MetadataEntry", int]]:
        """Decode one entry at ``offset``; returns ``(entry, consumed)``.

        Returns ``None`` when no valid entry starts at ``offset`` — either
        the magic is absent (end of log) or the entry is truncated (a torn
        tail from power loss, which recovery must discard).
        """
        if offset + SECTOR_SIZE > len(buffer):
            return None
        magic, type_field, start, end, gen, payload_len = _HEADER.unpack_from(
            buffer, offset)
        if magic != MAGIC:
            return None
        checkpoint = bool(type_field & CHECKPOINT_FLAG)
        try:
            mdtype = MetadataType(type_field & ~CHECKPOINT_FLAG)
        except ValueError:
            return None
        padded = -(-payload_len // SECTOR_SIZE) * SECTOR_SIZE
        consumed = SECTOR_SIZE + padded
        if offset + consumed > len(buffer):
            return None  # truncated entry: payload did not fully persist
        inline = bytes(buffer[offset + HEADER_BYTES:offset + SECTOR_SIZE])
        payload = bytes(buffer[offset + SECTOR_SIZE:
                               offset + SECTOR_SIZE + payload_len])
        entry = cls(mdtype=mdtype, start_lba=start, end_lba=end,
                    generation=gen, inline=inline, payload=payload,
                    checkpoint=checkpoint)
        return entry, consumed

    @staticmethod
    def scan(buffer: bytes) -> List["MetadataEntry"]:
        """Parse every valid entry from the start of ``buffer``.

        Stops at the first position that does not hold a valid, complete
        entry (zero-fill, a torn tail, or reset space).
        """
        entries = []
        offset = 0
        while True:
            decoded = MetadataEntry.decode(buffer, offset)
            if decoded is None:
                break
            entry, consumed = decoded
            entries.append(entry)
            offset += consumed
        return entries


# -- typed payload helpers ------------------------------------------------------

_SUPERBLOCK = struct.Struct("<IIQQQQQQ16s")


@dataclasses.dataclass(frozen=True)
class Superblock:
    """Array parameters persisted to every device (§4.3).

    ``device_index`` is the per-device slot assignment, letting mount
    reorder devices presented in any order.
    """

    version: int
    num_data: int
    num_parity: int
    stripe_unit_bytes: int
    num_zones: int
    zone_capacity: int
    num_metadata_zones: int
    device_index: int
    array_uuid: bytes

    def to_entry(self) -> MetadataEntry:
        inline = _SUPERBLOCK.pack(
            self.version, self.num_data, self.num_parity,
            self.stripe_unit_bytes, self.num_zones, self.zone_capacity,
            self.num_metadata_zones, self.device_index, self.array_uuid)
        return MetadataEntry(MetadataType.SUPERBLOCK, 0, 0, 0, inline=inline)

    @classmethod
    def from_entry(cls, entry: MetadataEntry) -> "Superblock":
        if entry.mdtype is not MetadataType.SUPERBLOCK:
            raise MetadataError(f"not a superblock entry: {entry.mdtype}")
        fields = _SUPERBLOCK.unpack_from(entry.inline)
        return cls(version=fields[0], num_data=fields[1], num_parity=fields[2],
                   stripe_unit_bytes=fields[3], num_zones=fields[4],
                   zone_capacity=fields[5], num_metadata_zones=fields[6],
                   device_index=fields[7], array_uuid=fields[8])


#: Generation counters per GENERATION entry.  The paper fits 508 8-byte
#: counters after a 32-byte header; our layout spends 8 further bytes on
#: the uniform payload-length word, leaving 507.
GENERATION_BLOCK_COUNTERS = INLINE_CAPACITY // 8


def encode_generation_block(first_zone: int, counters: List[int]) -> MetadataEntry:
    """A GENERATION entry for counters of zones [first_zone, ...)."""
    if len(counters) > GENERATION_BLOCK_COUNTERS:
        raise MetadataError(
            f"too many counters for one block: {len(counters)}")
    inline = struct.pack(f"<{len(counters)}Q", *counters)
    # start/end LBA carry the zone-index range, not byte addresses.
    return MetadataEntry(MetadataType.GENERATION, first_zone,
                         first_zone + len(counters), 0, inline=inline)


def decode_generation_block(entry: MetadataEntry) -> Tuple[int, List[int]]:
    """Inverse of :func:`encode_generation_block`."""
    if entry.mdtype is not MetadataType.GENERATION:
        raise MetadataError(f"not a generation entry: {entry.mdtype}")
    count = entry.end_lba - entry.start_lba
    counters = list(struct.unpack_from(f"<{count}Q", entry.inline))
    return entry.start_lba, counters


_ZONE_RESET = struct.Struct("<QQ")


def encode_zone_reset(zone: int, reset_pointer: int,
                      generation: int) -> MetadataEntry:
    """Zone-reset write-ahead log entry (§5.2)."""
    inline = _ZONE_RESET.pack(zone, reset_pointer)
    return MetadataEntry(MetadataType.ZONE_RESET_LOG, reset_pointer,
                         reset_pointer, generation, inline=inline)


def decode_zone_reset(entry: MetadataEntry) -> Tuple[int, int]:
    """Returns ``(zone_index, reset_pointer_lba)``."""
    if entry.mdtype is not MetadataType.ZONE_RESET_LOG:
        raise MetadataError(f"not a zone reset entry: {entry.mdtype}")
    zone, reset_pointer = _ZONE_RESET.unpack_from(entry.inline)
    return zone, reset_pointer


_PARTIAL_PARITY = struct.Struct("<QQ")

#: Zero fill for the unused inline area of a partial-parity entry
#: (16 inline bytes: parity offset + length).
_PP_INLINE_PAD = bytes(SECTOR_SIZE - HEADER_BYTES - _PARTIAL_PARITY.size)


def encode_partial_parity_bytes(start_lba: int, end_lba: int,
                                generation: int, parity_offset: int,
                                parity) -> bytes:
    """On-disk bytes of a partial parity entry, skipping the entry object.

    Byte-identical to ``encode_partial_parity(...).encode()`` — the write
    path logs one of these per partial-stripe write, and the dataclass
    round trip (allocation, ``__post_init__`` validation, generic pad
    construction) showed up in datapath profiles.  ``parity`` may be any
    readable buffer; ``join`` materializes it.
    """
    payload_len = len(parity)
    header = _HEADER.pack(MAGIC, MetadataType.PARTIAL_PARITY, start_lba,
                          end_lba, generation, payload_len)
    pad = payload_len % SECTOR_SIZE
    return b"".join((
        header, _PARTIAL_PARITY.pack(parity_offset, payload_len),
        _PP_INLINE_PAD, parity,
        bytes(SECTOR_SIZE - pad) if pad else b""))


def encode_partial_parity(start_lba: int, end_lba: int, generation: int,
                          parity_offset: int, parity: bytes,
                          checkpoint: bool = False) -> MetadataEntry:
    """Partial parity entry (§5.1).

    ``start_lba``/``end_lba`` delimit the logical write this delta covers;
    ``parity_offset`` is where the delta bytes sit inside the stripe's
    parity SU.  XOR-ing every entry of a stripe (any order) with the
    surviving data units reconstructs a missing unit.
    """
    inline = _PARTIAL_PARITY.pack(parity_offset, len(parity))
    return MetadataEntry(MetadataType.PARTIAL_PARITY, start_lba, end_lba,
                         generation, inline=inline, payload=parity,
                         checkpoint=checkpoint)


def decode_partial_parity(entry: MetadataEntry) -> Tuple[int, bytes]:
    """Returns ``(parity_offset_in_su, parity_delta_bytes)``."""
    if entry.mdtype is not MetadataType.PARTIAL_PARITY:
        raise MetadataError(f"not a partial parity entry: {entry.mdtype}")
    parity_offset, parity_len = _PARTIAL_PARITY.unpack_from(entry.inline)
    return parity_offset, entry.payload[:parity_len]


def encode_relocated_su(su_lba: int, su_bytes: bytes, generation: int,
                        checkpoint: bool = False) -> MetadataEntry:
    """Relocated stripe unit entry: mapping plus the unit's data (§5.2)."""
    return MetadataEntry(MetadataType.RELOCATED_SU, su_lba,
                         su_lba + len(su_bytes), generation,
                         payload=su_bytes, checkpoint=checkpoint)


def encode_op_wal(opcode: int, description: bytes,
                  generation: int = 0) -> MetadataEntry:
    """Maintenance-operation WAL entry; ``description`` is opaque state."""
    inline = struct.pack("<Q", opcode) + description
    return MetadataEntry(MetadataType.OP_WAL, 0, 0, generation, inline=inline)


def decode_op_wal(entry: MetadataEntry) -> Tuple[int, bytes]:
    """Returns ``(opcode, description_bytes)``."""
    if entry.mdtype is not MetadataType.OP_WAL:
        raise MetadataError(f"not an OP_WAL entry: {entry.mdtype}")
    (opcode,) = struct.unpack_from("<Q", entry.inline)
    return opcode, entry.inline[8:]
