"""Metadata zone management with swap-zone garbage collection (§4.3).

Each device reserves one zone for partial parity logs (isolated because
they are written on every non-stripe-aligned write), one for all other
metadata, and at least one swap zone.  When a metadata zone fills, the
garbage collector designates a swap zone as its replacement, immediately
redirects new log entries there, checkpoints the valid in-memory metadata
(flagged so recovery can tell checkpoints from normal updates), and resets
the old zone to serve as the next swap zone — Figure 4.

All log writes use zone appends, "ensuring high throughput even in the
presence of many concurrent metadata log writes".
"""

from __future__ import annotations

import enum
from typing import Callable, Dict, List

from ..block.bio import _FUA as _BIO_FUA
from ..block.bio import Bio, BioFlags
from ..block.device import BlockDevice
from ..errors import MetadataError
from ..sim import Event, Lock, Simulator
from ..sim.engine import InlineProcess
from .metadata import MetadataEntry


class MetadataRole(enum.Enum):
    """Which log stream a metadata zone currently serves."""

    PARTIAL_PARITY = "partial_parity"
    GENERAL = "general"

    # Identity hash: role-keyed dict lookups (locks, zone map, usage) sit
    # on the append hot path and Enum's default ``__hash__`` is a Python-
    # level call.  Identity is consistent with Enum equality (members are
    # singletons), and no role is ever iterated out of a set — the only
    # role collections are insertion-ordered dicts and literal tuples — so
    # per-process id variation cannot reorder events.
    __hash__ = object.__hash__  # type: ignore[assignment]


#: ``checkpoint_provider(role, device_index)`` returns the live in-memory
#: metadata entries to checkpoint into a fresh zone during GC.
CheckpointProvider = Callable[[MetadataRole, int], List[MetadataEntry]]


class DeviceMetadataZones:
    """The metadata zones of one array device."""

    def __init__(
        self,
        sim: Simulator,
        device: BlockDevice,
        device_index: int,
        zone_indices: List[int],
        zone_size: int,
        zone_capacity: int,
        checkpoint_provider: CheckpointProvider,
    ):
        if len(zone_indices) < 3:
            raise MetadataError("need >= 3 metadata zones per device")
        self.sim = sim
        self.device = device
        self.device_index = device_index
        self.zone_size = zone_size
        self.zone_capacity = zone_capacity
        self.checkpoint_provider = checkpoint_provider
        self.role_zone: Dict[MetadataRole, int] = {
            MetadataRole.PARTIAL_PARITY: zone_indices[0],
            MetadataRole.GENERAL: zone_indices[1],
        }
        self.swap_zones: List[int] = list(zone_indices[2:])
        #: Zones (besides the role zone) holding the live checkpoint of a
        #: role whose last GC spilled past one zone.  They stay out of the
        #: swap pool — they hold the only durable copy of that metadata —
        #: until the next rotation re-checkpoints them.
        self.checkpoint_spill: Dict[MetadataRole, List[int]] = {
            role: [] for role in MetadataRole}
        #: Mirror of bytes appended per metadata zone index.
        self.used: Dict[int, int] = {index: 0 for index in zone_indices}
        self._locks: Dict[MetadataRole, Lock] = {
            role: Lock(sim) for role in MetadataRole}
        #: Interned per-role trace-site ids, keyed by role value (valid
        #: for one sink; the volume resets this when it attaches a
        #: tracer).
        self._tr_sites: Dict[str, int] = {}
        #: Lifetime counters for Table 1 / ablation reporting.
        self.appended_bytes = 0
        self.gc_cycles = 0

    # -- append ------------------------------------------------------------------

    def append(self, role: MetadataRole, entry: MetadataEntry,
               fua: bool = False):
        """Process-style append; returns the PBA where the entry landed.

        Rotates to a swap zone first when the entry does not fit.  The
        per-role lock covers only space reservation and rotation — the
        appends themselves run concurrently ("metadata is written using
        zone appends, ensuring high throughput even in the presence of
        many concurrent metadata log writes", §4.3).
        """
        encoded = entry.encode()
        if len(encoded) > self.zone_capacity:
            raise MetadataError(
                f"metadata entry of {len(encoded)} bytes exceeds the "
                f"metadata zone capacity {self.zone_capacity}")
        yield self._locks[role].request()
        try:
            if self.used[self.role_zone[role]] + len(encoded) > self.zone_capacity:
                yield from self._rotate(role)
            zone_index = self.role_zone[role]
            self.used[zone_index] += len(encoded)
            flags = BioFlags.FUA if fua else BioFlags.NONE
            # Submission (synchronous) reserves the placement; completion
            # is awaited outside the lock so appends pipeline.
            event = self.device.submit(
                Bio.zone_append(zone_index * self.zone_size, encoded, flags))
        finally:
            self._locks[role].release()
        bio = yield event
        self.appended_bytes += len(encoded)
        return bio.result

    def append_async(self, role: MetadataRole, entry: MetadataEntry,
                     fua: bool = False, batch: list = None) -> Event:
        """Callback-style :meth:`append`; succeeds with the landing PBA.

        Semantically identical to ``sim.process(mdz.append(...))`` but
        without a generator per log entry — the RAIZN write path appends
        metadata on every partial-stripe write, so the process machinery
        dominated wall time.  Each step is queued exactly where the
        process version's resumptions fell, keeping fixed-seed event
        ordering (and with it every RNG draw) byte-identical.

        When ``batch`` is given, the start hop is appended to it as a
        ``(fn, args)`` call instead of being scheduled — the caller owns
        one ``schedule_batch`` entry covering a whole stripe's appends.
        """
        done = self.sim.event()
        tracer = self.device.tracer
        if tracer is not None:
            # The md span covers lock wait, any log rotation, and the
            # device append; it parents under the logical bio whose
            # synchronous fan-out issued this append (if any).  The span
            # doubles as the completion callback (see repro.trace).
            sites = self._tr_sites
            rolename = role._value_  # str key: Enum.__hash__ is Python-level
            try:
                site = sites[rolename]
            except KeyError:
                site = sites[rolename] = tracer.site("md", role,
                                                     self.device.name)
            done.add_callback(tracer.begin_at(site))
        # Hop 1 stands in for the deferred process start.
        if batch is not None:
            batch.append((self._append_start, (role, entry, fua, done)))
        else:
            self.sim.schedule(0.0, self._append_start, role, entry, fua, done)
        return done

    def append_encoded_async(self, role: MetadataRole, encoded: bytes,
                             fua: bool = False, batch: list = None) -> Event:
        """:meth:`append_async` for a caller that already holds the encoded
        bytes (the write path's partial-parity entries are produced by
        :func:`repro.raizn.metadata.encode_partial_parity_bytes`).  The
        hop structure is identical — encoding an entry is pure
        computation, so moving it before hop 1 changes no event order."""
        sim = self.sim
        # ``sim.event()`` inlined: one call per metadata append.
        free = sim._event_free
        if free:
            done = free.pop()
            done.triggered = False
            done.ok = True
        else:
            done = Event(sim)
        tracer = self.device.tracer
        if tracer is not None:
            sites = self._tr_sites
            rolename = role._value_
            try:
                site = sites[rolename]
            except KeyError:
                site = sites[rolename] = tracer.site("md", role,
                                                     self.device.name)
            done.add_callback(tracer.begin_at(site))
        if batch is not None:
            batch.append((self._append_start_encoded,
                          (role, encoded, fua, done)))
        else:
            self.sim.schedule(0.0, self._append_start_encoded, role, encoded,
                              fua, done)
        return done

    def _append_start(self, role: MetadataRole, entry: MetadataEntry,
                      fua: bool, done: Event) -> None:
        try:
            encoded = entry.encode()
        except MetadataError as exc:
            done.fail(exc)
            return
        self._append_start_encoded(role, encoded, fua, done)

    def _append_start_encoded(self, role: MetadataRole, encoded: bytes,
                              fua: bool, done: Event) -> None:
        if len(encoded) > self.zone_capacity:
            done.fail(MetadataError(
                f"metadata entry of {len(encoded)} bytes exceeds the "
                f"metadata zone capacity {self.zone_capacity}"))
            return
        lock = self._locks[role]
        if lock.in_use < lock.capacity:
            # Uncontended: take the lock and queue the next step, matching
            # the process version's hop through its triggered-yield path.
            # (Running the locked step inline here reorders md submissions
            # relative to interleaved same-tick work and shifts the fixed
            # seed digests — measured, not hypothetical.)
            lock.in_use += 1
            self.sim._now_queue.append(
                (self._append_locked, (role, encoded, fua, done)))
        else:
            waiter = Event(self.sim)
            waiter.add_callback(
                lambda _ev: self._append_locked(role, encoded, fua, done))
            lock._waiters.append(waiter)

    def _append_locked(self, role: MetadataRole, encoded: bytes,
                       fua: bool, done: Event) -> None:
        lock = self._locks[role]
        nbytes = len(encoded)
        zone_index = self.role_zone[role]
        if self.used[zone_index] + nbytes > self.zone_capacity:
            # Rare slow path: zone rotation involves multi-step GC, so hand
            # off to generator code.  InlineProcess starts in this frame —
            # exactly where the process version would have kept running.
            InlineProcess(self.sim,
                          self._append_rotating(role, encoded, fua, done))
            return
        try:
            self.used[zone_index] += nbytes
            event = self.device.submit(
                Bio.fast_append(zone_index * self.zone_size, encoded,
                                _BIO_FUA if fua else 0))
        except BaseException as exc:  # noqa: BLE001 - mirror process failure
            lock.release()
            done.fail(exc)
            return
        lock.release()
        event.add_callback(
            lambda ev, n=nbytes, d=done: self._append_done(ev, n, d))

    def _append_rotating(self, role: MetadataRole, encoded: bytes,
                         fua: bool, done: Event):
        """Generator tail of :meth:`append_async` when GC must run first."""
        try:
            try:
                yield from self._rotate(role)
                zone_index = self.role_zone[role]
                self.used[zone_index] += len(encoded)
                flags = BioFlags.FUA if fua else BioFlags.NONE
                event = self.device.submit(Bio.zone_append(
                    zone_index * self.zone_size, encoded, flags))
            finally:
                self._locks[role].release()
            bio = yield event
        except BaseException as exc:  # noqa: BLE001 - deliver, don't unwind
            done.fail(exc)
            return
        self.appended_bytes += len(encoded)
        done.succeed(bio.result)

    def _append_done(self, event: Event, nbytes: int, done: Event) -> None:
        value = event.value
        if event.ok:
            # The submit event is exclusively ours and fully drained (the
            # succeed fast path cleared its callback slot) — return it to
            # the simulator's freelist instead of leaving it to the GC.
            self.sim.recycle(event)
            self.appended_bytes += nbytes
            done.succeed(value.result)
        else:
            done.fail(value)

    def remaining(self, role: MetadataRole) -> int:
        """Bytes left in the role's current zone."""
        return self.zone_capacity - self.used[self.role_zone[role]]

    # -- garbage collection (Figure 4) ----------------------------------------------

    def _rotate(self, role: MetadataRole):
        """Swap in a fresh zone, checkpoint live metadata, reset old zones.

        A checkpoint larger than one zone — e.g. after heavy read-repair
        relocated whole stripe units into the general log — spills into
        further swap zones.  The spilled zones are tracked in
        :attr:`checkpoint_spill` and reclaimed at the next rotation.
        """
        if not self.swap_zones:
            raise MetadataError(
                f"dev {self.device_index}: no swap zone available for "
                f"metadata GC of {role.value}")
        reclaim = [self.role_zone[role]] + self.checkpoint_spill[role]
        self.checkpoint_spill[role] = []
        # Redirect new entries first so logging continues uninterrupted.
        self.role_zone[role] = self.swap_zones.pop(0)
        # Checkpoint valid in-memory metadata into the new zone(s), flagged.
        for entry in self.checkpoint_provider(role, self.device_index):
            entry.checkpoint = True
            encoded = entry.encode()
            if self.used[self.role_zone[role]] + len(encoded) > \
                    self.zone_capacity:
                if not self.swap_zones:
                    raise MetadataError(
                        f"dev {self.device_index}: checkpoint of "
                        f"{role.value} does not fit in the available swap "
                        "zones; metadata zones are too small")
                self.checkpoint_spill[role].append(self.role_zone[role])
                self.role_zone[role] = self.swap_zones.pop(0)
            zone_index = self.role_zone[role]
            self.used[zone_index] += len(encoded)
            yield self.device.submit(
                Bio.zone_append(zone_index * self.zone_size, encoded))
        # Make the checkpoint durable before destroying the old logs: a
        # crash between the reset and an unflushed checkpoint would lose
        # metadata that existed nowhere else.
        yield self.device.submit(Bio.flush())
        # The old zones' logs are now redundant; reset them into swap zones.
        for old_zone in reclaim:
            yield self.device.submit(
                Bio.zone_reset(old_zone * self.zone_size))
            self.used[old_zone] = 0
            self.swap_zones.append(old_zone)
        self.gc_cycles += 1

    def force_gc(self, role: MetadataRole):
        """Trigger a rotation immediately (maintenance / tests)."""
        yield self._locks[role].request()
        try:
            yield from self._rotate(role)
        finally:
            self._locks[role].release()

    # -- recovery support ---------------------------------------------------------------

    def scan_zone(self, zone_index: int):
        """Process-style: parse every entry currently in one metadata zone."""
        info = self.device.zone_info(zone_index)  # type: ignore[attr-defined]
        written = info.write_pointer - info.start
        if written == 0:
            return []
        bio = yield self.device.submit(Bio.read(info.start, written))
        return MetadataEntry.scan(bio.result)

    def scan_all(self):
        """Process-style: entries from every metadata zone of this device.

        Recovery ingests logs from *all* metadata zones — including swap
        zones that may hold a partially-completed checkpoint — and relies
        on generation counters to discard stale duplicates (§4.3).
        """
        entries: List[MetadataEntry] = []
        for zone_index in self.all_zone_indices():
            entries.extend((yield from self.scan_zone(zone_index)))
        return entries

    def all_zone_indices(self) -> List[int]:
        ordered = [self.role_zone[MetadataRole.PARTIAL_PARITY],
                   self.role_zone[MetadataRole.GENERAL]]
        for zones in (self.checkpoint_spill[MetadataRole.PARTIAL_PARITY],
                      self.checkpoint_spill[MetadataRole.GENERAL],
                      self.swap_zones):
            ordered.extend(z for z in zones if z not in ordered)
        # ``used`` keys every metadata zone this device owns; the final
        # sweep covers mid-rotation limbo states.
        ordered.extend(z for z in self.used if z not in ordered)
        return ordered

    def reset_all(self):
        """Process-style: reset every metadata zone (maintenance, §4.3)."""
        for zone_index in self.all_zone_indices():
            yield self.device.submit(Bio.zone_reset(zone_index * self.zone_size))
            self.used[zone_index] = 0

    def recovery_compact(self):
        """Mount-time compaction: rewrite all live metadata, reclaim zones.

        A crash during metadata GC can leave every metadata zone non-empty
        (the old zone is only reset after the checkpoint completes), so the
        normal swap-rotation cannot run.  Recovery instead checkpoints all
        live in-memory metadata — both roles — into the emptiest zone,
        flushes it durable, and only then resets the remaining zones.  A
        crash at any point leaves either the old logs or a complete
        flushed checkpoint on media.
        """
        ordered = self.all_zone_indices()
        # Fill the emptiest zones first (stable sort: ties keep their
        # role/swap ordering, so a single-zone checkpoint lands exactly
        # where it always has), spilling into the next-emptiest when
        # needed, but keep at least two zones reclaimable: one for the
        # partial-parity role and one swap zone.
        by_used = sorted(ordered, key=lambda z: self.used[z])
        limit = len(ordered) - 2
        targets: List[int] = [by_used[0]]
        for role in (MetadataRole.GENERAL, MetadataRole.PARTIAL_PARITY):
            for entry in self.checkpoint_provider(role, self.device_index):
                entry.checkpoint = True
                encoded = entry.encode()
                if self.used[targets[-1]] + len(encoded) > \
                        self.zone_capacity:
                    if len(targets) >= limit:
                        raise MetadataError(
                            f"dev {self.device_index}: recovery checkpoint "
                            "does not fit in the reclaimable metadata zones")
                    targets.append(by_used[len(targets)])
                self.used[targets[-1]] += len(encoded)
                yield self.device.submit(
                    Bio.zone_append(targets[-1] * self.zone_size, encoded))
        yield self.device.submit(Bio.flush())
        others = [z for z in ordered if z not in targets]
        for zone_index in others:
            yield self.device.submit(
                Bio.zone_reset(zone_index * self.zone_size))
            self.used[zone_index] = 0
        self.role_zone[MetadataRole.GENERAL] = targets[-1]
        self.role_zone[MetadataRole.PARTIAL_PARITY] = others[0]
        self.checkpoint_spill = {role: [] for role in MetadataRole}
        self.checkpoint_spill[MetadataRole.GENERAL] = targets[:-1]
        self.swap_zones = others[1:]
        self.gc_cycles += 1
