"""RAIZN: the paper's contribution — a RAID-5-style logical volume manager
exposing a single ZNS device over an array of ZNS SSDs.

The gray-failure defense exports: :class:`DeviceHealth` is one device's
latency health score (EWMA distributions + slow-outlier scoring, driving
hedged reads, demotion, and slow eviction — all gated by
``RaiznConfig.failslow_protection``); :class:`HealthStats` the volume's
cumulative error/healing/hedging counters; and
:func:`run_health_maintenance` the sweep feeding slow-evicted devices
into the standard rebuild flow.
"""

from .address import AddressMapper, StripeLocation
from .config import RaiznConfig
from .maintenance import (
    HealthSweepReport,
    ScrubReport,
    needs_generation_maintenance,
    rewrite_physical_zone,
    run_generation_maintenance,
    run_health_maintenance,
    run_scrub,
    scrub_process,
    slow_evicted_devices,
    zones_needing_rewrite,
)
from .metadata import MetadataEntry, MetadataType, Superblock
from .parity import reconstruct_unit, stripe_parity, xor_buffers, xor_into
from .rebuild import RebuildReport, rebuild, rebuild_process
from .recovery import mount, mount_process
from .relocation import RelocationStore
from .stripebuf import StripeBuffer, StripeBufferPool
from .volume import DeviceHealth, HealthStats, RaiznVolume

__all__ = [
    "AddressMapper",
    "StripeLocation",
    "RaiznConfig",
    "MetadataEntry",
    "MetadataType",
    "Superblock",
    "reconstruct_unit",
    "stripe_parity",
    "xor_buffers",
    "xor_into",
    "RebuildReport",
    "rebuild",
    "rebuild_process",
    "mount",
    "mount_process",
    "RelocationStore",
    "StripeBuffer",
    "StripeBufferPool",
    "DeviceHealth",
    "HealthStats",
    "RaiznVolume",
    "needs_generation_maintenance",
    "rewrite_physical_zone",
    "run_generation_maintenance",
    "zones_needing_rewrite",
    "ScrubReport",
    "run_scrub",
    "scrub_process",
    "HealthSweepReport",
    "run_health_maintenance",
    "slow_evicted_devices",
]
