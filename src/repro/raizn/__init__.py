"""RAIZN: the paper's contribution — a RAID-5-style logical volume manager
exposing a single ZNS device over an array of ZNS SSDs."""

from .address import AddressMapper, StripeLocation
from .config import RaiznConfig
from .maintenance import (
    ScrubReport,
    needs_generation_maintenance,
    rewrite_physical_zone,
    run_generation_maintenance,
    run_scrub,
    scrub_process,
    zones_needing_rewrite,
)
from .metadata import MetadataEntry, MetadataType, Superblock
from .parity import reconstruct_unit, stripe_parity, xor_buffers, xor_into
from .rebuild import RebuildReport, rebuild, rebuild_process
from .recovery import mount, mount_process
from .relocation import RelocationStore
from .stripebuf import StripeBuffer, StripeBufferPool
from .volume import RaiznVolume

__all__ = [
    "AddressMapper",
    "StripeLocation",
    "RaiznConfig",
    "MetadataEntry",
    "MetadataType",
    "Superblock",
    "reconstruct_unit",
    "stripe_parity",
    "xor_buffers",
    "xor_into",
    "RebuildReport",
    "rebuild",
    "rebuild_process",
    "mount",
    "mount_process",
    "RelocationStore",
    "StripeBuffer",
    "StripeBufferPool",
    "RaiznVolume",
    "needs_generation_maintenance",
    "rewrite_physical_zone",
    "run_generation_maintenance",
    "zones_needing_rewrite",
    "ScrubReport",
    "run_scrub",
    "scrub_process",
]
