"""Device replacement and rebuild (paper §4.2, Figure 12).

RAIZN rebuilds a replaced device *zone by zone*, active zones first, and
only up to each logical zone's write pointer — the ZNS interface makes
"which addresses hold valid data" a free query, so empty zones and the
unwritten tails of open zones are skipped entirely.  mdraid, by contrast,
resyncs the full device address space regardless of fill (the Figure 12
contrast).

During rebuild, reads and writes touching not-yet-rebuilt zones are served
in degraded mode; each zone is reconstructed from the surviving devices
via the volume's (relocation- and parity-aware) logical read path, so
relocated stripe units are healed onto the fresh device at their correct
physical addresses.
"""

from __future__ import annotations

import dataclasses
from typing import List

from ..block.bio import Bio
from ..errors import RaiznError
from ..sim import Simulator
from ..zns.device import ZNSDevice
from ..zns.spec import ZoneState
from .mdzone import DeviceMetadataZones, MetadataRole
from .metadata import MetadataType, Superblock
from .volume import SUPERBLOCK_VERSION, RaiznVolume, RebuildState


@dataclasses.dataclass
class RebuildReport:
    """Outcome of one rebuild, for TTR accounting."""

    device_index: int
    zones_rebuilt: int
    bytes_written: int
    started_at: float
    finished_at: float

    @property
    def duration(self) -> float:
        return self.finished_at - self.started_at


def rebuild(sim: Simulator, volume: RaiznVolume, index: int,
            new_device: ZNSDevice) -> RebuildReport:
    """Synchronously replace device ``index``; drains the event loop."""
    return sim.run_process(rebuild_process(sim, volume, index, new_device))


def rebuild_process(sim: Simulator, volume: RaiznVolume, index: int,
                    new_device: ZNSDevice):
    """Process-style rebuild; yields while reconstruction IO is in flight."""
    if not volume.failed[index]:
        raise RaiznError(f"device {index} has not failed; nothing to rebuild")
    template = next(d for d in volume.devices if d is not None)
    if (new_device.num_zones != template.num_zones
            or new_device.zone_capacity != template.zone_capacity):
        raise RaiznError("replacement device geometry mismatch")
    started_at = sim.now

    state = RebuildState(index)
    volume.rebuild_state = state
    volume.devices[index] = new_device
    md_indices = list(range(volume.num_data_zones, template.num_zones))
    volume.mdzones[index] = DeviceMetadataZones(
        sim, new_device, index, md_indices, volume.phys_zone_size,
        volume.phys_zone_capacity, volume._checkpoint)
    volume.failed[index] = False
    # The replacement rejoining (and the per-zone rebuilt_zones gating
    # that _device_available now applies) is a membership transition.
    volume.invalidate_write_plans()

    for zone in _rebuild_order(volume):
        yield from _rebuild_zone(sim, volume, state, zone)
        state.rebuilt_zones.add(zone)
    # Zones that were empty need no data but must be marked serviceable.
    for zone in range(volume.num_data_zones):
        state.rebuilt_zones.add(zone)

    yield from _rebuild_metadata(sim, volume, index)
    # The reconstructed data must be durable before the rebuild counts as
    # complete: acknowledged-durable (FUA/flushed) data now lives on this
    # device and must survive an immediate power cut.
    yield new_device.submit(Bio.flush())
    state.done = True
    volume.rebuild_state = None
    # Rebuild completion lifts the rebuilt_zones gating: a fresh epoch.
    volume.invalidate_write_plans()
    return RebuildReport(device_index=index,
                         zones_rebuilt=len(state.rebuilt_zones),
                         bytes_written=state.bytes_rebuilt,
                         started_at=started_at, finished_at=sim.now)


def _rebuild_order(volume: RaiznVolume) -> List[int]:
    """Active (open or closed) zones first, then full zones; empty skipped."""
    active, full = [], []
    for desc in volume.zone_descs:
        if desc.state.is_active:
            active.append(desc.zone)
        elif desc.state is ZoneState.FULL and desc.written_bytes:
            full.append(desc.zone)
    return active + full


def _device_target_extent(volume: RaiznVolume, index: int, zone: int,
                          logical_wp: int) -> int:
    """Bytes device ``index`` should hold in its physical zone ``zone``."""
    desc = volume.zone_descs[zone]
    su = volume.config.stripe_unit_bytes
    in_zone = logical_wp - desc.start_lba
    full_stripes = in_zone // desc.stripe_width
    tail = in_zone % desc.stripe_width
    extent = full_stripes * su
    if tail:
        layout = volume.mapper.stripe_layout(zone, full_stripes)
        if index in layout.data_devices:
            i = layout.data_devices.index(index)
            extent += max(0, min(su, tail - i * su))
        # Parity of an incomplete stripe is not written to the data zone.
    return extent


def _rebuild_zone(sim: Simulator, volume: RaiznVolume, state: RebuildState,
                  zone: int):
    """Reconstruct one physical zone onto the replacement device.

    Loops until the logical write pointer is stable across a pass, so
    writes arriving during the rebuild (served degraded) are caught up.
    """
    index = state.device_index
    desc = volume.zone_descs[zone]
    device = volume.devices[index]
    su = volume.config.stripe_unit_bytes
    zone_pba = zone * volume.phys_zone_size
    position = 0  # bytes rebuilt within this physical zone
    while True:
        snapshot_wp = desc.write_pointer
        target = _device_target_extent(volume, index, zone, snapshot_wp)
        if target <= position:
            break
        while position < target:
            stripe = position // su
            layout = volume.mapper.stripe_layout(zone, stripe)
            stripe_lba = desc.start_lba + stripe * desc.stripe_width
            read_len = min(desc.stripe_width, snapshot_wp - stripe_lba)
            bio = yield volume.submit(Bio.read(stripe_lba, read_len))
            stripe_data = bio.result
            if index == layout.parity_device:
                chunk = _parity_of(stripe_data, volume.config.num_data, su)
            else:
                i = layout.data_devices.index(index)
                chunk = stripe_data[i * su:min((i + 1) * su, read_len)]
            take = min(len(chunk), target - position)
            chunk = chunk[:take]
            if chunk:
                yield device.submit(Bio.write(zone_pba + position, chunk))
                state.bytes_rebuilt += len(chunk)
            position += take
        if desc.write_pointer == snapshot_wp:
            break
    pdesc = volume.phys[index][zone]
    pdesc.write_pointer = zone_pba + position
    if desc.state is ZoneState.FULL:
        yield device.submit(Bio.zone_finish(zone_pba))
        pdesc.state = ZoneState.FULL
    elif position:
        pdesc.state = ZoneState.CLOSED
    # Relocations that lived on the dead device are healed: the rebuilt
    # data sits at its correct PBA on the fresh device.
    _heal_relocations(volume, index, zone)


def _parity_of(stripe_data: bytes, num_data: int, su: int) -> bytes:
    from .parity import stripe_parity
    units = [stripe_data[i * su:(i + 1) * su] for i in range(num_data)]
    return stripe_parity(units, su)


def _heal_relocations(volume: RaiznVolume, index: int, zone: int) -> None:
    desc = volume.zone_descs[zone]
    # Parity that lived in the metadata zone is now written at its proper
    # PBA on the fresh device.
    for key in [k for k in volume.relocated_parity if k[0] == zone
                and volume.mapper.stripe_layout(zone, k[1]).parity_device
                == index]:
        del volume.relocated_parity[key]
    doomed = [unit.su_lba for unit in volume.relocations.units_on_device(index)
              if volume.mapper.zone_of(unit.su_lba) == zone]
    if not doomed:
        return
    for su_lba in doomed:
        volume.relocations._units.pop(su_lba, None)
    volume.relocations.rebuild_counters(
        lambda unit: volume.mapper.zone_of(unit.su_lba))
    desc.has_relocations = any(
        volume.mapper.zone_of(unit.su_lba) == zone
        for unit in volume.relocations.units())


def _rebuild_metadata(sim: Simulator, volume: RaiznVolume, index: int):
    """Re-persist replicated metadata to the fresh device (§4.3).

    Non-replicated metadata that died with the old device (its partial
    parity and relocation logs) is re-created from the in-memory state.
    """
    superblock = Superblock(
        version=SUPERBLOCK_VERSION, num_data=volume.config.num_data,
        num_parity=volume.config.num_parity,
        stripe_unit_bytes=volume.config.stripe_unit_bytes,
        num_zones=volume.num_data_zones + volume.config.num_metadata_zones,
        zone_capacity=volume.phys_zone_capacity,
        num_metadata_zones=volume.config.num_metadata_zones,
        device_index=index, array_uuid=volume.array_uuid)
    mdz = volume.mdzones[index]
    yield from mdz.append(MetadataRole.GENERAL, superblock.to_entry(),
                          fua=True)
    for entry in volume._checkpoint(MetadataRole.GENERAL, index):
        if entry.mdtype is not MetadataType.SUPERBLOCK:
            yield from mdz.append(MetadataRole.GENERAL, entry)
    for entry in volume._checkpoint(MetadataRole.PARTIAL_PARITY, index):
        yield from mdz.append(MetadataRole.PARTIAL_PARITY, entry)
