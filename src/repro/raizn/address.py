"""Logical↔physical address translation (paper §4.1).

Each LBA is statically mapped to a device and PBA by arithmetic alone, so
reads need no lookups.  Data is striped RAID-5 style with the parity
device rotating every stripe; the rotation also folds in the logical zone
index so that the device holding a zone's *first* stripe unit differs for
successive zones — the property §5.2 relies on to spread zone-reset-log
write amplification uniformly.

Terminology (matching the paper):

* LBA — byte offset in the RAIZN logical volume address space.
* PBA — byte offset in one physical device's address space.
* stripe unit (SU) — the contiguous chunk each device contributes to a
  stripe (64 KiB by default).
* logical zone — one physical zone per device; user capacity D zones.
"""

from __future__ import annotations

import dataclasses
from typing import List, Tuple

from ..errors import InvalidAddressError
from .config import RaiznConfig


@dataclasses.dataclass(frozen=True)
class StripeLocation:
    """Where one logical stripe lives across the array.

    The layout depends on ``(zone + stripe) mod num_devices`` only, so the
    mapper shares one instance per rotation across all zones and stripes.
    """

    parity_device: int   # device holding this stripe's parity SU
    data_devices: Tuple[int, ...]  # device of data SU 0..D-1, in order


class AddressMapper:
    """Pure-arithmetic translation between LBAs and device PBAs."""

    def __init__(self, config: RaiznConfig, physical_zone_capacity: int,
                 num_data_zones: int):
        self.config = config
        self.phys_zone_capacity = physical_zone_capacity
        self.phys_zone_size = physical_zone_capacity  # simulator: size == cap
        self.num_data_zones = num_data_zones
        self.su = config.stripe_unit_bytes
        self.stripe_width = config.stripe_width_bytes
        self.zone_capacity = config.logical_zone_capacity(physical_zone_capacity)
        self.stripes_per_zone = config.stripes_per_zone(physical_zone_capacity)
        # One StripeLocation per parity rotation; stripe_layout() is on the
        # per-stripe-unit write path, so it must not allocate.
        n = config.num_devices
        self._layouts = tuple(
            StripeLocation(
                parity_device=(n - 1 - rotation) % n,
                data_devices=tuple(((n - 1 - rotation) % n + 1 + i) % n
                                   for i in range(config.num_data)))
            for rotation in range(n))

    # -- logical geometry ----------------------------------------------------

    @property
    def logical_capacity(self) -> int:
        """Total user-visible bytes."""
        return self.zone_capacity * self.num_data_zones

    def zone_of(self, lba: int) -> int:
        """Logical zone index containing ``lba``."""
        if not 0 <= lba < self.logical_capacity:
            raise InvalidAddressError(f"LBA {lba:#x} outside volume")
        return lba // self.zone_capacity

    def zone_start(self, zone: int) -> int:
        """First LBA of logical zone ``zone``."""
        return zone * self.zone_capacity

    # -- stripe layout ---------------------------------------------------------

    @property
    def num_rotations(self) -> int:
        """Period of the parity rotation: layouts repeat every N stripes.

        Two stripes with the same ``(stripe + zone) % num_rotations``
        phase share their device assignment — the invariant behind the
        write path's phase-keyed plan cache.
        """
        return len(self._layouts)

    def stripe_layout(self, zone: int, stripe: int) -> StripeLocation:
        """Device assignment for one stripe (left-symmetric rotation)."""
        return self._layouts[(stripe + zone) % len(self._layouts)]

    def stripe_of(self, lba: int) -> StripeLocation:
        """The stripe containing ``lba``."""
        zone = self.zone_of(lba)
        offset = lba - self.zone_start(zone)
        return self.stripe_layout(zone, offset // self.stripe_width)

    # -- LBA -> device/PBA ----------------------------------------------------------

    def lba_to_pba(self, lba: int) -> Tuple[int, int]:
        """Map one LBA to ``(device_index, pba)``."""
        zone = self.zone_of(lba)
        offset = lba - self.zone_start(zone)
        stripe = offset // self.stripe_width
        in_stripe = offset % self.stripe_width
        su_index = in_stripe // self.su
        in_su = in_stripe % self.su
        layout = self.stripe_layout(zone, stripe)
        device = layout.data_devices[su_index]
        pba = zone * self.phys_zone_size + stripe * self.su + in_su
        return device, pba

    def parity_pba(self, zone: int, stripe: int) -> Tuple[int, int]:
        """``(device_index, pba)`` of the parity SU of a stripe."""
        layout = self.stripe_layout(zone, stripe)
        pba = zone * self.phys_zone_size + stripe * self.su
        return layout.parity_device, pba

    def su_lba(self, zone: int, stripe: int, su_index: int) -> int:
        """First LBA of data stripe unit ``su_index`` in a stripe."""
        return (self.zone_start(zone) + stripe * self.stripe_width
                + su_index * self.su)

    def split_extent(self, lba: int, length: int) -> List[Tuple[int, int, int]]:
        """Split ``[lba, lba+length)`` into per-device contiguous pieces.

        Returns ``[(device, pba, length), ...]`` in LBA order; each piece
        stays within one stripe unit, the granularity at which contiguity
        on a single device is guaranteed.
        """
        if length <= 0:
            raise InvalidAddressError(f"non-positive extent length {length}")
        pieces = []
        position = lba
        remaining = length
        while remaining > 0:
            device, pba = self.lba_to_pba(position)
            in_su = position % self.su
            take = min(remaining, self.su - in_su)
            pieces.append((device, pba, take))
            position += take
            remaining -= take
        return pieces

    # -- device PBA -> LBA (used by rebuild and recovery) ---------------------------

    def pba_to_lba(self, device: int, pba: int) -> Tuple[int, bool]:
        """Map a device PBA back to ``(lba, is_parity)``.

        For parity stripe units, the returned LBA is the first LBA of the
        owning stripe and ``is_parity`` is True.
        """
        zone = pba // self.phys_zone_size
        if zone >= self.num_data_zones:
            raise InvalidAddressError(
                f"PBA {pba:#x} is in a metadata zone, not the data area")
        in_zone = pba - zone * self.phys_zone_size
        stripe = in_zone // self.su
        in_su = in_zone % self.su
        layout = self.stripe_layout(zone, stripe)
        stripe_lba = self.zone_start(zone) + stripe * self.stripe_width
        if device == layout.parity_device:
            return stripe_lba, True
        su_index = layout.data_devices.index(device)
        return stripe_lba + su_index * self.su + in_su, False
