"""RAIZN array configuration (paper §4).

An array is ``D`` data stripe units plus ``P`` parity stripe units per
stripe, over ``D + P`` identical ZNS devices.  Each device reserves
``num_metadata_zones`` physical zones at the top of its address space:
one for partial parity, one for general metadata, and at least one swap
zone for metadata garbage collection (§4.3, minimum of 3).
"""

from __future__ import annotations

import dataclasses

from ..errors import RaiznError
from ..units import KiB, SECTOR_SIZE


@dataclasses.dataclass(frozen=True)
class RaiznConfig:
    """Static parameters of a RAIZN array."""

    #: Data stripe units per stripe (D).
    num_data: int = 4
    #: Parity stripe units per stripe (P); this implementation is RAID-5
    #: style, so P must be 1.
    num_parity: int = 1
    #: Stripe unit ("chunk") size in bytes; the paper settles on 64 KiB.
    stripe_unit_bytes: int = 64 * KiB
    #: Metadata zones reserved per device (>= 3: partial parity, general,
    #: and at least one swap zone, §4.3).
    num_metadata_zones: int = 3
    #: Pre-allocated stripe buffers per open logical zone (§5.1; 8 in the
    #: paper's experiments).
    stripe_buffers_per_zone: int = 8
    #: Relocated-stripe-unit count per physical zone beyond which the zone
    #: is rewritten during initialization (§5.2, "user-modifiable
    #: threshold").
    relocation_rebuild_threshold: int = 16
    #: Retries of a device command that failed with TransientCommandError
    #: before the error escalates (the datapath counts the initial attempt
    #: separately, so ``2`` means up to 3 submissions total).
    max_transient_retries: int = 2
    #: Simulated delay between transient-error retries, in seconds.
    transient_backoff_s: float = 100e-6
    #: Media/command errors charged against one device before the volume
    #: evicts it into degraded mode (error-threshold eviction).
    device_error_threshold: int = 25
    #: Heal latent media errors in the read path: reconstruct the stripe
    #: unit from redundancy and relocate it (§5.2 machinery) so the next
    #: read hits clean media.  Disabled only by harnesses measuring the
    #: detection power of their integrity oracle.
    read_repair: bool = True
    #: Gray-failure (fail-slow) defense: per-device completion-latency
    #: health scoring, hedged reconstruction reads for stragglers, and
    #: demotion/eviction escalation.  Off by default — hedging perturbs
    #: IO timing and stats, so only fail-slow campaigns and tail-latency
    #: benchmarks opt in.
    failslow_protection: bool = False
    #: EWMA weight for per-device completion-latency tracking (mean and
    #: mean absolute deviation).
    latency_ewma_alpha: float = 0.125
    #: Latency samples a device must accumulate before its distribution
    #: is trusted to derive hedge deadlines and outlier thresholds.
    hedge_min_samples: int = 32
    #: A completion is *slow* (and a pending read hedge-eligible) past
    #: ``max(hedge_floor_s, ewma * hedge_latency_multiplier,
    #: ewma + hedge_slack_deviations * deviation_ewma)``.
    hedge_latency_multiplier: float = 1.5
    hedge_slack_deviations: float = 6.0
    hedge_floor_s: float = 200e-6
    #: EWMA weight of the slow-outlier indicator that forms the health
    #: score (score = 1 - outlier EWMA).
    slow_score_alpha: float = 0.1
    #: Outlier-EWMA above which a device is demoted to "avoid for
    #: reads": reads are served by reconstruction instead (writes still
    #: land on the device and keep feeding the score).
    slow_demote_score: float = 0.5
    #: Outlier-EWMA above which a demoted device is evicted into
    #: degraded mode via the standard eviction flow (only while parity
    #: tolerance remains).
    slow_evict_score: float = 0.85
    #: Latency samples observed *after* demotion before slow-eviction
    #: may fire — a demoted device gets a grace window to recover.
    slow_evict_min_samples: int = 25
    #: Per-bio span tracing (see :mod:`repro.trace`): the volume creates
    #: a :class:`~repro.trace.Tracer` shared with every array device,
    #: recording spans at the volume boundary, stripe assembly, parity
    #: compute, metadata appends, and each device command.  Off by
    #: default; the disabled datapath pays one attribute test per site.
    tracing: bool = False
    #: Poison recycled stripe-buffer arrays with 0xA5 on release (audit
    #: mode for the pooled no-re-zeroing contract; see
    #: :mod:`repro.raizn.stripebuf`).  Any accessor reading past a
    #: buffer's ``fill_end`` then sees loud garbage instead of
    #: coincidental zeroes.  Process-wide once enabled; also switched on
    #: by the ``REPRO_POISON_POOLS`` environment variable.
    poison_pools: bool = False

    def __post_init__(self) -> None:
        if self.num_parity != 1:
            raise RaiznError("only P=1 (RAID-5 style) parity is supported")
        if self.num_data < 2:
            raise RaiznError("need at least 2 data stripe units per stripe")
        if self.stripe_unit_bytes % SECTOR_SIZE:
            raise RaiznError("stripe unit must be a multiple of the sector size")
        if self.num_metadata_zones < 3:
            raise RaiznError(
                "need >= 3 metadata zones per device "
                "(partial parity + general + swap)")
        if self.stripe_buffers_per_zone < 1:
            raise RaiznError("need at least one stripe buffer per open zone")
        if self.max_transient_retries < 0:
            raise RaiznError("max_transient_retries must be >= 0")
        if self.transient_backoff_s < 0:
            raise RaiznError("transient_backoff_s must be >= 0")
        if self.device_error_threshold < 1:
            raise RaiznError("device_error_threshold must be >= 1")

    @property
    def num_devices(self) -> int:
        """Total array width, D + P."""
        return self.num_data + self.num_parity

    @property
    def stripe_width_bytes(self) -> int:
        """User data bytes per stripe (parity excluded)."""
        return self.num_data * self.stripe_unit_bytes

    def logical_zone_capacity(self, physical_zone_capacity: int) -> int:
        """User-visible capacity of one logical zone (§4.1: D physical zones)."""
        if physical_zone_capacity % self.stripe_unit_bytes:
            raise RaiznError(
                "physical zone capacity must be a multiple of the stripe unit")
        return self.num_data * physical_zone_capacity

    def stripes_per_zone(self, physical_zone_capacity: int) -> int:
        """Number of stripes that fit in one logical zone."""
        return physical_zone_capacity // self.stripe_unit_bytes
