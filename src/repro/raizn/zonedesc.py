"""In-memory logical and physical zone descriptors (Table 1).

The volume keeps a descriptor per logical zone (state, write pointer,
persistence bitmap, stripe buffer pool, relocation flag) and mirrors each
physical zone's write pointer so sub-IOs can be ordered and conflicting
writes detected without querying the devices.
"""

from __future__ import annotations

from typing import List, Optional

from ..zns.spec import ZoneState
from .stripebuf import StripeBufferPool


class PersistenceBitmap:
    """One bit per stripe unit: has this SU been flushed to media? (§5.3)

    ``frontier`` is the paper's optimization: all SUs below it are known
    persisted, so FUA handling only inspects bits from the stripe
    immediately preceding the write.
    """

    def __init__(self, num_su: int):
        self.bits = [False] * num_su
        self.frontier = 0  # SU index below which everything is persisted

    def mark_persisted(self, su_index: int) -> None:
        """Mark one SU persisted and advance the frontier if possible."""
        if su_index >= len(self.bits):
            return
        self.bits[su_index] = True
        while self.frontier < len(self.bits) and self.bits[self.frontier]:
            self.frontier += 1

    def mark_up_to(self, su_end: int) -> None:
        """Mark SUs [0, su_end) persisted."""
        bits = self.bits
        n = len(bits)
        if su_end > n:
            su_end = n
        frontier = self.frontier
        if su_end <= frontier:
            # Steady-state FUA traffic: the frontier already covers the
            # write; nothing to mark and nothing to rescan.
            return
        for index in range(frontier, su_end):
            bits[index] = True
        while frontier < n and bits[frontier]:
            frontier += 1
        self.frontier = frontier

    def is_persisted(self, su_index: int) -> bool:
        return su_index < self.frontier or self.bits[su_index]

    def unpersisted_in(self, su_start: int, su_end: int) -> List[int]:
        """SU indices in [su_start, su_end) that are not persisted."""
        lo = self.frontier
        if su_start > lo:
            lo = su_start
        if lo >= su_end:
            return []
        bits = self.bits
        return [i for i in range(lo, su_end) if not bits[i]]

    def reset(self) -> None:
        self.bits = [False] * len(self.bits)
        self.frontier = 0


class LogicalZoneDesc:
    """Mutable state of one logical zone."""

    def __init__(self, zone: int, start_lba: int, capacity: int,
                 num_data: int, su: int, stripe_buffers: int):
        self.zone = zone
        self.start_lba = start_lba
        self.capacity = capacity
        self.num_data = num_data
        self.su = su
        self.state = ZoneState.EMPTY
        #: Next writable LBA.
        self.write_pointer = start_lba
        #: Simulated time of the last write (LRU for logical auto-close).
        self.last_write_time = 0.0
        #: Last written LBA at the time a reset request was received (§4.3).
        self.reset_pointer: Optional[int] = None
        #: True while a logical zone reset is blocking IO to this zone.
        self.reset_in_progress = False
        #: True when at least one stripe unit of this zone is relocated,
        #: enabling the relocation-map lookup on reads (§5.2).
        self.has_relocations = False
        num_su = (capacity // su)
        self.persistence = PersistenceBitmap(num_su)
        self.buffers = StripeBufferPool(zone, num_data, su, stripe_buffers)

    @property
    def writable_end(self) -> int:
        return self.start_lba + self.capacity

    @property
    def written_bytes(self) -> int:
        return self.write_pointer - self.start_lba

    @property
    def stripe_width(self) -> int:
        return self.num_data * self.su

    def su_index_of(self, lba: int) -> int:
        """Persistence-bitmap index of the SU containing ``lba``."""
        return (lba - self.start_lba) // self.su

    def reset(self) -> None:
        """Return the descriptor to the EMPTY state."""
        self.state = ZoneState.EMPTY
        self.write_pointer = self.start_lba
        self.reset_pointer = None
        self.reset_in_progress = False
        self.has_relocations = False
        self.persistence.reset()
        self.buffers.clear()


class PhysicalZoneDesc:
    """The volume's mirror of one physical zone on one device."""

    __slots__ = ("device", "zone", "write_pointer", "state")

    def __init__(self, device: int, zone: int, start: int,
                 state: ZoneState = ZoneState.EMPTY):
        self.device = device
        self.zone = zone
        self.write_pointer = start
        self.state = state
