"""XOR parity arithmetic over real byte buffers.

All parity in RAIZN is single-parity XOR (RAID-5 style).  numpy is used so
the 64 KiB stripe-unit XORs that dominate the write path stay cheap in the
simulator.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

import numpy as np


def xor_into(accumulator: bytearray, data: bytes, offset: int = 0) -> None:
    """``accumulator[offset:offset+len(data)] ^= data`` in place."""
    end = offset + len(data)
    if end > len(accumulator):
        raise ValueError(
            f"xor range [{offset}, {end}) exceeds buffer of {len(accumulator)}")
    acc_view = np.frombuffer(accumulator, dtype=np.uint8, count=len(data),
                             offset=offset)
    src = np.frombuffer(data, dtype=np.uint8)
    np.bitwise_xor(acc_view, src, out=acc_view)


def xor_buffers(buffers: Sequence[bytes]) -> bytes:
    """XOR of equal-length buffers; with one buffer, a copy of it."""
    if not buffers:
        raise ValueError("xor_buffers requires at least one buffer")
    length = len(buffers[0])
    for buf in buffers:
        if len(buf) != length:
            raise ValueError("xor_buffers requires equal-length buffers")
    if len(buffers) == 1:
        # bytes(b) returns b itself for a bytes instance; force the
        # documented copy so callers may mutate their input afterwards.
        return bytes(memoryview(buffers[0]))
    # One vectorized reduction over a (n, length) view instead of n-1
    # pairwise passes: a single C loop touches every source byte once.
    stack = np.empty((len(buffers), length), dtype=np.uint8)
    for i, buf in enumerate(buffers):
        stack[i] = np.frombuffer(buf, dtype=np.uint8)
    return np.bitwise_xor.reduce(stack, axis=0).tobytes()


def stripe_parity(data_units: Iterable[bytes], unit_size: int) -> bytes:
    """Full parity stripe unit for a stripe's data units.

    Units shorter than ``unit_size`` are zero-padded — the rule §5.1 uses
    when computing parity for stripes whose tail is unwritten ("data after
    this address is treated as zeroes").
    """
    units = list(data_units)
    for unit in units:
        if len(unit) > unit_size:
            raise ValueError("data unit longer than the stripe unit size")
    # Zero-pad into one (n, unit_size) matrix and reduce in a single
    # vectorized pass; rows default to zeroes, which IS the padding rule.
    stack = np.zeros((max(len(units), 1), unit_size), dtype=np.uint8)
    for i, unit in enumerate(units):
        if unit:
            stack[i, :len(unit)] = np.frombuffer(unit, dtype=np.uint8)
    return np.bitwise_xor.reduce(stack, axis=0).tobytes()


def reconstruct_unit(surviving_units: Sequence[bytes], parity: bytes,
                     unit_size: Optional[int] = None) -> bytes:
    """Recover a missing stripe unit from the survivors plus parity."""
    unit_size = unit_size if unit_size is not None else len(parity)
    out = bytearray(unit_size)
    xor_into(out, parity[:unit_size])
    for unit in surviving_units:
        if len(unit) > unit_size:
            raise ValueError("surviving unit longer than the stripe unit size")
        if unit:
            xor_into(out, unit)
    return bytes(out)
