"""Stripe buffers: in-memory caches of partially written stripes (§5.1).

A stripe buffer lets RAIZN recompute parity for a growing stripe without
reading the devices.  The ZNS open-zone limit bounds the number of
incomplete stripes, so buffers are pre-allocated per open logical zone
(8 in the paper's experiments) and write processing blocks when all are
occupied.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..errors import RaiznError
from .parity import xor_into

#: Recycled stripe-width backing arrays, keyed by width.  Zeroing a fresh
#: multi-hundred-KiB bytearray per stripe dominated buffer cost, so arrays
#: are reused WITHOUT re-zeroing: every read of a buffer (``full_parity``,
#: ``data_unit``, and the volume's tail-stripe read paths, which only
#: serve written LBAs) is bounded by ``fill_end``, so stale bytes past the
#: fill can never be observed.  Process-wide on purpose — arrays carry no
#: identity beyond their size.
_free_arrays: Dict[int, List[bytearray]] = {}
_FREE_ARRAYS_MAX = 64

#: Pool poisoning (the audit mode for the no-re-zeroing contract above):
#: when enabled, every array is filled with 0xA5 as it returns to the
#: pool, so any accessor that reads past ``fill_end`` of a recycled
#: buffer produces loud garbage instead of silently-zero bytes that
#: happen to match the §5.1 zero-padding rule.  Enabled process-wide via
#: the ``REPRO_POISON_POOLS`` environment variable or per-volume through
#: ``RaiznConfig.poison_pools``.
_POISON_BYTE = 0xA5
_poison = os.environ.get("REPRO_POISON_POOLS", "") not in ("", "0")


def enable_pool_poisoning(enabled: bool = True) -> None:
    """Turn 0xA5 poisoning of recycled arrays on (or off) process-wide."""
    global _poison
    _poison = enabled


def pool_poisoning_enabled() -> bool:
    return _poison


class StripeBuffer:
    """Data of one in-flight stripe, filled strictly left to right.

    Bytes at and past ``fill_end`` are unspecified (the backing array is
    pooled); every accessor treats them as zeroes, preserving the §5.1
    zero-padding rule.
    """

    __slots__ = ("zone", "stripe", "num_data", "su", "width_bytes", "data",
                 "fill_end")

    def __init__(self, zone: int, stripe: int, num_data: int, su: int):
        self.zone = zone
        self.stripe = stripe
        self.num_data = num_data
        self.su = su
        #: ``num_data * su`` as a plain attribute — the write path's fast
        #: loop reads it per absorbed chunk.
        self.width_bytes = num_data * su
        free = _free_arrays.get(num_data * su)
        self.data = free.pop() if free else bytearray(num_data * su)
        #: Bytes filled from the start of the stripe (writes are sequential).
        self.fill_end = 0

    def recycle(self) -> None:
        """Return the backing array to the pool; the buffer dies here."""
        data = self.data
        free = _free_arrays.setdefault(len(data), [])
        if len(free) < _FREE_ARRAYS_MAX:
            if _poison:
                # Audit mode: fill the released array with 0xA5 so stale
                # reads of the next owner are unmistakable.
                data[:] = bytes([_POISON_BYTE]) * len(data)
            free.append(data)
        self.data = b""

    @property
    def width(self) -> int:
        return self.width_bytes

    @property
    def full(self) -> bool:
        return self.fill_end == self.width

    def absorb(self, offset: int, chunk: bytes) -> None:
        """Copy ``chunk`` at stripe-relative ``offset`` into the buffer."""
        if offset != self.fill_end:
            raise RaiznError(
                f"non-sequential stripe fill: offset {offset} != fill "
                f"end {self.fill_end} (zone {self.zone} stripe {self.stripe})")
        end = offset + len(chunk)
        if end > self.width:
            raise RaiznError("stripe buffer overflow")
        self.data[offset:end] = chunk
        self.fill_end = end

    def full_parity(self) -> bytes:
        """Parity SU over the (zero-padded) current contents."""
        su = self.su
        fill_end = self.fill_end
        if fill_end == self.num_data * su:
            units = np.frombuffer(self.data, dtype=np.uint8).reshape(
                self.num_data, su)
            return np.bitwise_xor.reduce(units, axis=0).tobytes()
        # Partial stripe: only bytes below the fill end exist; the pooled
        # backing array is NOT zeroed past it, so fold exactly the filled
        # units and the tail fragment into a zero accumulator.
        view = np.frombuffer(self.data, dtype=np.uint8)
        full_units = fill_end // su
        if full_units:
            acc = np.bitwise_xor.reduce(
                view[:full_units * su].reshape(full_units, su), axis=0)
        else:
            acc = np.zeros(su, dtype=np.uint8)
        tail = fill_end - full_units * su
        if tail:
            acc[:tail] ^= view[full_units * su:fill_end]
        return acc.tobytes()

    def data_unit(self, su_index: int) -> bytes:
        """Contents of data SU ``su_index`` (zero-padded past the fill end)."""
        su = self.su
        start = su_index * su
        fill_end = self.fill_end
        if start + su <= fill_end:
            return bytes(self.data[start:start + su])
        if start >= fill_end:
            return bytes(su)
        return bytes(self.data[start:fill_end]) + bytes(start + su - fill_end)

    @staticmethod
    def delta_parity(offset: int, chunk: bytes, su: int) -> Tuple[int, bytes]:
        """Parity contribution of one chunk, as ``(parity_offset, delta)``.

        The chunk occupies stripe-relative ``[offset, offset+len)`` and may
        span stripe units; its contribution folds each covered unit into
        SU-relative parity positions.  The returned delta is trimmed to the
        affected interval, minimizing the log footprint ("RAIZN only logs
        the subset of parity that is affected by the write", §5.1).

        The delta may be any readable buffer: the single-unit fast path
        returns ``chunk`` itself (often a memoryview slice of the logical
        bio's payload), borrowed with the same no-mutation-while-in-flight
        contract as :meth:`Bio.write`.
        """
        if not chunk:
            raise RaiznError("empty chunk has no parity contribution")
        in_su = offset % su
        if in_su + len(chunk) <= su:
            # The common case: the chunk sits inside one stripe unit, so
            # its parity contribution is the chunk itself — no copy and no
            # SU-sized accumulator to XOR against zeroes.
            return in_su, chunk
        acc = bytearray(su)
        lo, hi = su, 0
        position = 0
        while position < len(chunk):
            in_su = (offset + position) % su
            take = min(len(chunk) - position, su - in_su)
            xor_into(acc, chunk[position:position + take], in_su)
            lo = min(lo, in_su)
            hi = max(hi, in_su + take)
            position += take
        return lo, bytes(acc[lo:hi])


class StripeBufferPool:
    """The fixed-size pool of stripe buffers for one logical zone.

    ``acquire`` returns an existing buffer for a stripe or allocates a new
    one; allocation fails (returns None) when all slots are occupied, in
    which case the write path must wait for a release — the paper
    pre-allocates 8 buffers per open zone and "blocks write processing if
    all stripe buffers are occupied".
    """

    def __init__(self, zone: int, num_data: int, su: int, capacity: int):
        self.zone = zone
        self.num_data = num_data
        self.su = su
        self.capacity = capacity
        self._buffers: Dict[int, StripeBuffer] = {}

    def get(self, stripe: int) -> Optional[StripeBuffer]:
        """The buffer for ``stripe`` if one is active."""
        return self._buffers.get(stripe)

    def acquire(self, stripe: int) -> Optional[StripeBuffer]:
        """The buffer for ``stripe``, allocating if a slot is free."""
        buffer = self._buffers.get(stripe)
        if buffer is not None:
            return buffer
        if len(self._buffers) >= self.capacity:
            return None
        buffer = StripeBuffer(self.zone, stripe, self.num_data, self.su)
        self._buffers[stripe] = buffer
        return buffer

    def release(self, stripe: int) -> None:
        """Free the slot held by ``stripe`` (after its full parity is safe)."""
        buffer = self._buffers.pop(stripe, None)
        if buffer is not None:
            buffer.recycle()

    def active(self) -> List[StripeBuffer]:
        """All currently held buffers, in stripe order."""
        return [self._buffers[s] for s in sorted(self._buffers)]

    def clear(self) -> None:
        """Drop every buffer (zone reset)."""
        for buffer in self._buffers.values():
            buffer.recycle()
        self._buffers.clear()

    @property
    def occupied(self) -> int:
        return len(self._buffers)
