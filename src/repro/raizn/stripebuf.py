"""Stripe buffers: in-memory caches of partially written stripes (§5.1).

A stripe buffer lets RAIZN recompute parity for a growing stripe without
reading the devices.  The ZNS open-zone limit bounds the number of
incomplete stripes, so buffers are pre-allocated per open logical zone
(8 in the paper's experiments) and write processing blocks when all are
occupied.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from ..errors import RaiznError
from .parity import xor_into


class StripeBuffer:
    """Data of one in-flight stripe, filled strictly left to right."""

    __slots__ = ("zone", "stripe", "num_data", "su", "data", "fill_end")

    def __init__(self, zone: int, stripe: int, num_data: int, su: int):
        self.zone = zone
        self.stripe = stripe
        self.num_data = num_data
        self.su = su
        self.data = bytearray(num_data * su)
        #: Bytes filled from the start of the stripe (writes are sequential).
        self.fill_end = 0

    @property
    def width(self) -> int:
        return self.num_data * self.su

    @property
    def full(self) -> bool:
        return self.fill_end == self.width

    def absorb(self, offset: int, chunk: bytes) -> None:
        """Copy ``chunk`` at stripe-relative ``offset`` into the buffer."""
        if offset != self.fill_end:
            raise RaiznError(
                f"non-sequential stripe fill: offset {offset} != fill "
                f"end {self.fill_end} (zone {self.zone} stripe {self.stripe})")
        end = offset + len(chunk)
        if end > self.width:
            raise RaiznError("stripe buffer overflow")
        self.data[offset:end] = chunk
        self.fill_end = end

    def full_parity(self) -> bytes:
        """Parity SU over the (zero-padded) current contents."""
        units = np.frombuffer(self.data, dtype=np.uint8).reshape(
            self.num_data, self.su)
        return np.bitwise_xor.reduce(units, axis=0).tobytes()

    def data_unit(self, su_index: int) -> bytes:
        """Contents of data SU ``su_index`` (zero-padded past the fill end)."""
        return bytes(self.data[su_index * self.su:(su_index + 1) * self.su])

    @staticmethod
    def delta_parity(offset: int, chunk: bytes, su: int) -> Tuple[int, bytes]:
        """Parity contribution of one chunk, as ``(parity_offset, delta)``.

        The chunk occupies stripe-relative ``[offset, offset+len)`` and may
        span stripe units; its contribution folds each covered unit into
        SU-relative parity positions.  The returned delta is trimmed to the
        affected interval, minimizing the log footprint ("RAIZN only logs
        the subset of parity that is affected by the write", §5.1).
        """
        if not chunk:
            raise RaiznError("empty chunk has no parity contribution")
        in_su = offset % su
        if in_su + len(chunk) <= su:
            # The common case: the chunk sits inside one stripe unit, so
            # its parity contribution is the chunk itself — no SU-sized
            # accumulator to allocate and XOR against zeroes.
            return in_su, bytes(chunk)
        acc = bytearray(su)
        lo, hi = su, 0
        position = 0
        while position < len(chunk):
            in_su = (offset + position) % su
            take = min(len(chunk) - position, su - in_su)
            xor_into(acc, chunk[position:position + take], in_su)
            lo = min(lo, in_su)
            hi = max(hi, in_su + take)
            position += take
        return lo, bytes(acc[lo:hi])


class StripeBufferPool:
    """The fixed-size pool of stripe buffers for one logical zone.

    ``acquire`` returns an existing buffer for a stripe or allocates a new
    one; allocation fails (returns None) when all slots are occupied, in
    which case the write path must wait for a release — the paper
    pre-allocates 8 buffers per open zone and "blocks write processing if
    all stripe buffers are occupied".
    """

    def __init__(self, zone: int, num_data: int, su: int, capacity: int):
        self.zone = zone
        self.num_data = num_data
        self.su = su
        self.capacity = capacity
        self._buffers: Dict[int, StripeBuffer] = {}

    def get(self, stripe: int) -> Optional[StripeBuffer]:
        """The buffer for ``stripe`` if one is active."""
        return self._buffers.get(stripe)

    def acquire(self, stripe: int) -> Optional[StripeBuffer]:
        """The buffer for ``stripe``, allocating if a slot is free."""
        buffer = self._buffers.get(stripe)
        if buffer is not None:
            return buffer
        if len(self._buffers) >= self.capacity:
            return None
        buffer = StripeBuffer(self.zone, stripe, self.num_data, self.su)
        self._buffers[stripe] = buffer
        return buffer

    def release(self, stripe: int) -> None:
        """Free the slot held by ``stripe`` (after its full parity is safe)."""
        self._buffers.pop(stripe, None)

    def active(self) -> List[StripeBuffer]:
        """All currently held buffers, in stripe order."""
        return [self._buffers[s] for s in sorted(self._buffers)]

    def clear(self) -> None:
        """Drop every buffer (zone reset)."""
        self._buffers.clear()

    @property
    def occupied(self) -> int:
        return len(self._buffers)
