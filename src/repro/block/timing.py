"""Device service-time model.

Devices are modelled as a pool of parallel command channels (``Resource``),
each serving one IO at a time.  An IO occupies a channel for::

    command_overhead + transfer_bytes / per_channel_bandwidth (+ jitter)

and completes a pipelined ``base_latency(op)`` after leaving the channel,
so a single queued IO sees overhead + transfer + media latency, while a
deep queue saturates all channels and reaches the device's aggregate
bandwidth (or its IOPS ceiling for small commands) — reproducing the
queue-depth behaviour fio measures.

Default numbers are calibrated to the paper's §6.1 measurements:
the ZN540 ZNS SSD sustains 1052 MiB/s writes and 3265 MiB/s reads, and the
conventional SSD of the same platform is 2% / 4% faster respectively.
"""

from __future__ import annotations

import dataclasses
import random
from typing import Optional

from ..units import MiB, USEC
from .bio import Op


@dataclasses.dataclass(frozen=True)
class ServiceTimeModel:
    """Timing parameters for one simulated device.

    Commands occupy a channel for their *occupancy* time (command
    processing overhead + data transfer); the fixed media/setup latency
    is pipelined — it delays the command's completion but does not block
    the channel, matching how NVMe devices overlap command setup with
    the data path.  Small sequential IOs therefore approach full
    bandwidth (bounded by the per-command overhead, i.e. the device's
    IOPS ceiling) instead of being serialized behind setup latency.
    """

    #: Aggregate sequential read bandwidth, bytes/second.
    read_bandwidth: float
    #: Aggregate write bandwidth, bytes/second.
    write_bandwidth: float
    #: Number of parallel command channels.
    channels: int = 8
    #: Channel-occupying per-command processing overhead, seconds.
    #: 20 us x 8 channels ~ 400K IOPS ceiling, in the ZN540's class.
    command_overhead: float = 20 * USEC
    #: Pipelined media latency for reads, seconds.
    read_base_latency: float = 80 * USEC
    #: Pipelined ack latency for writes (cache hit), seconds.
    write_base_latency: float = 15 * USEC
    #: Cost of a cache flush, seconds.
    flush_latency: float = 120 * USEC
    #: Cost of zone management commands (reset/finish/open/close), seconds.
    zone_mgmt_latency: float = 1000 * USEC
    #: Relative jitter amplitude (uniform, +/- fraction of service time).
    jitter: float = 0.05

    def __post_init__(self) -> None:
        # Precomputed per-channel transfer rates: occupancy_time runs once
        # per simulated command, so the two divisions per call add up.
        # (The dataclass is frozen; __setattr__ must be bypassed.)
        object.__setattr__(self, "_read_rate",
                           self.read_bandwidth / self.channels)
        object.__setattr__(self, "_write_rate",
                           self.write_bandwidth / self.channels)
        # Jitter constants for the inlined uniform draw below.
        # ``random.Random.uniform(a, b)`` computes ``a + (b - a) * random()``;
        # with a = -jitter, b = jitter the span b - a is exactly
        # jitter + jitter in IEEE arithmetic, so the expansion reproduces
        # the library call bit for bit while skipping its Python frame.
        object.__setattr__(self, "_jitter_span", self.jitter + self.jitter)

    def occupancy_time(self, op: Op, nbytes: int,
                       rng: Optional[random.Random] = None) -> float:
        """Time one command holds a channel."""
        if op is Op.READ:
            transfer = nbytes / self._read_rate
        elif op is Op.WRITE or op is Op.ZONE_APPEND:
            transfer = nbytes / self._write_rate
        elif op is Op.FLUSH:
            transfer = self.flush_latency
        elif op is Op.DISCARD:
            transfer = self.zone_mgmt_latency / 4
        else:  # zone management
            transfer = self.zone_mgmt_latency
        total = self.command_overhead + transfer
        jitter = self.jitter
        if rng is not None and jitter > 0:
            total *= 1.0 + (-jitter + self._jitter_span * rng.random())
        return total

    def pipeline_latency(self, op: Op) -> float:
        """Completion delay beyond channel occupancy (pipelined)."""
        if op is Op.READ:
            return self.read_base_latency
        if op is Op.WRITE or op is Op.ZONE_APPEND:
            return self.write_base_latency
        return 0.0

    def service_time(self, op: Op, nbytes: int,
                     rng: Optional[random.Random] = None) -> float:
        """Total unloaded service time (occupancy + pipeline latency)."""
        return self.occupancy_time(op, nbytes, rng) + \
            self.pipeline_latency(op)


def zns_zn540_model() -> ServiceTimeModel:
    """Timing of the paper's WD Ultrastar DC ZN540 ZNS SSD (§6.1)."""
    return ServiceTimeModel(
        read_bandwidth=3265 * MiB,
        write_bandwidth=1052 * MiB,
    )


def conventional_ssd_model() -> ServiceTimeModel:
    """Timing of the paper's conventional SSD: 2%/4% faster write/read."""
    return ServiceTimeModel(
        read_bandwidth=3265 * MiB / 0.96,
        write_bandwidth=1052 * MiB / 0.98,
    )
