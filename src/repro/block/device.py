"""Base class shared by all simulated storage devices.

A device is a pool of command channels plus device-specific state.  The
logical effect of a command (address checks, write-pointer updates, FTL
mapping) is applied *at submission*, in submission order — matching how an
NVMe device validates and queues commands — while the completion event
fires after the modelled service time.  Durability effects (write-cache
flushes, FUA) are applied at completion time.
"""

from __future__ import annotations

import heapq
import random
from collections import deque
from typing import Deque, Iterable, List, Optional, Tuple

from ..errors import (DeviceError, DeviceFailedError, PowerLossError,
                      SimulationError)
from ..sim import Event, Resource, Simulator
from ..units import SECTOR_SIZE
from .bio import Bio, BioFlags, Op
from .timing import ServiceTimeModel

#: Sector size is a power of two; a single masked test covers both the
#: offset and length alignment checks on the hot submit path.
_SECTOR_MASK = SECTOR_SIZE - 1


class DeviceStats:
    """Per-device IO accounting, including media-level write amplification."""

    def __init__(self) -> None:
        self.reads = 0
        self.writes = 0
        self.flushes = 0
        self.zone_mgmt = 0
        self.bytes_read = 0
        self.bytes_written = 0
        #: Bytes physically programmed to media, including GC copy-back;
        #: write amplification = media_bytes_written / bytes_written.
        self.media_bytes_written = 0
        #: Cumulative submit→complete seconds of successfully completed
        #: commands, split by direction.  Commands that never complete
        #: (rejected, or cut down mid-flight by power loss / device
        #: failure) are not charged — the trace layer follows the same
        #: rule, so per-device span totals reconcile with these.
        self.read_seconds = 0.0
        self.write_seconds = 0.0
        self.other_seconds = 0.0

    @property
    def write_amplification(self) -> float:
        if self.bytes_written == 0:
            return 1.0
        return self.media_bytes_written / self.bytes_written

    @property
    def io_seconds(self) -> float:
        """Total submit→complete seconds across all completed commands."""
        return self.read_seconds + self.write_seconds + self.other_seconds

    def account(self, bio: Bio) -> None:
        """Charge one command's counters.

        Called at the bio's *first* accepted submission (guarded by
        ``bio.counted``): stats count logical commands, and a retry that
        resubmits the same bio must not inflate throughput numbers.
        """
        op = bio.op
        if op is Op.READ:
            self.reads += 1
            self.bytes_read += bio.length
        elif op is Op.WRITE or op is Op.ZONE_APPEND:
            self.writes += 1
            self.bytes_written += bio.length
            self.media_bytes_written += bio.length
        elif op is Op.FLUSH:
            self.flushes += 1
        else:
            self.zone_mgmt += 1

    def observe_completion(self, bio: Bio, now: float) -> None:
        """Charge one successful completion's latency to the time counters."""
        elapsed = now - bio.submit_time
        op = bio.op
        if op is Op.READ:
            self.read_seconds += elapsed
        elif op is Op.WRITE or op is Op.ZONE_APPEND:
            self.write_seconds += elapsed
        else:
            self.other_seconds += elapsed

    def to_dict(self) -> dict:
        """Snapshot for the metrics registry."""
        return {
            "reads": self.reads,
            "writes": self.writes,
            "flushes": self.flushes,
            "zone_mgmt": self.zone_mgmt,
            "bytes_read": self.bytes_read,
            "bytes_written": self.bytes_written,
            "media_bytes_written": self.media_bytes_written,
            "write_amplification": self.write_amplification,
            "read_seconds": self.read_seconds,
            "write_seconds": self.write_seconds,
            "other_seconds": self.other_seconds,
            "io_seconds": self.io_seconds,
        }


class BlockDevice:
    """Abstract simulated device; subclasses implement ``_apply``/``_persist``."""

    #: Trace-span layer tag for commands serviced by this device class;
    #: subclasses override (ZNS → "zns", conventional → "conv").
    trace_layer = "block"

    def __init__(
        self,
        sim: Simulator,
        name: str,
        size_bytes: int,
        model: ServiceTimeModel,
        seed: int = 0,
    ):
        self.sim = sim
        self.name = name
        self.size_bytes = size_bytes
        self.model = model
        # Pipeline latencies are per-op constants of the model; caching
        # them here skips a method call per command completion.
        self._pl_read = model.pipeline_latency(Op.READ)
        self._pl_write = model.pipeline_latency(Op.WRITE)
        self.channels = Resource(sim, model.channels)
        # Commands waiting for a free channel, FIFO.  A plain deque of
        # (bio, extra_time, done) tuples: queueing a command costs no
        # waiter Event and no closure, and the grant hop a releasing
        # command queues is a direct ``_grant`` continuation.
        self._channel_queue: Deque[Tuple[Bio, float, Event]] = deque()
        self.stats = DeviceStats()
        self.failed = False
        self.powered = True
        self._rng = random.Random(seed)
        #: Optional fault-injection hook: called as ``hook(device, bio)``
        #: before each command is applied (see :mod:`repro.faults`).
        self.pre_apply_hook = None
        #: Optional hook called as ``hook(device, bio)`` right after a
        #: command's completion event fires.  The bio counts as acked —
        #: ``done.succeed`` only queues waiter callbacks — so cutting power
        #: inside the hook models a crash where completions 1..k were
        #: delivered and nothing after; the crash-point explorer uses this
        #: to snapshot array state at every completion boundary.
        self.completion_hook = None
        #: Optional fail-slow hook: called as ``hook(device, bio)`` at the
        #: channel-grant point, returning extra seconds of channel
        #: occupancy for this command.  The delay holds the channel, so a
        #: gray-failing device also inflicts queueing delay on commands
        #: behind the slow one (see :mod:`repro.faults.failslow`).
        self.service_delay_hook = None
        #: Shared :class:`repro.trace.Tracer` when the owning volume has
        #: tracing enabled; None costs each command one attribute test.
        self.tracer = None
        #: Interned trace-site ids, one per op, filled lazily.
        self._trace_sites: dict = {}

    # -- the public IO interface ----------------------------------------------

    def submit(self, bio: Bio, done: Optional[Event] = None) -> Event:
        """Submit ``bio``; the returned event succeeds with the completed bio.

        Command validation and logical state changes happen synchronously
        here, in submission order.  The event fails with a ``DeviceError``
        on invalid commands and with ``DeviceFailedError`` if the device has
        failed.  ``done`` lets a caller that recycles completion events
        through ``Simulator.recycle`` supply a pooled one.
        """
        sim = self.sim
        bio.submit_time = sim.now
        if done is None:
            # ``Simulator.event`` inlined (one call per command).
            free = sim._event_free
            if free:
                done = free.pop()
                done.triggered = False
                done.ok = True
            else:
                done = Event(sim)
        if self.failed or not self.powered:
            if self.failed:
                self._reject(bio, done,
                             DeviceFailedError(f"{self.name} has failed"))
            else:
                self._reject(bio, done,
                             PowerLossError(f"{self.name} is powered off"))
            return done
        try:
            if self.pre_apply_hook is not None:
                self.pre_apply_hook(self, bio)
                if not self.powered:
                    raise PowerLossError(
                        f"{self.name} lost power (fault injection)")
                if self.failed:
                    raise DeviceFailedError(
                        f"{self.name} failed (fault injection)")
            if (bio.offset | bio.length) & _SECTOR_MASK:
                bio.check_alignment()
            extra_time = self._apply(bio)
        except DeviceError as exc:
            self._reject(bio, done, exc)
            return done
        # Accepted: charge the stats here, at first submission, rather
        # than at completion.  The logical effect (including the media
        # write) just applied in submission order, and counting here with
        # the per-bio guard keeps a retried resubmission of the same bio
        # from double-counting.
        if not bio.counted:
            bio.counted = True
            # ``DeviceStats.account`` inlined: one call per command.
            stats = self.stats
            op = bio.op
            if op is Op.WRITE or op is Op.ZONE_APPEND:
                stats.writes += 1
                stats.bytes_written += bio.length
                stats.media_bytes_written += bio.length
            elif op is Op.READ:
                stats.reads += 1
                stats.bytes_read += bio.length
            elif op is Op.FLUSH:
                stats.flushes += 1
            else:
                stats.zone_mgmt += 1
        if self.tracer is not None:
            # Device spans stay off the object heap until completion:
            # the parent link rides in ``bio.span`` (an int, untracked
            # by the GC) and the channel-grant time in ``bio.span_grant``.
            bio.span = self.tracer.current_parent
        # Service chain: channel grant -> occupancy -> pipeline -> complete,
        # as plain scheduled callbacks.  A generator process here cost a
        # Process allocation plus several scheduler round-trips per command,
        # which dominated wall time at high IO rates.  The channel-time RNG
        # draw stays at the grant point, so fixed-seed runs are unchanged.
        channels = self.channels
        if channels.in_use < channels.capacity:
            channels.in_use += 1
            # Inlined ``_grant`` (the uncontended case): same steps, one
            # call frame and one ``schedule`` indirection fewer.
            if bio.span is not None:
                bio.span_grant = sim.now
            op = bio.op
            model = self.model
            if op is Op.WRITE or op is Op.ZONE_APPEND:
                # ``occupancy_time`` inlined for the dominant ops; the
                # jitter expansion matches rng.uniform bit for bit (see
                # the model's __post_init__).
                occupancy = model.command_overhead + \
                    bio.length / model._write_rate
                jitter = model.jitter
                if jitter > 0:
                    occupancy *= 1.0 + (-jitter +
                                        model._jitter_span *
                                        self._rng.random())
            else:
                occupancy = model.occupancy_time(op, bio.length, self._rng)
            if self.service_delay_hook is not None:
                occupancy += self.service_delay_hook(self, bio)
            sim._seq += 1
            heapq.heappush(sim._heap,
                           (sim.now + occupancy + extra_time, sim._seq,
                            self._channel_done, (bio, done)))
        else:
            self._channel_queue.append((bio, extra_time, done))
        return done

    def execute(self, bio: Bio) -> Bio:
        """Synchronously run ``bio`` to completion (drains the event loop)."""
        done = self.submit(bio)
        self.sim.run()
        if not done.triggered:
            raise DeviceError(f"{self.name}: bio never completed")
        if not done.ok:
            raise done.value
        return done.value

    # -- hooks for subclasses ---------------------------------------------------

    def _apply(self, bio: Bio) -> float:
        """Validate and apply the logical effect of ``bio``.

        Returns extra service time (seconds) beyond the base model — used
        by the conventional SSD to charge garbage-collection work to the
        triggering write.  Raises ``DeviceError`` on invalid commands.
        """
        raise NotImplementedError

    def _persist(self, bio: Bio) -> None:
        """Apply durability effects at completion (flush / FUA semantics)."""
        raise NotImplementedError

    # -- internals --------------------------------------------------------------

    def _grant(self, bio: Bio, extra_time: float, done: Event) -> None:
        """A channel is ours: hold it for the occupancy time."""
        if bio.span is not None:
            bio.span_grant = self.sim.now  # queue wait ends, service begins
        op = bio.op
        model = self.model
        if op is Op.WRITE or op is Op.ZONE_APPEND:
            # Same inlined occupancy as ``submit``'s uncontended branch.
            occupancy = model.command_overhead + \
                bio.length / model._write_rate
            jitter = model.jitter
            if jitter > 0:
                occupancy *= 1.0 + (-jitter +
                                    model._jitter_span * self._rng.random())
        else:
            occupancy = model.occupancy_time(op, bio.length, self._rng)
        if self.service_delay_hook is not None:
            occupancy += self.service_delay_hook(self, bio)
        sim = self.sim
        sim._seq += 1
        heapq.heappush(sim._heap, (sim.now + occupancy + extra_time, sim._seq,
                                   self._channel_done, (bio, done)))

    def _channel_done(self, bio: Bio, done: Event) -> None:
        """Occupancy over: free the channel, wait out the pipeline latency."""
        queue = self._channel_queue
        if queue:
            # Hand the channel straight to the next queued command.  The
            # grant goes through the now-queue — the same hop the waiter
            # Event's dispatch used to take — so the occupancy RNG draw
            # happens at exactly the same point in the event order.
            self.sim._now_queue.append((self._grant, queue.popleft()))
        else:
            self.channels.in_use -= 1
        op = bio.op
        if op is Op.READ:
            pipeline = self._pl_read
        elif op is Op.WRITE or op is Op.ZONE_APPEND:
            pipeline = self._pl_write
        else:
            pipeline = 0.0
        if pipeline > 0:
            # The fused completion may only run from its own heap entry:
            # the now-queue is empty when the loop pops one, so the
            # waiter continuation it invokes inline cannot jump ahead of
            # queued work (unlike here, where a grant hand-off may
            # already sit on the now-queue).
            sim = self.sim
            sim._seq += 1
            heapq.heappush(sim._heap, (sim.now + pipeline, sim._seq,
                                       self._complete_fused, (bio, done)))
        else:
            self._complete(bio, done)

    def _reject(self, bio: Bio, done: Event, exc: BaseException) -> None:
        """Deliver a command error: fail the event, or — when the submitter
        opted in via ``bio.errors_as_status`` — complete the bio with
        ``bio.error`` set so the caller can recover per-bio instead of
        having a gathered fan-out unwind on the first failure."""
        if bio.errors_as_status:
            bio.error = exc
            self.sim.schedule(0.0, self._complete_errored, bio, done)
        else:
            self.sim.schedule(0.0, done.fail, exc)

    def _complete_errored(self, bio: Bio, done: Event) -> None:
        bio.complete_time = self.sim.now
        done.succeed(bio)

    def _complete(self, bio: Bio, done: Event) -> None:
        if self.failed:
            self._fail_inflight(bio, done,
                                DeviceFailedError(f"{self.name} failed mid-IO"))
            return
        if not self.powered:
            self._fail_inflight(bio, done,
                                PowerLossError(f"{self.name} lost power mid-IO"))
            return
        self._persist(bio)
        self.stats.observe_completion(bio, self.sim.now)
        parent = bio.span
        if parent is not None:
            bio.span = None
            opname = bio.op._value_  # str key: Enum.__hash__ is Python-level
            try:
                site = self._trace_sites[opname]
            except KeyError:
                site = self._trace_sites[opname] = self.tracer.site(
                    self.trace_layer, bio.op, self.name)
            self.tracer.complete_io(site, bio.submit_time, bio.span_grant,
                                    bio.length, parent)
        bio.complete_time = self.sim.now
        done.succeed(bio)
        if self.completion_hook is not None:
            self.completion_hook(self, bio)

    def _complete_fused(self, bio: Bio, done: Event) -> None:
        """``_complete`` plus the waiter's continuation, as ONE engine step.

        Entered only from a dedicated heap entry, where the engine
        guarantees the now-queue is empty.  ``done.succeed`` would queue
        the (single) waiter continuation as the very next entry and the
        loop would pop it immediately after this frame returns — so
        triggering the event here and invoking the continuation directly
        (after the completion hook, exactly where the loop would have
        run it) executes the same work in the same order without the
        queue round-trip.  Completion batching per the engine's sibling
        rule: the completion and its continuation ride one step.
        """
        if self.failed or not self.powered:
            self._complete(bio, done)
            return
        if bio.flags or bio.aux is not None:
            # Plain (non-FUA, non-flush) commands have no durability
            # effect; every ``_persist`` implementation no-ops on them,
            # so skip the call entirely.
            self._persist(bio)
        now = self.sim.now
        # ``DeviceStats.observe_completion`` inlined, as with ``account``.
        stats = self.stats
        elapsed = now - bio.submit_time
        op = bio.op
        if op is Op.WRITE or op is Op.ZONE_APPEND:
            stats.write_seconds += elapsed
        elif op is Op.READ:
            stats.read_seconds += elapsed
        else:
            stats.other_seconds += elapsed
        parent = bio.span
        if parent is not None:
            bio.span = None
            opname = bio.op._value_  # str key: Enum.__hash__ is Python-level
            try:
                site = self._trace_sites[opname]
            except KeyError:
                site = self._trace_sites[opname] = self.tracer.site(
                    self.trace_layer, bio.op, self.name)
            self.tracer.complete_io(site, bio.submit_time, bio.span_grant,
                                    bio.length, parent)
        bio.complete_time = now
        # Trigger ``done`` without queueing the continuation (the succeed
        # fast path's only effect beyond state changes).
        if done.triggered:
            raise SimulationError(f"{done!r} triggered twice")
        done.triggered = True
        done.value = bio
        callback = done.callback
        callbacks = None
        if callback is not None:
            done.callback = None
            callbacks = done.callbacks
            done.callbacks = None
        if self.completion_hook is not None:
            self.completion_hook(self, bio)
        if callback is not None:
            callback(done)
            if callbacks is not None:
                for fn in callbacks:
                    fn(done)

    def _fail_inflight(self, bio: Bio, done: Event, exc: BaseException) -> None:
        # The command never completed; neither the trace nor io_seconds
        # charges it (they must stay reconcilable).
        bio.span = None
        if bio.errors_as_status:
            bio.error = exc
            bio.complete_time = self.sim.now
            done.succeed(bio)
        else:
            done.fail(exc)

    # -- fault injection ---------------------------------------------------------

    def fail_device(self) -> None:
        """Mark the device failed; all current and future IO errors out."""
        self.failed = True

    def power_off(self) -> None:
        """Cut power: in-flight/unflushed state handling is subclass-defined."""
        self.powered = False

    def power_on(self) -> None:
        """Restore power after ``power_off``."""
        self.powered = True

    # -- convenience coroutines (for use inside simulated processes) -------------

    def read(self, offset: int, length: int):
        """Process-style read: ``data = yield from dev.read(off, n)``."""
        bio = yield self.submit(Bio.read(offset, length))
        return bio.result

    def write(self, offset: int, data: bytes, flags: BioFlags = BioFlags.NONE):
        """Process-style write; returns the completed bio."""
        bio = yield self.submit(Bio.write(offset, data, flags))
        return bio

    def flush(self):
        """Process-style cache flush."""
        bio = yield self.submit(Bio.flush())
        return bio


def submit_many(
        commands: Iterable[Tuple["BlockDevice", Bio, Optional[Event]]]
) -> List[Event]:
    """Submit a batch of ``(device, bio, done)`` commands in one step.

    The upper layer (the RAIZN volume hands a whole stripe's device
    commands here) builds the batch while computing its fan-out, then
    submits everything with a single call.  Commands are applied strictly
    in batch order, so per-device submission order — and with it every
    zone write-pointer check and channel-grant RNG draw — is identical to
    issuing the same ``submit`` calls one by one.  Tracer spans are still
    attributed per command by each device's completion path.
    """
    return [device.submit(bio, done) for device, bio, done in commands]
