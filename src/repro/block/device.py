"""Base class shared by all simulated storage devices.

A device is a pool of command channels plus device-specific state.  The
logical effect of a command (address checks, write-pointer updates, FTL
mapping) is applied *at submission*, in submission order — matching how an
NVMe device validates and queues commands — while the completion event
fires after the modelled service time.  Durability effects (write-cache
flushes, FUA) are applied at completion time.
"""

from __future__ import annotations

import random
from typing import Optional

from ..errors import DeviceError, DeviceFailedError, PowerLossError
from ..sim import Event, Resource, Simulator
from .bio import Bio, BioFlags, Op
from .timing import ServiceTimeModel


class DeviceStats:
    """Per-device IO accounting, including media-level write amplification."""

    def __init__(self) -> None:
        self.reads = 0
        self.writes = 0
        self.flushes = 0
        self.zone_mgmt = 0
        self.bytes_read = 0
        self.bytes_written = 0
        #: Bytes physically programmed to media, including GC copy-back;
        #: write amplification = media_bytes_written / bytes_written.
        self.media_bytes_written = 0

    @property
    def write_amplification(self) -> float:
        if self.bytes_written == 0:
            return 1.0
        return self.media_bytes_written / self.bytes_written

    def account(self, bio: Bio) -> None:
        op = bio.op
        if op is Op.READ:
            self.reads += 1
            self.bytes_read += bio.length
        elif op is Op.WRITE or op is Op.ZONE_APPEND:
            self.writes += 1
            self.bytes_written += bio.length
            self.media_bytes_written += bio.length
        elif op is Op.FLUSH:
            self.flushes += 1
        else:
            self.zone_mgmt += 1


class BlockDevice:
    """Abstract simulated device; subclasses implement ``_apply``/``_persist``."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        size_bytes: int,
        model: ServiceTimeModel,
        seed: int = 0,
    ):
        self.sim = sim
        self.name = name
        self.size_bytes = size_bytes
        self.model = model
        self.channels = Resource(sim, model.channels)
        self.stats = DeviceStats()
        self.failed = False
        self.powered = True
        self._rng = random.Random(seed)
        #: Optional fault-injection hook: called as ``hook(device, bio)``
        #: before each command is applied (see :mod:`repro.faults`).
        self.pre_apply_hook = None
        #: Optional hook called as ``hook(device, bio)`` right after a
        #: command's completion event fires.  The bio counts as acked —
        #: ``done.succeed`` only queues waiter callbacks — so cutting power
        #: inside the hook models a crash where completions 1..k were
        #: delivered and nothing after; the crash-point explorer uses this
        #: to snapshot array state at every completion boundary.
        self.completion_hook = None
        #: Optional fail-slow hook: called as ``hook(device, bio)`` at the
        #: channel-grant point, returning extra seconds of channel
        #: occupancy for this command.  The delay holds the channel, so a
        #: gray-failing device also inflicts queueing delay on commands
        #: behind the slow one (see :mod:`repro.faults.failslow`).
        self.service_delay_hook = None

    # -- the public IO interface ----------------------------------------------

    def submit(self, bio: Bio) -> Event:
        """Submit ``bio``; the returned event succeeds with the completed bio.

        Command validation and logical state changes happen synchronously
        here, in submission order.  The event fails with a ``DeviceError``
        on invalid commands and with ``DeviceFailedError`` if the device has
        failed.
        """
        bio.submit_time = self.sim.now
        done = Event(self.sim)
        if self.failed:
            self._reject(bio, done,
                         DeviceFailedError(f"{self.name} has failed"))
            return done
        if not self.powered:
            self._reject(bio, done,
                         PowerLossError(f"{self.name} is powered off"))
            return done
        try:
            if self.pre_apply_hook is not None:
                self.pre_apply_hook(self, bio)
                if not self.powered:
                    raise PowerLossError(
                        f"{self.name} lost power (fault injection)")
                if self.failed:
                    raise DeviceFailedError(
                        f"{self.name} failed (fault injection)")
            bio.check_alignment()
            extra_time = self._apply(bio)
        except DeviceError as exc:
            self._reject(bio, done, exc)
            return done
        # Service chain: channel grant -> occupancy -> pipeline -> complete,
        # as plain scheduled callbacks.  A generator process here cost a
        # Process allocation plus several scheduler round-trips per command,
        # which dominated wall time at high IO rates.  The channel-time RNG
        # draw stays at the grant point, so fixed-seed runs are unchanged.
        channels = self.channels
        if channels.in_use < channels.capacity:
            channels.in_use += 1
            self._grant(bio, extra_time, done)
        else:
            request = Event(self.sim)
            request.add_callback(
                lambda _ev, b=bio, x=extra_time, d=done: self._grant(b, x, d))
            channels._waiters.append(request)
        return done

    def execute(self, bio: Bio) -> Bio:
        """Synchronously run ``bio`` to completion (drains the event loop)."""
        done = self.submit(bio)
        self.sim.run()
        if not done.triggered:
            raise DeviceError(f"{self.name}: bio never completed")
        if not done.ok:
            raise done.value
        return done.value

    # -- hooks for subclasses ---------------------------------------------------

    def _apply(self, bio: Bio) -> float:
        """Validate and apply the logical effect of ``bio``.

        Returns extra service time (seconds) beyond the base model — used
        by the conventional SSD to charge garbage-collection work to the
        triggering write.  Raises ``DeviceError`` on invalid commands.
        """
        raise NotImplementedError

    def _persist(self, bio: Bio) -> None:
        """Apply durability effects at completion (flush / FUA semantics)."""
        raise NotImplementedError

    # -- internals --------------------------------------------------------------

    def _grant(self, bio: Bio, extra_time: float, done: Event) -> None:
        """A channel is ours: hold it for the occupancy time."""
        occupancy = self.model.occupancy_time(bio.op, bio.length, self._rng)
        if self.service_delay_hook is not None:
            occupancy += self.service_delay_hook(self, bio)
        self.sim.schedule(occupancy + extra_time, self._channel_done, bio, done)

    def _channel_done(self, bio: Bio, done: Event) -> None:
        """Occupancy over: free the channel, wait out the pipeline latency."""
        self.channels.release()
        pipeline = self.model.pipeline_latency(bio.op)
        if pipeline > 0:
            self.sim.schedule(pipeline, self._complete, bio, done)
        else:
            self._complete(bio, done)

    def _reject(self, bio: Bio, done: Event, exc: BaseException) -> None:
        """Deliver a command error: fail the event, or — when the submitter
        opted in via ``bio.errors_as_status`` — complete the bio with
        ``bio.error`` set so the caller can recover per-bio instead of
        having a gathered fan-out unwind on the first failure."""
        if bio.errors_as_status:
            bio.error = exc
            self.sim.schedule(0.0, self._complete_errored, bio, done)
        else:
            self.sim.schedule(0.0, done.fail, exc)

    def _complete_errored(self, bio: Bio, done: Event) -> None:
        bio.complete_time = self.sim.now
        done.succeed(bio)

    def _complete(self, bio: Bio, done: Event) -> None:
        if self.failed:
            self._fail_inflight(bio, done,
                                DeviceFailedError(f"{self.name} failed mid-IO"))
            return
        if not self.powered:
            self._fail_inflight(bio, done,
                                PowerLossError(f"{self.name} lost power mid-IO"))
            return
        self._persist(bio)
        self.stats.account(bio)
        bio.complete_time = self.sim.now
        done.succeed(bio)
        if self.completion_hook is not None:
            self.completion_hook(self, bio)

    def _fail_inflight(self, bio: Bio, done: Event, exc: BaseException) -> None:
        if bio.errors_as_status:
            bio.error = exc
            bio.complete_time = self.sim.now
            done.succeed(bio)
        else:
            done.fail(exc)

    # -- fault injection ---------------------------------------------------------

    def fail_device(self) -> None:
        """Mark the device failed; all current and future IO errors out."""
        self.failed = True

    def power_off(self) -> None:
        """Cut power: in-flight/unflushed state handling is subclass-defined."""
        self.powered = False

    def power_on(self) -> None:
        """Restore power after ``power_off``."""
        self.powered = True

    # -- convenience coroutines (for use inside simulated processes) -------------

    def read(self, offset: int, length: int):
        """Process-style read: ``data = yield from dev.read(off, n)``."""
        bio = yield self.submit(Bio.read(offset, length))
        return bio.result

    def write(self, offset: int, data: bytes, flags: BioFlags = BioFlags.NONE):
        """Process-style write; returns the completed bio."""
        bio = yield self.submit(Bio.write(offset, data, flags))
        return bio

    def flush(self):
        """Process-style cache flush."""
        bio = yield self.submit(Bio.flush())
        return bio
