"""Bio: the unit of IO between layers, modelled on the Linux block layer.

RAIZN is a device-mapper target, so its interface contract is expressed in
terms of bios and their flags: ``REQ_OP_*`` operation codes plus the
``REQ_FUA`` and ``REQ_PREFLUSH`` persistence flags (paper §5.3).  This
module reproduces that vocabulary.
"""

from __future__ import annotations

import enum
from typing import Optional

from ..errors import InvalidAddressError
from ..units import SECTOR_SIZE


class Op(enum.Enum):
    """Bio operation codes (subset of Linux ``REQ_OP_*`` relevant to ZNS)."""

    READ = "read"
    WRITE = "write"
    FLUSH = "flush"
    DISCARD = "discard"
    ZONE_APPEND = "zone_append"
    ZONE_RESET = "zone_reset"
    ZONE_FINISH = "zone_finish"
    ZONE_OPEN = "zone_open"
    ZONE_CLOSE = "zone_close"


class BioFlags(enum.IntFlag):
    """Persistence flags carried by a bio."""

    NONE = 0
    #: Forced unit access: the write itself must be durable before completion.
    FUA = 1
    #: Flush the device write cache before executing this bio.
    PREFLUSH = 2


#: Plain-int flag masks for the per-command hot path.
_FUA = int(BioFlags.FUA)
_PREFLUSH = int(BioFlags.PREFLUSH)


class Bio:
    """One IO request.

    ``offset`` and data lengths are in bytes.  WRITE and ZONE_APPEND carry
    ``data``; READ carries ``length``; zone-management ops carry only the
    zone-identifying ``offset``.  After completion, ``result`` holds the
    bytes read (READ) or the byte address at which data landed
    (ZONE_APPEND).
    """

    __slots__ = (
        "op",
        "offset",
        "data",
        "length",
        "flags",
        "result",
        "error",
        "errors_as_status",
        "submit_time",
        "complete_time",
        "aux",
        "wctx",
        "counted",
        "span",
        "span_grant",
    )

    def __init__(
        self,
        op: Op,
        offset: int = 0,
        data: Optional[bytes] = None,
        length: int = 0,
        flags: BioFlags = BioFlags.NONE,
    ):
        if offset < 0:
            raise InvalidAddressError(f"negative bio offset: {offset}")
        if op is Op.WRITE or op is Op.ZONE_APPEND:
            if data is None:
                raise ValueError(f"{op.value} bio requires data")
            length = len(data)
        elif op is Op.READ:
            if length <= 0:
                raise ValueError("READ bio requires a positive length")
        self.op = op
        self.offset = offset
        self.data = data
        self.length = length
        # Stored as a plain int: IntFlag arithmetic costs a dynamic class
        # lookup per `&`, and flags are tested on every command.  IntFlag
        # members compare and combine with ints transparently.
        self.flags = int(flags)
        self.result: object = None
        #: The ``DeviceError`` this bio completed with, when the submitter
        #: opted into error-status completion (see ``errors_as_status``).
        self.error: Optional[BaseException] = None
        #: Opt-in: a device error *completes* the bio with ``error`` set
        #: instead of failing the completion event.  Mirrors the block
        #: layer's ``bio->bi_status``: a driver that checks status gets the
        #: failing bio back; everyone else keeps the legacy raise behaviour.
        self.errors_as_status = False
        self.submit_time: Optional[float] = None
        self.complete_time: Optional[float] = None
        #: Device-private scratch (e.g. flush snapshots); not for callers.
        self.aux: object = None
        #: Submitter-private context rider: the RAIZN write path parks its
        #: per-attempt join state here so the device completion callback
        #: can be one shared bound method instead of a closure per command.
        self.wctx: object = None
        #: Set once the bio has been charged to ``DeviceStats`` — stats
        #: count logical commands, so a resubmission (retry) of the same
        #: bio must not count again.
        self.counted = False
        #: Trace state while this bio is in flight on a device (see
        #: :mod:`repro.trace`); None unless tracing is enabled, else the
        #: parent-span id (an int, ``-1`` for no parent) captured at
        #: submission.  With ``span_grant`` — the channel-grant time
        #: stamped by ``_grant`` — the device folds a full span into the
        #: trace ring at completion without allocating anything.
        self.span = None
        self.span_grant = 0.0

    # -- constructors ---------------------------------------------------------

    @classmethod
    def fast_write(cls, offset: int, data, flags: int) -> "Bio":
        """Bare WRITE construction for trusted internal fan-out.

        Skips ``__init__``'s argument validation: the RAIZN write path
        derives its sub-bio offsets and payload slices from an already
        validated logical bio, and the constructor showed up in datapath
        profiles at one allocation per device command.  ``flags`` must
        already be a plain int.
        """
        bio = cls.__new__(cls)
        bio.op = Op.WRITE
        bio.offset = offset
        bio.data = data
        bio.length = len(data)
        bio.flags = flags
        bio.result = None
        bio.error = None
        bio.errors_as_status = False
        bio.submit_time = None
        bio.complete_time = None
        bio.aux = None
        bio.wctx = None
        bio.counted = False
        bio.span = None
        bio.span_grant = 0.0
        return bio

    @classmethod
    def fast_append(cls, zone_start: int, data, flags: int) -> "Bio":
        """Bare ZONE_APPEND construction for trusted internal callers.

        Same contract as :meth:`fast_write`: the metadata-zone append
        path validates its zone-start offsets itself and encodes flags
        as a plain int already.
        """
        bio = cls.__new__(cls)
        bio.op = Op.ZONE_APPEND
        bio.offset = zone_start
        bio.data = data
        bio.length = len(data)
        bio.flags = flags
        bio.result = None
        bio.error = None
        bio.errors_as_status = False
        bio.submit_time = None
        bio.complete_time = None
        bio.aux = None
        bio.wctx = None
        bio.counted = False
        bio.span = None
        bio.span_grant = 0.0
        return bio

    @classmethod
    def read(cls, offset: int, length: int) -> "Bio":
        """A read of ``length`` bytes at byte ``offset``."""
        return cls(Op.READ, offset=offset, length=length)

    @classmethod
    def write(cls, offset: int, data: bytes, flags: BioFlags = BioFlags.NONE) -> "Bio":
        """A write of ``data`` at byte ``offset``.

        ``data`` may be any readable buffer (``bytes``, ``bytearray``,
        ``memoryview``); it is NOT copied.  The caller must not mutate the
        buffer while the bio is in flight — the RAIZN fan-out path exploits
        this to slice one logical payload into stripe units without a copy
        per unit.
        """
        return cls(Op.WRITE, offset=offset, data=data, flags=flags)

    @classmethod
    def zone_append(cls, zone_start: int, data: bytes,
                    flags: BioFlags = BioFlags.NONE) -> "Bio":
        """A zone append into the zone starting at byte ``zone_start``.

        Like :meth:`write`, ``data`` is borrowed, not copied.
        """
        return cls(Op.ZONE_APPEND, offset=zone_start, data=data, flags=flags)

    @classmethod
    def flush(cls) -> "Bio":
        """A standalone cache flush (``REQ_OP_FLUSH``)."""
        return cls(Op.FLUSH)

    @classmethod
    def zone_reset(cls, zone_start: int) -> "Bio":
        """Reset the zone starting at byte ``zone_start``."""
        return cls(Op.ZONE_RESET, offset=zone_start)

    @classmethod
    def zone_finish(cls, zone_start: int) -> "Bio":
        """Transition the zone starting at ``zone_start`` to FULL."""
        return cls(Op.ZONE_FINISH, offset=zone_start)

    @classmethod
    def zone_open(cls, zone_start: int) -> "Bio":
        """Explicitly open the zone starting at ``zone_start``."""
        return cls(Op.ZONE_OPEN, offset=zone_start)

    @classmethod
    def zone_close(cls, zone_start: int) -> "Bio":
        """Close the zone starting at ``zone_start``."""
        return cls(Op.ZONE_CLOSE, offset=zone_start)

    # -- properties -----------------------------------------------------------

    @property
    def is_fua(self) -> bool:
        return bool(self.flags & _FUA)

    @property
    def is_preflush(self) -> bool:
        return bool(self.flags & _PREFLUSH)

    @property
    def end_offset(self) -> int:
        """One past the last byte this bio touches."""
        return self.offset + self.length

    @property
    def latency(self) -> float:
        """Completion minus submission time; only valid after completion."""
        if self.submit_time is None or self.complete_time is None:
            raise ValueError("bio has not completed")
        return self.complete_time - self.submit_time

    def check_alignment(self) -> None:
        """Raise unless offset and length are sector aligned (data ops only)."""
        op = self.op
        if op is Op.READ or op is Op.WRITE or op is Op.ZONE_APPEND:
            if self.offset % SECTOR_SIZE or self.length % SECTOR_SIZE:
                raise InvalidAddressError(
                    f"{self.op.value} bio not sector aligned: "
                    f"offset={self.offset:#x} length={self.length:#x}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Bio {self.op.value} off={self.offset:#x} "
                f"len={self.length:#x} flags={self.flags!r}>")
