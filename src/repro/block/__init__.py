"""Block-layer abstractions: bios, devices, and the service-time model."""

from .bio import Bio, BioFlags, Op
from .device import BlockDevice, DeviceStats
from .timing import ServiceTimeModel, conventional_ssd_model, zns_zn540_model

__all__ = [
    "Bio",
    "BioFlags",
    "Op",
    "BlockDevice",
    "DeviceStats",
    "ServiceTimeModel",
    "conventional_ssd_model",
    "zns_zn540_model",
]
