"""Systematic crash-state enumeration at bio-completion boundaries.

Random power-cut testing (``power_cycle`` + a seeded RNG) samples one
survivor state per crash instant; bugs that need a *specific* combination
of per-zone durable prefixes stay hidden.  This module instead treats a
crash as two explicit choices:

1. **When** — a bio-completion boundary.  Completions are the instants at
   which the set of acknowledged IOs changes, so crashing "after the k-th
   completion" covers every distinct acked-set the workload can observe.
   :class:`CompletionBoundaries` counts completions array-wide and can
   snapshot the full device state at chosen boundaries without perturbing
   the run (snapshots are pure copies; no events are scheduled).

2. **What survives** — one legal survivor state per dirty zone, drawn
   from :meth:`ZNSDevice.survivor_state_space` (the per-zone durable
   prefixes the ZNS persistence contract admits).  The cross-zone product
   is usually astronomical, so :func:`enumerate_survivor_assignments`
   samples it under a budget while always including the two corners that
   most often break recovery: all-min (only flushed data survives) and
   all-max (the entire write cache survives).

The explorer in :mod:`repro.harness.crashtest` glues these to the
durability oracle in :mod:`repro.faults.oracle`.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..block.bio import Bio
from ..block.device import BlockDevice
from ..zns.device import ZNSDevice


class CompletionBoundaries:
    """Array-wide completion counter with snapshot and crash triggers.

    Installs itself as every device's ``completion_hook``.  The hook runs
    right after a bio's completion event fires, so boundary ``k`` means
    "completions 1..k were acknowledged, nothing later was".

    ``snapshot_at`` names boundaries at which to capture a
    :meth:`~repro.zns.device.ZNSDevice.crash_snapshot` of every device
    (the run continues undisturbed — this is how one trace pass collects
    many crash candidates).  ``crash_after`` cuts power on all devices at
    that boundary instead, for direct fault injection.  ``aux_state`` is
    an optional zero-argument callable whose return value is stored next
    to each snapshot — the crash-test harness uses it to freeze the
    workload's expectation model at the same instant.

    Hook discipline: any ``completion_hook`` already installed (e.g. a
    :class:`~repro.faults.errinject.FaultPlan`'s) keeps running — it is
    chained *before* the counter, so a snapshot at boundary ``k``
    captures the device after every effect of the k-th completion,
    injected faults included.
    """

    def __init__(self, devices: Sequence[BlockDevice],
                 snapshot_at: Iterable[int] = (),
                 crash_after: Optional[int] = None,
                 aux_state=None):
        self.devices = list(devices)
        self.snapshot_at = set(snapshot_at)
        self.crash_after = crash_after
        self.aux_state = aux_state
        self.count = 0
        self.fired = False
        self.armed = True
        #: boundary -> (per-device snapshots, aux_state() result)
        self.snapshots: Dict[int, Tuple[List[Tuple], object]] = {}
        #: (device, previous hook, installed wrapper) per device, so
        #: disarm can restore exactly what it displaced.
        self._installed: List[Tuple[BlockDevice, object, object]] = []
        for dev in self.devices:
            prev = dev.completion_hook

            def hook(device, bio, _chained=prev):
                if _chained is not None:
                    _chained(device, bio)
                if self.armed:
                    self._on_complete(device, bio)
            self._installed.append((dev, prev, hook))
            dev.completion_hook = hook

    def _on_complete(self, device: BlockDevice, bio: Bio) -> None:
        if self.fired:
            return
        self.count += 1
        k = self.count
        if k in self.snapshot_at:
            snaps = [dev.crash_snapshot() for dev in self.devices]
            aux = self.aux_state() if self.aux_state is not None else None
            self.snapshots[k] = (snaps, aux)
        if self.crash_after is not None and k >= self.crash_after:
            self.fired = True
            for dev in self.devices:
                dev.power_off()

    def disarm(self) -> None:
        """Stop counting and restore each device's previous hook.

        If another hook was layered on top after this one (its closure
        chains to our wrapper), the wrapper cannot be unlinked — it stays
        in the chain as a pass-through instead, so the later hook keeps
        working and the counter goes permanently quiet rather than
        leaking live tracing forever.
        """
        self.armed = False
        for dev, prev, hook in self._installed:
            if dev.completion_hook is hook:
                dev.completion_hook = prev
        self._installed = []


# -- array-wide snapshot helpers --------------------------------------------------


def array_crash_snapshot(devices: Iterable[ZNSDevice]) -> List[Tuple]:
    """Snapshot every device (event loop must be quiescent)."""
    return [dev.crash_snapshot() for dev in devices]


def array_restore_crash_snapshot(devices: Iterable[ZNSDevice],
                                 snapshots: Sequence[Tuple]) -> None:
    """Restore every device from :func:`array_crash_snapshot` output."""
    for dev, snapshot in zip(devices, snapshots):
        dev.restore_crash_snapshot(snapshot)


def apply_survivor_assignment(devices: Sequence[ZNSDevice],
                              assignment: Sequence[Dict[int, int]],
                              restore_power: bool = True) -> None:
    """Crash the array into one chosen survivor state.

    ``assignment`` holds one ``{zone_index: survivor_wp}`` mapping per
    device (see :func:`enumerate_survivor_assignments`); unnamed zones
    keep only their durable prefix.  Power is restored afterwards unless
    ``restore_power`` is false, leaving the array ready to mount.
    """
    for dev, survivors in zip(devices, assignment):
        dev.power_fail_to(survivors)
    if restore_power:
        for dev in devices:
            dev.power_on()


def array_state_fingerprint(devices: Iterable[ZNSDevice]) -> str:
    """Stable hash of the array's durable state, for distinctness counts.

    Covers each zone's state, pointers, and written media prefix, so two
    crash states that differ in any recoverable way hash differently
    while re-explorations of the same state collapse to one entry in the
    coverage report.
    """
    digest = hashlib.blake2b(digest_size=16)
    for dev in devices:
        for zone in dev.zones:
            digest.update(
                f"{zone.index},{zone.state.value},{zone.write_pointer},"
                f"{zone.durable_pointer},{int(zone.finished_by_command)};"
                .encode())
            digest.update(dev._media[zone.start:zone.write_pointer])
    return digest.hexdigest()


# -- survivor-state products ------------------------------------------------------


def survivor_product_size(spaces: Sequence[Dict[int, List[int]]]) -> int:
    """Number of distinct crash states the per-zone choices span."""
    product = 1
    for space in spaces:
        for states in space.values():
            product *= len(states)
    return product


def enumerate_survivor_assignments(
    spaces: Sequence[Dict[int, List[int]]],
    budget: int,
    rng: random.Random,
) -> Tuple[List[List[Dict[int, int]]], int]:
    """Sample survivor assignments from the cross-zone product.

    ``spaces`` is one :meth:`ZNSDevice.survivor_state_space` mapping per
    device.  Returns ``(assignments, product_size)`` where each
    assignment lists, per device, the survivor write pointer chosen for
    each dirty zone.  The all-min and all-max corners are always
    included; the rest are drawn uniformly at random, deduplicated, and
    bounded by ``budget``.
    """
    choices = [(d, zone, states)
               for d, space in enumerate(spaces)
               for zone, states in sorted(space.items())]
    product = survivor_product_size(spaces)

    def build(pick) -> List[Dict[int, int]]:
        out: List[Dict[int, int]] = [dict() for _ in spaces]
        for d, zone, states in choices:
            out[d][zone] = pick(states)
        return out

    def key(assignment) -> Tuple:
        return tuple(tuple(sorted(m.items())) for m in assignment)

    assignments: List[List[Dict[int, int]]] = []
    seen = set()
    for corner in (build(lambda s: s[0]), build(lambda s: s[-1])):
        corner_key = key(corner)
        if corner_key not in seen:
            seen.add(corner_key)
            assignments.append(corner)
    target = min(budget, product)
    attempts = 0
    # Rejection sampling with a bounded number of draws: near-exhausted
    # products would otherwise loop forever re-drawing duplicates.
    while len(assignments) < target and attempts < 20 * budget:
        attempts += 1
        candidate = build(rng.choice)
        candidate_key = key(candidate)
        if candidate_key not in seen:
            seen.add(candidate_key)
            assignments.append(candidate)
    return assignments, product
