"""Device-failure fault injection (paper §4.2, §6.2).

Thin orchestration over the volume-level failure APIs: fail a device,
replace it with a fresh one of the same geometry, and end-of-life zone
failures (READ_ONLY / OFFLINE transitions) on individual zones.
"""

from __future__ import annotations

from typing import Optional

from ..raizn.rebuild import RebuildReport, rebuild
from ..raizn.volume import RaiznVolume
from ..sim import Simulator
from ..zns.device import ZNSDevice


def fresh_replacement(sim: Simulator, template: ZNSDevice, name: str,
                      seed: int = 4242) -> ZNSDevice:
    """A blank device matching ``template``'s geometry."""
    return ZNSDevice(
        sim, name=name, num_zones=template.num_zones,
        zone_capacity=template.zone_capacity, zone_size=template.zone_size,
        model=template.model, max_open_zones=template.max_open_zones,
        max_active_zones=template.max_active_zones,
        atomic_write_bytes=template.atomic_write_bytes,
        zone_reset_limit=template.zone_reset_limit, seed=seed)


def fail_and_rebuild(sim: Simulator, volume: RaiznVolume, index: int,
                     replacement: Optional[ZNSDevice] = None,
                     seed: int = 4242) -> RebuildReport:
    """Fail device ``index``, replace it, and rebuild synchronously."""
    template = next(d for d in volume.devices if d is not None)
    volume.fail_device(index)
    if replacement is None:
        replacement = fresh_replacement(sim, template,
                                        name=f"replacement{index}",
                                        seed=seed)
    return rebuild(sim, volume, index, replacement)


def wear_out_zone(device: ZNSDevice, zone_index: int,
                  offline: bool = False) -> None:
    """Inject an end-of-life failure on one zone (§2.1 failure states)."""
    if offline:
        device.set_zone_offline(zone_index)
    else:
        device.set_zone_read_only(zone_index)
