"""Power-loss fault injection.

The ZNS device already models the physics (an arbitrary whole number of
atomic write units of each zone's unflushed tail survives a power cut,
per-zone prefix order preserved); this module provides the orchestration:
cutting power across a whole array at a chosen moment — wall-clock or
"after the Nth write" — running a workload through the cut, and cycling
power back for recovery testing.
"""

from __future__ import annotations

import random
from typing import Iterable, List, Optional

from ..block.bio import Bio, Op
from ..block.device import BlockDevice
from ..errors import ReproError
from ..sim import Process, Simulator
from ..zns.device import ZNSDevice


def power_fail_array(devices: Iterable[BlockDevice],
                     rng: Optional[random.Random] = None) -> None:
    """Cut power on every device; unflushed write-cache contents are lost."""
    rng = rng or random.Random(0)
    for dev in devices:
        if isinstance(dev, ZNSDevice):
            dev.power_fail(rng)
        else:
            dev.power_off()


def power_restore_array(devices: Iterable[BlockDevice]) -> None:
    """Power every device back on."""
    for dev in devices:
        dev.power_on()


def power_cycle(devices: Iterable[BlockDevice],
                rng: Optional[random.Random] = None) -> None:
    """Cut and immediately restore power (the remount comes separately)."""
    devices = list(devices)
    power_fail_array(devices, rng)
    power_restore_array(devices)


def tolerate_power_loss(gen):
    """Wrap a process generator so a power cut ends it instead of raising.

    Returns the generator's value, or None if the workload died to the
    injected fault.
    """
    try:
        result = yield from gen
    except ReproError:
        return None
    return result


def crash_during(sim: Simulator, devices: Iterable[BlockDevice],
                 workload, crash_time: float,
                 rng: Optional[random.Random] = None) -> Process:
    """Run ``workload`` (a generator), cutting array power at ``crash_time``.

    Returns the (completed or fault-terminated) workload process; the
    devices are left powered on, ready for a recovery mount.
    """
    devices = list(devices)
    proc = sim.process(tolerate_power_loss(workload))
    sim.run(until=crash_time)
    power_fail_array(devices, rng)
    sim.run()  # drain: in-flight IO fails into the tolerant wrapper
    power_restore_array(devices)
    return proc


class CrashPoint:
    """Deterministic crash trigger: cut array power on the Nth command.

    Installs itself as every device's ``pre_apply_hook`` and counts
    matching commands across the whole array; when the count reaches
    ``after``, power drops on all devices *before* that command applies —
    reproducing "the system lost power after only a subset of the
    sub-IOs reached the devices".

    Any ``pre_apply_hook`` already present (e.g. a
    :class:`~repro.faults.errinject.FaultPlan`'s) is chained ahead of
    the counter, so composing a crash trigger with error injection
    disables neither: a command the chained hook rejects never applies,
    and is therefore not counted as a crash candidate either.
    """

    def __init__(self, devices: List[BlockDevice], after: int,
                 ops: Optional[Iterable[Op]] = None,
                 rng: Optional[random.Random] = None):
        self.devices = devices
        self.remaining = after
        self.ops = set(ops) if ops is not None else None
        self.rng = rng or random.Random(0)
        self.fired = False
        self.armed = True
        self._installed = []
        for dev in devices:
            prev = dev.pre_apply_hook

            def hook(device, bio, _chained=prev):
                if _chained is not None:
                    _chained(device, bio)
                if self.armed:
                    self._count(device, bio)
            self._installed.append((dev, prev, hook))
            dev.pre_apply_hook = hook

    def _count(self, device: BlockDevice, bio: Bio) -> None:
        if self.fired:
            return
        if self.ops is not None and bio.op not in self.ops:
            return
        self.remaining -= 1
        if self.remaining <= 0:
            self.fired = True
            power_fail_array(self.devices, self.rng)

    def disarm(self) -> None:
        """Stop counting and restore each device's previous hook.

        A hook layered on top after arming keeps our wrapper in its
        chain; the wrapper turns into a pass-through (``armed`` is
        cleared) so the later hook keeps working and the trigger cannot
        fire again.
        """
        self.armed = False
        for dev, prev, hook in self._installed:
            if dev.pre_apply_hook is hook:
                dev.pre_apply_hook = prev
        self._installed = []
