"""Fault injection: power loss, crash points, device failures."""

from .devicefail import fail_and_rebuild, fresh_replacement, wear_out_zone
from .powerloss import (
    CrashPoint,
    crash_during,
    power_cycle,
    power_fail_array,
    power_restore_array,
    tolerate_power_loss,
)

__all__ = [
    "fail_and_rebuild",
    "fresh_replacement",
    "wear_out_zone",
    "CrashPoint",
    "crash_during",
    "power_cycle",
    "power_fail_array",
    "power_restore_array",
    "tolerate_power_loss",
]
