"""Fault injection: power loss, crash points, device failures, fail-slow.

The fail-slow (gray-failure) exports mirror the errinject pair:
:class:`SlowPlan` is the armable seeded plan, :class:`SlowCounts` its
injection tally, and :class:`SlowDeviceSpec` the per-device degradation
shape — with :func:`degraded_device` / :func:`stalling_device` /
:func:`ramping_device` as shorthand spec constructors.
"""

from .crashpoints import (
    CompletionBoundaries,
    apply_survivor_assignment,
    array_crash_snapshot,
    array_restore_crash_snapshot,
    array_state_fingerprint,
    enumerate_survivor_assignments,
    survivor_product_size,
)
from .devicefail import fail_and_rebuild, fresh_replacement, wear_out_zone
from .errinject import FaultCounts, FaultPlan
from .failslow import (
    SlowCounts,
    SlowDeviceSpec,
    SlowPlan,
    degraded_device,
    ramping_device,
    stalling_device,
)
from .oracle import (
    WorkloadExpectation,
    ZoneExpectation,
    check_mount_stability,
    check_persistence_bitmap_soundness,
    check_recovered_volume,
)
from .powerloss import (
    CrashPoint,
    crash_during,
    power_cycle,
    power_fail_array,
    power_restore_array,
    tolerate_power_loss,
)

__all__ = [
    "fail_and_rebuild",
    "fresh_replacement",
    "wear_out_zone",
    "FaultCounts",
    "FaultPlan",
    "SlowCounts",
    "SlowDeviceSpec",
    "SlowPlan",
    "degraded_device",
    "ramping_device",
    "stalling_device",
    "CompletionBoundaries",
    "apply_survivor_assignment",
    "array_crash_snapshot",
    "array_restore_crash_snapshot",
    "array_state_fingerprint",
    "enumerate_survivor_assignments",
    "survivor_product_size",
    "WorkloadExpectation",
    "ZoneExpectation",
    "check_mount_stability",
    "check_persistence_bitmap_soundness",
    "check_recovered_volume",
    "CrashPoint",
    "crash_during",
    "power_cycle",
    "power_fail_array",
    "power_restore_array",
    "tolerate_power_loss",
]
