"""Fault injection: power loss, crash points, device failures."""

from .crashpoints import (
    CompletionBoundaries,
    apply_survivor_assignment,
    array_crash_snapshot,
    array_restore_crash_snapshot,
    array_state_fingerprint,
    enumerate_survivor_assignments,
    survivor_product_size,
)
from .devicefail import fail_and_rebuild, fresh_replacement, wear_out_zone
from .errinject import FaultCounts, FaultPlan
from .oracle import (
    WorkloadExpectation,
    ZoneExpectation,
    check_mount_stability,
    check_persistence_bitmap_soundness,
    check_recovered_volume,
)
from .powerloss import (
    CrashPoint,
    crash_during,
    power_cycle,
    power_fail_array,
    power_restore_array,
    tolerate_power_loss,
)

__all__ = [
    "fail_and_rebuild",
    "fresh_replacement",
    "wear_out_zone",
    "FaultCounts",
    "FaultPlan",
    "CompletionBoundaries",
    "apply_survivor_assignment",
    "array_crash_snapshot",
    "array_restore_crash_snapshot",
    "array_state_fingerprint",
    "enumerate_survivor_assignments",
    "survivor_product_size",
    "WorkloadExpectation",
    "ZoneExpectation",
    "check_mount_stability",
    "check_persistence_bitmap_soundness",
    "check_recovered_volume",
    "CrashPoint",
    "crash_during",
    "power_cycle",
    "power_fail_array",
    "power_restore_array",
    "tolerate_power_loss",
]
