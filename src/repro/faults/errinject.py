"""Seeded latent/transient/wear-out error injection on live devices.

A :class:`FaultPlan` arms three classes of storage faults onto the ZNS
devices under a mounted volume, drawing every decision from one seeded
RNG so a campaign is reproducible bit-for-bit:

* **Latent (UNC) errors**: after a write completes, its just-programmed
  media extent is silently corrupted; the error surfaces only when the
  extent is next read, as a ``MediaError`` — the classic latent sector
  error a scrubber exists to find.
* **Transient command errors**: a command fails with
  ``TransientCommandError`` at submission; re-issuing the same command
  usually succeeds (each submission draws independently).
* **Wear-out**: after a configured number of writes into a victim zone,
  the zone transitions to READ_ONLY or OFFLINE (§2.1 end-of-life
  states), so the in-flight write — and everything after it — fails
  with ``ZoneStateError``.

Two safety rules keep every injected fault recoverable by single-parity
redundancy, so an integrity harness can demand zero violations:

* at most one latent error per stripe (tracked per ``(zone, stripe)``),
  and per-device caps so error-threshold eviction cannot strand a
  second device's unhealed errors;
* latent errors never land in a wear-victim zone — an OFFLINE zone
  already costs that stripe one unit, and a second loss would exceed
  what parity can reconstruct.

Faults target data zones only.  Metadata zones carry the partial-parity
and relocation logs that the heal machinery itself depends on; the
paper's failure model (§4.2) treats metadata loss as device loss, which
:mod:`repro.faults.devicefail` covers separately.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..block.bio import Bio, Op
from ..errors import TransientCommandError
from ..units import KiB
from ..zns.device import ZNSDevice


class FaultCounts:
    """Injected-fault tally, by class."""

    def __init__(self) -> None:
        self.latent = 0
        self.transient = 0
        self.wear = 0

    @property
    def total(self) -> int:
        return self.latent + self.transient + self.wear

    def to_dict(self) -> dict:
        return {
            "latent": self.latent,
            "transient": self.transient,
            "wear": self.wear,
            "total": self.total,
        }


class FaultPlan:
    """A deterministic, seeded error-injection plan over an array's devices.

    ``arm(devices)`` installs submission and completion hooks on each
    device (chaining any hooks already present); ``disarm()`` restores
    them.  All probability draws come from ``random.Random(seed)`` in
    command-submission order, so a fixed seed plus a deterministic
    workload reproduces the exact same fault sequence.

    ``wear_victims`` is a sequence of ``(device_index, zone_index,
    offline)`` triples; each victim zone wears out just before its
    ``wear_after_writes``-th write command (counted per device+zone
    while armed).
    """

    def __init__(
        self,
        seed: int = 0,
        num_data_zones: int = 0,
        stripe_unit_bytes: int = 64 * KiB,
        latent_rate: float = 0.0,
        transient_rate: float = 0.0,
        max_latent: Optional[int] = None,
        max_latent_per_device: Optional[int] = None,
        wear_victims: Sequence[Tuple[int, int, bool]] = (),
        wear_after_writes: int = 8,
    ):
        self.rng = random.Random(seed)
        self.num_data_zones = num_data_zones
        self.stripe_unit_bytes = stripe_unit_bytes
        self.latent_rate = latent_rate
        self.transient_rate = transient_rate
        self.max_latent = max_latent
        self.max_latent_per_device = max_latent_per_device
        self.wear_after_writes = wear_after_writes
        #: When set, transient faults hit only these device indices —
        #: used to drive one device over its error threshold.
        self.transient_targets: Optional[Set[int]] = None
        self.counts = FaultCounts()
        #: Stripes already carrying a latent error: (zone, stripe) keys.
        self._hit_stripes: Set[Tuple[int, int]] = set()
        #: Zones reserved for wear-out — excluded from latent injection.
        self._wear_zones: Set[int] = {zone for _d, zone, _o in wear_victims}
        self._wear_pending: Dict[Tuple[int, int], bool] = {
            (device, zone): offline for device, zone, offline in wear_victims}
        self._write_counts: Dict[Tuple[int, int], int] = {}
        self._latent_per_device: Dict[int, int] = {}
        self._devices: List[ZNSDevice] = []
        self._saved_hooks: List[Tuple[object, object]] = []
        self.armed = False

    # -- arming ----------------------------------------------------------------

    def arm(self, devices: Sequence[ZNSDevice]) -> None:
        """Install the plan's hooks on every device (index = array slot)."""
        if self.armed:
            raise RuntimeError("fault plan is already armed")
        self._devices = list(devices)
        self._saved_hooks = []
        for index, device in enumerate(self._devices):
            prev_pre = device.pre_apply_hook
            prev_done = device.completion_hook
            self._saved_hooks.append((prev_pre, prev_done))

            def pre(dev, bio, i=index, chained=prev_pre):
                if chained is not None:
                    chained(dev, bio)
                self._pre_apply(i, dev, bio)

            def done(dev, bio, i=index, chained=prev_done):
                self._on_complete(i, dev, bio)
                if chained is not None:
                    chained(dev, bio)
            device.pre_apply_hook = pre
            device.completion_hook = done
        self.armed = True

    def disarm(self) -> None:
        """Restore each device's original hooks."""
        if not self.armed:
            return
        for device, (prev_pre, prev_done) in zip(self._devices,
                                                 self._saved_hooks):
            device.pre_apply_hook = prev_pre
            device.completion_hook = prev_done
        self.armed = False

    # -- the hooks -------------------------------------------------------------

    def _pre_apply(self, index: int, device: ZNSDevice, bio: Bio) -> None:
        op = bio.op
        if op is not Op.READ and op is not Op.WRITE \
                and op is not Op.ZONE_APPEND:
            return
        zone = bio.offset // device.zone_size
        if zone >= self.num_data_zones:
            return
        if op is not Op.READ:
            key = (index, zone)
            if key in self._wear_pending:
                writes = self._write_counts.get(key, 0) + 1
                self._write_counts[key] = writes
                if writes >= self.wear_after_writes:
                    offline = self._wear_pending.pop(key)
                    if offline:
                        device.set_zone_offline(zone)
                    else:
                        device.set_zone_read_only(zone)
                    self.counts.wear += 1
                    # Fall through: the device's own state check now
                    # rejects this very write with ZoneStateError.
        if self.transient_targets is not None \
                and index not in self.transient_targets:
            return
        if self.transient_rate and self.rng.random() < self.transient_rate:
            self.counts.transient += 1
            raise TransientCommandError(
                f"{device.name}: injected transient failure "
                f"({bio.op.value} at {bio.offset:#x})")

    def _on_complete(self, index: int, device: ZNSDevice, bio: Bio) -> None:
        op = bio.op
        if op is not Op.WRITE and op is not Op.ZONE_APPEND:
            return
        if not self.latent_rate or bio.length == 0:
            return
        offset = bio.result if op is Op.ZONE_APPEND else bio.offset
        zone = offset // device.zone_size
        if zone >= self.num_data_zones or zone in self._wear_zones:
            return
        if self.max_latent is not None \
                and self.counts.latent >= self.max_latent:
            return
        if self.max_latent_per_device is not None \
                and self._latent_per_device.get(index, 0) \
                >= self.max_latent_per_device:
            return
        if self.rng.random() >= self.latent_rate:
            return
        stripe = (offset % device.zone_size) // self.stripe_unit_bytes
        if (zone, stripe) in self._hit_stripes:
            return
        self.inject_latent(index, offset, bio.length)

    # -- explicit injection ------------------------------------------------------

    def inject_latent(self, index: int, offset: int, length: int) -> None:
        """Corrupt ``length`` media bytes of device ``index`` at ``offset``.

        Used by the hooks and directly by campaigns that need a
        deterministic burst (e.g. driving one device over its error
        threshold).  Counted and stripe-tracked like any latent fault.
        """
        device = self._devices[index]
        device.mark_bad(offset, length)
        zone = offset // device.zone_size
        stripe = (offset % device.zone_size) // self.stripe_unit_bytes
        self._hit_stripes.add((zone, stripe))
        self._latent_per_device[index] = \
            self._latent_per_device.get(index, 0) + 1
        self.counts.latent += 1
