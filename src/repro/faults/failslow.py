"""Seeded fail-slow (gray-failure) injection on live devices.

Fail-stop faults are the easy case: a dead device stops answering and
the array reacts immediately.  Real ZNS deployments degrade long before
they die — per-device latency varies by orders of magnitude with zone
state and internal housekeeping, and a single fail-slow device stalls
every stripe it participates in while still answering "healthy".

A :class:`SlowPlan` arms four composable degradation shapes onto chosen
devices, drawing every probabilistic decision from one seeded RNG so a
campaign is reproducible bit-for-bit:

* **Persistent degradation** (``degrade_factor``): every command's
  nominal channel occupancy is multiplied — the device is uniformly
  N× slower, the classic worn-controller gray failure.
* **Intermittent stalls** (``stall_probability`` / ``stall_seconds``): a
  fraction of commands hit a multi-millisecond internal stall, the
  tail-latency signature of background housekeeping.
* **Ramping latency** (``ramp_per_second``): extra delay grows linearly
  with simulated time from the fault's onset, modelling slow decline.
* **Zone-state coupling** (``zone_fill_seconds``): extra delay scales
  with the target zone's fill fraction, following the ZNS
  characterization result that per-command cost climbs as a zone
  approaches capacity.

The plan injects through :attr:`~repro.block.device.BlockDevice.
service_delay_hook`, a separate hook from the error-injection hooks, so
it composes freely with a :class:`~repro.faults.errinject.FaultPlan`
armed on the same devices: a campaign can make one device slow *and*
error-prone at once.  The injected delay extends channel occupancy, so
a gray-failing device also inflicts queueing delay on the commands
stuck behind the slow one — the collateral damage that makes fail-slow
faults so expensive in practice.
"""

from __future__ import annotations

import dataclasses
import random
from typing import Dict, List, Optional, Sequence, Tuple

from ..block.bio import Bio, Op
from ..zns.device import ZNSDevice


@dataclasses.dataclass(frozen=True)
class SlowDeviceSpec:
    """Degradation shape for one device in a :class:`SlowPlan`.

    All shapes are additive: the injected delay for a command is the sum
    of every enabled term.  A spec with the defaults injects nothing.
    """

    #: Array slot of the victim device.
    device_index: int
    #: Persistent multiplier on the command's nominal (jitter-free)
    #: channel occupancy; ``1.0`` means no persistent degradation, ``4.0``
    #: makes every command take roughly 4x its healthy occupancy.
    degrade_factor: float = 1.0
    #: Probability that a command hits an internal stall.
    stall_probability: float = 0.0
    #: Stall duration in seconds (typically multi-millisecond).
    stall_seconds: float = 0.0
    #: Extra delay per command, growing linearly with simulated seconds
    #: elapsed since ``onset_s`` (slowly ramping decline).
    ramp_per_second: float = 0.0
    #: Extra delay per command, scaled by the target zone's fill
    #: fraction (ZNS zone-state-coupled housekeeping cost).
    zone_fill_seconds: float = 0.0
    #: Simulated seconds after arming before any degradation applies.
    onset_s: float = 0.0
    #: Restrict injection to reads (hedging experiments isolate the read
    #: path this way); by default writes and appends are slowed too.
    reads_only: bool = False


class SlowCounts:
    """Injected-delay tally, per device index."""

    def __init__(self) -> None:
        #: Commands that received any injected delay, per device.
        self.slowed_commands: Dict[int, int] = {}
        #: Intermittent stalls that fired, per device.
        self.stalls: Dict[int, int] = {}
        #: Total injected delay in seconds, per device.
        self.delay_seconds: Dict[int, float] = {}

    def note(self, index: int, delay: float, stalled: bool) -> None:
        self.slowed_commands[index] = self.slowed_commands.get(index, 0) + 1
        if stalled:
            self.stalls[index] = self.stalls.get(index, 0) + 1
        self.delay_seconds[index] = \
            self.delay_seconds.get(index, 0.0) + delay

    def to_dict(self) -> dict:
        return {
            "slowed_commands": dict(self.slowed_commands),
            "stalls": dict(self.stalls),
            "delay_seconds": {index: round(seconds, 6) for index, seconds
                              in self.delay_seconds.items()},
        }


class SlowPlan:
    """A deterministic, seeded fail-slow plan over an array's devices.

    ``arm(devices)`` installs a service-delay hook on every device named
    by a :class:`SlowDeviceSpec` (chaining any hook already present);
    ``disarm()`` restores them.  All probability draws come from
    ``random.Random(seed)`` in channel-grant order, so a fixed seed plus
    a deterministic workload reproduces the exact same delay sequence.
    """

    def __init__(self, seed: int = 0,
                 specs: Sequence[SlowDeviceSpec] = ()):
        self.rng = random.Random(seed)
        self.specs: Dict[int, SlowDeviceSpec] = {
            spec.device_index: spec for spec in specs}
        if len(self.specs) != len(specs):
            raise ValueError("one SlowDeviceSpec per device index")
        self.counts = SlowCounts()
        self._devices: List[ZNSDevice] = []
        self._saved_hooks: List[object] = []
        self._armed_at = 0.0
        self.armed = False

    # -- arming ----------------------------------------------------------------

    def arm(self, devices: Sequence[ZNSDevice]) -> None:
        """Install the delay hook on every spec'd device (index = slot)."""
        if self.armed:
            raise RuntimeError("slow plan is already armed")
        self._devices = list(devices)
        self._saved_hooks = []
        self._armed_at = devices[0].sim.now if devices else 0.0
        for index, device in enumerate(self._devices):
            prev = device.service_delay_hook
            self._saved_hooks.append(prev)
            if index not in self.specs:
                continue

            def hook(dev, bio, i=index, chained=prev):
                delay = self._delay(i, dev, bio)
                if chained is not None:
                    delay += chained(dev, bio)
                return delay
            device.service_delay_hook = hook
        self.armed = True

    def disarm(self) -> None:
        """Restore each device's original delay hook."""
        if not self.armed:
            return
        for device, prev in zip(self._devices, self._saved_hooks):
            device.service_delay_hook = prev
        self.armed = False

    # -- the hook --------------------------------------------------------------

    def _delay(self, index: int, device: ZNSDevice, bio: Bio) -> float:
        spec = self.specs[index]
        now = device.sim.now
        onset = self._armed_at + spec.onset_s
        if now < onset:
            return 0.0
        op = bio.op
        if spec.reads_only and op is not Op.READ:
            return 0.0
        delay = 0.0
        stalled = False
        if spec.degrade_factor > 1.0:
            nominal = device.model.occupancy_time(op, bio.length, None)
            delay += (spec.degrade_factor - 1.0) * nominal
        if spec.stall_probability > 0.0 and \
                self.rng.random() < spec.stall_probability:
            delay += spec.stall_seconds
            stalled = True
        if spec.ramp_per_second > 0.0:
            delay += spec.ramp_per_second * (now - onset)
        if spec.zone_fill_seconds > 0.0 and isinstance(device, ZNSDevice):
            zone = bio.offset // device.zone_size
            if 0 <= zone < device.num_zones:
                delay += spec.zone_fill_seconds * \
                    device.zone_fill_fraction(zone)
        if delay > 0.0:
            self.counts.note(index, delay, stalled)
        return delay


def degraded_device(device_index: int, factor: float = 4.0,
                    onset_s: float = 0.0) -> SlowDeviceSpec:
    """Spec for a persistently ``factor``-times-slower device."""
    return SlowDeviceSpec(device_index=device_index, degrade_factor=factor,
                          onset_s=onset_s)


def stalling_device(device_index: int, probability: float = 0.2,
                    stall_seconds: float = 5e-3,
                    onset_s: float = 0.0) -> SlowDeviceSpec:
    """Spec for a device with intermittent multi-millisecond stalls."""
    return SlowDeviceSpec(device_index=device_index,
                          stall_probability=probability,
                          stall_seconds=stall_seconds, onset_s=onset_s)


def ramping_device(device_index: int, ramp_per_second: float,
                   onset_s: float = 0.0) -> SlowDeviceSpec:
    """Spec for a device whose latency climbs linearly after onset."""
    return SlowDeviceSpec(device_index=device_index,
                          ramp_per_second=ramp_per_second, onset_s=onset_s)
