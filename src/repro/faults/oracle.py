"""Durability oracle for crash-state exploration.

The paper's recovery claim (§4.3, §5.1–§5.3) boils down to three
obligations a recovered volume owes the workload that was running when
power died:

* **No acked data lost** — every byte whose FLUSH or FUA acknowledgement
  the workload observed is readable and content-exact.
* **No invented data** — the recovered write pointer never exceeds what
  was actually submitted, and everything below it is a byte-exact prefix
  of the submitted stream (ZNS zones are sequential, so "prefix" is the
  whole consistency story per zone).
* **Stability** — mounting is idempotent: a second mount (or a crash
  after recovery finished) must not move write pointers or change
  content, because recovery declared that state durable.

:class:`WorkloadExpectation` tracks the first two bounds alongside a
*synchronous* workload (each volume op acked before the next is issued —
that restriction is what makes "acked" well-defined without modelling IO
overlap); the ``check_*`` functions compare a mounted volume against it.
"""

from __future__ import annotations

from typing import List

from ..block.bio import Bio


class ZoneExpectation:
    """What the workload knows about one logical zone."""

    __slots__ = ("submitted", "synced", "resetting")

    def __init__(self) -> None:
        #: Every byte submitted to the zone, in write order — the upper
        #: bound on what recovery may present (includes unacked tails).
        self.submitted = bytearray()
        #: The acked-durable frontier: bytes below this must survive.
        self.synced = 0
        #: A zone reset was submitted but its ack never arrived; both the
        #: old content (reset never started) and an empty zone (recovery
        #: replayed the reset WAL) are legal outcomes.
        self.resetting = False

    def copy(self) -> "ZoneExpectation":
        dup = ZoneExpectation()
        dup.submitted = bytearray(self.submitted)
        dup.synced = self.synced
        dup.resetting = self.resetting
        return dup


class WorkloadExpectation:
    """Per-zone durability obligations of a running synchronous workload.

    The workload driver calls the ``note_*`` methods at submit/ack time;
    ``copy()`` freezes the model at a crash instant (the crash-point
    explorer snapshots it at every completion boundary it samples).
    """

    def __init__(self, num_zones: int, zone_capacity: int):
        self.zone_capacity = zone_capacity
        self.zones = [ZoneExpectation() for _ in range(num_zones)]

    def copy(self) -> "WorkloadExpectation":
        dup = WorkloadExpectation(0, self.zone_capacity)
        dup.zones = [z.copy() for z in self.zones]
        return dup

    # -- notes from the workload driver ------------------------------------------

    def note_submit_write(self, zone: int, data: bytes) -> None:
        self.zones[zone].submitted.extend(data)

    def note_write_acked(self, zone: int, fua: bool) -> None:
        if fua:
            # FUA persistence is prefix-ordered within the zone: the ack
            # covers this write and everything submitted before it.
            self.zones[zone].synced = len(self.zones[zone].submitted)

    def note_flush_acked(self) -> None:
        # Synchronous workload: every prior write completed before the
        # flush was issued, so the whole submitted stream is now durable.
        for zone in self.zones:
            zone.synced = len(zone.submitted)

    def note_submit_reset(self, zone: int) -> None:
        self.zones[zone].resetting = True

    def note_reset_acked(self, zone: int) -> None:
        self.zones[zone] = ZoneExpectation()

    def next_write_offset(self, zone: int) -> int:
        """Zone-relative offset the next sequential write must target."""
        return len(self.zones[zone].submitted)


# -- checks ----------------------------------------------------------------------


def check_recovered_volume(volume, expect: WorkloadExpectation) -> List[str]:
    """Black-box durability check of a freshly mounted volume.

    Returns human-readable violation strings (empty list = oracle
    passed).  Reads go through the normal volume read path, so parity
    reconstruction and relocation stitching are exercised too.
    """
    violations: List[str] = []
    for zone in range(volume.num_data_zones):
        exp = expect.zones[zone]
        desc = volume.zone_descs[zone]
        wp = desc.write_pointer - desc.start_lba
        if exp.resetting and wp == 0:
            continue  # recovery completed the interrupted reset
        if not exp.synced <= wp <= len(exp.submitted):
            violations.append(
                f"zone {zone}: recovered write pointer {wp:#x} outside "
                f"legal range [{exp.synced:#x}, {len(exp.submitted):#x}]"
                + (" (reset in flight)" if exp.resetting else ""))
            continue
        if wp == 0:
            continue
        got = bytes(volume.execute(Bio.read(desc.start_lba, wp)).result)
        want = bytes(exp.submitted[:wp])
        if got != want:
            first_bad = next(
                offset for offset in range(wp) if got[offset] != want[offset])
            violations.append(
                f"zone {zone}: recovered content diverges from the "
                f"submitted stream at zone offset {first_bad:#x} "
                f"(acked frontier {exp.synced:#x}, wp {wp:#x})")
    return violations


def check_mount_stability(volume, remounted) -> List[str]:
    """Recovery must be idempotent: a re-mount changes nothing visible."""
    violations: List[str] = []
    for zone in range(volume.num_data_zones):
        before = volume.zone_descs[zone]
        after = remounted.zone_descs[zone]
        if before.write_pointer != after.write_pointer:
            violations.append(
                f"zone {zone}: write pointer moved across remount "
                f"({before.write_pointer:#x} -> {after.write_pointer:#x})")
            continue
        wp = before.write_pointer - before.start_lba
        if wp == 0:
            continue
        first = bytes(volume.execute(Bio.read(before.start_lba, wp)).result)
        second = bytes(
            remounted.execute(Bio.read(after.start_lba, wp)).result)
        if first != second:
            violations.append(
                f"zone {zone}: content changed across remount")
    return violations


def check_persistence_bitmap_soundness(volume) -> List[str]:
    """White-box §5.3 check: a marked-persistent SU must be durable.

    ``volume._flush_unpersisted`` skips SUs the bitmap declares
    persistent, so a set bit over cache-only bytes means a later flush
    ack lies to the workload — exactly the class of bug a missing flush
    in the recovery path produces.  SUs covered by relocation units are
    exempt: their durable home is the metadata log, not the data zone.
    """
    violations: List[str] = []
    su = volume.config.stripe_unit_bytes
    for desc in volume.zone_descs:
        zone = desc.zone
        full_sus = (desc.write_pointer - desc.start_lba) // su
        for su_index in range(full_sus):
            if not desc.persistence.is_persisted(su_index):
                continue
            stripe = su_index // volume.config.num_data
            i = su_index % volume.config.num_data
            if volume.relocations.lookup(
                    volume.mapper.su_lba(zone, stripe, i)) is not None:
                continue
            device = volume.mapper.stripe_layout(zone, stripe).data_devices[i]
            if volume.devices[device] is None or volume.failed[device]:
                continue
            pba_end = zone * volume.phys_zone_size + (stripe + 1) * su
            durable = volume.devices[device].zones[zone].durable_pointer
            if durable < pba_end:
                violations.append(
                    f"zone {zone} SU {su_index}: bitmap says persistent "
                    f"but device {device} durable pointer {durable:#x} < "
                    f"{pba_end:#x}")
    return violations
