"""Simulated NVMe ZNS SSD.

Enforces the full interface contract RAIZN depends on (paper §2.1):

* sequential-write-only zones with a queryable write pointer,
* zone append returning the placement address,
* the zone state machine with an open-zone limit (14 on the ZN540),
* a volatile write cache with flush / FUA / preflush semantics and
  per-zone *prefix* persistence order,
* power-loss behaviour where an arbitrary whole number of atomic write
  units from each zone's unflushed tail survives.

Data is byte-backed: reads return exactly the bytes written, so parity
and recovery logic upstack is verified against real content.
"""

from __future__ import annotations

import random
from typing import Dict, List, Mapping, Optional, Set, Tuple

from ..errors import (
    InvalidAddressError,
    MediaError,
    OpenZoneLimitError,
    ReadUnwrittenError,
    WritePointerViolation,
    ZoneStateError,
)
from ..block.bio import _FUA as _BIO_FUA
from ..block.bio import _PREFLUSH as _BIO_PREFLUSH
from ..block.bio import Bio, Op
from ..block.device import BlockDevice
from ..block.timing import ServiceTimeModel, zns_zn540_model
from ..sim import Simulator
from ..units import SECTOR_SIZE
from .spec import (
    DEFAULT_MAX_ACTIVE_ZONES,
    DEFAULT_MAX_OPEN_ZONES,
    ZoneInfo,
    ZoneState,
)
from .zone import Zone


class ZNSDevice(BlockDevice):
    """A zoned-namespace SSD with byte-backed media."""

    #: ZNS service spans carry their own layer tag so the attribution
    #: report separates zone-command service time from generic block IO.
    trace_layer = "zns"

    def __init__(
        self,
        sim: Simulator,
        name: str = "zns0",
        num_zones: int = 32,
        zone_capacity: int = 4 * 1024 * 1024,
        zone_size: Optional[int] = None,
        model: Optional[ServiceTimeModel] = None,
        max_open_zones: int = DEFAULT_MAX_OPEN_ZONES,
        max_active_zones: int = DEFAULT_MAX_ACTIVE_ZONES,
        atomic_write_bytes: int = SECTOR_SIZE,
        zone_reset_limit: Optional[int] = None,
        seed: int = 0,
    ):
        if zone_size is None:
            zone_size = zone_capacity
        if zone_capacity % SECTOR_SIZE or zone_size % SECTOR_SIZE:
            raise InvalidAddressError("zone geometry must be sector aligned")
        if atomic_write_bytes % SECTOR_SIZE:
            raise InvalidAddressError("atomic write unit must be sector aligned")
        super().__init__(sim, name, zone_size * num_zones,
                         model or zns_zn540_model(), seed=seed)
        self.num_zones = num_zones
        self.zone_size = zone_size
        self.zone_capacity = zone_capacity
        self.max_open_zones = max_open_zones
        self.max_active_zones = max_active_zones
        self.atomic_write_bytes = atomic_write_bytes
        self.zones: List[Zone] = [
            Zone(i, i * zone_size, zone_size, zone_capacity)
            for i in range(num_zones)
        ]
        self._media = bytearray(self.size_bytes)
        self._open_count = 0
        self._active_count = 0
        #: Zones whose write pointer is ahead of their durable pointer —
        #: i.e. holding data only in the write cache.  Kept exact so flush
        #: snapshots are O(dirty zones) instead of O(all zones).
        self._dirty_zones: Set[int] = set()
        #: Latent-error (UNC) extents per zone index, as ``(start, end)``
        #: absolute byte spans.  Reads intersecting one raise MediaError;
        #: the empty dict costs nothing on the read hot path beyond one
        #: dict lookup.
        self._bad_extents: Dict[int, List[Tuple[int, int]]] = {}
        #: Finite erase endurance: each zone reset consumes one
        #: program/erase cycle from that zone's budget.  ``None`` models
        #: an unlimited device (the default); with a limit, the reset
        #: that spends the last cycle still succeeds but leaves the zone
        #: READ_ONLY — the §2.1 end-of-life transition — and further
        #: resets of that zone are rejected.
        self.zone_reset_limit = zone_reset_limit
        #: Lifetime reset count per zone index (sparse; absent == 0).
        self._reset_counts: Dict[int, int] = {}

    # -- address helpers --------------------------------------------------------

    def zone_index(self, offset: int) -> int:
        """Zone number containing byte ``offset``."""
        if not 0 <= offset < self.size_bytes:
            raise InvalidAddressError(
                f"{self.name}: offset {offset:#x} outside device")
        return offset // self.zone_size

    def zone_at(self, offset: int) -> Zone:
        """The ``Zone`` containing byte ``offset``."""
        return self.zones[self.zone_index(offset)]

    def report_zones(self) -> List[ZoneInfo]:
        """Snapshot of every zone (the NVMe Zone Management Receive report)."""
        return [zone.info() for zone in self.zones]

    def zone_info(self, index: int) -> ZoneInfo:
        """Snapshot of zone ``index``."""
        return self.zones[index].info()

    def zone_fill_fraction(self, index: int) -> float:
        """Written fraction of zone ``index``'s capacity, in [0, 1].

        Zone-state characterization studies show per-command latency on
        real ZNS devices growing with how full the target zone is (the
        device does more internal housekeeping near zone capacity); the
        fail-slow injector uses this to couple its ramp to zone state.
        """
        zone = self.zones[index]
        if self.zone_capacity == 0:
            return 0.0
        return (zone.write_pointer - zone.start) / self.zone_capacity

    @property
    def open_zone_count(self) -> int:
        return self._open_count

    @property
    def active_zone_count(self) -> int:
        return self._active_count

    # -- state machine ------------------------------------------------------------

    def _transition(self, zone: Zone, new_state: ZoneState) -> None:
        old = zone.state
        if old is new_state:
            return
        self._open_count += int(new_state.is_open) - int(old.is_open)
        self._active_count += int(new_state.is_active) - int(old.is_active)
        zone.state = new_state

    def _make_open(self, zone: Zone, explicit: bool) -> None:
        """Open ``zone``, honouring the open/active limits (§2.1)."""
        target = ZoneState.EXPLICIT_OPEN if explicit else ZoneState.IMPLICIT_OPEN
        if zone.state.is_open:
            if explicit and zone.state is ZoneState.IMPLICIT_OPEN:
                self._transition(zone, target)
            return
        if not zone.state.is_writable:
            raise ZoneStateError(
                f"{self.name}: zone {zone.index} not writable "
                f"(state={zone.state.value})")
        if not zone.state.is_active and self._active_count >= self.max_active_zones:
            raise OpenZoneLimitError(
                f"{self.name}: active zone limit {self.max_active_zones} reached")
        if self._open_count >= self.max_open_zones:
            self._auto_close_one()
        self._transition(zone, target)

    def _auto_close_one(self) -> None:
        """Close the least-recently-written implicitly-open zone.

        Real devices do this transparently for implicitly-open zones; if
        every open zone is explicitly open the command fails, which is what
        the limit in the paper refers to.
        """
        candidates = [z for z in self.zones
                      if z.state is ZoneState.IMPLICIT_OPEN]
        if not candidates:
            raise OpenZoneLimitError(
                f"{self.name}: open zone limit {self.max_open_zones} reached "
                "and no implicitly-open zone to evict")
        victim = min(candidates, key=lambda z: z.last_write_time)
        self._transition(victim, ZoneState.CLOSED)

    # -- command application ---------------------------------------------------------

    def _apply(self, bio: Bio) -> float:
        # Identity-compare the hot ops in frequency order; this runs once
        # per command, and a per-call dispatch dict showed up in profiles.
        op = bio.op
        if op is Op.WRITE:
            # ``_apply_write``'s healthy fast path inlined: this dispatch
            # plus the write run once per data command, and the extra
            # frame showed up in profiles.  Any miss (preflush flag,
            # state, pointer, capacity) takes the full method below.
            if not bio.flags & _BIO_PREFLUSH:
                offset = bio.offset
                index = offset // self.zone_size
                zones = self.zones
                if 0 <= index < len(zones):
                    zone = zones[index]
                    state = zone.state
                    if ((state is ZoneState.IMPLICIT_OPEN
                         or state is ZoneState.EXPLICIT_OPEN)
                            and offset == zone.write_pointer):
                        end = offset + bio.length
                        cap_end = zone.start + zone.capacity
                        if end <= cap_end:
                            self._media[offset:end] = bio.data
                            zone.write_pointer = end
                            zone.last_write_time = self.sim.now
                            self._dirty_zones.add(index)
                            if end == cap_end:
                                self._note_full(zone)
                            return 0.0
            return self._apply_write(bio)
        if op is Op.READ:
            return self._apply_read(bio)
        if op is Op.ZONE_APPEND:
            # Mirror of the WRITE fast path for appends.
            offset = bio.offset
            if not offset % self.zone_size and \
                    not bio.flags & _BIO_PREFLUSH:
                index = offset // self.zone_size
                zones = self.zones
                if 0 <= index < len(zones):
                    zone = zones[index]
                    state = zone.state
                    if (state is ZoneState.IMPLICIT_OPEN
                            or state is ZoneState.EXPLICIT_OPEN):
                        placed_at = zone.write_pointer
                        end = placed_at + bio.length
                        cap_end = zone.start + zone.capacity
                        if end <= cap_end:
                            self._media[placed_at:end] = bio.data
                            zone.write_pointer = end
                            zone.last_write_time = self.sim.now
                            self._dirty_zones.add(index)
                            if end == cap_end:
                                self._note_full(zone)
                            bio.result = placed_at
                            return 0.0
            return self._apply_append(bio)
        if op is Op.FLUSH:
            return self._apply_flush(bio)
        if op is Op.ZONE_RESET:
            return self._apply_reset(bio)
        if op is Op.ZONE_FINISH:
            return self._apply_finish(bio)
        if op is Op.ZONE_OPEN:
            return self._apply_open(bio)
        if op is Op.ZONE_CLOSE:
            return self._apply_close(bio)
        raise ZoneStateError(f"{self.name}: unsupported op {bio.op}")

    def _apply_read(self, bio: Bio) -> float:
        zone = self.zone_at(bio.offset)
        if bio.end_offset > zone.start + self.zone_size:
            raise InvalidAddressError(
                f"{self.name}: read crosses zone boundary at {bio.offset:#x}")
        if zone.state is ZoneState.OFFLINE:
            raise ZoneStateError(f"{self.name}: zone {zone.index} is offline")
        if bio.end_offset > zone.write_pointer:
            raise ReadUnwrittenError(
                f"{self.name}: read [{bio.offset:#x},{bio.end_offset:#x}) "
                f"beyond write pointer {zone.write_pointer:#x} "
                f"of zone {zone.index}")
        # Zero-copy: the result is a view of the media.  Safe because zones
        # are sequential-write — already-written bytes cannot be overwritten
        # without a zone reset — and consumers materialize ``bytes`` at the
        # user-visible boundary (RaiznVolume joins pieces into bytes).
        bio.result = memoryview(self._media)[bio.offset:bio.end_offset]
        extents = self._bad_extents.get(zone.index)
        if extents:
            for start, end in extents:
                if start < bio.end_offset and bio.offset < end:
                    # The corrupt view stays in ``bio.result`` so harnesses
                    # can show what an unprotected read would have returned.
                    raise MediaError(
                        f"{self.name}: unrecoverable media error in "
                        f"[{start:#x},{end:#x}) of zone {zone.index}",
                        device=self.name, offset=start, length=end - start)
        return 0.0

    def _check_write(self, bio: Bio) -> Zone:
        zone = self.zone_at(bio.offset)
        if not zone.state.is_writable:
            raise ZoneStateError(
                f"{self.name}: zone {zone.index} not writable "
                f"(state={zone.state.value})")
        if bio.offset != zone.write_pointer:
            raise WritePointerViolation(
                f"{self.name}: write at {bio.offset:#x} != write pointer "
                f"{zone.write_pointer:#x} of zone {zone.index}")
        if bio.end_offset > zone.writable_end:
            raise InvalidAddressError(
                f"{self.name}: write past zone {zone.index} capacity")
        return zone

    def _apply_write(self, bio: Bio) -> float:
        if bio.flags & _BIO_PREFLUSH:
            self._snapshot_flush(bio)
        # Healthy fast path: an already-open zone written exactly at its
        # write pointer within capacity needs no state-machine work.  Any
        # miss falls through to the original validation so error messages
        # and transition order are unchanged.
        offset = bio.offset
        index = offset // self.zone_size
        zones = self.zones
        if 0 <= index < len(zones):
            zone = zones[index]
            state = zone.state
            if ((state is ZoneState.IMPLICIT_OPEN
                 or state is ZoneState.EXPLICIT_OPEN)
                    and offset == zone.write_pointer):
                end = offset + bio.length
                cap_end = zone.start + zone.capacity
                if end <= cap_end:
                    self._media[offset:end] = bio.data
                    zone.write_pointer = end
                    zone.last_write_time = self.sim.now
                    self._dirty_zones.add(index)
                    if end == cap_end:
                        self._note_full(zone)
                    return 0.0
        zone = self._check_write(bio)
        self._make_open(zone, explicit=False)
        assert bio.data is not None
        self._media[bio.offset:bio.end_offset] = bio.data
        zone.advance(bio.length, self.sim.now)
        self._dirty_zones.add(zone.index)
        if zone.state is ZoneState.FULL:
            self._note_full(zone)
        return 0.0

    def _apply_append(self, bio: Bio) -> float:
        offset = bio.offset
        if offset % self.zone_size:
            raise InvalidAddressError(
                f"{self.name}: zone append offset {offset:#x} is not "
                "a zone start")
        if bio.flags & _BIO_PREFLUSH:
            self._snapshot_flush(bio)
        # Healthy fast path, mirroring _apply_write: append into an
        # already-open zone with room left skips the state machine.
        index = offset // self.zone_size
        zones = self.zones
        if 0 <= index < len(zones):
            zone = zones[index]
            state = zone.state
            if (state is ZoneState.IMPLICIT_OPEN
                    or state is ZoneState.EXPLICIT_OPEN):
                placed_at = zone.write_pointer
                end = placed_at + bio.length
                cap_end = zone.start + zone.capacity
                if end <= cap_end:
                    self._media[placed_at:end] = bio.data
                    zone.write_pointer = end
                    zone.last_write_time = self.sim.now
                    self._dirty_zones.add(index)
                    if end == cap_end:
                        self._note_full(zone)
                    bio.result = placed_at
                    return 0.0
        zone = self.zone_at(offset)
        if not zone.state.is_writable:
            raise ZoneStateError(
                f"{self.name}: zone {zone.index} not writable "
                f"(state={zone.state.value})")
        if bio.length > zone.remaining:
            raise ZoneStateError(
                f"{self.name}: append of {bio.length} bytes exceeds zone "
                f"{zone.index} remaining capacity {zone.remaining}")
        self._make_open(zone, explicit=False)
        placed_at = zone.write_pointer
        assert bio.data is not None
        self._media[placed_at:placed_at + bio.length] = bio.data
        zone.advance(bio.length, self.sim.now)
        self._dirty_zones.add(zone.index)
        if zone.state is ZoneState.FULL:
            self._note_full(zone)
        bio.result = placed_at
        return 0.0

    def _note_full(self, zone: Zone) -> None:
        # advance() set state directly; fix the open/active accounting.
        zone.state = ZoneState.IMPLICIT_OPEN  # undo for bookkeeping
        self._transition(zone, ZoneState.FULL)

    def _apply_flush(self, bio: Bio) -> float:
        self._snapshot_flush(bio)
        return 0.0

    def _snapshot_flush(self, bio: Bio) -> None:
        """Record, per zone, the write pointer the flush must persist to.

        Only dirty zones are visited; on a large device almost all zones
        are clean at any moment, so walking all of them per flush dominated
        flush-heavy workloads.
        """
        zones = self.zones
        bio.aux = {index: zones[index].write_pointer
                   for index in self._dirty_zones}

    def _apply_reset(self, bio: Bio) -> float:
        if bio.offset % self.zone_size:
            raise InvalidAddressError(
                f"{self.name}: zone reset offset {bio.offset:#x} is not "
                "a zone start")
        zone = self.zone_at(bio.offset)
        if self.zone_reset_limit is not None and \
                self._reset_counts.get(zone.index, 0) >= \
                self.zone_reset_limit:
            # The erase budget is spent: the zone is end-of-life and a
            # reset (an erase) is exactly what it can no longer do.
            raise ZoneStateError(
                f"{self.name}: zone {zone.index} is worn out "
                f"({self.zone_reset_limit} resets); cannot reset")
        old_state = zone.state
        zone.reset()
        zone.state = old_state          # let _transition do the accounting
        self._transition(zone, ZoneState.EMPTY)
        # The stale media bytes are left in place: reads past the write
        # pointer are rejected, rewrites overwrite [0, wp) before it is
        # readable again, and the power-loss settle zeroes only spans it
        # rolls back — so nothing can observe them, and zero-filling the
        # whole zone dominated reset-heavy workloads.
        self._dirty_zones.discard(zone.index)
        # An erase block rewrite clears grown media defects for our model:
        # a reset zone starts over with clean media.
        self._bad_extents.pop(zone.index, None)
        spent = self._reset_counts.get(zone.index, 0) + 1
        self._reset_counts[zone.index] = spent
        if self.zone_reset_limit is not None and \
                spent >= self.zone_reset_limit:
            # Last erase cycle: the reset itself succeeded, but the
            # zone comes back read-only (empty and unwritable).
            self._transition(zone, ZoneState.READ_ONLY)
        return 0.0

    def _apply_finish(self, bio: Bio) -> float:
        zone = self.zone_at(bio.offset)
        if zone.state is ZoneState.FULL:
            return 0.0
        # The NVMe state machine only admits ZONE_FINISH from a writable
        # state; enforce it here so READ_ONLY/OFFLINE zones reject the
        # command with the device-level error every other op produces.
        if not zone.state.is_writable:
            raise ZoneStateError(
                f"{self.name}: cannot finish zone {zone.index} from "
                f"{zone.state.value}")
        old_state = zone.state
        zone.finish()
        zone.state = old_state
        self._transition(zone, ZoneState.FULL)
        return 0.0

    def _apply_open(self, bio: Bio) -> float:
        zone = self.zone_at(bio.offset)
        self._make_open(zone, explicit=True)
        return 0.0

    def _apply_close(self, bio: Bio) -> float:
        zone = self.zone_at(bio.offset)
        if zone.state is ZoneState.CLOSED:
            return 0.0
        if not zone.state.is_open:
            raise ZoneStateError(
                f"{self.name}: cannot close zone {zone.index} from "
                f"{zone.state.value}")
        if zone.write_pointer == zone.start:
            self._transition(zone, ZoneState.EMPTY)
        else:
            self._transition(zone, ZoneState.CLOSED)
        return 0.0

    # -- durability ------------------------------------------------------------------

    def _persist(self, bio: Bio) -> None:
        if bio.aux is not None:  # flush or preflush snapshot
            zones = self.zones
            discard = self._dirty_zones.discard
            for index, wp in bio.aux.items():
                zone = zones[index]
                dp = wp if wp < zone.write_pointer else zone.write_pointer
                if dp > zone.durable_pointer:
                    zone.durable_pointer = dp
                if zone.durable_pointer >= zone.write_pointer:
                    discard(index)
        if bio.flags & _BIO_FUA and \
                (bio.op is Op.WRITE or bio.op is Op.ZONE_APPEND):
            zone = self.zones[bio.offset // self.zone_size]
            # ZNS persistence is prefix-ordered within a zone: a durable
            # write implies everything before it in the zone is durable.
            if bio.op is Op.WRITE:
                end = bio.offset + bio.length
            else:
                # A FUA append's durable end is derived from the placement
                # address; a missing result must fail loudly — falling back
                # to 0 would silently persist a wrong (device-absolute-0
                # based) prefix instead of the appended bytes.
                assert bio.result is not None, (
                    f"{self.name}: FUA zone append completed without a "
                    "placement result")
                end = bio.result + bio.length
            wp = zone.write_pointer
            dp = end if end < wp else wp
            if dp > zone.durable_pointer:
                zone.durable_pointer = dp
            if zone.durable_pointer >= wp:
                self._dirty_zones.discard(zone.index)

    # -- fault injection ----------------------------------------------------------------

    def power_fail(self, loss_rng: Optional[random.Random] = None) -> None:
        """Cut power, losing an arbitrary suffix of each zone's cached data.

        For every zone, a random whole number of atomic write units from
        the unflushed tail survives (sequential-persistence guarantee);
        the rest is erased from media.  Open zones come back CLOSED, as
        real devices close zones across power cycles.
        """
        rng = loss_rng or self._rng
        self.power_off()
        for zone in self.zones:
            self._settle_zone_after_power_loss(zone, rng)

    def zone_survivor_states(self, index: int) -> List[int]:
        """Every legal post-power-loss write pointer for zone ``index``.

        The ZNS persistence contract (paper §2.1) lets any whole number of
        atomic write units of the unflushed tail survive a power cut, in
        prefix order: the legal survivors are ``durable_pointer + k * AWU``
        for ``k`` up to the cached unit count, plus the sub-unit tail when
        one exists.  A clean zone has exactly one survivor state: its
        current write pointer.
        """
        zone = self.zones[index]
        cached = zone.write_pointer - zone.durable_pointer
        if cached <= 0:
            return [zone.write_pointer]
        units = cached // self.atomic_write_bytes
        tail = cached % self.atomic_write_bytes
        states = [zone.durable_pointer + k * self.atomic_write_bytes
                  for k in range(units + 1)]
        if tail:
            states.append(zone.write_pointer)
        return states

    def survivor_state_space(self) -> Dict[int, List[int]]:
        """Per-dirty-zone survivor choices (clean zones have no choice)."""
        return {index: self.zone_survivor_states(index)
                for index in sorted(self._dirty_zones)}

    def power_fail_to(self, survivors: Mapping[int, int]) -> None:
        """Deterministic power cut: settle each zone to a chosen survivor.

        ``survivors`` maps zone index to the durable write pointer that
        zone keeps; it must be one of :meth:`zone_survivor_states` for the
        zone.  Zones not named settle to their durable pointer (the
        minimum legal survivor — for clean zones that is a no-op).  Used
        by the crash-point explorer to enumerate crash states instead of
        sampling them randomly.
        """
        for index, survivor in survivors.items():
            if survivor not in self.zone_survivor_states(index):
                raise InvalidAddressError(
                    f"{self.name}: {survivor:#x} is not a legal survivor "
                    f"state for zone {index}")
        self.power_off()
        for zone in self.zones:
            self._settle_zone_to(
                zone, survivors.get(zone.index, zone.durable_pointer))

    def _settle_zone_after_power_loss(self, zone: Zone,
                                      rng: random.Random) -> None:
        survivor = zone.durable_pointer
        cached = zone.write_pointer - zone.durable_pointer
        if cached > 0:
            units = cached // self.atomic_write_bytes
            tail = cached % self.atomic_write_bytes
            kept_units = rng.randint(0, units)
            kept = kept_units * self.atomic_write_bytes
            if kept_units == units and tail and rng.random() < 0.5:
                kept += tail
            survivor = zone.durable_pointer + kept
        self._settle_zone_to(zone, survivor)

    def _settle_zone_to(self, zone: Zone, survivor: int) -> None:
        """Apply one zone's post-power-loss state: keep ``[start, survivor)``."""
        if survivor < zone.write_pointer:
            self._media[survivor:zone.write_pointer] = bytes(
                zone.write_pointer - survivor)
            zone.write_pointer = survivor
            extents = self._bad_extents.get(zone.index)
            if extents:
                # Rolled-back spans were zeroed above; only the surviving
                # prefix of each defect remains corrupt media.
                clipped = [(s, min(e, survivor))
                           for s, e in extents if s < survivor]
                if clipped:
                    self._bad_extents[zone.index] = clipped
                else:
                    del self._bad_extents[zone.index]
        zone.durable_pointer = survivor
        self._dirty_zones.discard(zone.index)
        if zone.state in (ZoneState.READ_ONLY, ZoneState.OFFLINE):
            return
        if zone.state is ZoneState.FULL and not zone.finished_by_command \
                and zone.write_pointer == zone.writable_end:
            return
        zone.finished_by_command = False
        if zone.write_pointer == zone.start:
            self._transition(zone, ZoneState.EMPTY)
        elif zone.write_pointer == zone.writable_end:
            self._transition(zone, ZoneState.FULL)
        else:
            self._transition(zone, ZoneState.CLOSED)

    # -- crash snapshots ----------------------------------------------------------------

    def crash_snapshot(self) -> Tuple:
        """Opaque copy of all crash-relevant device state.

        Captures each zone's written media prefix plus the zone table,
        open/active accounting, the dirty set, power state, and the
        service-time RNG, so a crash-state explorer can try many survivor
        states / recovery runs from the same instant.  Only ``[start,
        write_pointer)`` is saved per zone: bytes past the write pointer
        are unobservable (reads are rejected, writes overwrite, the
        power-loss settle zeroes what it rolls back), which keeps a
        snapshot proportional to written data, not device size.
        """
        return (
            [(z.state, z.write_pointer, z.durable_pointer,
              z.last_write_time, z.finished_by_command,
              bytes(self._media[z.start:z.write_pointer]))
             for z in self.zones],
            self._open_count,
            self._active_count,
            set(self._dirty_zones),
            self.powered,
            self.failed,
            self._rng.getstate(),
            {index: list(extents)
             for index, extents in self._bad_extents.items()},
            dict(self._reset_counts),
        )

    def restore_crash_snapshot(self, snapshot: Tuple) -> None:
        """Restore state captured by :meth:`crash_snapshot` (quiescent IO)."""
        zones, open_count, active_count, dirty, powered, failed, rng_state = \
            snapshot[:7]
        # Snapshots predating latent-error / endurance support carry no
        # extent map / reset counters.
        bad = snapshot[7] if len(snapshot) > 7 else {}
        resets = snapshot[8] if len(snapshot) > 8 else {}
        for zone, (state, wp, dp, lwt, fbc, prefix) in zip(self.zones, zones):
            zone.state = state
            zone.write_pointer = wp
            zone.durable_pointer = dp
            zone.last_write_time = lwt
            zone.finished_by_command = fbc
            self._media[zone.start:zone.start + len(prefix)] = prefix
        self._open_count = open_count
        self._active_count = active_count
        self._dirty_zones = set(dirty)
        self.powered = powered
        self.failed = failed
        self._rng.setstate(rng_state)
        self._bad_extents = {index: list(extents)
                             for index, extents in bad.items()}
        self._reset_counts = dict(resets)
        # A drained event loop leaves no channel holders; reset defensively
        # so a restored device never inherits a stale grant.
        self.channels.in_use = 0
        self.channels._waiters.clear()
        self._channel_queue.clear()

    def mark_bad(self, offset: int, length: int) -> None:
        """Inject a latent (UNC) media error over ``[offset, offset+length)``.

        The span must stay inside one zone.  The stored bytes are bit
        flipped — so a consumer that ignores the error status observably
        reads *wrong* data, not just an error — and every subsequent read
        intersecting the span raises :class:`MediaError` until the zone is
        reset (or the span is rolled back by a power cut).
        """
        if length <= 0:
            raise InvalidAddressError("bad extent needs a positive length")
        zone = self.zone_at(offset)
        if offset + length > zone.start + self.zone_size:
            raise InvalidAddressError(
                f"{self.name}: bad extent crosses zone boundary at "
                f"{offset:#x}")
        span = memoryview(self._media)[offset:offset + length]
        for i in range(len(span)):
            span[i] ^= 0xFF
        self._bad_extents.setdefault(zone.index, []).append(
            (offset, offset + length))

    def bad_extents(self, index: int) -> List[Tuple[int, int]]:
        """The injected UNC spans currently live in zone ``index``."""
        return list(self._bad_extents.get(index, ()))

    def zone_reset_count(self, index: int) -> int:
        """Lifetime erase (reset) cycles consumed by zone ``index``."""
        return self._reset_counts.get(index, 0)

    def worn_zones(self) -> List[int]:
        """Zones whose erase budget is exhausted (empty if unlimited)."""
        if self.zone_reset_limit is None:
            return []
        return sorted(index for index, spent in self._reset_counts.items()
                      if spent >= self.zone_reset_limit)

    def endurance_report(self) -> dict:
        """Wear summary: total resets, per-zone peak, worn-out zones."""
        return {
            "reset_limit": self.zone_reset_limit,
            "total_resets": sum(self._reset_counts.values()),
            "max_zone_resets": max(self._reset_counts.values(), default=0),
            "worn_zones": self.worn_zones(),
        }

    def set_zone_read_only(self, index: int) -> None:
        """Inject an end-of-life READ_ONLY transition for zone ``index``."""
        self._transition(self.zones[index], ZoneState.READ_ONLY)

    def set_zone_offline(self, index: int) -> None:
        """Inject an end-of-life OFFLINE transition for zone ``index``."""
        self._transition(self.zones[index], ZoneState.OFFLINE)
