"""ZNS specification constants: zone states and zone descriptors.

Follows the NVMe ZNS state machine described in paper §2.1: a zone starts
EMPTY, transitions to an open state when written, becomes FULL when its
last writable block is written (or on an explicit finish), and returns to
EMPTY on reset.  READ_ONLY and OFFLINE are failure states entered when
enough erase blocks die.
"""

from __future__ import annotations

import dataclasses
import enum


class ZoneState(enum.Enum):
    """NVMe ZNS zone states (subset sufficient for RAIZN)."""

    EMPTY = "empty"
    IMPLICIT_OPEN = "implicit_open"
    EXPLICIT_OPEN = "explicit_open"
    CLOSED = "closed"
    FULL = "full"
    READ_ONLY = "read_only"
    OFFLINE = "offline"

    @property
    def is_open(self) -> bool:
        return self in (ZoneState.IMPLICIT_OPEN, ZoneState.EXPLICIT_OPEN)

    @property
    def is_active(self) -> bool:
        """Open or closed: holding device resources (§2.1)."""
        return self.is_open or self is ZoneState.CLOSED

    @property
    def is_writable(self) -> bool:
        return self in (
            ZoneState.EMPTY,
            ZoneState.IMPLICIT_OPEN,
            ZoneState.EXPLICIT_OPEN,
            ZoneState.CLOSED,
        )


#: Open-zone limit of the paper's ZN540 devices ("for our devices is 14").
DEFAULT_MAX_OPEN_ZONES = 14
#: Active-zone limit; the ZN540 exposes the same bound for active zones.
DEFAULT_MAX_ACTIVE_ZONES = 14


@dataclasses.dataclass
class ZoneInfo:
    """Snapshot of one zone, as returned by a zone report."""

    index: int
    start: int          # first byte of the zone (zone_size stride)
    capacity: int       # writable bytes (<= zone size)
    write_pointer: int  # absolute byte offset of the next writable byte
    state: ZoneState

    @property
    def writable_end(self) -> int:
        """One past the last writable byte of the zone."""
        return self.start + self.capacity

    @property
    def written_bytes(self) -> int:
        return self.write_pointer - self.start
