"""Per-zone bookkeeping for the simulated ZNS device."""

from __future__ import annotations

from ..errors import ZoneStateError
from .spec import ZoneInfo, ZoneState


class Zone:
    """Mutable state of one physical zone.

    ``write_pointer`` tracks the next writable byte; ``durable_pointer``
    tracks the prefix of the zone that would survive power loss (ZNS
    guarantees per-zone sequential persistence order, paper §1).  Data
    between the two lives only in the device write cache.
    """

    __slots__ = (
        "index",
        "start",
        "zone_size",
        "capacity",
        "state",
        "write_pointer",
        "durable_pointer",
        "last_write_time",
        "finished_by_command",
    )

    def __init__(self, index: int, start: int, zone_size: int, capacity: int):
        if capacity > zone_size:
            raise ValueError(
                f"zone capacity {capacity} exceeds zone size {zone_size}")
        self.index = index
        self.start = start
        self.zone_size = zone_size
        self.capacity = capacity
        self.state = ZoneState.EMPTY
        self.write_pointer = start
        self.durable_pointer = start
        self.last_write_time = 0.0
        #: True when the zone became FULL via an explicit finish command
        #: with unwritten capacity remaining.
        self.finished_by_command = False

    @property
    def writable_end(self) -> int:
        return self.start + self.capacity

    @property
    def remaining(self) -> int:
        """Writable bytes left before the zone is full."""
        return self.writable_end - self.write_pointer

    def info(self) -> ZoneInfo:
        """An immutable snapshot for zone reports."""
        return ZoneInfo(
            index=self.index,
            start=self.start,
            capacity=self.capacity,
            write_pointer=self.write_pointer,
            state=self.state,
        )

    def reset(self) -> None:
        """Return the zone to EMPTY (zone reset command effect)."""
        if self.state in (ZoneState.READ_ONLY, ZoneState.OFFLINE):
            raise ZoneStateError(
                f"zone {self.index} cannot be reset from {self.state.value}")
        self.state = ZoneState.EMPTY
        self.write_pointer = self.start
        self.durable_pointer = self.start
        self.finished_by_command = False

    def finish(self) -> None:
        """Force the zone to FULL (zone finish command effect)."""
        if self.state is ZoneState.FULL:
            return
        if not self.state.is_writable:
            raise ZoneStateError(
                f"zone {self.index} cannot be finished from {self.state.value}")
        if self.write_pointer < self.writable_end:
            self.finished_by_command = True
        self.state = ZoneState.FULL

    def advance(self, nbytes: int, now: float) -> None:
        """Advance the write pointer after a validated write of ``nbytes``."""
        self.write_pointer += nbytes
        self.last_write_time = now
        if self.write_pointer == self.writable_end:
            self.state = ZoneState.FULL
