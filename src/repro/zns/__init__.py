"""Simulated NVMe Zoned Namespace (ZNS) SSD substrate."""

from .device import ZNSDevice
from .spec import (
    DEFAULT_MAX_ACTIVE_ZONES,
    DEFAULT_MAX_OPEN_ZONES,
    ZoneInfo,
    ZoneState,
)
from .zone import Zone

__all__ = [
    "ZNSDevice",
    "Zone",
    "ZoneInfo",
    "ZoneState",
    "DEFAULT_MAX_OPEN_ZONES",
    "DEFAULT_MAX_ACTIVE_ZONES",
]
