"""Exception hierarchy for the RAIZN reproduction.

The substrate raises ``DeviceError`` subclasses for conditions that a real
NVMe device would report as command status codes (e.g. writing a full zone,
violating the write pointer).  The RAIZN layer raises ``RaiznError``
subclasses for volume-level misuse.  ``SimulationError`` covers internal
invariant violations of the event engine.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by this package."""


class SimulationError(ReproError):
    """Internal discrete-event-simulation invariant violation."""


class DeviceError(ReproError):
    """Base class for errors reported by a simulated storage device."""


class InvalidAddressError(DeviceError):
    """Access outside the device address space or misaligned."""


class WritePointerViolation(DeviceError):
    """A zone write did not land exactly on the zone's write pointer.

    Mirrors the NVMe ZNS "Zone Invalid Write" status.
    """


class ZoneStateError(DeviceError):
    """Operation not permitted in the zone's current state.

    E.g. writing a FULL or OFFLINE zone, resetting an offline zone.
    """


class OpenZoneLimitError(DeviceError):
    """Opening one more zone would exceed the device's open-zone limit.

    Mirrors the NVMe ZNS "Too Many Active Zones" / "Too Many Open Zones"
    statuses; the paper's ZN540 devices allow 14 simultaneously open zones.
    """


class ReadUnwrittenError(DeviceError):
    """Read of sectors beyond a zone's write pointer (unwritten data)."""


class DeviceFailedError(DeviceError):
    """The device has failed (fault injection) and rejects all IO."""


class MediaError(DeviceError):
    """An unrecoverable media (UNC) error on a read.

    Carries the failing location so upstack layers can reconstruct the
    affected stripe unit from redundancy and heal it.  ``bio.result``
    still holds the (corrupt) media content when the bio opted into
    error-status completion, letting harnesses demonstrate what an
    unprotected consumer would have seen.
    """

    def __init__(self, message: str, device: str = "",
                 offset: int = 0, length: int = 0):
        super().__init__(message)
        self.device = device
        self.offset = offset
        self.length = length


class TransientCommandError(DeviceError):
    """A command failed transiently; retrying the same command may succeed."""


class PowerLossError(DeviceError):
    """IO issued to a device that is powered off."""


class RaiznError(ReproError):
    """Base class for RAIZN volume-level errors."""


class VolumeStateError(RaiznError):
    """Operation not valid in the volume's current state (e.g. read-only)."""


class DegradedModeError(RaiznError):
    """Operation cannot be served with the current number of failed devices."""


class DataLossError(RaiznError):
    """More devices failed than the parity configuration tolerates."""


class MetadataError(RaiznError):
    """Corrupt, missing, or inconsistent on-disk metadata."""


class RecoveryError(RaiznError):
    """Mount-time crash recovery could not produce a consistent volume."""
