"""``python -m repro`` — run the paper-reproduction experiments."""

import sys

from .harness.cli import main

if __name__ == "__main__":
    sys.exit(main())
