"""sysbench-style OLTP workloads over the LSM engine (paper §6.3, Fig. 14).

Models sysbench driving MySQL/MyRocks: a set of tables stored in the LSM
engine (MyRocks maps rows to RocksDB keys), with the three standard
workloads —

* ``oltp_read_only``: 10 point SELECTs plus 4 range scans per transaction;
* ``oltp_write_only``: 2 UPDATEs, 1 DELETE, 1 INSERT per transaction
  (each transaction commits with an fsync'd WAL write, as InnoDB/MyRocks
  durability requires);
* ``oltp_read_write``: the union of the two.

``threads`` concurrent worker loops run for a fixed number of
transactions; the result reports transactions/second, average latency,
and 95th-percentile latency — the three metrics of Figure 14.
"""

from __future__ import annotations

import dataclasses
import random

from ..errors import ReproError
from ..sim import LatencyStats, Simulator, simulation_gc
from .lsm import LSMTree


@dataclasses.dataclass
class OltpResult:
    """Outcome of one sysbench run."""

    workload: str
    threads: int
    transactions: int
    elapsed: float
    latency: LatencyStats

    @property
    def tps(self) -> float:
        return self.transactions / self.elapsed if self.elapsed else 0.0

    @property
    def avg_latency(self) -> float:
        return self.latency.mean

    @property
    def p95_latency(self) -> float:
        return self.latency.p95


def row_key(table: int, row: int) -> bytes:
    """MyRocks-style key: table id prefix + primary key."""
    return b"t%02d:%012d" % (table, row)


def prepare_tables(sim: Simulator, lsm: LSMTree, tables: int, rows: int,
                   row_bytes: int = 200, seed: int = 0) -> None:
    """sysbench 'prepare': populate ``tables`` tables of ``rows`` rows."""
    rng = random.Random(seed)
    payload = rng.randbytes(row_bytes)

    def loader():
        for table in range(tables):
            for row in range(rows):
                yield from lsm.put(row_key(table, row), payload)
        yield from lsm.flush()
    with simulation_gc():
        sim.run_process(loader())


def run_oltp(sim: Simulator, lsm: LSMTree, workload: str, threads: int,
             transactions: int, tables: int, rows: int,
             row_bytes: int = 200, range_size: int = 20,
             seed: int = 0) -> OltpResult:
    """Run one sysbench workload to completion; drains the event loop."""
    if workload not in ("oltp_read_only", "oltp_write_only",
                        "oltp_read_write"):
        raise ReproError(f"unknown sysbench workload: {workload}")
    latency = LatencyStats()
    per_thread = transactions // threads
    start = sim.now
    procs = [
        sim.process(_worker(sim, lsm, workload, per_thread, tables, rows,
                            row_bytes, range_size, latency,
                            seed * 104729 + t))
        for t in range(threads)
    ]
    with simulation_gc():
        sim.run()
    for proc in procs:
        if not proc.ok:
            raise proc.value
    return OltpResult(workload=workload, threads=threads,
                      transactions=per_thread * threads,
                      elapsed=sim.now - start, latency=latency)


def _worker(sim: Simulator, lsm: LSMTree, workload: str, count: int,
            tables: int, rows: int, row_bytes: int, range_size: int,
            latency: LatencyStats, seed: int):
    rng = random.Random(seed)
    payload = rng.randbytes(row_bytes)
    #: rows inserted by this worker, used for later deletes.
    next_insert = rows + (seed % 1000) * 10_000_000
    for _ in range(count):
        began = sim.now
        table = rng.randrange(tables)
        if workload in ("oltp_read_only", "oltp_read_write"):
            for _ in range(10):  # point selects
                yield from lsm.get(row_key(table, rng.randrange(rows)))
            for _ in range(4):   # range scans
                start_row = rng.randrange(rows)
                yield from lsm.scan(row_key(table, start_row), range_size)
        if workload in ("oltp_write_only", "oltp_read_write"):
            for _ in range(2):   # index/non-index updates
                yield from lsm.put(row_key(table, rng.randrange(rows)),
                                   payload)
            yield from lsm.delete(row_key(table, rng.randrange(rows)))
            yield from lsm.put(row_key(table, next_insert), payload)
            next_insert += 1
            # COMMIT: durable WAL write.
            yield from lsm.commit()
        latency.add(sim.now - began)
