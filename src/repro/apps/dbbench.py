"""db_bench-style workload drivers for the LSM store (paper §6.3).

Implements the four workloads Figure 13 reports — fillseq, fillrandom,
overwrite, and readwhilewriting — with the paper's structure: 16-byte
keys, configurable value sizes (4000 and 8000 bytes in the figure),
direct IO (no page cache in the stack), and for readwhilewriting one
writer thread running concurrently with eight reader threads.
"""

from __future__ import annotations

import dataclasses
import random
from typing import Optional

from ..errors import ReproError
from ..sim import LatencyStats, Simulator, simulation_gc
from .lsm import LSMTree


@dataclasses.dataclass
class DbBenchResult:
    """Outcome of one db_bench workload."""

    workload: str
    operations: int
    elapsed: float
    write_latency: LatencyStats
    read_latency: LatencyStats

    @property
    def ops_per_second(self) -> float:
        return self.operations / self.elapsed if self.elapsed else 0.0


def make_key(index: int) -> bytes:
    """16-byte db_bench-style key."""
    return b"%016d" % index


def db_bench(sim: Simulator, lsm: LSMTree, workload: str, num_ops: int,
             value_size: int = 4000, key_space: Optional[int] = None,
             read_threads: int = 8, seed: int = 0) -> DbBenchResult:
    """Run one workload to completion; drains the event loop."""
    if workload not in ("fillseq", "fillrandom", "overwrite",
                        "readwhilewriting"):
        raise ReproError(f"unknown db_bench workload: {workload}")
    key_space = key_space or num_ops
    write_latency = LatencyStats()
    read_latency = LatencyStats()
    start = sim.now
    rng = random.Random(seed)
    value = rng.randbytes(value_size)

    if workload == "readwhilewriting":
        procs = [sim.process(_writer_loop(sim, lsm, num_ops, key_space,
                                          value, write_latency, seed))]
        per_reader = num_ops // read_threads
        procs.extend(
            sim.process(_reader_loop(sim, lsm, per_reader, key_space,
                                     read_latency, seed + 1 + t))
            for t in range(read_threads))
        operations = num_ops  # reads are the reported operations
    else:
        procs = [sim.process(_fill_loop(sim, lsm, workload, num_ops,
                                        key_space, value, write_latency,
                                        seed))]
        operations = num_ops
    with simulation_gc():
        sim.run()
    for proc in procs:
        if not proc.ok:
            raise proc.value
    return DbBenchResult(workload=workload, operations=operations,
                         elapsed=sim.now - start,
                         write_latency=write_latency,
                         read_latency=read_latency)


def _fill_loop(sim: Simulator, lsm: LSMTree, workload: str, num_ops: int,
               key_space: int, value: bytes, latency: LatencyStats,
               seed: int):
    rng = random.Random(seed * 7919 + 1)
    for i in range(num_ops):
        if workload == "fillseq":
            key = make_key(i)
        else:  # fillrandom / overwrite: random key order
            key = make_key(rng.randrange(key_space))
        began = sim.now
        yield from lsm.put(key, value)
        latency.add(sim.now - began)
    yield from lsm.flush()


def _writer_loop(sim: Simulator, lsm: LSMTree, num_ops: int, key_space: int,
                 value: bytes, latency: LatencyStats, seed: int):
    rng = random.Random(seed * 7919 + 2)
    for _ in range(num_ops):
        key = make_key(rng.randrange(key_space))
        began = sim.now
        yield from lsm.put(key, value)
        latency.add(sim.now - began)


def _reader_loop(sim: Simulator, lsm: LSMTree, num_ops: int, key_space: int,
                 latency: LatencyStats, seed: int):
    rng = random.Random(seed * 7919 + 3)
    for _ in range(num_ops):
        key = make_key(rng.randrange(key_space))
        began = sim.now
        yield from lsm.get(key)
        latency.add(sim.now - began)
