"""An LSM-tree key-value store in the mold of RocksDB (paper §6.3).

Implements the parts of RocksDB that determine the IO pattern db_bench
exercises on the array: a write-ahead log, an in-memory memtable flushed
to sorted, immutable SSTable files, levelled compaction that rewrites
overlapping tables, and point reads that consult the memtable, then each
level.  Files live on the :class:`~repro.apps.f2fs.F2FS` filesystem, so
the store runs identically on RAIZN and mdraid volumes.

Like the paper's RocksDB configuration, reads and compaction bypass any
page cache (every get is device IO unless served by the memtable), and
flush/compaction writes are large and sequential.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable, List, Tuple

from ..sim import Simulator
from ..units import KiB, MiB
from .f2fs import F2FS

#: Tombstone marker distinguishing deletes from values.
_TOMBSTONE = object()


@dataclasses.dataclass
class SSTable:
    """One immutable sorted table: file on disk + in-memory index."""

    name: str
    level: int
    #: key -> (file offset, length); None length encodes a tombstone.
    index: Dict[bytes, Tuple[int, int]]
    min_key: bytes
    max_key: bytes
    data_bytes: int

    def overlaps(self, other: "SSTable") -> bool:
        return self.min_key <= other.max_key and other.min_key <= self.max_key

    def covers(self, key: bytes) -> bool:
        return self.min_key <= key <= self.max_key


class LSMTree:
    """RocksDB-like store; all data-path methods are process generators."""

    def __init__(
        self,
        sim: Simulator,
        fs: F2FS,
        name: str = "db",
        memtable_bytes: int = 4 * MiB,
        l0_compaction_trigger: int = 4,
        level_base_bytes: int = 16 * MiB,
        level_multiplier: int = 4,
        max_levels: int = 5,
        sync_writes: bool = False,
        write_chunk: int = 1 * MiB,
    ):
        self.sim = sim
        self.fs = fs
        self.name = name
        self.memtable_bytes = memtable_bytes
        self.l0_trigger = l0_compaction_trigger
        self.level_base_bytes = level_base_bytes
        self.level_multiplier = level_multiplier
        self.sync_writes = sync_writes
        self.write_chunk = write_chunk
        self.memtable: Dict[bytes, object] = {}
        self.memtable_size = 0
        #: Buffered WAL bytes not yet written to the filesystem.  RocksDB
        #: WAL writes go through the page cache (the paper enables direct
        #: IO only for flush and compaction), so records reach the array
        #: in buffered batches unless sync_writes forces them down.
        self.wal_buffer_bytes = 64 * KiB
        self._wal_pending = 0
        self.levels: List[List[SSTable]] = [[] for _ in range(max_levels)]
        self._file_seq = 0
        self._wal_path = f"{name}/wal.0"
        self._wal_seq = 0
        fs.create(self._wal_path)
        # Counters for reporting.
        self.puts = 0
        self.gets = 0
        self.flushes = 0
        self.compactions = 0
        self.compaction_bytes = 0

    # -- public API -----------------------------------------------------------------

    def put(self, key: bytes, value: bytes):
        """Process-style insert/update."""
        yield from self._write(key, value)

    def delete(self, key: bytes):
        """Process-style delete (writes a tombstone)."""
        yield from self._write(key, _TOMBSTONE)

    def get(self, key: bytes):
        """Process-style point lookup; returns the value or None."""
        self.gets += 1
        if key in self.memtable:
            value = self.memtable[key]
            return None if value is _TOMBSTONE else value
        for table in reversed(self.levels[0]):  # newest L0 first
            found = yield from self._table_get(table, key)
            if found is not None:
                return found[0]
        for level in self.levels[1:]:
            for table in level:
                if table.covers(key):
                    found = yield from self._table_get(table, key)
                    if found is not None:
                        return found[0]
        return None

    def scan(self, start_key: bytes, count: int):
        """Process-style range scan: ``count`` keys from ``start_key``.

        Collects candidates from every table whose range may contain them
        (LSM scans read from all levels), returning merged newest-first
        results.
        """
        keys = set(k for k in self.memtable if k >= start_key)
        for level in self.levels:
            for table in level:
                if table.max_key >= start_key:
                    keys.update(k for k in table.index if k >= start_key)
        out = []
        for key in sorted(keys)[:count]:
            value = yield from self.get(key)
            if value is not None:
                out.append((key, value))
        return out

    def commit(self):
        """Process-style durable commit: drain and fsync the WAL.

        Used by transactional engines (MyRocks) at COMMIT time; db_bench
        style workloads rely on buffered WAL writes instead.
        """
        yield from self._drain_wal()
        yield from self.fs.fsync(self._wal_path)

    def flush(self):
        """Process-style: persist the memtable as an L0 SSTable."""
        if not self.memtable:
            return None
        table = yield from self._write_sstable(
            sorted(self.memtable.items()), level=0)
        self.levels[0].append(table)
        self.memtable = {}
        self.memtable_size = 0
        self.flushes += 1
        yield from self._rotate_wal()
        yield from self._maybe_compact()
        return table.name

    # -- write path -------------------------------------------------------------------

    def _write(self, key: bytes, value):
        record_len = len(key) + (0 if value is _TOMBSTONE else len(value)) + 16
        self._wal_pending += record_len
        if self.sync_writes:
            yield from self._drain_wal()
            yield from self.fs.fsync(self._wal_path)
        elif self._wal_pending >= self.wal_buffer_bytes:
            yield from self._drain_wal()
        self.memtable[key] = value
        self.memtable_size += record_len
        self.puts += 1
        if self.memtable_size >= self.memtable_bytes:
            yield from self.flush()

    def _drain_wal(self):
        """Write the buffered WAL bytes to the filesystem."""
        pending, self._wal_pending = self._wal_pending, 0
        if pending:
            yield from self.fs.append(self._wal_path, bytes(pending))

    def _rotate_wal(self):
        yield from self._drain_wal()
        old = self._wal_path
        self._wal_seq += 1
        self._wal_path = f"{self.name}/wal.{self._wal_seq}"
        self.fs.create(self._wal_path)
        yield from self.fs.delete(old)

    def _write_sstable(self, items: Iterable[Tuple[bytes, object]],
                       level: int):
        """Serialize sorted items into a new table file."""
        self._file_seq += 1
        path = f"{self.name}/sst.{self._file_seq:06d}"
        self.fs.create(path)
        index: Dict[bytes, Tuple[int, int]] = {}
        buffer = bytearray()
        offset = 0
        min_key = max_key = None
        for key, value in items:
            if min_key is None:
                min_key = key
            max_key = key
            if value is _TOMBSTONE:
                index[key] = (offset, -1)
            else:
                index[key] = (offset, len(value))
                buffer.extend(value)
                offset += len(value)
            if len(buffer) >= self.write_chunk:
                # Flush whole sectors only, so file offsets keep matching
                # data offsets (F2FS pads each append to a sector).
                aligned = len(buffer) - len(buffer) % 4096
                yield from self.fs.append(path, bytes(buffer[:aligned]))
                del buffer[:aligned]
        if buffer:
            yield from self.fs.append(path, bytes(buffer))
        yield from self.fs.fsync(path)
        if min_key is None:
            min_key = max_key = b""
        return SSTable(name=path, level=level, index=index,
                       min_key=min_key, max_key=max_key, data_bytes=offset)

    def _table_get(self, table: SSTable, key: bytes):
        """Returns ``(value,)`` / ``(None,)`` for tombstone, or None if absent."""
        entry = table.index.get(key)
        if entry is None:
            return None
        offset, length = entry
        if length < 0:
            return (None,)  # tombstone: key was deleted
        if length == 0:
            return (b"",)
        data = yield from self.fs.read(table.name, offset, length)
        return (data[:length],)

    # -- compaction ------------------------------------------------------------------------

    def _maybe_compact(self):
        if len(self.levels[0]) > self.l0_trigger:
            yield from self._compact_level(0)
        limit = self.level_base_bytes
        for level in range(1, len(self.levels) - 1):
            if sum(t.data_bytes for t in self.levels[level]) > limit:
                yield from self._compact_level(level)
            limit *= self.level_multiplier

    def _compact_level(self, level: int):
        """Merge level ``level`` into ``level + 1`` (RocksDB-style)."""
        if level == 0:
            upper = list(self.levels[0])
        else:
            upper = [max(self.levels[level], key=lambda t: t.data_bytes)]
        lower = [t for t in self.levels[level + 1]
                 if any(t.overlaps(u) for u in upper)]
        merged = yield from self._merge_tables(upper + lower, level)
        new_tables = []
        if merged:
            table = yield from self._write_sstable(merged, level + 1)
            new_tables.append(table)
        for table in upper:
            self.levels[level].remove(table)
            self.compaction_bytes += table.data_bytes
            yield from self.fs.delete(table.name)
        for table in lower:
            self.levels[level + 1].remove(table)
            self.compaction_bytes += table.data_bytes
            yield from self.fs.delete(table.name)
        self.levels[level + 1].extend(new_tables)
        self.compactions += 1

    def _merge_tables(self, tables: List[SSTable], level: int):
        """Process-style newest-wins merge; reads every input table.

        Compaction reads its inputs sequentially in full — the large
        sequential read traffic that makes db_bench's overwrite workload
        IO-bound — and produces the merged, sorted item list.
        """
        contents: Dict[str, bytes] = {}
        for table in tables:
            if table.data_bytes:
                contents[table.name] = yield from self.fs.read(
                    table.name, 0, table.data_bytes)
            else:
                contents[table.name] = b""
        winners: Dict[bytes, Tuple[SSTable, int, int]] = {}
        # Iterate oldest-first so newer entries overwrite older ones:
        # higher level number = older data; within a level, lower file
        # sequence = older table.
        for table in sorted(tables, key=lambda t: (-t.level, t.name)):
            for key, (offset, length) in table.index.items():
                winners[key] = (table, offset, length)
        items: List[Tuple[bytes, object]] = []
        drop_tombstones = not any(self.levels[level + 2:])
        for key in sorted(winners):
            table, offset, length = winners[key]
            if length < 0:
                if not drop_tombstones:
                    items.append((key, _TOMBSTONE))
                continue
            items.append((key, contents[table.name][offset:offset + length]))
        return items
