"""A simplified F2FS: log-structured filesystem over zoned or block volumes.

The paper's application benchmarks (§6.3) run RocksDB and MySQL on F2FS,
which supports both ZNS and conventional block devices.  This module
reproduces the aspects of F2FS that shape the array-level IO pattern:

* log-structured allocation in large segments, with separate *node*
  (metadata) and *data* logs — two active write streams;
* on zoned volumes, segments are logical zones: strictly sequential
  writes, zone resets when a segment is cleaned, and no in-place updates
  (threaded logging is disabled on ZNS, matching [14]);
* on block volumes, cleaned segments are discarded and reused in place,
  leaving garbage collection to the device FTL;
* segment cleaning (filesystem GC) that migrates live extents from the
  dirtiest victim segments when free space runs low;
* fsync = node block write + device cache flush.

Files are byte streams identified by path; the in-memory inode table maps
each file to its extent list.  (Real F2FS persists inodes in the node
log; here node-log *writes* are modelled for their IO cost, and recovery
of the filesystem itself is out of scope — RAIZN below it is the system
under test.)
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

from ..block.bio import Bio, BioFlags, Op
from ..errors import ReproError
from ..sim import Lock, Simulator
from ..units import MiB, SECTOR_SIZE


class F2FSError(ReproError):
    """Filesystem-level error (no space, unknown file, ...)."""


@dataclasses.dataclass
class Extent:
    """One contiguous run of file bytes on the volume."""

    lba: int
    length: int


class Segment:
    """Allocation unit of the log; on zoned volumes, one logical zone."""

    __slots__ = ("index", "start", "size", "write_offset", "valid_bytes")

    def __init__(self, index: int, start: int, size: int):
        self.index = index
        self.start = start
        self.size = size
        self.write_offset = 0  # bytes appended so far
        self.valid_bytes = 0   # bytes still referenced by live files

    @property
    def free_bytes(self) -> int:
        return self.size - self.write_offset

    @property
    def garbage_bytes(self) -> int:
        return self.write_offset - self.valid_bytes


class File:
    """In-memory inode: ordered extents plus total size."""

    __slots__ = ("path", "extents", "size")

    def __init__(self, path: str):
        self.path = path
        self.extents: List[Extent] = []
        self.size = 0


class F2FS:
    """The filesystem object; all IO methods are process-style generators."""

    #: Stream identifiers (F2FS temperature classes, reduced to two).
    NODE, DATA = 0, 1

    def __init__(self, sim: Simulator, volume,
                 segment_bytes: Optional[int] = None,
                 reserved_segments: int = 4):
        self.sim = sim
        self.volume = volume
        self.zoned = hasattr(volume, "report_zones")
        if self.zoned:
            segment_bytes = volume.zone_capacity
        elif segment_bytes is None:
            segment_bytes = 2 * MiB
        if volume.capacity // segment_bytes < reserved_segments + 4:
            raise F2FSError("volume too small for the segment configuration")
        self.segment_bytes = segment_bytes
        self.reserved_segments = reserved_segments
        num_segments = volume.capacity // segment_bytes
        self.segments = [Segment(i, i * segment_bytes, segment_bytes)
                         for i in range(num_segments)]
        self.free_segments: List[int] = list(range(num_segments))
        self.files: Dict[str, File] = {}
        #: lba -> (path, file offset) for every live block, used by cleaning.
        self._owners: Dict[int, Tuple[str, int]] = {}
        self.active: Dict[int, Optional[Segment]] = {
            self.NODE: None, self.DATA: None}
        #: Serializes segment rotation and cleaning across concurrent
        #: writers; the fast append path never takes it.
        self._alloc_lock = Lock(sim)
        self.gc_migrated_bytes = 0
        self.fsync_count = 0

    # -- namespace ----------------------------------------------------------------

    def create(self, path: str) -> File:
        """Create an empty file (no IO)."""
        if path in self.files:
            raise F2FSError(f"file exists: {path}")
        self.files[path] = File(path)
        return self.files[path]

    def exists(self, path: str) -> bool:
        return path in self.files

    def file_size(self, path: str) -> int:
        return self._get(path).size

    def _get(self, path: str) -> File:
        try:
            return self.files[path]
        except KeyError:
            raise F2FSError(f"no such file: {path}") from None

    def list_files(self) -> List[str]:
        return sorted(self.files)

    # -- data path ------------------------------------------------------------------

    def append(self, path: str, data: bytes):
        """Process-style append of ``data`` to ``path``.

        Data lands in the active data segment, sector-padded like any
        filesystem block allocation; large appends may span segments.
        Safe for concurrent writers: the target range is reserved (and
        the extent map updated) *before* waiting on the device, so a
        second appender sees the advanced log position.
        """
        file = self._get(path)
        if len(data) % SECTOR_SIZE:
            data = data + bytes(SECTOR_SIZE - len(data) % SECTOR_SIZE)
        position = 0
        while position < len(data):
            segment = self.active[self.DATA]
            if segment is None or segment.free_bytes == 0:
                yield from self._rotate_active(self.DATA)
                continue
            take = min(len(data) - position, segment.free_bytes)
            lba = segment.start + segment.write_offset
            event = self.volume.submit(
                Bio.write(lba, data[position:position + take]))
            self._record_extent(file, segment, lba, take)
            position += take
            yield event
        return file.size

    def _record_extent(self, file: File, segment: Segment, lba: int,
                       length: int) -> None:
        if file.extents and \
                file.extents[-1].lba + file.extents[-1].length == lba:
            file.extents[-1].length += length
        else:
            file.extents.append(Extent(lba, length))
        for offset in range(0, length, SECTOR_SIZE):
            self._owners[lba + offset] = (file.path, file.size + offset)
        segment.write_offset += length
        segment.valid_bytes += length
        file.size += length

    def read(self, path: str, offset: int, length: int):
        """Process-style read of ``[offset, offset+length)`` from ``path``.

        Device reads are issued at sector granularity (as a real
        filesystem's block layer does) and trimmed to the requested range.
        """
        file = self._get(path)
        if offset + length > file.size:
            raise F2FSError(
                f"read past EOF of {path}: {offset + length} > {file.size}")
        head = offset % SECTOR_SIZE
        aligned_offset = offset - head
        aligned_length = length + head
        if aligned_length % SECTOR_SIZE:
            aligned_length += SECTOR_SIZE - aligned_length % SECTOR_SIZE
        aligned_length = min(aligned_length, file.size - aligned_offset)
        events = []
        position = aligned_offset
        remaining = aligned_length
        # Walk extents tracking the file offset they cover (file order).
        covered = 0
        for extent in file.extents:
            if remaining == 0:
                break
            extent_end = covered + extent.length
            if position < extent_end:
                inner = position - covered
                take = min(remaining, extent.length - inner)
                events.append(self.volume.submit(
                    Bio.read(extent.lba + inner, take)))
                position += take
                remaining -= take
            covered = extent_end
        results = yield self.sim.all_of(events)
        data = b"".join(bio.result for bio in results)
        return data[head:head + length]

    def delete(self, path: str):
        """Process-style delete: drops extents and discards dead segments."""
        file = self._get(path)
        del self.files[path]
        touched = set()
        for extent in file.extents:
            segment = self.segments[extent.lba // self.segment_bytes]
            segment.valid_bytes -= extent.length
            touched.add(segment.index)
            for offset in range(0, extent.length, SECTOR_SIZE):
                self._owners.pop(extent.lba + offset, None)
        for index in sorted(touched):
            yield from self._maybe_reclaim(self.segments[index])
        return None

    def fsync(self, path: str):
        """Node block write + full cache flush (F2FS fsync path)."""
        self._get(path)
        while True:
            segment = self.active[self.NODE]
            if segment is not None and segment.free_bytes > 0:
                break
            yield from self._rotate_active(self.NODE)
        lba = segment.start + segment.write_offset
        segment.write_offset += SECTOR_SIZE
        # Node blocks are superseded by the next checkpoint, so they count
        # as garbage immediately; a full node segment is reclaimed whole.
        event = self.volume.submit(Bio.write(lba, bytes(SECTOR_SIZE),
                                             BioFlags.FUA))
        yield event
        yield self.volume.submit(Bio.flush())
        self.fsync_count += 1

    # -- allocation ----------------------------------------------------------------------

    def _rotate_active(self, stream: int):
        """Replace a full active segment, cleaning if space is low.

        Serialized by the allocation lock; re-checks state after
        acquiring it because another writer may have rotated already.
        """
        yield self._alloc_lock.request()
        try:
            segment = self.active[stream]
            if segment is not None and segment.free_bytes > 0:
                return  # someone else already rotated
            if segment is not None and segment.valid_bytes == 0 and \
                    segment.free_bytes == 0:
                yield from self._reclaim(segment)
            if len(self.free_segments) <= self.reserved_segments:
                yield from self._clean()
            if not self.free_segments:
                raise F2FSError("filesystem out of space")
            self.active[stream] = self.segments[self.free_segments.pop(0)]
        finally:
            self._alloc_lock.release()

    def _maybe_reclaim(self, segment: Segment):
        """Free a fully-dead, fully-written segment."""
        if segment.valid_bytes == 0 and segment.free_bytes == 0 and \
                segment is not self.active[self.NODE] and \
                segment is not self.active[self.DATA]:
            yield from self._reclaim(segment)

    def _reclaim(self, segment: Segment):
        if self.zoned:
            yield self.volume.submit(Bio.zone_reset(segment.start))
        else:
            yield self.volume.submit(
                Bio(Op.DISCARD, offset=segment.start, length=segment.size))
        segment.write_offset = 0
        segment.valid_bytes = 0
        if segment.index not in self.free_segments:
            self.free_segments.append(segment.index)

    # -- cleaning (filesystem GC) ------------------------------------------------------------

    def _clean(self):
        """Migrate live data out of the dirtiest segments (F2FS cleaning)."""
        candidates = [s for s in self.segments
                      if s.free_bytes == 0 and s.garbage_bytes > 0
                      and s is not self.active[self.NODE]
                      and s is not self.active[self.DATA]]
        candidates.sort(key=lambda s: s.valid_bytes)
        for victim in candidates[:2]:
            yield from self._migrate(victim)

    def _migrate(self, victim: Segment):
        """Move every live block of ``victim`` to a fresh segment.

        Runs under the allocation lock, so it allocates destination
        segments directly from the free list (the reserved segments
        guarantee availability) instead of recursing into rotation.
        """
        live = [(lba, self._owners[lba])
                for lba in range(victim.start, victim.start + victim.size,
                                 SECTOR_SIZE)
                if lba in self._owners]
        destination: Optional[Segment] = None
        for lba, (path, file_offset) in live:
            if destination is None or destination.free_bytes == 0:
                if not self.free_segments:
                    raise F2FSError("no free segment for cleaning")
                destination = self.segments[self.free_segments.pop(0)]
            bio = yield self.volume.submit(Bio.read(lba, SECTOR_SIZE))
            new_lba = destination.start + destination.write_offset
            destination.write_offset += SECTOR_SIZE
            destination.valid_bytes += SECTOR_SIZE
            yield self.volume.submit(Bio.write(new_lba, bio.result))
            victim.valid_bytes -= SECTOR_SIZE
            self.gc_migrated_bytes += SECTOR_SIZE
            del self._owners[lba]
            self._owners[new_lba] = (path, file_offset)
            self._repoint(path, file_offset, new_lba)
        yield from self._reclaim(victim)

    def _repoint(self, path: str, file_offset: int, new_lba: int) -> None:
        """Split/update the owning file's extent map for one moved block."""
        file = self.files.get(path)
        if file is None:
            return
        covered = 0
        for i, extent in enumerate(file.extents):
            if covered <= file_offset < covered + extent.length:
                inner = file_offset - covered
                pieces = []
                if inner:
                    pieces.append(Extent(extent.lba, inner))
                pieces.append(Extent(new_lba, SECTOR_SIZE))
                tail = extent.length - inner - SECTOR_SIZE
                if tail > 0:
                    pieces.append(Extent(extent.lba + inner + SECTOR_SIZE,
                                         tail))
                file.extents[i:i + 1] = pieces
                return
            covered += extent.length
