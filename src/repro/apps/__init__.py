"""Application substrates: F2FS-like filesystem, LSM KV store, db_bench
and sysbench-style drivers."""

from .dbbench import DbBenchResult, db_bench, make_key
from .f2fs import F2FS, F2FSError
from .lsm import LSMTree, SSTable
from .oltp import OltpResult, prepare_tables, row_key, run_oltp

__all__ = [
    "DbBenchResult",
    "db_bench",
    "make_key",
    "F2FS",
    "F2FSError",
    "LSMTree",
    "SSTable",
    "OltpResult",
    "prepare_tables",
    "row_key",
    "run_oltp",
]
