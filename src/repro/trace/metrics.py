"""Unified metrics registry: one snapshot/export API over every counter.

The repository grew its counters organically — ``DeviceStats`` on every
device and on the volume, ``HealthStats`` and per-device
``DeviceHealth`` on the volume, append/GC counters on each device's
metadata zones, ``LatencyStats`` in the harnesses.  Each harness used to
reach into whichever objects it knew about.  The registry consolidates
them: sources register once under a dotted name, and ``snapshot()`` /
``flat()`` / ``to_json()`` export everything uniformly.  The trace
report reconciles its per-device span totals against the same snapshot,
so a disagreement between the two accounting systems is loud.
"""

from __future__ import annotations

import json
from typing import Callable, Dict, Mapping, Optional


class MetricsRegistry:
    """Named metric sources with a uniform snapshot API.

    A source is any zero-argument callable returning a (possibly
    nested) mapping of counter name → value.  Objects exposing
    ``to_dict()`` or ``summary()`` may be registered directly.
    """

    def __init__(self) -> None:
        self._sources: Dict[str, Callable[[], Mapping]] = {}

    def register(self, name: str, source) -> None:
        """Register ``source`` under ``name`` (dotted names group output).

        ``source`` may be a callable, or an object with ``to_dict()`` or
        ``summary()``.  Re-registering a name replaces the old source.
        """
        if callable(source):
            fn = source
        elif hasattr(source, "to_dict"):
            fn = source.to_dict
        elif hasattr(source, "summary"):
            fn = source.summary
        else:
            raise TypeError(
                f"metric source {name!r} is neither callable nor has "
                "to_dict()/summary()")
        self._sources[name] = fn

    def names(self):
        """Registered source names, in registration order."""
        return list(self._sources)

    def snapshot(self) -> Dict[str, Dict]:
        """Evaluate every source: ``{source_name: {counter: value}}``."""
        return {name: dict(fn()) for name, fn in self._sources.items()}

    def flat(self) -> Dict[str, float]:
        """Flattened snapshot with dotted keys (nested dicts unrolled)."""
        out: Dict[str, float] = {}

        def walk(prefix: str, mapping: Mapping) -> None:
            for key, value in mapping.items():
                path = f"{prefix}.{key}"
                if isinstance(value, Mapping):
                    walk(path, value)
                else:
                    out[path] = value

        for name, fn in self._sources.items():
            walk(name, fn())
        return out

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    # -- canned wiring -----------------------------------------------------------

    @classmethod
    def for_volume(cls, volume) -> "MetricsRegistry":
        """Registry covering a :class:`~repro.raizn.volume.RaiznVolume`:
        volume-level IO stats, per-device IO stats, volume health, the
        per-device latency-health scores, and metadata-zone counters."""
        registry = cls()
        registry.register("volume", volume.stats)
        registry.register("health", volume.health)
        for index, device in enumerate(volume.devices):
            if device is None:
                continue
            registry.register(f"device.{device.name}", device.stats)
            registry.register(f"device_health.{device.name}",
                              volume.device_health[index])
        for index, mdz in enumerate(volume.mdzones):
            if mdz is None:
                continue
            registry.register(
                f"mdzone.{volume.devices[index].name}",
                lambda m=mdz: {"appended_bytes": m.appended_bytes,
                               "gc_cycles": m.gc_cycles})
        return registry
