"""Time-attribution report over a trace sink (a text flamegraph).

Renders where simulated time went, per layer and per device, from the
sink's cumulative aggregates — and reconciles the per-device span totals
against the :class:`~repro.trace.metrics.MetricsRegistry` snapshot of
``DeviceStats.io_seconds``.  Both accountings measure the same
submit→complete interval from the same simulated clock, so they must
agree; the 1% tolerance exists only to absorb deliberate future changes
to either side, not floating-point noise.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

from ..units import MiB
from .metrics import MetricsRegistry
from .tracer import DEVICE_LAYERS, TraceSink, name_str

#: Render order; unknown layers (custom instrumentation) sort after.
_LAYER_ORDER = {"volume": 0, "stripe": 1, "parity": 2, "md": 3,
                "block": 4, "conv": 5, "zns": 6}

#: Reconciliation tolerance (fraction of the registry's counter).
RECONCILE_TOLERANCE = 0.01


@dataclasses.dataclass
class ReconcileRow:
    """One device's span total vs its registry ``io_seconds`` counter."""

    device: str
    span_seconds: float
    registry_seconds: float

    @property
    def delta_fraction(self) -> float:
        if self.registry_seconds == 0.0:
            return 0.0 if self.span_seconds == 0.0 else float("inf")
        return (self.span_seconds - self.registry_seconds) \
            / self.registry_seconds

    @property
    def ok(self) -> bool:
        return abs(self.delta_fraction) <= RECONCILE_TOLERANCE


def reconcile(sink: TraceSink,
              registry: MetricsRegistry) -> List[ReconcileRow]:
    """Per-device span seconds vs registry ``device.<name>.io_seconds``."""
    span_totals = sink.device_seconds()
    rows = []
    for name, counters in sorted(registry.snapshot().items()):
        if not name.startswith("device."):
            continue
        device = name[len("device."):]
        rows.append(ReconcileRow(
            device=device,
            span_seconds=span_totals.get(device, 0.0),
            registry_seconds=float(counters.get("io_seconds", 0.0))))
    return rows


def _bar(fraction: float, width: int = 24) -> str:
    filled = int(round(max(0.0, min(1.0, fraction)) * width))
    return "#" * filled + "." * (width - filled)


def format_trace_report(sink: TraceSink,
                        registry: Optional[MetricsRegistry] = None) -> str:
    """Render the attribution report; includes reconciliation when a
    registry is supplied."""
    lines: List[str] = []
    lines.append(f"spans recorded: {sink.total_recorded} "
                 f"(ring holds {sink.ring_count}, evicted {sink.evicted})")
    lines.append("")
    lines.append("time attribution (simulated seconds; layers overlap — a "
                 "bio is in several at once)")

    # Group aggregate rows by layer.  Device spans carry their
    # queue/service split in the row's fourth slot (queue seconds);
    # those render as derived rows indented under the span row.
    by_layer: Dict[str, List[Tuple[str, Optional[str], List]]] = {}
    for (layer, name, device), row in sink.aggregates.items():
        by_layer.setdefault(layer, []).append((name_str(name), device, row))
    peak = max((row[1] for rows in by_layer.values()
                for _, _, row in rows), default=0.0)

    header = f"  {'layer/name':<28}{'count':>9}{'seconds':>12}{'MiB':>9}  "
    lines.append(header + "share")
    for layer in sorted(by_layer, key=lambda l: (_LAYER_ORDER.get(l, 99), l)):
        rows = by_layer[layer]
        lines.append(f"  {layer}")
        for name, device, row in sorted(rows, key=lambda item: -item[2][1]):
            label = f"{name}@{device}" if device is not None else name
            count, seconds, nbytes, queue = row
            share = seconds / peak if peak > 0 else 0.0
            lines.append(f"    {label:<26}{count:>9}{seconds:>12.6f}"
                         f"{nbytes / MiB:>9.1f}  {_bar(share)}")
            if layer in DEVICE_LAYERS and seconds > 0.0:
                for sub, subsec in (("queue", queue),
                                    ("service", seconds - queue)):
                    sub_share = subsec / peak if peak > 0 else 0.0
                    lines.append(f"      {sub:<24}{count:>9}{subsec:>12.6f}"
                                 f"{'':>9}  {_bar(sub_share)}")

    if registry is not None:
        lines.append("")
        lines.append("reconciliation: device span totals vs MetricsRegistry "
                     "io_seconds")
        lines.append(f"  {'device':<10}{'spans s':>12}{'registry s':>12}"
                     f"{'delta':>9}")
        for row in reconcile(sink, registry):
            delta = row.delta_fraction
            verdict = "ok" if row.ok else "MISMATCH"
            lines.append(f"  {row.device:<10}{row.span_seconds:>12.6f}"
                         f"{row.registry_seconds:>12.6f}"
                         f"{delta * 100:>8.2f}%  {verdict}")
    return "\n".join(lines)
