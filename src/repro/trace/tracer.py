"""Per-bio span tracing across the volume → stripe → device layers.

Debugging the reproduction's own anomalies (hedge accounting, retry
double-counts, GC interference à la Figure 10) needs to answer *where
time goes per bio*.  The tracer records one span per unit of work — the
logical bio at the :class:`~repro.raizn.volume.RaiznVolume` boundary,
stripe assembly, parity computation, metadata-log appends, and each
device command — into a bounded ring buffer plus cumulative
per-``(layer, name, device)`` aggregates that survive ring eviction, so
the time-attribution report always reconciles against the volume's
lifetime counters no matter how long the run was.

Design constraints, in order:

1. **Zero cost when disabled.**  Tracing is off unless
   ``RaiznConfig.tracing`` opts in; every instrumentation site in the
   datapath is guarded by a single ``is None`` test on a cached
   attribute, and no tracer object exists at all.
2. **Near-zero cost when enabled.**  The perfbench ``tracing_overhead``
   scenario budgets < 3% wall-clock slowdown, which at the simulator's
   IO rate leaves well under a microsecond per span.  Three things
   matter at that scale, and all shape the layout here.  First,
   per-span CPU: each ``(layer, name, device)`` triple is interned once
   into an integer *site id* (:meth:`Tracer.site`) and a whole ring
   record is written with a single ``struct.pack_into`` call.  Second,
   work deferred off the hot path: the cumulative aggregate rows are
   folded in only when a record is *evicted* from the ring (and the
   remainder scanned at read time), so a run shorter than the ring
   capacity never pays for aggregation at all.  Third, allocator
   pressure: a naive ring of span objects interleaves tens of thousands
   of small allocations with the simulator's large media buffers, which
   measurably slows the *rest* of the datapath (pymalloc churn); the
   ring is one preallocated ``bytearray``, open spans are pooled and
   recycled, and the per-bio trace state on a device command is two
   plain scalars.
3. **Inert.**  The tracer never schedules events, never draws from any
   RNG, and never touches device state, so a traced run produces
   byte-identical simulation results (the perfbench digest asserts
   this).
"""

from __future__ import annotations

import json
import math
import struct
from typing import Dict, IO, List, Optional, Tuple

#: Names of the derived per-device breakdown rows in the report: device
#: span time re-expressed as queue wait (submit → channel grant) and
#: service (grant → complete).  Derived from the aggregate rows, never
#: stored as rows of their own.
BREAKDOWN_NAMES = frozenset({"queue", "service"})

#: Layers whose spans measure device commands (submit→complete on a
#: :class:`~repro.block.device.BlockDevice` subclass).  Only these count
#: toward per-device busy time: an ``md`` span also names a device but
#: *contains* the device command it issued, so summing it too would
#: double-count the overlap.
DEVICE_LAYERS = frozenset({"block", "zns", "conv"})

_NAN = float("nan")

#: Ring record layout: seven little-endian doubles — id, parent, site,
#: start, mark, end, bytes.  Ids and sizes are exact as doubles up to
#: 2**53; parent ``-1`` means no parent and a NaN mark means none.
_RECORD = struct.Struct("=7d")
RECORD_SIZE = _RECORD.size

#: Root-span ids and their site are packed into one int on the bio
#: (``code = span_id << SITE_BITS | site``) so the volume's completion
#: callback can record the span without any per-bio trace object.
SITE_BITS = 20
_SITE_MASK = (1 << SITE_BITS) - 1


def name_str(name) -> str:
    """Span/aggregate names may be enums (``Op``, ``MetadataRole``) —
    the hot path stores them unconverted; presentation goes through
    here."""
    return getattr(name, "value", name)


class Span:
    """One *open* traced unit of work, stamped in simulated seconds.

    Only spans whose close site is far from their open site (metadata-
    log appends, custom instrumentation) materialise as ``Span``
    objects; device commands go straight to the ring via
    :meth:`Tracer.complete_io`, logical bios via the packed-int root
    path (:meth:`Tracer.record_root`), and instants via cached
    aggregate rows.  ``parent_id`` links a sub-span to the logical
    bio's root span when the fan-out happened synchronously under it
    (``-1`` means no parent, matching the ring's encoding).

    A span is also its own completion callback: passing it to
    ``Event.add_callback`` closes it when the event fires, without a
    closure allocation.  Closed spans return to the tracer's free pool
    and are recycled by the next :meth:`Tracer.begin` — never retain a
    span past its end.
    """

    __slots__ = ("tracer", "span_id", "parent_id", "site", "start", "nbytes")

    def __init__(self, tracer: "Tracer", span_id: int, parent_id: int,
                 site: int, start: float, nbytes: int):
        self.tracer = tracer
        self.span_id = span_id
        self.parent_id = parent_id
        self.site = site
        self.start = start
        self.nbytes = nbytes

    def __call__(self, _event) -> None:
        """Event-callback form of :meth:`Tracer.end`."""
        self.tracer.end(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Span #{self.span_id} site={self.site} @{self.start}>"


class TraceSink:
    """Bounded span store: a packed ring buffer plus lossless aggregates.

    The ring — one preallocated ``bytearray`` of fixed-size records,
    overwritten circularly — holds the ``capacity`` most recent spans
    and feeds the JSONL dump.  The aggregates — one ``[count, seconds,
    bytes, queue_seconds]`` row per interned ``(layer, name, device)``
    site — cover every span ever recorded: ``rows`` accumulates spans
    as they are *evicted* from the ring (plus direct instant bumps via
    :meth:`Tracer.aggregate_row`), and the :attr:`aggregates` view
    folds in whatever is still sitting in the ring at read time.
    Eviction never skews the attribution report or its reconciliation
    against :class:`~repro.trace.metrics.MetricsRegistry` counters, and
    a run shorter than ``capacity`` pays nothing for aggregation on the
    hot path.  The fourth row slot accumulates the queue-wait portion
    of device spans (those with a channel-grant mark); service time is
    its complement.
    """

    def __init__(self, capacity: int = 65536):
        if capacity < 1:
            raise ValueError("trace sink capacity must be >= 1")
        self.capacity = capacity
        #: The ring: ``capacity`` packed ``_RECORD`` slots.
        self.buf = bytearray(capacity * RECORD_SIZE)
        #: Spans ever recorded into the ring (ids are allocated
        #: separately — an open span holds its id before it records).
        self.total_recorded = 0
        #: Site interning: key triple → site id → aggregate row.
        self.sites: Dict[Tuple, int] = {}
        self.site_keys: List[Tuple] = []
        #: Evicted-span totals plus direct instant bumps; *not* the full
        #: cumulative totals — read :attr:`aggregates` for those.
        self.rows: List[List] = []

    def site(self, layer: str, name, device: Optional[str] = None) -> int:
        """Intern ``(layer, name, device)``; returns its stable site id."""
        key = (layer, name, device)
        site = self.sites.get(key)
        if site is None:
            site = self.sites[key] = len(self.site_keys)
            self.site_keys.append(key)
            self.rows.append([0, 0.0, 0, 0.0])
        return site

    def _fold_one(self, offset: int) -> None:
        """Fold the record at byte ``offset`` into ``rows`` (it is about
        to be overwritten)."""
        _id, _parent, site, start, mark, end, nbytes = \
            _RECORD.unpack_from(self.buf, offset)
        row = self.rows[int(site)]
        row[0] += 1
        row[1] += end - start
        row[2] += int(nbytes)
        if mark == mark:  # not NaN: a device span with a grant mark
            row[3] += mark - start

    @property
    def aggregates(self) -> Dict[Tuple, List]:
        """Cumulative per-site totals over *every* span ever recorded,
        keyed by ``(layer, name, device)`` — ``[count, seconds, bytes,
        queue_seconds]``.  Built fresh on each read: the evicted/instant
        ``rows`` plus a scan of the live ring."""
        agg = [row[:] for row in self.rows]
        buf = self.buf
        capacity = self.capacity
        unpack = _RECORD.unpack_from
        for ordinal in range(self.evicted, self.total_recorded):
            _id, _parent, site, start, mark, end, nbytes = \
                unpack(buf, (ordinal % capacity) * RECORD_SIZE)
            row = agg[int(site)]
            row[0] += 1
            row[1] += end - start
            row[2] += int(nbytes)
            if mark == mark:
                row[3] += mark - start
        return {key: agg[site] for key, site in self.sites.items()}

    @property
    def ring_count(self) -> int:
        """Spans currently held in the ring."""
        return min(self.total_recorded, self.capacity)

    @property
    def evicted(self) -> int:
        """Spans overwritten in the ring (still present in aggregates)."""
        return self.total_recorded - self.ring_count

    def device_seconds(self) -> Dict[str, float]:
        """Total device-command span seconds per device name.

        Sums the device-layer aggregates (see :data:`DEVICE_LAYERS` for
        why ``md`` spans are excluded); reconciles against
        ``DeviceStats.io_seconds``, which the device accumulates from
        the same submit→complete interval.
        """
        totals: Dict[str, float] = {}
        for (layer, _name, device), row in self.aggregates.items():
            if device is None or layer not in DEVICE_LAYERS:
                continue
            totals[device] = totals.get(device, 0.0) + row[1]
        return totals

    def _ring_record(self, ordinal: int) -> Dict[str, object]:
        span_id, parent, site, start, mark, end, nbytes = _RECORD.unpack_from(
            self.buf, (ordinal % self.capacity) * RECORD_SIZE)
        layer, name, device = self.site_keys[int(site)]
        return {
            "id": int(span_id),
            "parent": None if parent < 0 else int(parent),
            "layer": layer,
            "name": name_str(name),
            "device": device,
            "start": start,
            "mark": None if math.isnan(mark) else mark,
            "end": end,
            "bytes": int(nbytes),
        }

    def dump_jsonl(self, fh: IO[str]) -> int:
        """Write the ring's spans as JSON Lines (oldest first); returns
        the number of spans written."""
        written = 0
        dumps = json.dumps
        for ordinal in range(self.evicted, self.total_recorded):
            fh.write(dumps(self._ring_record(ordinal)))
            fh.write("\n")
            written += 1
        return written


class Tracer:
    """Span factory bound to one simulator clock and one sink.

    The volume creates a tracer when ``config.tracing`` is set and hands
    the same instance to every array device (``device.tracer``), so all
    layers stamp spans on one clock into one sink.  ``current_parent``
    is the root-span id of the logical bio whose synchronous fan-out is
    executing (``-1`` outside any); instrumentation sites read it to
    parent their sub-spans without threading a context argument through
    the datapath.
    """

    __slots__ = ("sim", "sink", "current_parent", "_next_id", "_pool")

    def __init__(self, sim, sink: Optional[TraceSink] = None):
        self.sim = sim
        self.sink = sink if sink is not None else TraceSink()
        #: Root-span id of the in-flight logical bio, ``-1`` outside any
        #: synchronous fan-out (the ring's no-parent encoding).
        self.current_parent: int = -1
        self._next_id = 0
        #: Closed spans awaiting reuse.  Steady state allocates nothing:
        #: pool depth is bounded by the maximum number of concurrently
        #: open spans (roughly the in-flight metadata appends), and
        #: recycling keeps the tracer from interleaving thousands of
        #: short-lived objects with the simulator's media buffers.
        self._pool: List[Span] = []

    def site(self, layer: str, name, device: Optional[str] = None) -> int:
        """Intern a span site; see :meth:`TraceSink.site`."""
        return self.sink.site(layer, name, device)

    def aggregate_row(self, layer: str, name,
                      device: Optional[str] = None) -> List:
        """The live ``[count, seconds, bytes, queue_seconds]`` aggregate
        row for a site.  The cheapest way to count zero-duration work on
        a hot path: cache the row once and bump ``row[0]``/``row[2]`` in
        place (no call, no ring entry) — stripe assembly and parity
        computation do exactly this."""
        sink = self.sink
        return sink.rows[sink.site(layer, name, device)]

    def root_code(self, site: int) -> int:
        """Allocate a root-span id and pack it with ``site`` into the
        single int the volume parks on the logical bio; the matching
        record call is :meth:`record_root`.  ``code >> SITE_BITS`` is
        the span id (feed it to ``current_parent``)."""
        span_id = self._next_id
        self._next_id = span_id + 1
        return span_id << SITE_BITS | site

    def record_root(self, code: int, start: float, nbytes: int) -> None:
        """Record the root span packed into ``code`` as ending now."""
        sink = self.sink
        ordinal = sink.total_recorded
        sink.total_recorded = ordinal + 1
        capacity = sink.capacity
        offset = (ordinal % capacity) * RECORD_SIZE
        if ordinal >= capacity:
            sink._fold_one(offset)
        _RECORD.pack_into(sink.buf, offset, code >> SITE_BITS, -1.0,
                          code & _SITE_MASK, start, _NAN, self.sim.now,
                          nbytes)

    def begin_at(self, site: int, nbytes: int = 0) -> Span:
        """Open a span starting now at an already-interned ``site``.

        The hot-path form of :meth:`begin`: call sites that fire per bio
        cache their site ids so opening a span neither allocates a key
        tuple nor hashes an enum.  Recycles a pooled span when one is
        free.
        """
        span_id = self._next_id
        self._next_id = span_id + 1
        pool = self._pool
        if pool:
            span = pool.pop()
            span.span_id = span_id
            span.parent_id = self.current_parent
            span.site = site
            span.start = self.sim.now
            span.nbytes = nbytes
            return span
        return Span(self, span_id, self.current_parent, site,
                    self.sim.now, nbytes)

    def begin(self, layer: str, name, device: Optional[str] = None,
              nbytes: int = 0) -> Span:
        """Open a span starting now; close it with :meth:`end`."""
        return self.begin_at(self.sink.site(layer, name, device), nbytes)

    def end(self, span: Span) -> None:
        """Close ``span`` now, record it, and recycle it."""
        sink = self.sink
        ordinal = sink.total_recorded
        sink.total_recorded = ordinal + 1
        capacity = sink.capacity
        offset = (ordinal % capacity) * RECORD_SIZE
        if ordinal >= capacity:
            sink._fold_one(offset)
        _RECORD.pack_into(sink.buf, offset, span.span_id, span.parent_id,
                          span.site, span.start, _NAN, self.sim.now,
                          span.nbytes)
        self._pool.append(span)

    def complete_io(self, site: int, start: float, mark: float,
                    nbytes: int, parent: int) -> None:
        """Record a device-command span ending now, sans ``Span`` object.

        The fast path for :class:`~repro.block.device.BlockDevice`
        completions: the device already holds every timestamp (submit
        time on the bio, channel grant stashed by ``_grant``) and caches
        its per-op site ids, so the whole span is one call at
        completion.  ``mark`` is the channel-grant time; ``parent`` is
        the root-span id captured at submission (``-1`` for none).
        """
        span_id = self._next_id
        self._next_id = span_id + 1
        sink = self.sink
        ordinal = sink.total_recorded
        sink.total_recorded = ordinal + 1
        capacity = sink.capacity
        offset = (ordinal % capacity) * RECORD_SIZE
        if ordinal >= capacity:
            sink._fold_one(offset)
        _RECORD.pack_into(sink.buf, offset, span_id, parent, site, start,
                          mark, self.sim.now, nbytes)

    def discard(self, span: Span) -> None:
        """Drop an open span without recording it, and recycle it.

        Used when the measured work never completed (power loss or
        device failure mid-command): the device's ``io_seconds`` counter
        skips those too, keeping span totals reconcilable.
        """
        self._pool.append(span)

    def instant(self, layer: str, name, device: Optional[str] = None,
                nbytes: int = 0) -> None:
        """Record a zero-duration span (synchronous work whose
        information is the count and byte volume, not elapsed time — the
        simulated clock cannot advance inside a callback).  Convenience
        wrapper; the datapath's own instants bypass it via
        :meth:`aggregate_row`."""
        span_id = self._next_id
        self._next_id = span_id + 1
        sink = self.sink
        site = sink.site(layer, name, device)
        ordinal = sink.total_recorded
        sink.total_recorded = ordinal + 1
        capacity = sink.capacity
        offset = (ordinal % capacity) * RECORD_SIZE
        if ordinal >= capacity:
            sink._fold_one(offset)
        now = self.sim.now
        _RECORD.pack_into(sink.buf, offset, span_id, self.current_parent,
                          site, now, _NAN, now, nbytes)
