"""Cross-layer bio tracing and the unified metrics registry.

Enable with ``RaiznConfig(tracing=True)`` and inspect via::

    PYTHONPATH=src python -m repro trace

which runs a mixed workload, prints the per-layer time-attribution
report, verifies span totals reconcile with the registry counters, and
dumps the span ring as JSON Lines.
"""

from .metrics import MetricsRegistry
from .report import ReconcileRow, format_trace_report, reconcile
from .tracer import Span, TraceSink, Tracer

__all__ = [
    "MetricsRegistry",
    "ReconcileRow",
    "Span",
    "TraceSink",
    "Tracer",
    "format_trace_report",
    "reconcile",
]
