"""Shared resources for simulated processes.

``Resource`` models a pool of identical servers (e.g. the parallel command
channels of an SSD).  ``Queue`` is an unbounded FIFO hand-off between
producer and consumer processes.  ``Lock`` is a single-holder mutex built on
``Resource``.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque

from ..errors import SimulationError
from .engine import Event, Simulator


class Resource:
    """A counted resource with FIFO granting.

    Usage from a process::

        grant = yield resource.request()
        try:
            yield sim.timeout(service_time)
        finally:
            resource.release()
    """

    def __init__(self, sim: Simulator, capacity: int):
        if capacity < 1:
            raise SimulationError(f"resource capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.in_use = 0
        self._waiters: Deque[Event] = deque()

    def request(self) -> Event:
        """An event that succeeds once a unit of the resource is granted."""
        event = self.sim.event()
        if self.in_use < self.capacity:
            self.in_use += 1
            # Inline succeed: the event is brand new, so it cannot have
            # callbacks yet and there is nothing to dispatch.
            event.triggered = True
        else:
            self._waiters.append(event)
        return event

    def release(self) -> None:
        """Return one granted unit, waking the oldest waiter if any."""
        if self.in_use <= 0:
            raise SimulationError("release() without a matching request()")
        if self._waiters:
            # Hand the unit directly to the next waiter; in_use is unchanged.
            self._waiters.popleft().succeed()
        else:
            self.in_use -= 1

    @property
    def queue_length(self) -> int:
        """Number of requests waiting for a unit."""
        return len(self._waiters)


class Lock(Resource):
    """A mutex: a resource of capacity one."""

    def __init__(self, sim: Simulator):
        super().__init__(sim, capacity=1)


class Queue:
    """Unbounded FIFO queue connecting simulated processes."""

    def __init__(self, sim: Simulator):
        self.sim = sim
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()

    def put(self, item: Any) -> None:
        """Enqueue ``item``, waking the oldest blocked getter if any."""
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        """An event that succeeds with the next item (FIFO order)."""
        event = self.sim.event()
        if self._items:
            # Inline succeed: brand-new event, nothing to dispatch.
            event.triggered = True
            event.value = self._items.popleft()
        else:
            self._getters.append(event)
        return event

    def __len__(self) -> int:
        return len(self._items)
