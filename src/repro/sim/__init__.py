"""Discrete-event simulation kernel used by every substrate in this repo."""

from .engine import AllOf, AnyOf, Event, Process, Simulator, Timeout
from .resources import Lock, Queue, Resource
from .stats import LatencyStats, ThroughputSeries, throughput_mib_s
from .tuning import simulation_gc

__all__ = [
    "AllOf",
    "AnyOf",
    "Event",
    "Process",
    "Simulator",
    "Timeout",
    "Lock",
    "Queue",
    "Resource",
    "LatencyStats",
    "ThroughputSeries",
    "throughput_mib_s",
    "simulation_gc",
]
