"""Interpreter tuning for long simulation runs.

Discrete-event simulations allocate millions of short-lived events; the
cyclic garbage collector's default thresholds make it scan the large,
mostly-static object graph (device media, zone tables) over and over,
which can dominate wall time.  ``simulation_gc`` disables the cyclic
collector for the duration of a run — the engine produces no reference
cycles that matter — and runs one collection on exit.
"""

from __future__ import annotations

import contextlib
import gc


@contextlib.contextmanager
def simulation_gc():
    """Context manager: cyclic GC off inside, one collect on the way out."""
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        yield
    finally:
        if was_enabled:
            gc.enable()
            gc.collect()
