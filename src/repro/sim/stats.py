"""Measurement helpers: latency distributions and throughput timeseries.

Every benchmark in this repository reports numbers computed by these two
classes from simulated-time samples, mirroring how the paper reports fio
throughput, median latency, 99.9th-percentile latency, and the 1 Hz
throughput/latency timeseries of Figure 10.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple

from ..units import MiB


class LatencyStats:
    """Collects latency samples (seconds) and reports summary statistics."""

    def __init__(self) -> None:
        self._samples: List[float] = []
        self._sorted = True

    def add(self, sample: float) -> None:
        """Record one latency sample in seconds."""
        if self._samples and sample < self._samples[-1]:
            self._sorted = False
        self._samples.append(sample)

    def extend(self, samples: Sequence[float]) -> None:
        """Record many samples at once."""
        for sample in samples:
            self.add(sample)

    @property
    def count(self) -> int:
        return len(self._samples)

    def _ensure_sorted(self) -> None:
        if not self._sorted:
            self._samples.sort()
            self._sorted = True

    def _interpolate(self, pct: float) -> float:
        """Shared linear interpolation over the sample list.

        The single code path both :meth:`percentile` and
        :meth:`percentiles` resolve through — every edge case (empty
        window, single sample, pct 0/100, out-of-range pct) is handled
        here and nowhere else, so the scalar and batch entry points can
        never disagree.
        """
        if not 0.0 <= pct <= 100.0:
            raise ValueError(f"percentile out of range: {pct}")
        samples = self._samples
        if not samples:
            raise ValueError("no latency samples recorded")
        if len(samples) == 1:
            # A one-sample window has a degenerate distribution: every
            # percentile, including 0 and 100, is that sample.
            return samples[0]
        self._ensure_sorted()
        rank = (pct / 100.0) * (len(samples) - 1)
        low = math.floor(rank)
        high = math.ceil(rank)
        if low == high:
            # Exact rank — covers pct == 0 (the minimum) and pct == 100
            # (the maximum) without interpolation error.
            return samples[low]
        frac = rank - low
        # a + (b-a)*frac is monotone in frac under IEEE rounding, unlike
        # the a*(1-frac) + b*frac form.
        return samples[low] + (samples[high] - samples[low]) * frac

    def percentile(self, pct: float) -> float:
        """Linear-interpolated percentile, ``pct`` in [0, 100]."""
        return self._interpolate(pct)

    @property
    def median(self) -> float:
        return self.percentile(50.0)

    @property
    def p999(self) -> float:
        """99.9th-percentile latency, the paper's tail metric (Figure 9)."""
        return self.percentile(99.9)

    @property
    def p99(self) -> float:
        return self.percentile(99.0)

    @property
    def p95(self) -> float:
        return self.percentile(95.0)

    @property
    def mean(self) -> float:
        if not self._samples:
            raise ValueError("no latency samples recorded")
        return sum(self._samples) / len(self._samples)

    @property
    def maximum(self) -> float:
        if not self._samples:
            raise ValueError("no latency samples recorded")
        self._ensure_sorted()
        return self._samples[-1]

    def percentiles(self, ps: Sequence[float]) -> Dict[float, float]:
        """Batch percentile lookup: ``{pct: seconds}`` for each requested
        percentile, over a single sort of the sample list.

        Harnesses that want several tail points should call this instead
        of re-sorting a copy per percentile.  An empty window raises the
        same ``ValueError`` as :meth:`percentile` — unless ``ps`` itself
        is empty, in which case there is nothing to resolve and the
        result is an empty dict.
        """
        if not self._samples and ps:
            raise ValueError("no latency samples recorded")
        return {pct: self._interpolate(pct) for pct in ps}

    def histogram(self, num_buckets: int = 16) -> List[Tuple[float, int]]:
        """Export the distribution as ``[(upper_bound_seconds, count), ...]``.

        Bucket widths grow geometrically across the sample range (latency
        distributions are long-tailed, so linear buckets would dump the
        whole body into one bin); the final bound is pinned to the
        maximum sample.  Empty buckets are kept so exports from runs with
        different shapes still line up bucket-for-bucket.
        """
        if num_buckets < 1:
            raise ValueError("num_buckets must be >= 1")
        if not self._samples:
            return []
        self._ensure_sorted()
        lo = self._samples[0]
        hi = self._samples[-1]
        if hi <= lo or num_buckets == 1:
            return [(hi, len(self._samples))]
        if lo > 0:
            ratio = (hi / lo) ** (1.0 / num_buckets)
            bounds = [lo * ratio ** (i + 1) for i in range(num_buckets)]
        else:
            step = (hi - lo) / num_buckets
            bounds = [lo + step * (i + 1) for i in range(num_buckets)]
        bounds[-1] = hi
        counts = [0] * num_buckets
        bucket = 0
        for sample in self._samples:
            while sample > bounds[bucket] and bucket < num_buckets - 1:
                bucket += 1
            counts[bucket] += 1
        return list(zip(bounds, counts))

    def summary(self) -> Dict[str, float]:
        """All headline statistics as a dict (seconds)."""
        return {
            "count": float(self.count),
            "mean": self.mean,
            "median": self.median,
            "p95": self.p95,
            "p99": self.p99,
            "p99.9": self.p999,
            "max": self.maximum,
        }


class ThroughputSeries:
    """Accumulates (time, bytes) completions into fixed-width buckets.

    ``series()`` yields a per-bucket MiB/s timeseries, the exact shape the
    paper plots in Figure 10 (1-second sampling of throughput over a long
    overwrite run).
    """

    def __init__(self, bucket_seconds: float = 1.0):
        if bucket_seconds <= 0:
            raise ValueError("bucket width must be positive")
        self.bucket_seconds = bucket_seconds
        self._buckets: Dict[int, int] = {}
        self.total_bytes = 0
        self.first_time: float = math.inf
        self.last_time: float = 0.0

    def record(self, at: float, nbytes: int) -> None:
        """Record ``nbytes`` completed at simulated time ``at``."""
        index = int(at / self.bucket_seconds)
        self._buckets[index] = self._buckets.get(index, 0) + nbytes
        self.total_bytes += nbytes
        self.first_time = min(self.first_time, at)
        self.last_time = max(self.last_time, at)

    def series(self) -> List[Tuple[float, float]]:
        """Return [(bucket_start_seconds, MiB_per_second), ...] sorted by time.

        Buckets with no completions are reported as zero so that stalls
        (e.g. a device saturated by garbage collection) appear in the plot.
        """
        if not self._buckets:
            return []
        lo = min(self._buckets)
        hi = max(self._buckets)
        out = []
        for index in range(lo, hi + 1):
            mib_s = self._buckets.get(index, 0) / self.bucket_seconds / MiB
            out.append((index * self.bucket_seconds, mib_s))
        return out

    def mean_throughput_mib_s(self) -> float:
        """Overall MiB/s between the first and last recorded completion."""
        span = self.last_time - self.first_time
        if span <= 0:
            span = self.bucket_seconds
        return self.total_bytes / span / MiB


def throughput_mib_s(total_bytes: int, elapsed_seconds: float) -> float:
    """Throughput in MiB/s for ``total_bytes`` moved in ``elapsed_seconds``."""
    if elapsed_seconds <= 0:
        raise ValueError(f"elapsed time must be positive, got {elapsed_seconds}")
    return total_bytes / elapsed_seconds / MiB
