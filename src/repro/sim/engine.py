"""Discrete-event simulation engine.

A small, dependency-free event engine in the style of SimPy: simulated
processes are Python generators that ``yield`` events; the engine resumes
them when those events trigger.  All performance experiments in this
repository run in simulated time, so throughput and latency numbers come
from the event clock rather than wall time.

Example::

    sim = Simulator()

    def worker():
        yield sim.timeout(1.5)
        return "done"

    proc = sim.process(worker())
    sim.run()
    assert sim.now == 1.5 and proc.value == "done"
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Callable, Deque, Generator, Iterable, List, Optional, Tuple

from ..errors import SimulationError

ProcessGenerator = Generator["Event", Any, Any]


def _dispatch(event: "Event", first: Callable[["Event"], None],
              rest: List[Callable[["Event"], None]]) -> None:
    """Run a triggered event's callbacks (queued as one now-queue entry)."""
    first(event)
    for fn in rest:
        fn(event)


def _raise_unhandled(exc: BaseException) -> None:
    raise exc


def _run_batch(calls: List[Tuple[Callable, tuple]]) -> None:
    """Run a sibling batch: every call in order, one scheduler entry."""
    for fn, args in calls:
        fn(*args)


#: Upper bound on each recycled-object pool; beyond this, freed events are
#: simply dropped to the garbage collector.  Sized to cover a deep IO
#: window (iodepth x fan-out) without pinning memory after a burst.
_FREELIST_MAX = 4096


class Event:
    """A one-shot occurrence in simulated time.

    Events start untriggered; ``succeed`` or ``fail`` triggers them exactly
    once, after which their callbacks run at the current simulation time.
    Processes wait on events by yielding them.
    """

    __slots__ = ("sim", "callback", "callbacks", "triggered", "ok", "value",
                 "refs")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        # Waiters are stored in a single ``callback`` slot; an overflow list
        # is created lazily only when a second waiter registers.  Almost
        # every event on the datapath has exactly zero or one waiter, so the
        # common case triggers without ever allocating a list.
        self.callback: Optional[Callable[["Event"], None]] = None
        self.callbacks: Optional[List[Callable[["Event"], None]]] = None
        self.triggered = False
        self.ok = True
        self.value: Any = None
        #: External references that would dangle if the event were pooled:
        #: a pending timeout-heap ``_fire`` entry, or registration in a
        #: combinator's child list.  Incremented at the referencing site,
        #: decremented when the reference is consumed; ``recycle`` refuses
        #: any event whose count is nonzero.
        self.refs = 0

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully, delivering ``value`` to waiters."""
        if self.triggered:
            raise SimulationError(f"{self!r} triggered twice")
        self.triggered = True
        self.value = value
        callback = self.callback
        if callback is not None:
            self.callback = None
            callbacks = self.callbacks
            if callbacks is None:
                # Single-waiter fast path: the continuation goes straight on
                # the now-queue, no dispatch trampoline and no list.
                self.sim._now_queue.append((callback, (self,)))
            else:
                self.callbacks = None
                self.sim._now_queue.append(
                    (_dispatch, (self, callback, callbacks)))
        return self

    def fail(self, exc: BaseException) -> "Event":
        """Trigger the event with an exception, raised inside waiters."""
        if not isinstance(exc, BaseException):
            raise TypeError(f"fail() requires an exception, got {exc!r}")
        if self.triggered:
            raise SimulationError(f"{self!r} triggered twice")
        self.triggered = True
        self.ok = False
        self.value = exc
        callback = self.callback
        if callback is not None:
            self.callback = None
            callbacks = self.callbacks
            if callbacks is None:
                self.sim._now_queue.append((callback, (self,)))
            else:
                self.callbacks = None
                self.sim._now_queue.append(
                    (_dispatch, (self, callback, callbacks)))
        elif isinstance(self, Process):
            # A failed process nobody waits on: surface the error instead
            # of silently swallowing it.
            self.sim._now_queue.append((_raise_unhandled, (exc,)))
        return self

    def add_callback(self, fn: Callable[["Event"], None]) -> None:
        """Run ``fn(event)`` when the event triggers (immediately if it has)."""
        if self.triggered:
            # Already dispatched: run at the current time via the now-queue.
            self.sim._now_queue.append((fn, (self,)))
        elif self.callback is None:
            self.callback = fn
        elif self.callbacks is None:
            self.callbacks = [fn]
        else:
            self.callbacks.append(fn)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "triggered" if self.triggered else "pending"
        return f"<{type(self).__name__} {state} at t={self.sim.now:.6f}>"


class Timeout(Event):
    """An event that triggers automatically after a fixed delay."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        super().__init__(sim)
        self.refs = 1  # the scheduled ``_fire`` below
        sim.schedule(delay, self._fire, value)

    def _fire(self, value: Any) -> None:
        self.refs -= 1
        self.succeed(value)


class Process(Event):
    """A running simulated process; triggers when its generator returns.

    The generator's ``return`` value becomes ``Process.value``.  An uncaught
    exception inside the generator fails the process event and propagates to
    anything waiting on it (or to ``Simulator.run`` if nothing is waiting).
    """

    __slots__ = ("_gen",)

    def __init__(self, sim: "Simulator", gen: ProcessGenerator):
        super().__init__(sim)
        self._gen = gen
        # Start the process at the current simulation time.
        sim.schedule(0.0, self._resume, None, None)

    def _resume(self, send_value: Any, throw_exc: Optional[BaseException]) -> None:
        # Trampoline: advance the generator in a loop instead of recursing,
        # so error paths and chains of waits never grow the Python stack.
        # A yielded event that has already triggered (e.g. an uncontended
        # ``Resource.request()``) hands the continuation straight to the
        # FIFO now-queue — one deque hop, no heap push/pop, no recursion.
        # Deliberately NOT consumed inline: inlining would run this process
        # ahead of callbacks queued before it (including siblings in the
        # same dispatch batch), breaking the engine's FIFO ordering and
        # with it byte-identical fixed-seed replay.
        gen = self._gen
        while True:
            try:
                if throw_exc is not None:
                    target = gen.throw(throw_exc)
                else:
                    target = gen.send(send_value)
            except StopIteration as stop:
                self.succeed(stop.value)
                return
            except BaseException as exc:  # noqa: BLE001 - process failure path
                self.fail(exc)
                return
            if not isinstance(target, Event):
                send_value = None
                throw_exc = SimulationError(
                    f"process yielded {target!r}; processes must yield Events")
                continue
            if target.triggered:
                self.sim._now_queue.append((self._on_wait_done, (target,)))
            elif target.callback is None:
                target.callback = self._on_wait_done
            elif target.callbacks is None:
                target.callbacks = [self._on_wait_done]
            else:
                target.callbacks.append(self._on_wait_done)
            return

    def _on_wait_done(self, event: Event) -> None:
        if event.ok:
            self._resume(event.value, None)
        else:
            self._resume(None, event.value)


class InlineProcess(Process):
    """A process whose first step runs immediately, in the caller's frame.

    ``Process`` defers its first step through the now-queue so that starting
    a process never reorders work already queued.  Callback-style fast paths
    that fall back to generator code for a rare slow path (e.g. metadata
    zone rotation) have already consumed that start hop themselves; using a
    plain ``Process`` for the fallback would insert an extra hop and change
    event ordering relative to the all-generator implementation.
    """

    __slots__ = ()

    def __init__(self, sim: "Simulator", gen: ProcessGenerator):
        Event.__init__(self, sim)
        self._gen = gen
        self._resume(None, None)


class AllOf(Event):
    """Triggers when every child event has triggered successfully.

    ``value`` is the list of child values in the order given.  Fails as soon
    as any child fails.
    """

    __slots__ = ("_pending", "_values", "_failed")

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        events = list(events)
        self._pending = len(events)
        self._values: List[Any] = [None] * len(events)
        self._failed = False
        if not events:
            sim.schedule(0.0, self.succeed, [])
            return
        for index, event in enumerate(events):
            event.refs += 1
            event.add_callback(self._make_child_callback(index))

    def _make_child_callback(self, index: int) -> Callable[[Event], None]:
        def on_child(event: Event) -> None:
            event.refs -= 1
            if self._failed:
                return
            if not event.ok:
                self._failed = True
                self.fail(event.value)
                return
            self._values[index] = event.value
            self._pending -= 1
            if self._pending == 0:
                self.succeed(self._values)
        return on_child


class Gather(Event):
    """Triggers when every child has triggered; child values are discarded.

    A leaner :class:`AllOf` for join points that only care about
    completion (the RAIZN write path joins its sub-IOs this way): one
    shared callback instead of a closure per child, and no values list.
    Fails as soon as any child fails.  The hop structure is identical to
    ``AllOf``, so swapping one for the other never reorders events.
    """

    __slots__ = ("_pending",)

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        events = list(events)
        self._pending = len(events)
        if not events:
            sim.schedule(0.0, self.succeed, None)
            return
        callback = self._on_child
        for event in events:
            event.refs += 1
            event.add_callback(callback)

    def _on_child(self, event: Event) -> None:
        event.refs -= 1
        if self.triggered:
            return  # a sibling already failed this gather
        if not event.ok:
            self.fail(event.value)
            return
        self._pending -= 1
        if self._pending == 0:
            self.succeed(None)


class AnyOf(Event):
    """Triggers when the first child event triggers; value is that child's."""

    __slots__ = ("_done", "_children", "_callback")

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self._done = False
        events = list(events)
        if not events:
            raise SimulationError("AnyOf requires at least one event")
        self._children = events
        # One bound method shared by every child so the winner can detach it
        # from the losers by identity.
        self._callback = self._on_child
        for event in events:
            event.refs += 1
            event.add_callback(self._callback)

    def _on_child(self, event: Event) -> None:
        # This child's registration is consumed whether it is the winner
        # or a loser whose callback was already queued in the same batch.
        event.refs -= 1
        if self._done:
            # A child that triggered in the same dispatch batch as the
            # winner: nothing to do and nothing to allocate.
            return
        self._done = True
        # Detach from the losing children so they stop referencing this
        # AnyOf (and never call back into it when they eventually trigger).
        callback = self._callback
        for child in self._children:
            if child is event:
                continue
            if child.callback is callback:
                # Keep the invariant that the overflow list is only ever
                # populated behind a filled single slot.
                overflow = child.callbacks
                if overflow:
                    child.callback = overflow.pop(0)
                    if not overflow:
                        child.callbacks = None
                else:
                    child.callback = None
                child.refs -= 1
            elif child.callbacks is not None:
                try:
                    child.callbacks.remove(callback)
                except ValueError:
                    pass  # already consumed; its pending dispatch decrements
                else:
                    child.refs -= 1
        self._children = []
        if event.ok:
            self.succeed(event.value)
        else:
            self.fail(event.value)


class Simulator:
    """The event loop: a FIFO "now queue" plus a time-ordered heap.

    Zero-delay work — event dispatch, process starts, immediate
    continuations — goes on the now-queue, a plain deque drained in FIFO
    order before the clock is allowed to advance.  Only real timeouts pay
    for the heap.  See DESIGN.md ("Now-queue scheduling") for why this
    preserves the submission-order semantics the RAIZN write path relies
    on.
    """

    def __init__(self) -> None:
        self.now = 0.0
        self._heap: List = []
        self._now_queue: Deque[Tuple[Callable, tuple]] = deque()
        self._seq = 0
        # Recycled-object pools (see ``recycle``): datapath code that owns
        # an event's full lifecycle returns it here instead of letting it
        # churn the allocator; ``event()``/``timeout()`` reissue them.
        self._event_free: List[Event] = []
        self._timeout_free: List[Timeout] = []

    # -- low-level scheduling ------------------------------------------------

    def schedule(self, delay: float, fn: Callable, *args: Any) -> None:
        """Run ``fn(*args)`` after ``delay`` simulated seconds."""
        if delay == 0.0:
            self._now_queue.append((fn, args))
            return
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past: {delay}")
        self._seq += 1
        heapq.heappush(self._heap, (self.now + delay, self._seq, fn, args))

    def schedule_batch(self, delay: float,
                       calls: List[Tuple[Callable, tuple]]) -> None:
        """Run sibling ``(fn, args)`` calls after ``delay``, as ONE entry.

        Work scheduled together with the same delay rides a single heap
        (or now-queue) entry and executes in one consecutive sweep when it
        comes due — the calls can never be interleaved with other entries
        that land at the same timestamp.  Because the calls are enqueued
        together, the sweep runs them in exactly the order separate
        ``schedule`` calls made back-to-back would have, so batching is
        order-neutral for fixed-seed replay; it just removes per-entry
        queue traffic.  The caller must not mutate ``calls`` afterwards.
        """
        if delay == 0.0:
            self._now_queue.append((_run_batch, (calls,)))
            return
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past: {delay}")
        self._seq += 1
        heapq.heappush(self._heap,
                       (self.now + delay, self._seq, _run_batch, (calls,)))

    # -- event factories -----------------------------------------------------

    def event(self) -> Event:
        """A fresh untriggered event (possibly a recycled one, reset)."""
        free = self._event_free
        if free:
            event = free.pop()
            event.triggered = False
            event.ok = True
            return event
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event that triggers ``delay`` seconds from now."""
        free = self._timeout_free
        if free and delay >= 0:
            timeout = free.pop()
            timeout.triggered = False
            timeout.ok = True
            timeout.refs = 1  # the ``_fire`` scheduled below
            self.schedule(delay, timeout._fire, value)
            return timeout
        return Timeout(self, delay, value)

    def recycle(self, event: Event) -> None:
        """Return a fired, fully drained event to the reuse pool.

        Only for call sites that own the event's entire lifecycle: the
        event must have triggered and must have no registered callbacks
        left (both are asserted).  After this call the event may be handed
        out again by :meth:`event`/:meth:`timeout`, so the caller must
        drop every reference.  Subclasses other than plain ``Event`` and
        ``Timeout`` are ignored (dropped to the garbage collector).
        """
        if not event.triggered or event.callback is not None \
                or event.callbacks:
            raise SimulationError(
                f"recycle() requires a fired, drained event, got {event!r}")
        if event.refs:
            # A pooled-and-reissued event with a live outside reference is
            # a use-after-free: the pending timeout-heap ``_fire`` or
            # combinator child registration would act on the *next* owner.
            raise SimulationError(
                f"recycle() of {event!r} still referenced {event.refs}x "
                "from the timeout heap or a combinator child list")
        event.value = None
        cls = type(event)
        if cls is Event:
            if len(self._event_free) < _FREELIST_MAX:
                self._event_free.append(event)
        elif cls is Timeout:
            if len(self._timeout_free) < _FREELIST_MAX:
                self._timeout_free.append(event)

    def process(self, gen: ProcessGenerator) -> Process:
        """Start ``gen`` as a simulated process."""
        return Process(self, gen)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """An event triggering when all of ``events`` have succeeded."""
        return AllOf(self, events)

    def gather(self, events: Iterable[Event]) -> Gather:
        """Like :meth:`all_of` but discards child values (cheaper)."""
        return Gather(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """An event triggering when the first of ``events`` triggers."""
        return AnyOf(self, events)

    # -- execution -----------------------------------------------------------

    def run(self, until: Optional[float] = None) -> None:
        """Execute events until the heap drains or the clock passes ``until``.

        Failed processes that nothing waits on raise out of ``run`` so that
        programming errors inside simulated processes are never silently
        swallowed.
        """
        nowq = self._now_queue
        heap = self._heap
        pop = heapq.heappop
        popleft = nowq.popleft
        if until is None:
            # Unbounded run (the common case): no deadline test per pop.
            while True:
                # Drain everything due *now* before letting the clock move.
                while nowq:
                    fn, args = popleft()
                    fn(*args)
                if not heap:
                    return
                at, _seq, fn, args = pop(heap)
                if at < self.now - 1e-12:
                    raise SimulationError("event heap went backwards in time")
                self.now = at
                fn(*args)
        while True:
            while nowq:
                fn, args = popleft()
                fn(*args)
            if not heap:
                break
            if heap[0][0] > until:
                self.now = until
                return
            at, _seq, fn, args = pop(heap)
            if at < self.now - 1e-12:
                raise SimulationError("event heap went backwards in time")
            self.now = at
            fn(*args)
        if until > self.now:
            self.now = until

    def run_process(self, gen: ProcessGenerator) -> Any:
        """Convenience: run ``gen`` to completion and return its value."""
        proc = self.process(gen)
        self.run()
        if not proc.triggered:
            raise SimulationError("process did not complete (deadlock?)")
        if not proc.ok:
            raise proc.value
        return proc.value
