"""Discrete-event simulation engine.

A small, dependency-free event engine in the style of SimPy: simulated
processes are Python generators that ``yield`` events; the engine resumes
them when those events trigger.  All performance experiments in this
repository run in simulated time, so throughput and latency numbers come
from the event clock rather than wall time.

Example::

    sim = Simulator()

    def worker():
        yield sim.timeout(1.5)
        return "done"

    proc = sim.process(worker())
    sim.run()
    assert sim.now == 1.5 and proc.value == "done"
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, List, Optional

from ..errors import SimulationError

ProcessGenerator = Generator["Event", Any, Any]


class Event:
    """A one-shot occurrence in simulated time.

    Events start untriggered; ``succeed`` or ``fail`` triggers them exactly
    once, after which their callbacks run at the current simulation time.
    Processes wait on events by yielding them.
    """

    __slots__ = ("sim", "callbacks", "triggered", "ok", "value")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self.triggered = False
        self.ok = True
        self.value: Any = None

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully, delivering ``value`` to waiters."""
        self._trigger(True, value)
        return self

    def fail(self, exc: BaseException) -> "Event":
        """Trigger the event with an exception, raised inside waiters."""
        if not isinstance(exc, BaseException):
            raise TypeError(f"fail() requires an exception, got {exc!r}")
        self._trigger(False, exc)
        return self

    def _trigger(self, ok: bool, value: Any) -> None:
        if self.triggered:
            raise SimulationError(f"{self!r} triggered twice")
        self.triggered = True
        self.ok = ok
        self.value = value
        self.sim._queue_callbacks(self)

    def add_callback(self, fn: Callable[["Event"], None]) -> None:
        """Run ``fn(event)`` when the event triggers (immediately if it has)."""
        if self.triggered and self.callbacks is None:
            # Already dispatched: run at the current time via the queue.
            self.sim.schedule(0.0, lambda: fn(self))
        else:
            assert self.callbacks is not None
            self.callbacks.append(fn)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "triggered" if self.triggered else "pending"
        return f"<{type(self).__name__} {state} at t={self.sim.now:.6f}>"


class Timeout(Event):
    """An event that triggers automatically after a fixed delay."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        super().__init__(sim)
        sim.schedule(delay, self._fire, value)

    def _fire(self, value: Any) -> None:
        self.succeed(value)


class Process(Event):
    """A running simulated process; triggers when its generator returns.

    The generator's ``return`` value becomes ``Process.value``.  An uncaught
    exception inside the generator fails the process event and propagates to
    anything waiting on it (or to ``Simulator.run`` if nothing is waiting).
    """

    __slots__ = ("_gen",)

    def __init__(self, sim: "Simulator", gen: ProcessGenerator):
        super().__init__(sim)
        self._gen = gen
        # Start the process at the current simulation time.
        sim.schedule(0.0, self._resume, None, None)

    def _resume(self, send_value: Any, throw_exc: Optional[BaseException]) -> None:
        try:
            if throw_exc is not None:
                target = self._gen.throw(throw_exc)
            else:
                target = self._gen.send(send_value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as exc:  # noqa: BLE001 - process failure path
            self.fail(exc)
            return
        if not isinstance(target, Event):
            self._resume(None, SimulationError(
                f"process yielded {target!r}; processes must yield Events"))
            return
        target.add_callback(self._on_wait_done)

    def _on_wait_done(self, event: Event) -> None:
        if event.ok:
            self._resume(event.value, None)
        else:
            self._resume(None, event.value)


class AllOf(Event):
    """Triggers when every child event has triggered successfully.

    ``value`` is the list of child values in the order given.  Fails as soon
    as any child fails.
    """

    __slots__ = ("_pending", "_values", "_failed")

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        events = list(events)
        self._pending = len(events)
        self._values: List[Any] = [None] * len(events)
        self._failed = False
        if not events:
            sim.schedule(0.0, self.succeed, [])
            return
        for index, event in enumerate(events):
            event.add_callback(self._make_child_callback(index))

    def _make_child_callback(self, index: int) -> Callable[[Event], None]:
        def on_child(event: Event) -> None:
            if self._failed:
                return
            if not event.ok:
                self._failed = True
                self.fail(event.value)
                return
            self._values[index] = event.value
            self._pending -= 1
            if self._pending == 0:
                self.succeed(self._values)
        return on_child


class AnyOf(Event):
    """Triggers when the first child event triggers; value is that child's."""

    __slots__ = ("_done",)

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self._done = False
        events = list(events)
        if not events:
            raise SimulationError("AnyOf requires at least one event")
        for event in events:
            event.add_callback(self._on_child)

    def _on_child(self, event: Event) -> None:
        if self._done:
            return
        self._done = True
        if event.ok:
            self.succeed(event.value)
        else:
            self.fail(event.value)


class Simulator:
    """The event loop: a time-ordered heap of pending callbacks."""

    def __init__(self) -> None:
        self.now = 0.0
        self._heap: List = []
        self._seq = 0

    # -- low-level scheduling ------------------------------------------------

    def schedule(self, delay: float, fn: Callable, *args: Any) -> None:
        """Run ``fn(*args)`` after ``delay`` simulated seconds."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past: {delay}")
        self._seq += 1
        heapq.heappush(self._heap, (self.now + delay, self._seq, fn, args))

    def _queue_callbacks(self, event: Event) -> None:
        callbacks, event.callbacks = event.callbacks, None
        if callbacks:
            self.schedule(0.0, self._dispatch, event, callbacks)
        elif not event.ok and isinstance(event, Process):
            # A failed process nobody waits on: surface the error instead of
            # silently swallowing it.
            self.schedule(0.0, self._raise_unhandled, event.value)

    @staticmethod
    def _raise_unhandled(exc: BaseException) -> None:
        raise exc

    @staticmethod
    def _dispatch(event: Event, callbacks: List[Callable[[Event], None]]) -> None:
        for fn in callbacks:
            fn(event)

    # -- event factories -----------------------------------------------------

    def event(self) -> Event:
        """A fresh untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event that triggers ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def process(self, gen: ProcessGenerator) -> Process:
        """Start ``gen`` as a simulated process."""
        return Process(self, gen)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """An event triggering when all of ``events`` have succeeded."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """An event triggering when the first of ``events`` triggers."""
        return AnyOf(self, events)

    # -- execution -----------------------------------------------------------

    def run(self, until: Optional[float] = None) -> None:
        """Execute events until the heap drains or the clock passes ``until``.

        Failed processes that nothing waits on raise out of ``run`` so that
        programming errors inside simulated processes are never silently
        swallowed.
        """
        while self._heap:
            at, _seq, fn, args = self._heap[0]
            if until is not None and at > until:
                self.now = until
                return
            heapq.heappop(self._heap)
            if at < self.now - 1e-12:
                raise SimulationError("event heap went backwards in time")
            self.now = at
            fn(*args)
        if until is not None and until > self.now:
            self.now = until

    def run_process(self, gen: ProcessGenerator) -> Any:
        """Convenience: run ``gen`` to completion and return its value."""
        proc = self.process(gen)
        self.run()
        if not proc.triggered:
            raise SimulationError("process did not complete (deadlock?)")
        if not proc.ok:
            raise proc.value
        return proc.value
