"""Size and time units used throughout the reproduction.

All device address arithmetic in this codebase is done in *bytes* at API
boundaries and in *sectors* internally where the ZNS specification requires
it.  The sector size is fixed at 4 KiB, matching the paper's configuration
("RAIZN metadata header layout when using 4KiB sectors", Figure 3).
"""

from __future__ import annotations

KiB = 1024
MiB = 1024 * KiB
GiB = 1024 * MiB
TiB = 1024 * GiB

#: Logical block (sector) size.  The paper's devices are formatted with
#: 4 KiB sectors; every metadata header occupies exactly one sector.
SECTOR_SIZE = 4 * KiB

#: One microsecond, in simulated seconds.
USEC = 1e-6
#: One millisecond, in simulated seconds.
MSEC = 1e-3


def sectors(nbytes: int) -> int:
    """Return the number of whole sectors covering ``nbytes`` bytes.

    Raises ``ValueError`` for negative sizes.
    """
    if nbytes < 0:
        raise ValueError(f"negative byte count: {nbytes}")
    return (nbytes + SECTOR_SIZE - 1) // SECTOR_SIZE


def is_sector_aligned(offset: int) -> bool:
    """True when ``offset`` (bytes) falls on a sector boundary."""
    return offset % SECTOR_SIZE == 0


def check_sector_aligned(offset: int, what: str = "offset") -> None:
    """Raise ``ValueError`` unless ``offset`` is sector aligned."""
    if offset % SECTOR_SIZE != 0:
        raise ValueError(f"{what} {offset:#x} is not {SECTOR_SIZE}-byte aligned")


def fmt_bytes(nbytes: float) -> str:
    """Human-readable byte count, e.g. ``fmt_bytes(65536) == '64.0KiB'``."""
    value = float(nbytes)
    for suffix in ("B", "KiB", "MiB", "GiB", "TiB"):
        if abs(value) < 1024.0 or suffix == "TiB":
            return f"{value:.1f}{suffix}"
        value /= 1024.0
    raise AssertionError("unreachable")
