"""mdraid-style RAID-5 baseline over conventional (FTL) SSDs."""

from .raid5 import MdraidVolume, ResyncReport, StripeCache

__all__ = ["MdraidVolume", "ResyncReport", "StripeCache"]
