"""mdraid-style RAID-5 over conventional SSDs — the paper's baseline.

Implements the classic md RAID-5 write paths over the block interface:
full-stripe writes compute parity directly; sub-stripe writes use
read-modify-write or reconstruct-write (whichever needs fewer device
reads), accelerated by a stripe cache like md's (128 MiB in the paper's
configuration).  Runs journal-less, matching §6's setup ("mdraid was
configured to run without a journal volume, ensuring maximum
performance"), so it retains the RAID-5 write hole the paper discusses.

Degraded reads reconstruct from the survivors; ``resync`` rebuilds a
replaced device by scanning the *entire* address space — the behaviour
Figure 12 contrasts with RAIZN's valid-data-only rebuild.
"""

from __future__ import annotations

import dataclasses
from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

from ..block.bio import Bio, Op
from ..block.device import BlockDevice, DeviceStats
from ..conv.device import ConventionalSSD
from ..errors import (
    DataLossError,
    DeviceError,
    InvalidAddressError,
    RaiznError,
    ZoneStateError,
)
from ..raizn.parity import xor_into
from ..sim import Event, Lock, Simulator
from ..units import KiB


@dataclasses.dataclass
class ResyncReport:
    """Outcome of a full-device resync, for TTR accounting."""

    device_index: int
    bytes_written: int
    started_at: float
    finished_at: float

    @property
    def duration(self) -> float:
        return self.finished_at - self.started_at


class StripeCache:
    """LRU cache of stripe contents (md's stripe cache, §2.2).

    Each entry caches the data chunks and parity of one stripe so that
    sub-stripe writes can recompute parity without device reads.
    """

    def __init__(self, num_stripes: int, num_data: int):
        self.capacity = max(1, num_stripes)
        self.num_data = num_data
        self._entries: "OrderedDict[int, List[Optional[bytes]]]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def get(self, stripe: int) -> Optional[List[Optional[bytes]]]:
        """Chunks (data 0..D-1 then parity) of ``stripe``, if cached."""
        entry = self._entries.get(stripe)
        if entry is not None:
            self._entries.move_to_end(stripe)
            self.hits += 1
        else:
            self.misses += 1
        return entry

    def put(self, stripe: int, chunks: List[Optional[bytes]]) -> None:
        self._entries[stripe] = chunks
        self._entries.move_to_end(stripe)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    def invalidate(self) -> None:
        self._entries.clear()


class MdraidVolume:
    """A journal-less RAID-5 logical block device over conventional SSDs."""

    def __init__(
        self,
        sim: Simulator,
        devices: List[Optional[ConventionalSSD]],
        chunk_bytes: int = 64 * KiB,
        stripe_cache_bytes: int = 128 * 1024 * KiB,
    ):
        if len(devices) < 3:
            raise RaiznError("RAID-5 needs at least 3 devices")
        template = next(d for d in devices if d is not None)
        for dev in devices:
            if dev is not None and dev.size_bytes != template.size_bytes:
                raise RaiznError("array devices must have identical capacity")
        self.sim = sim
        self.devices: List[Optional[BlockDevice]] = list(devices)
        self.num_devices = len(devices)
        self.num_data = self.num_devices - 1
        self.chunk = chunk_bytes
        self.stripe_width = self.num_data * chunk_bytes
        self.device_capacity = template.size_bytes
        self.capacity = self.num_data * template.size_bytes
        self.stripes = template.size_bytes // chunk_bytes
        cache_stripes = stripe_cache_bytes // (self.num_devices * chunk_bytes)
        self.cache = StripeCache(cache_stripes, self.num_data)
        self.failed = [dev is None for dev in devices]
        self.stats = DeviceStats()
        self._stripe_locks: Dict[int, Lock] = {}
        self._pending: Dict[int, "_PendingStripe"] = {}
        #: md-style plugging: sub-stripe writes to the same stripe are
        #: batched for this long (or until the stripe fills) and handled
        #: as one parity update, the way raid5d drains its stripe queue.
        self.plug_delay = 20e-6
        self._resyncing = False

    # -- layout ------------------------------------------------------------------

    def layout(self, stripe: int) -> Tuple[int, List[int]]:
        """(parity_device, data_devices) for one stripe (left-symmetric)."""
        n = self.num_devices
        parity = (n - 1 - stripe % n) % n
        data = [(parity + 1 + i) % n for i in range(self.num_data)]
        return parity, data

    def lba_to_chunk(self, lba: int) -> Tuple[int, int, int]:
        """(stripe, chunk_index, offset_in_chunk) of one LBA."""
        stripe = lba // self.stripe_width
        in_stripe = lba % self.stripe_width
        return stripe, in_stripe // self.chunk, in_stripe % self.chunk

    def chunk_pba(self, stripe: int) -> int:
        """Device byte offset of any of this stripe's chunks."""
        return stripe * self.chunk

    # -- submission ------------------------------------------------------------------

    def submit(self, bio: Bio) -> Event:
        """Submit a logical bio; the event succeeds with the completed bio."""
        bio.submit_time = self.sim.now
        done = self.sim.event()
        try:
            bio.check_alignment()
            if bio.op == Op.READ:
                if bio.end_offset > self.capacity:
                    raise InvalidAddressError("read beyond volume capacity")
                self.sim.process(self._run_read(bio, done))
            elif bio.op == Op.WRITE:
                if bio.end_offset > self.capacity:
                    raise InvalidAddressError("write beyond volume capacity")
                self.sim.process(self._run_write(bio, done))
            elif bio.op == Op.FLUSH:
                self.sim.process(self._run_flush(bio, done))
            elif bio.op == Op.DISCARD:
                self.sim.process(self._run_discard(bio, done))
            else:
                raise ZoneStateError(f"mdraid does not support {bio.op}")
        except (RaiznError, DeviceError) as exc:
            self.sim.schedule(0.0, done.fail, exc)
        return done

    def execute(self, bio: Bio) -> Bio:
        """Synchronously run one bio to completion (drains the event loop)."""
        done = self.submit(bio)
        self.sim.run()
        if not done.ok:
            raise done.value
        return done.value

    # -- read path ----------------------------------------------------------------------

    def _run_read(self, bio: Bio, done: Event):
        try:
            out = yield from self._read_span(bio.offset, bio.length)
        except (DeviceError, RaiznError) as exc:
            done.fail(exc)
            return
        bio.result = out
        self.stats.account(bio)
        bio.complete_time = self.sim.now
        done.succeed(bio)

    def _read_span(self, offset: int, length: int):
        """Coalesced read: merge per-device contiguous chunk runs.

        Chunks a device contributes to consecutive stripes are contiguous
        in its address space, so the block layer merges them into large
        device reads — the behaviour that gives md its sequential-read
        edge at small chunk sizes (§6.1).
        """
        pieces = []  # (device, pba, length, output offset)
        position = offset
        while position < offset + length:
            stripe, index, in_chunk = self.lba_to_chunk(position)
            take = min(offset + length - position, self.chunk - in_chunk)
            _parity, data_devs = self.layout(stripe)
            pieces.append((data_devs[index],
                           self.chunk_pba(stripe) + in_chunk, take,
                           position - offset))
            position += take
        merged = []
        for device, pba, take, out_offset in pieces:
            if merged and merged[-1][0] == device \
                    and merged[-1][1] + merged[-1][2] == pba \
                    and not self.failed[device]:
                previous = merged.pop()
                merged.append((device, previous[1], previous[2] + take,
                               previous[3] + [(pba, take, out_offset)]))
            else:
                merged.append((device, pba, take,
                               [(pba, take, out_offset)]))
        out = bytearray(length)
        events = []
        for device, pba, take, parts in merged:
            if self.failed[device]:
                for part_pba, part_take, out_offset in parts:
                    stripe = part_pba // self.chunk
                    in_chunk = part_pba % self.chunk
                    _parity, data_devs = self.layout(stripe)
                    index = data_devs.index(device)
                    chunk = yield from self._read_piece(
                        stripe, index, in_chunk, part_take)
                    out[out_offset:out_offset + part_take] = chunk
                continue
            event = self.devices[device].submit(Bio.read(pba, take))

            def place(ev, base=pba, segments=parts):
                if ev.ok:
                    for part_pba, part_take, out_offset in segments:
                        start = part_pba - base
                        out[out_offset:out_offset + part_take] = \
                            ev.value.result[start:start + part_take]
            event.add_callback(place)
            events.append(event)
        if events:
            yield self.sim.all_of(events)
        return bytes(out)

    def _read_piece(self, stripe: int, index: int, in_chunk: int, take: int):
        parity_dev, data_devs = self.layout(stripe)
        device = data_devs[index]
        pba = self.chunk_pba(stripe) + in_chunk
        if not self.failed[device]:
            result = yield self.devices[device].submit(Bio.read(pba, take))
            return result.result
        # Degraded read: XOR all survivors, parity included.
        sources = []
        for other in range(self.num_devices):
            if other == device:
                continue
            if self.failed[other]:
                raise DataLossError("two failed devices in RAID-5")
            sources.append(self.devices[other].submit(Bio.read(pba, take)))
        results = yield self.sim.all_of(sources)
        out = bytearray(take)
        for piece in results:
            xor_into(out, piece.result)
        return bytes(out)

    # -- write path ---------------------------------------------------------------------

    def _run_write(self, bio: Bio, done: Event):
        try:
            events = []
            position = bio.offset
            data_pos = 0
            while data_pos < bio.length:
                stripe = position // self.stripe_width
                in_stripe = position % self.stripe_width
                take = min(bio.length - data_pos, self.stripe_width - in_stripe)
                chunk = bio.data[data_pos:data_pos + take]
                events.append(self._stage_write(stripe, in_stripe, chunk))
                position += take
                data_pos += take
            yield self.sim.all_of(events)
        except (DeviceError, RaiznError) as exc:
            done.fail(exc)
            return
        self.stats.account(bio)
        bio.complete_time = self.sim.now
        done.succeed(bio)

    def _stripe_lock(self, stripe: int) -> Lock:
        lock = self._stripe_locks.get(stripe)
        if lock is None:
            lock = Lock(self.sim)
            self._stripe_locks[stripe] = lock
        return lock

    def _stage_write(self, stripe: int, in_stripe: int,
                     data: bytes) -> Event:
        """Absorb a stripe segment into the plug queue; returns an event
        that succeeds once the segment's data and parity are on devices.

        A stripe flushes immediately when fully covered (the full-stripe
        fast path) and otherwise after ``plug_delay`` — so deep queues of
        small sequential writes coalesce into whole-stripe parity
        updates, as md's raid5d batching achieves."""
        pending = self._pending.get(stripe)
        if pending is None:
            pending = _PendingStripe(self.stripe_width)
            self._pending[stripe] = pending
            self.sim.schedule(self.plug_delay, self._unplug, stripe,
                              pending)
        event = self.sim.event()
        pending.absorb(in_stripe, data, event)
        if pending.full_cover:
            self._unplug(stripe, pending)
        return event

    def _unplug(self, stripe: int, pending: "_PendingStripe") -> None:
        if self._pending.get(stripe) is pending:
            del self._pending[stripe]
            self.sim.process(self._flush_pending(stripe, pending))

    def _flush_pending(self, stripe: int, pending: "_PendingStripe"):
        lock = self._stripe_lock(stripe)
        yield lock.request()
        try:
            if pending.full_cover:
                yield from self._full_stripe_write(stripe,
                                                   bytes(pending.data))
            else:
                for lo, hi in pending.intervals:
                    yield from self._partial_stripe_write(
                        stripe, lo, bytes(pending.data[lo:hi]))
        except (DeviceError, RaiznError) as exc:
            for event in pending.waiters:
                event.fail(exc)
            return
        finally:
            lock.release()
            if self._stripe_locks.get(stripe) is lock and \
                    lock.queue_length == 0 and lock.in_use == 0:
                del self._stripe_locks[stripe]
        for event in pending.waiters:
            event.succeed()

    def _full_stripe_write(self, stripe: int, data: bytes):
        parity_dev, data_devs = self.layout(stripe)
        pba = self.chunk_pba(stripe)
        chunks = [data[i * self.chunk:(i + 1) * self.chunk]
                  for i in range(self.num_data)]
        parity = bytearray(self.chunk)
        for chunk in chunks:
            xor_into(parity, chunk)
        writes = []
        for i, device in enumerate(data_devs):
            if not self.failed[device]:
                writes.append(self.devices[device].submit(
                    Bio.write(pba, chunks[i])))
        if not self.failed[parity_dev]:
            writes.append(self.devices[parity_dev].submit(
                Bio.write(pba, bytes(parity))))
        yield self.sim.all_of(writes)
        self.cache.put(stripe, [bytes(c) for c in chunks] + [bytes(parity)])

    def _partial_stripe_write(self, stripe: int, in_stripe: int, data: bytes):
        """Sub-stripe write: RMW or RCW, preferring fewer device reads.

        With no cached stripe and no failures, the fast path is a
        subrange read-modify-write: md reads only the covered sectors of
        the old data and parity, XORs the delta, and writes the covered
        sectors back — small writes cost two small reads and two small
        writes, not whole-chunk traffic.
        """
        parity_dev, data_devs = self.layout(stripe)
        pba = self.chunk_pba(stripe)
        first = in_stripe // self.chunk
        last = (in_stripe + len(data) - 1) // self.chunk
        touched = list(range(first, last + 1))
        cached = self.cache.get(stripe)
        healthy = not self.failed[parity_dev] and \
            not any(self.failed[data_devs[i]] for i in touched)
        if cached is None and healthy and len(touched) < self.num_data:
            yield from self._subrange_rmw(stripe, in_stripe, data)
            return
        chunks: List[Optional[bytes]] = (list(cached) if cached
                                         else [None] * (self.num_data + 1))

        rmw_reads = sum(1 for i in touched if chunks[i] is None) + \
            (1 if chunks[self.num_data] is None else 0)
        rcw_reads = sum(1 for i in range(self.num_data)
                        if i not in touched and chunks[i] is None)
        use_rcw = rcw_reads < rmw_reads or self.failed[parity_dev] or \
            any(self.failed[data_devs[i]] for i in touched)

        if use_rcw:
            yield from self._fill_chunks(
                stripe, chunks,
                [i for i in range(self.num_data) if chunks[i] is None])
        else:
            need = [i for i in touched if chunks[i] is None]
            if chunks[self.num_data] is None:
                need = need + [self.num_data]
            yield from self._fill_chunks(stripe, chunks, need)

        old = [chunks[i] for i in touched]
        self._patch_chunks(chunks, in_stripe, data)

        parity = bytearray(self.chunk)
        if use_rcw:
            for i in range(self.num_data):
                xor_into(parity, chunks[i])
        else:
            parity[:] = chunks[self.num_data]
            for i, old_chunk in zip(touched, old):
                xor_into(parity, old_chunk)
                xor_into(parity, chunks[i])
        chunks[self.num_data] = bytes(parity)

        # Only the modified byte ranges hit the devices (md writes the
        # covered sectors, not whole chunks); the parity write covers the
        # union of the per-chunk modified ranges.
        writes = []
        parity_lo, parity_hi = self.chunk, 0
        for i in touched:
            lo = max(0, in_stripe - i * self.chunk)
            hi = min(self.chunk, in_stripe + len(data) - i * self.chunk)
            parity_lo, parity_hi = min(parity_lo, lo), max(parity_hi, hi)
            device = data_devs[i]
            if not self.failed[device]:
                writes.append(self.devices[device].submit(
                    Bio.write(pba + lo, chunks[i][lo:hi])))
        if not self.failed[parity_dev]:
            writes.append(self.devices[parity_dev].submit(Bio.write(
                pba + parity_lo,
                chunks[self.num_data][parity_lo:parity_hi])))
        yield self.sim.all_of(writes)
        self.cache.put(stripe, list(chunks))

    def _subrange_rmw(self, stripe: int, in_stripe: int, data: bytes):
        """Uncached sub-stripe write via sector-granular RMW."""
        parity_dev, data_devs = self.layout(stripe)
        pba = self.chunk_pba(stripe)
        # Per-chunk covered ranges and the parity range (their union).
        ranges = []
        position = 0
        parity_lo, parity_hi = self.chunk, 0
        while position < len(data):
            index = (in_stripe + position) // self.chunk
            lo = (in_stripe + position) % self.chunk
            take = min(len(data) - position, self.chunk - lo)
            ranges.append((index, lo, lo + take, position))
            parity_lo, parity_hi = min(parity_lo, lo), max(parity_hi,
                                                           lo + take)
            position += take
        reads = [self.devices[data_devs[index]].submit(
            Bio.read(pba + lo, hi - lo)) for index, lo, hi, _pos in ranges]
        reads.append(self.devices[parity_dev].submit(
            Bio.read(pba + parity_lo, parity_hi - parity_lo)))
        results = yield self.sim.all_of(reads)
        old_parity = bytearray(results[-1].result)
        # parity' = parity ^ old_data ^ new_data over the covered bytes.
        for (index, lo, hi, position), old in zip(ranges, results[:-1]):
            xor_into(old_parity, old.result, lo - parity_lo)
            xor_into(old_parity, data[position:position + hi - lo],
                     lo - parity_lo)
        writes = [self.devices[data_devs[index]].submit(
            Bio.write(pba + lo, data[position:position + hi - lo]))
            for index, lo, hi, position in ranges]
        writes.append(self.devices[parity_dev].submit(
            Bio.write(pba + parity_lo, bytes(old_parity))))
        yield self.sim.all_of(writes)

    def _fill_chunks(self, stripe: int,
                     chunks: List[Optional[bytes]],
                     indices: List[int]):
        """Read the listed chunk slots (data or parity) from their devices.

        A slot whose device has failed is reconstructed from the other
        devices (degraded RMW), which is how md serves sub-stripe writes
        on a degraded array.
        """
        parity_dev, data_devs = self.layout(stripe)
        pba = self.chunk_pba(stripe)
        reads = []
        slots = []
        degraded_slots = []
        for index in indices:
            device = parity_dev if index == self.num_data else data_devs[index]
            if self.failed[device]:
                degraded_slots.append(index)
                continue
            reads.append(self.devices[device].submit(Bio.read(pba, self.chunk)))
            slots.append(index)
        if reads:
            results = yield self.sim.all_of(reads)
            for slot, result in zip(slots, results):
                chunks[slot] = result.result
        for slot in degraded_slots:
            chunks[slot] = yield from self._reconstruct_chunk(stripe, slot)

    def _reconstruct_chunk(self, stripe: int, slot: int):
        """XOR all surviving chunks to recover one failed chunk."""
        parity_dev, data_devs = self.layout(stripe)
        failed_device = parity_dev if slot == self.num_data \
            else data_devs[slot]
        pba = self.chunk_pba(stripe)
        sources = []
        for device in range(self.num_devices):
            if device == failed_device:
                continue
            if self.failed[device]:
                raise DataLossError("two failed devices in RAID-5")
            sources.append(self.devices[device].submit(
                Bio.read(pba, self.chunk)))
        results = yield self.sim.all_of(sources)
        acc = bytearray(self.chunk)
        for piece in results:
            xor_into(acc, piece.result)
        return bytes(acc)

    def _patch_chunks(self, chunks: List[Optional[bytes]], in_stripe: int,
                      data: bytes) -> None:
        position = 0
        while position < len(data):
            index = (in_stripe + position) // self.chunk
            in_chunk = (in_stripe + position) % self.chunk
            take = min(len(data) - position, self.chunk - in_chunk)
            base = bytearray(chunks[index] if chunks[index] is not None
                             else bytes(self.chunk))
            base[in_chunk:in_chunk + take] = data[position:position + take]
            chunks[index] = bytes(base)
            position += take

    # -- flush / discard ------------------------------------------------------------------

    def _run_flush(self, bio: Bio, done: Event):
        try:
            yield self.sim.all_of([
                dev.submit(Bio.flush()) for dev in self.devices
                if dev is not None])
        except DeviceError as exc:
            done.fail(exc)
            return
        self.stats.account(bio)
        bio.complete_time = self.sim.now
        done.succeed(bio)

    def _run_discard(self, bio: Bio, done: Event):
        """TRIM: forwarded per-chunk to the data devices (parity kept)."""
        try:
            position = bio.offset
            remaining = bio.length
            events = []
            while remaining > 0:
                stripe, index, in_chunk = self.lba_to_chunk(position)
                take = min(remaining, self.chunk - in_chunk)
                _parity, data_devs = self.layout(stripe)
                device = data_devs[index]
                if not self.failed[device]:
                    events.append(self.devices[device].submit(Bio(
                        Op.DISCARD, offset=self.chunk_pba(stripe) + in_chunk,
                        length=take)))
                position += take
                remaining -= take
            yield self.sim.all_of(events)
        except DeviceError as exc:
            done.fail(exc)
            return
        self.stats.account(bio)
        bio.complete_time = self.sim.now
        done.succeed(bio)

    # -- failure and resync ------------------------------------------------------------------

    def fail_device(self, index: int, remove: bool = True) -> None:
        """Fail (and optionally remove) one array device."""
        if self.failed[index]:
            return
        if sum(self.failed) >= 1:
            raise DataLossError("second failure exceeds RAID-5 tolerance")
        dev = self.devices[index]
        if dev is not None:
            dev.fail_device()
        self.failed[index] = True
        if remove:
            self.devices[index] = None
        self.cache.invalidate()

    def resync(self, index: int, new_device: ConventionalSSD) -> ResyncReport:
        """Synchronously rebuild device ``index``; drains the event loop."""
        return self.sim.run_process(
            self.resync_process(index, new_device))

    def resync_process(self, index: int, new_device: ConventionalSSD):
        """md-style resync: reconstruct the ENTIRE device address space.

        mdraid has no knowledge of which blocks hold live data, so the
        resync time is constant regardless of array fill (Figure 12).
        """
        if not self.failed[index]:
            raise RaiznError(f"device {index} has not failed")
        if new_device.size_bytes != self.device_capacity:
            raise RaiznError("replacement device capacity mismatch")
        started_at = self.sim.now
        self.devices[index] = new_device
        bytes_written = 0
        resync_span = 8 * self.chunk  # chunks reconstructed per batch
        for batch_start in range(0, self.device_capacity, resync_span):
            span = min(resync_span, self.device_capacity - batch_start)
            reads = [self.devices[other].submit(Bio.read(batch_start, span))
                     for other in range(self.num_devices)
                     if other != index and not self.failed[other]]
            results = yield self.sim.all_of(reads)
            out = bytearray(span)
            for piece in results:
                xor_into(out, piece.result)
            yield new_device.submit(Bio.write(batch_start, bytes(out)))
            bytes_written += span
        self.failed[index] = False
        self.cache.invalidate()
        return ResyncReport(device_index=index, bytes_written=bytes_written,
                            started_at=started_at, finished_at=self.sim.now)


class _PendingStripe:
    """Plugged sub-stripe writes awaiting one batched parity update."""

    __slots__ = ("data", "intervals", "waiters", "width")

    def __init__(self, width: int):
        self.width = width
        self.data = bytearray(width)
        self.intervals: List[Tuple[int, int]] = []
        self.waiters: List[Event] = []

    def absorb(self, offset: int, data: bytes, event: Event) -> None:
        end = offset + len(data)
        self.data[offset:end] = data
        merged = []
        lo, hi = offset, end
        for existing_lo, existing_hi in self.intervals:
            if existing_hi < lo or existing_lo > hi:
                merged.append((existing_lo, existing_hi))
            else:
                lo, hi = min(lo, existing_lo), max(hi, existing_hi)
        merged.append((lo, hi))
        merged.sort()
        self.intervals = merged
        self.waiters.append(event)

    @property
    def full_cover(self) -> bool:
        return self.intervals == [(0, self.width)]
