"""RAIZN reproduction: Redundant Array of Independent Zoned Namespaces.

A full-system reproduction of Kim et al., *RAIZN: Redundant Array of
Independent Zoned Namespaces* (ASPLOS 2023), on a simulated substrate:

* :mod:`repro.sim` — discrete-event simulation kernel;
* :mod:`repro.zns` — ZNS SSD simulator (zone state machine, write
  pointers, append, flush/FUA, power-loss semantics);
* :mod:`repro.conv` — conventional SSD with page-mapped FTL and
  on-device garbage collection;
* :mod:`repro.block` — bios, flags, and the device service-time model;
* :mod:`repro.raizn` — **the paper's contribution**: the RAIZN logical
  volume manager;
* :mod:`repro.mdraid` — the RAID-5 baseline the paper compares against;
* :mod:`repro.apps` — F2FS-like filesystem, RocksDB-like LSM store,
  db_bench and sysbench drivers;
* :mod:`repro.workloads` — fio-style job runner and the overwrite
  benchmark;
* :mod:`repro.faults` — power-loss and device-failure injection;
* :mod:`repro.harness` — one experiment driver per paper table/figure.

Quickstart::

    from repro.sim import Simulator
    from repro.harness import make_raizn
    from repro.block import Bio

    sim = Simulator()
    volume, devices = make_raizn(sim)
    volume.execute(Bio.write(0, b"hello zns world!" * 256))
    print(volume.execute(Bio.read(0, 4096)).result[:16])
"""

__version__ = "1.0.0"

from . import units
from .errors import ReproError

__all__ = ["units", "ReproError", "__version__"]
