"""Simulated conventional (FTL-based) SSD substrate."""

from .device import ConventionalSSD
from .ftl import FTLConfig, GCResult, PageMappedFTL

__all__ = ["ConventionalSSD", "FTLConfig", "GCResult", "PageMappedFTL"]
