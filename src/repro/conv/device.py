"""Simulated conventional (block-interface, FTL-backed) SSD.

Supports arbitrary reads, writes, and overwrites, with the on-device
garbage collection of :mod:`repro.conv.ftl` charging copy-back work to the
host writes that trigger it — reproducing the throughput collapse mdraid
suffers in the paper's Figure 10.
"""

from __future__ import annotations

from typing import Optional

from ..block.bio import Bio, Op
from ..block.device import BlockDevice
from ..block.timing import ServiceTimeModel, conventional_ssd_model
from ..errors import InvalidAddressError, ZoneStateError
from ..sim import Simulator
from ..units import MSEC, SECTOR_SIZE
from .ftl import FTLConfig, GCResult, PageMappedFTL


class ConventionalSSD(BlockDevice):
    """A block-interface SSD with page-mapped FTL and on-device GC."""

    trace_layer = "conv"

    def __init__(
        self,
        sim: Simulator,
        name: str = "nvme0",
        capacity_bytes: int = 256 * 1024 * 1024,
        model: Optional[ServiceTimeModel] = None,
        op_ratio: float = 0.07,
        pages_per_block: int = 256,
        erase_latency: float = 2 * MSEC,
        seed: int = 0,
    ):
        if capacity_bytes % SECTOR_SIZE:
            raise InvalidAddressError("capacity must be sector aligned")
        super().__init__(sim, name, capacity_bytes,
                         model or conventional_ssd_model(), seed=seed)
        self.ftl = PageMappedFTL(FTLConfig(
            logical_pages=capacity_bytes // SECTOR_SIZE,
            page_size=SECTOR_SIZE,
            pages_per_block=pages_per_block,
            op_ratio=op_ratio,
        ))
        self.erase_latency = erase_latency
        self._media = bytearray(capacity_bytes)

    # -- command application -----------------------------------------------------

    def _apply(self, bio: Bio) -> float:
        if bio.op == Op.READ:
            return self._apply_read(bio)
        if bio.op == Op.WRITE:
            return self._apply_write(bio)
        if bio.op == Op.FLUSH:
            return 0.0
        if bio.op == Op.DISCARD:
            return self._apply_discard(bio)
        raise ZoneStateError(
            f"{self.name}: conventional SSD does not support {bio.op}")

    def _check_range(self, bio: Bio) -> None:
        if bio.end_offset > self.size_bytes:
            raise InvalidAddressError(
                f"{self.name}: access [{bio.offset:#x},{bio.end_offset:#x}) "
                f"beyond capacity {self.size_bytes:#x}")

    def _apply_read(self, bio: Bio) -> float:
        self._check_range(bio)
        # One copy, not two (a bytearray slice would copy before bytes()
        # copied again).  Unlike the ZNS device this must stay a copy:
        # conventional media is overwritable in place, so a borrowed view
        # would alias whatever a later write puts at the same offset.
        bio.result = bytes(memoryview(self._media)[bio.offset:bio.end_offset])
        return 0.0

    def _apply_write(self, bio: Bio) -> float:
        self._check_range(bio)
        assert bio.data is not None
        self._media[bio.offset:bio.end_offset] = bio.data
        gc = self.ftl.write(bio.offset // SECTOR_SIZE,
                            bio.length // SECTOR_SIZE)
        return self._gc_time(gc)

    def _apply_discard(self, bio: Bio) -> float:
        self._check_range(bio)
        self._media[bio.offset:bio.end_offset] = bytes(bio.length)
        self.ftl.trim(bio.offset // SECTOR_SIZE, bio.length // SECTOR_SIZE)
        return 0.0

    def _gc_time(self, gc: GCResult) -> float:
        """Channel time consumed by GC copy-back and erases.

        Moved pages are read and re-programmed through the same flash
        channels the host write is using, so the cost is charged at
        per-channel bandwidth — aggregate throughput then degrades by
        exactly the write-amplification factor.
        """
        if gc.pages_moved == 0 and gc.blocks_erased == 0:
            return 0.0
        moved_bytes = gc.pages_moved * self.ftl.config.page_size
        per_channel_write = self.model.write_bandwidth / self.model.channels
        per_channel_read = self.model.read_bandwidth / self.model.channels
        copy_time = moved_bytes / per_channel_write + \
            moved_bytes / per_channel_read
        return copy_time + gc.blocks_erased * self.erase_latency

    def _persist(self, bio: Bio) -> None:
        # The conventional device's durability model is simple: data is
        # durable at completion.  The paper's crash experiments target the
        # ZNS array; mdraid runs journal-less ("ensuring maximum
        # performance", §6) and is never crash-tested.
        return

    @property
    def write_amplification(self) -> float:
        """Current media write amplification reported by the FTL."""
        return self.ftl.write_amplification
