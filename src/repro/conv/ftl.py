"""Page-mapped flash translation layer with on-device garbage collection.

This is the mechanism behind the paper's headline contrast (Figure 10,
Observation 3): conventional SSDs must garbage-collect internally, and once
overprovisioned blocks are exhausted, valid-page copy-back traffic steals
bandwidth from the host.  ZNS SSDs have no FTL GC, which is why RAIZN's
throughput stays flat.

The FTL here is deliberately classical: logical-to-physical page mapping,
one active write frontier, greedy (min-valid-count) victim selection, and
low/high free-block watermarks.  It tracks *accounting* (which physical
page holds which logical page, how many pages GC moved); user data bytes
are stored logically by the owning device, since physical placement does
not change read results.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional

import numpy as np

from ..errors import InvalidAddressError


@dataclasses.dataclass
class FTLConfig:
    """Geometry and GC policy of the simulated FTL."""

    #: Exported logical capacity in pages.
    logical_pages: int
    #: Flash page size in bytes (equals the sector size upstack).
    page_size: int = 4096
    #: Pages per erase block.
    pages_per_block: int = 256
    #: Overprovisioning ratio: physical = logical * (1 + op_ratio).
    op_ratio: float = 0.07
    #: Start GC when free blocks drop to this count.
    gc_low_watermark: int = 4
    #: Stop GC when free blocks reach this count.
    gc_high_watermark: int = 8

    @property
    def physical_blocks(self) -> int:
        physical_pages = int(self.logical_pages * (1.0 + self.op_ratio))
        blocks = -(-physical_pages // self.pages_per_block)
        # Leave room for the watermarks to function at all.
        return max(blocks, self.gc_high_watermark + 2)


@dataclasses.dataclass
class GCResult:
    """What one allocation round cost in garbage collection work."""

    pages_moved: int = 0
    blocks_erased: int = 0

    def add(self, other: "GCResult") -> None:
        self.pages_moved += other.pages_moved
        self.blocks_erased += other.blocks_erased


class PageMappedFTL:
    """Logical→physical page mapping with greedy garbage collection."""

    UNMAPPED = -1

    def __init__(self, config: FTLConfig):
        self.config = config
        nblocks = config.physical_blocks
        ppb = config.pages_per_block
        self.num_blocks = nblocks
        self.l2p = np.full(config.logical_pages, self.UNMAPPED, dtype=np.int64)
        self.p2l = np.full(nblocks * ppb, self.UNMAPPED, dtype=np.int64)
        self.valid_count = np.zeros(nblocks, dtype=np.int64)
        self.free_blocks: List[int] = list(range(nblocks - 1, -1, -1))
        # Separate write frontiers for host data and GC relocation (hot /
        # cold separation): mixing them would re-pollute freshly cleaned
        # blocks with long-lived relocated pages.
        self.active_block: Optional[int] = None
        self.active_offset = 0
        self.gc_block: Optional[int] = None
        self.gc_offset = 0
        # Lifetime counters.
        self.host_pages_written = 0
        self.gc_pages_moved = 0
        self.blocks_erased = 0

    # -- bookkeeping helpers -----------------------------------------------------

    @property
    def free_block_count(self) -> int:
        open_frontiers = sum(1 for b in (self.active_block, self.gc_block)
                             if b is not None)
        return len(self.free_blocks) + open_frontiers

    def mapped(self, lpn: int) -> bool:
        """True if logical page ``lpn`` currently maps to flash."""
        return bool(self.l2p[lpn] != self.UNMAPPED)

    def _check_lpn(self, lpn: int) -> None:
        if not 0 <= lpn < self.config.logical_pages:
            raise InvalidAddressError(f"logical page {lpn} out of range")

    def _invalidate(self, lpn: int) -> None:
        ppn = self.l2p[lpn]
        if ppn != self.UNMAPPED:
            self.p2l[ppn] = self.UNMAPPED
            self.valid_count[ppn // self.config.pages_per_block] -= 1
            self.l2p[lpn] = self.UNMAPPED

    def _next_physical_page(self, gc: GCResult, for_gc: bool = False) -> int:
        ppb = self.config.pages_per_block
        if for_gc:
            if self.gc_block is None or self.gc_offset == ppb:
                if not self.free_blocks:
                    raise RuntimeError("FTL out of free blocks during GC")
                self.gc_block = self.free_blocks.pop()
                self.gc_offset = 0
            ppn = self.gc_block * ppb + self.gc_offset
            self.gc_offset += 1
            if self.gc_offset == ppb:
                self.gc_block = None
            return ppn
        if self.active_block is None or self.active_offset == ppb:
            self._maybe_collect(gc)
            if not self.free_blocks:
                raise RuntimeError(
                    "FTL out of free blocks: GC could not reclaim space "
                    "(device overfilled?)")
            self.active_block = self.free_blocks.pop()
            self.active_offset = 0
        ppn = self.active_block * ppb + self.active_offset
        self.active_offset += 1
        if self.active_offset == ppb:
            self.active_block = None
        return ppn

    def _map(self, lpn: int, gc: GCResult, for_gc: bool = False) -> None:
        self._invalidate(lpn)
        ppn = self._next_physical_page(gc, for_gc=for_gc)
        self.l2p[lpn] = ppn
        self.p2l[ppn] = lpn
        self.valid_count[ppn // self.config.pages_per_block] += 1

    # -- garbage collection --------------------------------------------------------

    def _maybe_collect(self, gc: GCResult) -> None:
        while len(self.free_blocks) <= self.config.gc_low_watermark:
            if not self._collect_one(gc):
                break
            if len(self.free_blocks) >= self.config.gc_high_watermark:
                break

    def _collect_one(self, gc: GCResult) -> bool:
        """Erase the fullest-of-garbage block, relocating its valid pages."""
        ppb = self.config.pages_per_block
        victim = self._pick_victim()
        if victim is None:
            return False
        base = victim * ppb
        victims = [int(lpn) for lpn in self.p2l[base:base + ppb]
                   if lpn != self.UNMAPPED]
        for lpn in victims:
            self._map(lpn, gc, for_gc=True)
            gc.pages_moved += 1
            self.gc_pages_moved += 1
        self.p2l[base:base + ppb] = self.UNMAPPED
        self.valid_count[victim] = 0
        self.free_blocks.insert(0, victim)
        gc.blocks_erased += 1
        self.blocks_erased += 1
        return True

    def _pick_victim(self) -> Optional[int]:
        """Greedy policy: the non-free, non-active block with fewest valid pages."""
        ppb = self.config.pages_per_block
        counts = self.valid_count.copy()
        counts[self.free_blocks] = ppb + 1
        if self.active_block is not None:
            counts[self.active_block] = ppb + 1
        if self.gc_block is not None:
            counts[self.gc_block] = ppb + 1
        victim = int(np.argmin(counts))
        if counts[victim] > ppb:
            return None
        if counts[victim] == ppb:
            # Nothing reclaimable: every candidate block is fully valid.
            return None
        return victim

    # -- host operations -------------------------------------------------------------

    def write(self, first_lpn: int, npages: int) -> GCResult:
        """Map ``npages`` starting at ``first_lpn``; returns the GC work done."""
        self._check_lpn(first_lpn)
        self._check_lpn(first_lpn + npages - 1)
        gc = GCResult()
        for lpn in range(first_lpn, first_lpn + npages):
            self._map(lpn, gc)
            self.host_pages_written += 1
        return gc

    def trim(self, first_lpn: int, npages: int) -> None:
        """Deallocate (TRIM) a logical page range."""
        self._check_lpn(first_lpn)
        self._check_lpn(first_lpn + npages - 1)
        for lpn in range(first_lpn, first_lpn + npages):
            self._invalidate(lpn)

    @property
    def write_amplification(self) -> float:
        """(host + GC) pages programmed per host page written."""
        if self.host_pages_written == 0:
            return 1.0
        return (self.host_pages_written + self.gc_pages_moved) / \
            self.host_pages_written
