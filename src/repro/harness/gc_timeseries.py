"""Figure 10: the full-device overwrite timeseries (paper §6.1, Obs. 3).

Runs the two-phase overwrite benchmark on both arrays and reports the
throughput timeseries plus the headline statistics: mdraid collapses once
the conventional SSDs exhaust their overprovisioned blocks and start
garbage collecting (the paper measures up to a 93% throughput drop and
14× tail-latency inflation), while RAIZN stays flat.
"""

from __future__ import annotations

import dataclasses
from typing import List, Tuple

from ..sim import Simulator
from ..units import KiB
from ..workloads.overwrite import OverwriteResult, run_overwrite
from .arrays import DEFAULT, ArrayScale, make_mdraid, make_raizn
from .results import Series


@dataclasses.dataclass
class GcTimeseriesResult:
    """Outcome of the Figure 10 experiment for one system."""

    system: str
    result: OverwriteResult
    phase1_mean_mib_s: float
    phase2_mean_mib_s: float
    phase2_min_mib_s: float
    phase2_p999_latency: float

    @property
    def throughput_drop(self) -> float:
        """Worst-case throughput drop relative to phase 1 (0..1)."""
        if self.phase1_mean_mib_s == 0:
            return 0.0
        return 1.0 - self.phase2_min_mib_s / self.phase1_mean_mib_s

    def series(self) -> Series:
        return Series(self.system, self.result.throughput_series())


def run_gc_timeseries(system: str, scale: ArrayScale = DEFAULT,
                      block_size: int = 256 * KiB, iodepth: int = 8,
                      bucket_seconds: float = 0.002,
                      smoothing_window: int = 9,
                      seed: int = 0) -> GcTimeseriesResult:
    """Run the overwrite benchmark on ``system`` ('raizn' or 'mdraid')."""
    sim = Simulator()
    if system == "raizn":
        volume, _devices = make_raizn(sim, scale, seed=seed)
        zoned = True
    else:
        volume, _devices = make_mdraid(sim, scale, seed=seed)
        zoned = False
    result = run_overwrite(sim, volume, block_size=block_size,
                           iodepth=iodepth, threads=5, zoned=zoned,
                           bucket_seconds=bucket_seconds, seed=seed)
    series = Series(system, result.throughput_series())
    smoothed = series.smoothed(smoothing_window).points
    phase1 = [v for t, v in smoothed if t < result.phase2_start and v > 0]
    phase2 = [v for t, v in smoothed if t >= result.phase2_start and v > 0]
    return GcTimeseriesResult(
        system=system,
        result=result,
        phase1_mean_mib_s=sum(phase1) / len(phase1) if phase1 else 0.0,
        phase2_mean_mib_s=sum(phase2) / len(phase2) if phase2 else 0.0,
        phase2_min_mib_s=min(phase2) if phase2 else 0.0,
        phase2_p999_latency=result.phase2_latency.p999)


def throughput_vs_progress(result: GcTimeseriesResult,
                           points: int = 20) -> List[Tuple[float, float]]:
    """Phase-2 throughput as a function of the fraction overwritten.

    Figure 10 annotates points A–D at 20/40/60/80% of the overwrite;
    this reduction makes that comparison direct regardless of how the
    timeline stretches.
    """
    phase2 = [(t, v) for t, v in result.result.throughput_series()
              if t >= result.result.phase2_start]
    total = sum(v for _t, v in phase2)
    if total == 0:
        return []
    out = []
    cumulative = 0.0
    next_mark = 1
    window: List[float] = []
    for _t, v in phase2:
        cumulative += v
        window.append(v)
        if cumulative >= total * next_mark / points:
            out.append((next_mark / points,
                        sum(window) / len(window)))
            window = []
            next_mark += 1
    return out
