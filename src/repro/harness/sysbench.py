"""Figure 14: sysbench OLTP on MyRocks-style storage (paper §6.3).

oltp_read_only / oltp_write_only / oltp_read_write at two thread counts,
on a database prepared sysbench-style (8 tables × N rows in the paper;
scaled down here).  Reports transactions/second, average latency, and
95th-percentile latency for RAIZN and mdraid.
"""

from __future__ import annotations

import dataclasses
from typing import List, Sequence

from ..apps.f2fs import F2FS
from ..apps.lsm import LSMTree
from ..apps.oltp import prepare_tables, run_oltp
from ..sim import Simulator
from ..units import MiB
from .arrays import DEFAULT, ArrayScale, make_mdraid, make_raizn

WORKLOADS = ("oltp_read_only", "oltp_write_only", "oltp_read_write")


@dataclasses.dataclass
class SysbenchCell:
    """One (system, workload, threads) measurement."""

    system: str
    workload: str
    threads: int
    tps: float
    avg_latency: float
    p95_latency: float


def run_sysbench(kind: str, workload: str, threads: int,
                 transactions: int = 320, tables: int = 4, rows: int = 2000,
                 scale: ArrayScale = DEFAULT, seed: int = 0) -> SysbenchCell:
    """One Figure 14 cell: fresh array, prepared tables, one workload.

    The paper resets the volume and database before each trial; each
    call here builds a fresh stack the same way.
    """
    sim = Simulator()
    if kind == "raizn":
        volume, _devices = make_raizn(sim, scale, seed=seed)
    else:
        volume, _devices = make_mdraid(sim, scale, seed=seed)
    fs = F2FS(sim, volume)
    lsm = LSMTree(sim, fs, memtable_bytes=1 * MiB, level_base_bytes=8 * MiB)
    prepare_tables(sim, lsm, tables=tables, rows=rows, seed=seed)
    result = run_oltp(sim, lsm, workload, threads=threads,
                      transactions=transactions, tables=tables, rows=rows,
                      seed=seed)
    return SysbenchCell(system=kind, workload=workload, threads=threads,
                        tps=result.tps, avg_latency=result.avg_latency,
                        p95_latency=result.p95_latency)


def sysbench_comparison(thread_counts: Sequence[int] = (64, 128),
                        transactions: int = 320, tables: int = 4,
                        rows: int = 2000, scale: ArrayScale = DEFAULT,
                        seed: int = 0) -> List[SysbenchCell]:
    """The full Figure 14 grid."""
    cells = []
    for workload in WORKLOADS:
        for threads in thread_counts:
            for kind in ("mdraid", "raizn"):
                cells.append(run_sysbench(kind, workload, threads,
                                          transactions=transactions,
                                          tables=tables, rows=rows,
                                          scale=scale, seed=seed))
    return cells
