"""Compound-fault soak campaign: crash x error x slow x wear, composed.

Each fault family has its own harness (``crashtest``, ``errortest``,
``slowtest``), but the paper's durability argument (§5.2/§5.3) only
holds if the recovery mechanisms *compose*: a latent error discovered
while a gray-failing device drags the array through hedged reads, on a
zone whose erase budget just ran out, across a power cut.  This module
runs one long-horizon, fully deterministic campaign that layers all four
dimensions on a single array:

* a seeded :class:`~repro.faults.errinject.FaultPlan` (latent +
  transient errors) and :class:`~repro.faults.failslow.SlowPlan`
  (gray failure) armed simultaneously — exercising the completion-hook
  chaining the injectors share;
* scheduled crash/recover cycles and per-phase crash-state exploration,
  reusing the crashtest snapshot machinery
  (:class:`~repro.faults.crashpoints.CompletionBoundaries`);
* GC/scrub/rebuild pressure: per-phase scrubs, a mid-campaign eviction
  *during* the workload (the write-plan-cache invalidation seam), and a
  rebuild onto a fresh replacement;
* finite zone endurance (``ZNSDevice.zone_reset_limit``): the workload
  recycles zones until erase budgets run out, so wear-driven faults
  appear organically instead of being injected.

The integrity oracle runs continuously — at every phase boundary on the
live array and on every explored crash state — not once at the end.

**Mechanism-signature pruning (Silhouette-style).**  Exhaustively
mounting every survivor state is wasteful: most states exercise the
same recovery mechanisms.  Each candidate crash state is abstracted to
a *mechanism key* — per device: the min/mid/max class of every dirty
zone's survivor choice, the set of zones whose latent-error extents
survive the cut, worn-out zones, and the failed flag — computed without
mounting.  A candidate whose key was already explored is skipped; a
deterministic sample of skipped states is mounted anyway and its
observed mechanism signature (derived from the recovered volume's
:class:`~repro.trace.MetricsRegistry` counters) must not add any
mechanism the explored set missed — so the report can claim the pruner
preserved the exercised-mechanism set.

Run via ``python -m repro soaktest`` (``--quick`` for the CI-sized
campaign); emits a JSON mechanism-coverage report.
"""

from __future__ import annotations

import hashlib
import json
import random
import time
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from ..block.bio import Bio, BioFlags
from ..errors import PowerLossError, ReproError
from ..faults.crashpoints import (
    CompletionBoundaries,
    apply_survivor_assignment,
    array_crash_snapshot,
    array_restore_crash_snapshot,
    array_state_fingerprint,
    enumerate_survivor_assignments,
)
from ..faults.devicefail import fresh_replacement
from ..faults.errinject import FaultPlan
from ..faults.failslow import SlowDeviceSpec, SlowPlan
from ..faults.oracle import (
    WorkloadExpectation,
    check_persistence_bitmap_soundness,
    check_recovered_volume,
)
from ..raizn.config import RaiznConfig
from ..raizn.maintenance import run_scrub
from ..raizn.rebuild import rebuild
from ..raizn.recovery import mount
from ..raizn.volume import RaiznVolume
from ..sim import Simulator
from ..trace.metrics import MetricsRegistry
from ..units import KiB, MiB
from ..zns.device import ZNSDevice
from ..zns.spec import ZoneState

#: Same geometry as crashtest: small enough that one mount costs
#: milliseconds, rich enough for multi-zone / metadata-GC interleavings.
NUM_DEVICES = 5
NUM_ZONES = 12
ZONE_CAPACITY = 1 * MiB
STRIPE_UNIT = 64 * KiB
WORKLOAD_ZONES = 3
ARRAY_UUID = bytes(range(16))
#: Erase budget per physical zone: low enough that the campaign's zone
#: recycling wears data zones out organically in the later phases.
ENDURANCE_LIMIT = 4
#: Device evicted mid-workload (and later rebuilt).
EVICT_TARGET = 3
#: The one workload zone allowed to spend its whole erase budget.  A
#: logical reset erases every device's physical zone in lockstep, so a
#: fully worn zone relocates *all* of its pieces; the workload caps
#: post-wear writes (below, ``_WORN_WRITE_CAP`` small writes per phase)
#: so relocations stay under ``relocation_rebuild_threshold`` — a worn
#: zone cannot be erased, so the §5.2 rewrite could never heal it and
#: unbounded writes would exhaust the metadata zones.
WEAR_ZONE = 2
_WORN_WRITE_CAP = 2

#: Config knobs applied both at create time and on every recovery mount
#: (they are runtime policy, not superblock state).  Health-driven
#: eviction is disabled: the campaign already schedules an explicit
#: eviction, and an *unscheduled* one composed with the next phase's
#: latent-error injection would manufacture a double fault (one failed
#: device + one media error in the same stripe) that single parity
#: cannot serve — an array-model limit, not a composition bug.
#: Demotion and hedged reads stay live.
SOAK_OVERRIDES = dict(
    failslow_protection=True,
    device_error_threshold=10 ** 9,
    slow_evict_score=10.0 ** 9,
)

_WRITE_SIZES = (4 * KiB, 12 * KiB, 64 * KiB, 128 * KiB, 192 * KiB,
                256 * KiB)

#: Everything the signature extractor can tag a recovered state with.
MECHANISMS = (
    "read_repair", "parity_heal", "relocation", "partial_parity_rebuild",
    "hedge", "eviction", "degraded_mount", "wear_redirect",
    "transient_retry", "mdzone_gc_replay",
)


# ---------------------------------------------------------------- signatures


def mechanism_signature(volume: RaiznVolume) -> FrozenSet[str]:
    """Recovery mechanisms a freshly mounted volume exercised.

    Derived from the unified metrics registry (health counters, mdzone
    GC counters) plus the relocation state recovery ingested, so the
    signature is exactly what the observability layer already exports.
    """
    flat = MetricsRegistry.for_volume(volume).flat()
    mechs = set()
    if flat.get("health.heals"):
        mechs.add("read_repair")
    if flat.get("health.parity_heals"):
        mechs.add("parity_heal")
    if flat.get("health.slow_hedges"):
        mechs.add("hedge")
    if flat.get("health.evictions"):
        mechs.add("eviction")
    if flat.get("health.wear_errors"):
        mechs.add("wear_redirect")
    if flat.get("health.transient_retries"):
        mechs.add("transient_retry")
    if any(value for key, value in flat.items()
           if key.startswith("mdzone.") and key.endswith(".gc_cycles")):
        mechs.add("mdzone_gc_replay")
    if any(volume.failed):
        mechs.add("degraded_mount")
    if volume.relocations.units():
        mechs.add("relocation")
    if volume.relocated_parity:
        mechs.add("partial_parity_rebuild")
    return frozenset(mechs)


def candidate_mechanism_key(snaps: Sequence[Tuple],
                            spaces: Sequence[Dict[int, List[int]]],
                            assignment: Sequence[Dict[int, int]],
                            md_start: Optional[int] = None) -> Tuple:
    """Pre-mount abstraction of which mechanisms a crash state can reach.

    Computed from the boundary snapshot + survivor assignment alone (no
    device mutation, no mount).  The recovery-mechanism signature is
    *array-wide* — a mount either exercises read repair, relocation
    rollback, degraded assembly, etc. or it does not, regardless of
    which particular zone triggered it — so the key abstracts the same
    way.  The key is: the set of failed devices (degraded assembly),
    whether any latent-error extent survives the cut on a live device
    (read repair / parity heal), whether any zone is worn out —
    READ_ONLY/OFFLINE — (wear redirection), and the *worst* survivor
    class among dirty data zones and, separately, metadata zones
    (0 = settled to the durable pointer, 2 = full cache survived,
    1 = in between; ``md_start`` is the first metadata zone index,
    without it all zones count as data).  The worst class decides
    whether recovery faces rollback + relocation arming (class < 2) and
    how deep; which particular zone triggered it does not change the
    mechanism set.  Two candidates with equal keys put recovery in
    front of the same mechanism triggers, so mounting one stands in for
    both.
    """
    failed = []
    any_bad = False
    worn = False
    data_worst = 2
    md_worst = 2
    for index, snap in enumerate(snaps):
        zone_rows = snap[0]
        if snap[5]:
            failed.append(index)
            continue  # a failed device contributes no live reads
        bad = snap[7] if len(snap) > 7 else {}
        chosen = assignment[index]
        for zone, states in sorted(spaces[index].items()):
            survivor = chosen.get(zone, states[0])
            if survivor == states[0]:
                cls = 0
            elif survivor == states[-1]:
                cls = 2
            else:
                cls = 1
            if md_start is not None and zone >= md_start:
                md_worst = min(md_worst, cls)
            else:
                data_worst = min(data_worst, cls)
        if not any_bad:
            for zone, extents in sorted(bad.items()):
                # Unnamed zones settle to their durable pointer.
                survivor = chosen.get(zone, zone_rows[zone][2])
                if any(start < survivor for start, _end in extents):
                    any_bad = True
                    break
        if not worn and any(row[0] is ZoneState.READ_ONLY
                            or row[0] is ZoneState.OFFLINE
                            for row in zone_rows):
            worn = True
    return (tuple(failed), any_bad, worn, data_worst, md_worst)


# ---------------------------------------------------------------- campaign


class _PhaseSpec:
    """What one soak phase layers onto the array."""

    def __init__(self, latent: float = 0.02, transient: float = 0.01,
                 slow: Optional[SlowDeviceSpec] = None,
                 wear_victims: Sequence[Tuple[int, int, bool]] = (),
                 evict: bool = False, rebuild: bool = False,
                 cycle: bool = False):
        self.latent = latent
        self.transient = transient
        self.slow = slow
        self.wear_victims = tuple(wear_victims)
        #: Evict ``EVICT_TARGET`` mid-segment (latent injection must be
        #: off: a degraded stripe cannot absorb a second lost unit).
        self.evict = evict
        #: Rebuild the evicted device onto a fresh replacement at the
        #: start of this phase.
        self.rebuild = rebuild
        #: End the phase with a real crash/recover cycle: the recovered
        #: volume *becomes* the live array for the next phase.
        self.cycle = cycle


def _phase_specs(quick: bool) -> List[_PhaseSpec]:
    if quick:
        return [
            _PhaseSpec(slow=SlowDeviceSpec(device_index=1,
                                           degrade_factor=3.0)),
            _PhaseSpec(latent=0.0, evict=True),
            _PhaseSpec(rebuild=True, cycle=True,
                       slow=SlowDeviceSpec(device_index=2,
                                           stall_probability=0.05,
                                           stall_seconds=2e-3)),
        ]
    return [
        _PhaseSpec(slow=SlowDeviceSpec(device_index=1, degrade_factor=3.0)),
        _PhaseSpec(cycle=True,
                   slow=SlowDeviceSpec(device_index=2,
                                       stall_probability=0.05,
                                       stall_seconds=2e-3)),
        _PhaseSpec(latent=0.0, evict=True),
        _PhaseSpec(rebuild=True,
                   slow=SlowDeviceSpec(device_index=4,
                                       ramp_per_second=1e-5)),
        _PhaseSpec(cycle=True,
                   slow=SlowDeviceSpec(device_index=2, degrade_factor=2.5)),
        _PhaseSpec(slow=SlowDeviceSpec(device_index=1,
                                       stall_probability=0.08,
                                       stall_seconds=1e-3)),
    ]


def _fresh_array(seed: int):
    """A formatted endurance-limited array (identical on every call)."""
    sim = Simulator()
    devices = [ZNSDevice(sim, name=f"zns{i}", num_zones=NUM_ZONES,
                         zone_capacity=ZONE_CAPACITY,
                         zone_reset_limit=ENDURANCE_LIMIT, seed=seed + i)
               for i in range(NUM_DEVICES)]
    config = RaiznConfig(num_data=NUM_DEVICES - 1,
                         stripe_unit_bytes=STRIPE_UNIT,
                         **SOAK_OVERRIDES)
    volume = RaiznVolume.create(sim, devices, config, array_uuid=ARRAY_UUID)
    return sim, volume


def _drain(sim: Simulator) -> None:
    while True:
        try:
            sim.run()
            return
        except PowerLossError:
            continue


def _phase_ops(seed: int, phase: int, volume: RaiznVolume, num_ops: int,
               evict_at: Optional[int]) -> List[Tuple]:
    """Scripted ops for one phase, anchored to the live zone pointers.

    Unlike the crashtest workload, the soak cannot pre-script the whole
    campaign: crash/recover cycles roll zone pointers back, so each
    phase's ops are generated from the current (deterministic) volume
    state.  Zones that wore out (every physical zone READ_ONLY after a
    reset) stop being reset — their erase budget is spent — but keep
    taking writes, which the datapath relocates.
    """
    rng = random.Random(seed * 9176 + phase)
    zone_capacity = volume.zone_capacity
    frontier = [volume.zone_descs[zone].write_pointer
                - volume.zone_descs[zone].start_lba
                for zone in range(WORKLOAD_ZONES)]
    # Highest erase count across the array: a logical reset erases every
    # device's physical zone in lockstep, so one number per zone.
    spent = [max(dev.zone_reset_count(zone)
                 for dev in volume.devices if dev is not None)
             for zone in range(WORKLOAD_ZONES)]
    worn_writes = 0
    ops: List[Tuple] = []
    for index in range(num_ops):
        if evict_at is not None and index == evict_at:
            ops.append(("evict", EVICT_TARGET, None, None, BioFlags.NONE))
        zone = rng.randrange(WORKLOAD_ZONES)
        roll = rng.random()
        budget = ENDURANCE_LIMIT - spent[zone]
        worn = budget <= 0
        if worn and (zone != WEAR_ZONE or worn_writes >= _WORN_WRITE_CAP):
            continue
        if roll < 0.12:
            ops.append(("flush", 0, None, None, BioFlags.NONE))
            continue
        # Only WEAR_ZONE may spend its final erase cycle; the others keep
        # one in reserve so they never go end-of-life mid-campaign.
        can_reset = budget >= 2 or (zone == WEAR_ZONE and budget >= 1)
        if roll < 0.18 and frontier[zone] > 0 and can_reset:
            ops.append(("reset", zone, None, None, BioFlags.NONE))
            frontier[zone] = 0
            spent[zone] += 1
            continue
        nbytes = rng.choice(_WRITE_SIZES)
        if worn:
            nbytes = min(nbytes, STRIPE_UNIT)
            worn_writes += 1
        if frontier[zone] + nbytes > zone_capacity:
            if not can_reset:
                continue  # full, and the erase budget is exhausted
            ops.append(("reset", zone, None, None, BioFlags.NONE))
            frontier[zone] = 0
            spent[zone] += 1
        flag_roll = rng.random()
        if flag_roll < 0.15:
            flags = BioFlags.FUA | BioFlags.PREFLUSH
        elif flag_roll < 0.30:
            flags = BioFlags.FUA
        else:
            flags = BioFlags.NONE
        data = random.Random(seed * 7 + phase * 1000003 + index) \
            .randbytes(nbytes)
        lba = zone * zone_capacity + frontier[zone]
        ops.append(("write", zone, lba, data, flags))
        frontier[zone] += nbytes
    return ops


def _run_segment(sim: Simulator, volume: RaiznVolume, ops: Sequence[Tuple],
                 expect: WorkloadExpectation, report: "_Report") -> None:
    """Drive one phase's scripted ops against the live volume."""

    def proc():
        for kind, zone, lba, data, flags in ops:
            if kind == "write":
                expect.note_submit_write(zone, data)
                yield volume.submit(Bio.write(lba, data, flags))
                expect.note_write_acked(zone,
                                        fua=bool(flags & BioFlags.FUA))
            elif kind == "flush":
                yield volume.submit(Bio.flush())
                expect.note_flush_acked()
            elif kind == "reset":
                expect.note_submit_reset(zone)
                yield volume.submit(
                    Bio.zone_reset(zone * volume.zone_capacity))
                expect.note_reset_acked(zone)
            elif kind == "evict":
                volume.fail_device(zone, remove=False)
                report.evictions += 1
        report.workload_ops += len(ops)

    sim.run_process(proc())


def _expectation_from_volume(volume: RaiznVolume) -> WorkloadExpectation:
    """Re-anchor the oracle after a crash/recover cycle.

    Whatever recovery presented is, by the mount-stability contract,
    durable: the new expectation's submitted stream and synced frontier
    are both the recovered content.
    """
    expect = WorkloadExpectation(volume.num_data_zones,
                                 volume.zone_capacity)
    for zone in range(WORKLOAD_ZONES):
        desc = volume.zone_descs[zone]
        length = desc.write_pointer - desc.start_lba
        if length <= 0:
            continue
        content = bytes(volume.execute(Bio.read(desc.start_lba,
                                                length)).result)
        zexp = expect.zones[zone]
        zexp.submitted = bytearray(content)
        zexp.synced = length
    return expect


# ---------------------------------------------------------------- report


class _Report:
    def __init__(self, seed: int, quick: bool):
        self.seed = seed
        self.quick = quick
        self.phases = 0
        self.workload_ops = 0
        self.boundaries = 0
        self.candidates = 0
        self.mounted = 0
        self.pruned = 0
        self.pruned_verified = 0
        self.pruned_escapes: List[Dict] = []
        self.distinct_states: set = set()
        self.evictions = 0
        self.rebuilds = 0
        self.crash_cycles = 0
        self.scrubs = 0
        self.scrub_heals = 0
        self.oracle_checks = {
            "phase_boundary": 0,
            "recovered_volume": 0,
            "persistence_bitmap": 0,
            "pruned_verification": 0,
            "crash_cycle": 0,
        }
        self.violations: List[Dict] = []
        self.signatures: set = set()
        self.injected: Dict[str, int] = {}
        self.slowed_commands = 0
        self.endurance: List[dict] = []
        self.elapsed_s = 0.0
        self._digest = hashlib.blake2b(digest_size=16)

    def violation(self, phase: int, where: str, check: str,
                  detail: str) -> None:
        self.violations.append({"phase": phase, "where": where,
                                "check": check, "detail": detail})

    def stamp(self, *chunks: str) -> None:
        for chunk in chunks:
            self._digest.update(chunk.encode())

    @property
    def prune_ratio(self) -> float:
        if not self.candidates:
            return 0.0
        return self.pruned / self.candidates

    def to_dict(self) -> Dict:
        mechanisms = sorted(set().union(*self.signatures)
                            if self.signatures else set())
        passed = (not self.violations and not self.pruned_escapes
                  and self.prune_ratio >= 0.3 and len(mechanisms) >= 3)
        return {
            "seed": self.seed,
            "quick": self.quick,
            "phases": self.phases,
            "workload_ops": self.workload_ops,
            "boundaries": self.boundaries,
            "pruning": {
                "candidates": self.candidates,
                "mounted": self.mounted,
                "pruned": self.pruned,
                "ratio": round(self.prune_ratio, 4),
                "floor": 0.3,
                "verified_sample": self.pruned_verified,
                "escapes": self.pruned_escapes,
            },
            "distinct_states": len(self.distinct_states),
            "evictions": self.evictions,
            "rebuilds": self.rebuilds,
            "crash_cycles": self.crash_cycles,
            "scrubs": self.scrubs,
            "scrub_heals": self.scrub_heals,
            "injected": dict(self.injected),
            "slowed_commands": self.slowed_commands,
            "endurance": self.endurance,
            "oracle_checks": dict(self.oracle_checks),
            "oracle_violations": len(self.violations),
            "violations": self.violations,
            "mechanism_signatures": sorted(
                [sorted(sig) for sig in self.signatures]),
            "mechanisms_exercised": mechanisms,
            "campaign_fingerprint": self._digest.hexdigest(),
            "passed": passed,
            "elapsed_s": round(self.elapsed_s, 2),
        }


# ---------------------------------------------------------------- explorer


class _Campaign:
    def __init__(self, seed: int, quick: bool, progress=None):
        self.seed = seed
        self.quick = quick
        self.progress = progress
        self.report = _Report(seed, quick)
        self.rng = random.Random(seed + 101)
        #: mechanism key -> signature observed for its representative.
        self.explored: Dict[Tuple, FrozenSet[str]] = {}
        self.union: set = set()
        self.num_ops = 70 if quick else 110
        self.snap_every = 90
        self.max_snaps = 6 if quick else 9
        self.budget_per_boundary = 6 if quick else 8
        self.verify_every = 5
        self._pruned_serial = 0

    # -- top level -------------------------------------------------------------

    def run(self) -> Dict:
        began = time.time()
        report = self.report
        sim, volume = _fresh_array(self.seed)
        devices = volume.devices
        self.md_start = volume.num_data_zones
        expect = WorkloadExpectation(volume.num_data_zones,
                                     volume.zone_capacity)
        specs = _phase_specs(self.quick)
        report.phases = len(specs)

        for phase, spec in enumerate(specs):
            if spec.rebuild and volume.failed[EVICT_TARGET]:
                replacement = fresh_replacement(
                    sim, next(d for d in devices if d is not None),
                    name=f"soak-replacement{phase}",
                    seed=self.seed + 900 + phase)
                rebuild(sim, volume, EVICT_TARGET, replacement)
                report.rebuilds += 1

            faults = FaultPlan(
                seed=self.seed * 31 + phase,
                num_data_zones=volume.num_data_zones,
                stripe_unit_bytes=STRIPE_UNIT,
                latent_rate=spec.latent, transient_rate=spec.transient,
                max_latent=3, max_latent_per_device=1,
                wear_victims=spec.wear_victims, wear_after_writes=6)
            slow = SlowPlan(seed=self.seed * 37 + phase,
                            specs=[spec.slow] if spec.slow else [])
            faults.arm(devices)
            slow.arm(devices)
            # Recorder last: its hook chains the fault plan's, so a
            # boundary snapshot sees the k-th completion's injected
            # faults too.  (Pre-chaining, this install order silently
            # disabled latent injection — the composition bug.)
            recorder = CompletionBoundaries(
                devices,
                snapshot_at=range(self.snap_every,
                                  self.snap_every * (self.max_snaps + 1),
                                  self.snap_every),
                aux_state=expect.copy)

            evict_at = self.num_ops // 2 if spec.evict else None
            ops = _phase_ops(self.seed, phase, volume, self.num_ops,
                             evict_at)
            _run_segment(sim, volume, ops, expect, report)
            _drain(sim)

            # LIFO disarm: recorder first (restores the plan's hook),
            # then the fault plan.  The slow plan stays armed through
            # exploration so recovery mounts see the gray failure too.
            recorder.disarm()
            faults.disarm()
            counts = faults.counts.to_dict()
            for key, value in counts.items():
                report.injected[key] = report.injected.get(key, 0) + value

            self._phase_boundary(sim, volume, expect, phase)
            self._explore(sim, devices, recorder, phase)
            if spec.cycle and recorder.snapshots:
                volume, expect = self._crash_cycle(sim, devices, recorder,
                                                   phase)
                devices = volume.devices
            slow.disarm()
            report.slowed_commands += sum(
                slow.counts.slowed_commands.values())
            if self.progress is not None:
                self.progress(report)

        report.endurance = [
            {"device": dev.name, **dev.endurance_report()}
            for dev in devices if dev is not None]
        for entry in report.endurance:
            report.stamp(json.dumps(entry, sort_keys=True))
        report.stamp(array_state_fingerprint(
            [d for d in devices if d is not None]))
        report.elapsed_s = time.time() - began
        return report.to_dict()

    # -- phase pieces ----------------------------------------------------------

    def _phase_boundary(self, sim, volume, expect, phase) -> None:
        """Continuous oracle: check the live, drained array + scrub it."""
        report = self.report
        report.oracle_checks["phase_boundary"] += 1
        for detail in check_recovered_volume(volume, expect):
            report.violation(phase, "live", "phase_boundary", detail)
        for detail in check_persistence_bitmap_soundness(volume):
            report.violation(phase, "live", "phase_boundary", detail)
        # Scrub every boundary: heals this phase's latent errors so the
        # next phase's fresh FaultPlan re-arms onto clean media (its
        # one-error-per-stripe cap only spans its own injections).
        scrub = run_scrub(sim, volume)
        report.scrubs += 1
        report.scrub_heals += scrub.data_heals + scrub.parity_heals

    def _explore(self, sim, devices, recorder, phase) -> None:
        """Prune-and-mount the phase's recorded crash candidates."""
        report = self.report
        live = array_crash_snapshot(devices)
        for boundary in sorted(recorder.snapshots):
            snaps, frozen = recorder.snapshots[boundary]
            report.boundaries += 1
            array_restore_crash_snapshot(devices, snaps)
            spaces = [dev.survivor_state_space() for dev in devices]
            assignments, _product = enumerate_survivor_assignments(
                spaces, self.budget_per_boundary, self.rng)
            for assignment in assignments:
                report.candidates += 1
                key = candidate_mechanism_key(snaps, spaces, assignment,
                                              self.md_start)
                if key in self.explored:
                    report.pruned += 1
                    self._pruned_serial += 1
                    if self._pruned_serial % self.verify_every == 0:
                        self._verify_pruned(sim, devices, snaps,
                                            assignment, frozen, key, phase)
                    continue
                array_restore_crash_snapshot(devices, snaps)
                apply_survivor_assignment(devices, assignment)
                fingerprint = array_state_fingerprint(devices)
                report.distinct_states.add(fingerprint)
                signature = self._mount_and_check(sim, devices, frozen,
                                                  phase)
                self.explored[key] = signature
                self.union |= signature
                report.signatures.add(signature)
                report.stamp(fingerprint, ",".join(sorted(signature)))
        array_restore_crash_snapshot(devices, live)

    def _mount_and_check(self, sim, devices, frozen, phase,
                         check: str = "recovered_volume") -> FrozenSet[str]:
        report = self.report
        report.mounted += 1
        try:
            # failslow_protection is a runtime knob, not superblock
            # state: re-enable it on every recovery mount so hedged
            # reads stay live while the SlowPlan drags a device.
            volume = mount(sim, list(devices), **SOAK_OVERRIDES)
        except ReproError as exc:
            report.violation(phase, "crash_state", check,
                             f"mount failed: {exc!r}")
            return frozenset()
        report.oracle_checks["recovered_volume"] += 1
        for detail in check_recovered_volume(volume, frozen):
            report.violation(phase, "crash_state", check, detail)
        report.oracle_checks["persistence_bitmap"] += 1
        for detail in check_persistence_bitmap_soundness(volume):
            report.violation(phase, "crash_state", check, detail)
        return mechanism_signature(volume)

    def _verify_pruned(self, sim, devices, snaps, assignment, frozen,
                       key, phase) -> None:
        """Mount a sampled pruned state: it must add no new mechanism."""
        report = self.report
        report.pruned_verified += 1
        report.oracle_checks["pruned_verification"] += 1
        array_restore_crash_snapshot(devices, snaps)
        apply_survivor_assignment(devices, assignment)
        signature = self._mount_and_check(sim, devices, frozen, phase,
                                          check="pruned_verification")
        report.mounted -= 1  # verification mounts are accounted separately
        escaped = signature - self.union
        if escaped:
            report.pruned_escapes.append({
                "phase": phase,
                "new_mechanisms": sorted(escaped),
                "representative": sorted(self.explored.get(key, ())),
            })

    def _crash_cycle(self, sim, devices, recorder, phase):
        """Really crash the live array and carry on from the recovery."""
        report = self.report
        boundary = max(recorder.snapshots)
        snaps, frozen = recorder.snapshots[boundary]
        array_restore_crash_snapshot(devices, snaps)
        spaces = [dev.survivor_state_space() for dev in devices]
        assignments, _product = enumerate_survivor_assignments(
            spaces, 3, self.rng)
        apply_survivor_assignment(devices, assignments[-1])
        report.crash_cycles += 1
        report.oracle_checks["crash_cycle"] += 1
        volume = mount(sim, list(devices), **SOAK_OVERRIDES)
        for detail in check_recovered_volume(volume, frozen):
            report.violation(phase, "crash_cycle", "crash_cycle", detail)
        signature = mechanism_signature(volume)
        self.union |= signature
        report.signatures.add(signature)
        report.stamp("cycle", array_state_fingerprint(
            [d for d in volume.devices if d is not None]))
        return volume, _expectation_from_volume(volume)


def run_soaktest(seed: int = 0, quick: bool = False, progress=None) -> Dict:
    """Run the compound-fault soak campaign; returns the report dict."""
    return _Campaign(seed, quick, progress=progress).run()


def write_report(report: Dict, path: str) -> None:
    with open(path, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
