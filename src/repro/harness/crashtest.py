"""Deterministic crash-state explorer for the RAIZN recovery path.

Replaces "run a workload, randomly settle the write caches, hope the bad
interleaving shows up" with systematic coverage in the style of
crash-state enumerators like Silhouette (FAST '25):

1. **Trace** — run a scripted, fully deterministic write/flush/reset
   workload against a freshly formatted array and count every device-level
   bio completion.  Completion boundaries are the instants at which the
   acknowledged-IO set changes, so they index every distinct crash moment
   the workload can distinguish.

2. **Snapshot** — replay the identical workload, capturing a full device
   snapshot (zone tables + written media) plus a frozen copy of the
   workload's durability expectations at a spread of sampled boundaries.
   Nothing is perturbed: snapshots are pure copies.

3. **Enumerate** — for each sampled boundary, enumerate legal survivor
   states (per-zone durable-prefix choices at atomic-write-unit
   granularity), always including the all-min and all-max corners, and
   sample the cross-zone product under a budget.  Each chosen state is
   applied with ``power_fail_to`` — an exact, replayable crash.

4. **Check** — mount each crash state and run the durability oracle:
   FLUSH/FUA-acked bytes intact and content-exact, write pointers inside
   legal bounds, persistence bitmaps sound, remount idempotent.  A
   fraction of states additionally get a *second* crash injected part-way
   through recovery itself; the array must recover from that too.

Run via ``python -m repro crashtest`` or ``python -m repro.harness.cli
crashtest``; emits a JSON coverage report.
"""

from __future__ import annotations

import json
import random
import time
from typing import Dict, List, Optional, Tuple

from ..block.bio import Bio, BioFlags
from ..errors import PowerLossError, ReproError
from ..faults.crashpoints import (
    CompletionBoundaries,
    apply_survivor_assignment,
    array_restore_crash_snapshot,
    array_state_fingerprint,
    enumerate_survivor_assignments,
)
from ..faults.oracle import (
    WorkloadExpectation,
    check_mount_stability,
    check_persistence_bitmap_soundness,
    check_recovered_volume,
)
from ..faults.powerloss import CrashPoint
from ..raizn.config import RaiznConfig
from ..raizn.recovery import mount
from ..raizn.volume import RaiznVolume
from ..sim import Simulator
from ..units import KiB, MiB
from ..zns.device import ZNSDevice

#: Array geometry: small enough that a single crash state mounts in
#: milliseconds, rich enough for multi-zone / metadata-GC interleavings.
NUM_DEVICES = 5
NUM_ZONES = 12
ZONE_CAPACITY = 1 * MiB
STRIPE_UNIT = 64 * KiB
#: The workload touches this many logical zones.
WORKLOAD_ZONES = 3
#: Fixed array UUID so every replay produces byte-identical media.
ARRAY_UUID = bytes(range(16))

_WRITE_SIZES = (4 * KiB, 12 * KiB, 64 * KiB, 128 * KiB, 192 * KiB,
                256 * KiB)


class ScriptedWorkload:
    """A pre-generated, replayable op sequence with known expectations.

    Ops are fixed at construction — sizes, payloads, flags, and target
    LBAs are all derived from ``seed`` — so the trace pass, the snapshot
    pass, and any debugging rerun execute the exact same submissions.
    """

    def __init__(self, seed: int, num_ops: int,
                 zone_capacity: int, num_zones: int = WORKLOAD_ZONES):
        self.seed = seed
        self.num_zones = num_zones
        self.zone_capacity = zone_capacity
        rng = random.Random(seed)
        #: (kind, zone, lba, data, flags) tuples; lba/data are None for
        #: non-write ops.
        self.ops: List[Tuple[str, int, Optional[int], Optional[bytes],
                             BioFlags]] = []
        frontier = [0] * num_zones
        for index in range(num_ops):
            zone = rng.randrange(num_zones)
            roll = rng.random()
            if roll < 0.12:
                self.ops.append(("flush", 0, None, None, BioFlags.NONE))
                continue
            if roll < 0.18 and frontier[zone] > 0:
                self.ops.append(("reset", zone, None, None, BioFlags.NONE))
                frontier[zone] = 0
                continue
            nbytes = rng.choice(_WRITE_SIZES)
            if frontier[zone] + nbytes > zone_capacity:
                # The zone is nearly full; recycle it instead (scripted,
                # so every replay makes the same choice).
                self.ops.append(("reset", zone, None, None, BioFlags.NONE))
                frontier[zone] = 0
            flag_roll = rng.random()
            if flag_roll < 0.15:
                flags = BioFlags.FUA | BioFlags.PREFLUSH
            elif flag_roll < 0.30:
                flags = BioFlags.FUA
            else:
                flags = BioFlags.NONE
            data = random.Random(seed * 1000003 + index).randbytes(nbytes)
            lba = zone * zone_capacity + frontier[zone]
            self.ops.append(("write", zone, lba, data, flags))
            frontier[zone] += nbytes

    def run(self, volume: RaiznVolume, expect: WorkloadExpectation):
        """Process-style driver; updates ``expect`` at submit/ack time."""
        for kind, zone, lba, data, flags in self.ops:
            if kind == "write":
                expect.note_submit_write(zone, data)
                yield volume.submit(Bio.write(lba, data, flags))
                expect.note_write_acked(zone, fua=bool(flags & BioFlags.FUA))
            elif kind == "flush":
                yield volume.submit(Bio.flush())
                expect.note_flush_acked()
            else:
                expect.note_submit_reset(zone)
                yield volume.submit(Bio.zone_reset(zone * self.zone_capacity))
                expect.note_reset_acked(zone)


def _fresh_array(seed: int):
    """A formatted array in a fresh simulator (identical on every call)."""
    sim = Simulator()
    devices = [ZNSDevice(sim, name=f"zns{i}", num_zones=NUM_ZONES,
                         zone_capacity=ZONE_CAPACITY, seed=seed + i)
               for i in range(NUM_DEVICES)]
    config = RaiznConfig(num_data=NUM_DEVICES - 1,
                         stripe_unit_bytes=STRIPE_UNIT)
    volume = RaiznVolume.create(sim, devices, config, array_uuid=ARRAY_UUID)
    return sim, devices, volume


def _drain(sim: Simulator) -> None:
    """Run the event loop dry, absorbing power-loss process deaths."""
    while True:
        try:
            sim.run()
            return
        except PowerLossError:
            continue


class _Report:
    """Mutable counters the explorer fills in; serializes to JSON."""

    def __init__(self, seed: int):
        self.seed = seed
        self.workload_ops = 0
        self.completion_boundaries = 0
        self.boundaries_sampled = 0
        self.survivor_product_total = 0
        self.states_explored = 0
        self.distinct_states: set = set()
        #: (fingerprint, expectation summary) pairs already oracle-checked.
        #: The expectation matters: the same settled state reached at two
        #: boundaries can carry different acked frontiers, and only the
        #: stronger one may expose a lost-acked-byte violation.
        self.checked_keys: set = set()
        self.double_crash_states = 0
        self.double_crash_fired = 0
        self.oracle_checks = {
            "recovered_volume": 0,
            "persistence_bitmap": 0,
            "mount_stability": 0,
            "double_crash_recovery": 0,
        }
        self.violations: List[Dict] = []
        self.elapsed_s = 0.0

    def violation(self, boundary: int, state: str, check: str,
                  detail: str) -> None:
        self.violations.append({
            "boundary": boundary,
            "state": state,
            "check": check,
            "detail": detail,
        })

    def to_dict(self) -> Dict:
        return {
            "seed": self.seed,
            "workload_ops": self.workload_ops,
            "completion_boundaries": self.completion_boundaries,
            "boundaries_sampled": self.boundaries_sampled,
            "survivor_product_total": self.survivor_product_total,
            "states_explored": self.states_explored,
            "distinct_states": len(self.distinct_states),
            "double_crash_states": self.double_crash_states,
            "double_crash_fired": self.double_crash_fired,
            "oracle_checks": dict(self.oracle_checks),
            "violations": self.violations,
            "passed": not self.violations,
            "elapsed_s": round(self.elapsed_s, 2),
        }


def explore(seed: int = 0, num_ops: int = 90, boundaries: int = 60,
            budget_per_boundary: int = 12, double_crash_every: int = 8,
            batch_size: int = 12, progress=None,
            trace_out: Optional[str] = None) -> Dict:
    """Run the full crash-state exploration; returns the report dict.

    ``boundaries`` completion boundaries are sampled evenly from the
    trace; each contributes up to ``budget_per_boundary`` survivor
    states.  Every ``double_crash_every``-th explored state additionally
    gets a crash injected during its recovery.  ``batch_size`` bounds how
    many boundary snapshots are held in memory at once (each batch costs
    one extra workload replay).  ``trace_out`` traces the pass-1
    workload replay (the reference run every crash state is carved
    from) and dumps its spans there as JSONL.
    """
    began = time.time()
    report = _Report(seed)
    workload = ScriptedWorkload(seed, num_ops, zone_capacity=ZONE_CAPACITY
                                * (NUM_DEVICES - 1))
    report.workload_ops = len(workload.ops)

    # Pass 1: count completion boundaries.
    sim, devices, volume = _fresh_array(seed)
    if trace_out:
        from ..trace import Tracer
        volume.attach_tracer(Tracer(sim))
    counter = CompletionBoundaries(devices)
    expect = WorkloadExpectation(volume.num_data_zones,
                                 volume.zone_capacity)
    sim.run_process(workload.run(volume, expect))
    counter.disarm()
    total = counter.count
    report.completion_boundaries = total
    if trace_out:
        from .tracecli import dump_spans
        dump_spans(volume, trace_out)

    sampled = sorted({max(1, round((i + 1) * total / boundaries))
                      for i in range(min(boundaries, total))})
    report.boundaries_sampled = len(sampled)
    rng = random.Random(seed + 1)
    state_serial = 0

    for batch_start in range(0, len(sampled), batch_size):
        batch = sampled[batch_start:batch_start + batch_size]
        # Pass 2 (per batch): identical replay, snapshotting this batch's
        # boundaries.  One replay per batch bounds snapshot memory.
        sim, devices, volume = _fresh_array(seed)
        expect = WorkloadExpectation(volume.num_data_zones,
                                     volume.zone_capacity)
        recorder = CompletionBoundaries(devices, snapshot_at=batch,
                                        aux_state=expect.copy)
        sim.run_process(workload.run(volume, expect))
        recorder.disarm()

        for boundary in batch:
            snaps, frozen = recorder.snapshots[boundary]
            array_restore_crash_snapshot(devices, snaps)
            spaces = [dev.survivor_state_space() for dev in devices]
            assignments, product = enumerate_survivor_assignments(
                spaces, budget_per_boundary, rng)
            report.survivor_product_total += product
            expect_key = tuple(
                (zone.synced, len(zone.submitted), zone.resetting)
                for zone in frozen.zones)
            for assignment in assignments:
                array_restore_crash_snapshot(devices, snaps)
                apply_survivor_assignment(devices, assignment)
                fingerprint = array_state_fingerprint(devices)
                state_serial += 1
                report.states_explored += 1
                report.distinct_states.add(fingerprint)
                check_key = (fingerprint, expect_key)
                double = state_serial % double_crash_every == 0
                if check_key not in report.checked_keys:
                    report.checked_keys.add(check_key)
                    _check_state(sim, devices, frozen, boundary,
                                 fingerprint, report)
                if double:
                    _check_double_crash(sim, devices, snaps, assignment,
                                        frozen, boundary, fingerprint,
                                        state_serial, seed, report)
            if progress is not None:
                progress(report)

    report.elapsed_s = time.time() - began
    return report.to_dict()


def _check_state(sim, devices, expect, boundary, fingerprint,
                 report) -> None:
    """Mount one crash state and run the single-crash oracle."""
    try:
        volume = mount(sim, list(devices))
    except ReproError as exc:
        report.violation(boundary, fingerprint, "mount",
                         f"mount failed: {exc!r}")
        return
    report.oracle_checks["recovered_volume"] += 1
    for detail in check_recovered_volume(volume, expect):
        report.violation(boundary, fingerprint, "recovered_volume", detail)
    report.oracle_checks["persistence_bitmap"] += 1
    for detail in check_persistence_bitmap_soundness(volume):
        report.violation(boundary, fingerprint, "persistence_bitmap", detail)
    try:
        remounted = mount(sim, list(devices))
    except ReproError as exc:
        report.violation(boundary, fingerprint, "mount_stability",
                         f"remount failed: {exc!r}")
        return
    report.oracle_checks["mount_stability"] += 1
    for detail in check_mount_stability(volume, remounted):
        report.violation(boundary, fingerprint, "mount_stability", detail)


def _count_recovery_commands(sim, devices) -> int:
    """How many device commands a clean recovery of this state issues.

    Needed so the second crash can be placed anywhere in the *whole*
    recovery — naive small depths only ever hit the superblock scan and
    never reach hole repair or metadata compaction.
    """
    counts = [0]
    saved = []
    for dev in devices:
        prev = dev.pre_apply_hook

        def tally(device, bio, _chained=prev) -> None:
            if _chained is not None:
                _chained(device, bio)
            counts[0] += 1
        saved.append((dev, prev, tally))
        dev.pre_apply_hook = tally
    try:
        mount(sim, list(devices))
    except ReproError:
        pass  # an unmountable state is reported by _check_state
    finally:
        for dev, prev, tally in saved:
            if dev.pre_apply_hook is tally:
                dev.pre_apply_hook = prev
    return counts[0]


def _check_double_crash(sim, devices, snaps, assignment, expect, boundary,
                        fingerprint, state_serial, seed, report) -> None:
    """Crash again *during* recovery, then demand a clean final mount."""
    report.double_crash_states += 1
    rng = random.Random(seed * 1000003 + state_serial)
    array_restore_crash_snapshot(devices, snaps)
    apply_survivor_assignment(devices, assignment)
    commands = _count_recovery_commands(sim, devices)
    array_restore_crash_snapshot(devices, snaps)
    apply_survivor_assignment(devices, assignment)
    crash = CrashPoint(devices, after=1 + rng.randrange(max(1, commands)),
                       rng=rng)
    try:
        mount(sim, list(devices))
    except PowerLossError:
        pass
    except ReproError as exc:
        crash.disarm()
        report.violation(boundary, fingerprint, "double_crash_recovery",
                         f"first recovery died non-crash: {exc!r}")
        return
    _drain(sim)
    crash.disarm()
    if crash.fired:
        report.double_crash_fired += 1
    for dev in devices:
        dev.power_on()
    try:
        final = mount(sim, list(devices))
    except ReproError as exc:
        report.violation(boundary, fingerprint, "double_crash_recovery",
                         f"mount after double crash failed: {exc!r}")
        return
    report.oracle_checks["double_crash_recovery"] += 1
    for detail in check_recovered_volume(final, expect):
        report.violation(boundary, fingerprint, "double_crash_recovery",
                         detail)


def write_report(report: Dict, path: str) -> None:
    with open(path, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
