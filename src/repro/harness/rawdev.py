"""Raw-device microbenchmark (paper §6.1 opening measurement).

The paper measures single-device throughput first: the ZNS SSD sustains
1052 MiB/s writes and 3265 MiB/s reads — 2% and 4% lower respectively
than the conventional SSD on the same platform.  This driver reproduces
the measurement on the simulated devices, exercising the calibrated
service-time model end to end.
"""

from __future__ import annotations

import dataclasses
from typing import Dict

from ..conv.device import ConventionalSSD
from ..sim import Simulator
from ..units import MiB
from ..workloads.fio import FioJobSpec, run_fio
from ..zns.device import ZNSDevice


@dataclasses.dataclass
class RawDeviceResult:
    """Measured single-device throughput in MiB/s."""

    zns_write: float
    zns_read: float
    conv_write: float
    conv_read: float

    @property
    def write_gap(self) -> float:
        """ZNS write shortfall vs conventional (paper: ~2%)."""
        return 1.0 - self.zns_write / self.conv_write

    @property
    def read_gap(self) -> float:
        """ZNS read shortfall vs conventional (paper: ~4%)."""
        return 1.0 - self.zns_read / self.conv_read


def measure_raw_devices(num_zones: int = 32,
                        zone_capacity: int = 4 * MiB,
                        block_size: int = 1 * MiB,
                        seed: int = 0) -> RawDeviceResult:
    """Sequential write then sequential read on each device type."""
    results: Dict[str, float] = {}

    sim = Simulator()
    zns = ZNSDevice(sim, num_zones=num_zones, zone_capacity=zone_capacity,
                    seed=seed)
    size = num_zones * zone_capacity // 2
    spec = FioJobSpec(rw="write", block_size=block_size, iodepth=16,
                      numjobs=8, size_per_job=size // 8,
                      region=(0, size), align=zone_capacity, seed=seed)
    results["zns_write"] = run_fio(sim, zns, spec).throughput_mib_s
    spec = dataclasses.replace(spec, rw="read")
    results["zns_read"] = run_fio(sim, zns, spec).throughput_mib_s

    sim = Simulator()
    conv = ConventionalSSD(sim, capacity_bytes=num_zones * zone_capacity,
                           seed=seed)
    spec = FioJobSpec(rw="write", block_size=block_size, iodepth=16,
                      numjobs=8, size_per_job=size // 8,
                      region=(0, size), seed=seed)
    results["conv_write"] = run_fio(sim, conv, spec).throughput_mib_s
    spec = dataclasses.replace(spec, rw="read")
    results["conv_read"] = run_fio(sim, conv, spec).throughput_mib_s

    return RawDeviceResult(**results)
