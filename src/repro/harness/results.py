"""Result tables and series formatting shared by all experiment drivers."""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Sequence, Tuple


def format_table(headers: Sequence[str],
                 rows: Sequence[Sequence[object]]) -> str:
    """Fixed-width text table, right-aligned numbers."""
    cells = [[str(h) for h in headers]]
    for row in rows:
        cells.append([_fmt(value) for value in row])
    widths = [max(len(row[col]) for row in cells)
              for col in range(len(headers))]
    lines = []
    for i, row in enumerate(cells):
        lines.append("  ".join(cell.rjust(width)
                               for cell, width in zip(row, widths)))
        if i == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 100:
            return f"{value:.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    return str(value)


@dataclasses.dataclass
class Series:
    """One labelled (x, y) series of an experiment figure."""

    label: str
    points: List[Tuple[float, float]]

    def smoothed(self, window: int = 5) -> "Series":
        """Centered moving average, for noisy timeseries plots."""
        if window <= 1 or len(self.points) < window:
            return self
        xs = [p[0] for p in self.points]
        ys = [p[1] for p in self.points]
        half = window // 2
        smoothed = []
        for i in range(len(ys)):
            lo, hi = max(0, i - half), min(len(ys), i + half + 1)
            smoothed.append((xs[i], sum(ys[lo:hi]) / (hi - lo)))
        return Series(self.label, smoothed)

    def downsample(self, buckets: int) -> "Series":
        """Average into at most ``buckets`` evenly sized groups."""
        if len(self.points) <= buckets:
            return self
        size = len(self.points) / buckets
        out = []
        for b in range(buckets):
            lo, hi = int(b * size), max(int((b + 1) * size), int(b * size) + 1)
            chunk = self.points[lo:hi]
            out.append((chunk[0][0], sum(y for _, y in chunk) / len(chunk)))
        return Series(self.label, out)


def format_series_table(series_list: Sequence[Series], xlabel: str,
                        ylabel: str, buckets: int = 20) -> str:
    """Aligned multi-series table (one row per x, one column per series)."""
    sampled = [s.downsample(buckets) for s in series_list]
    headers = [xlabel] + [f"{s.label} ({ylabel})" for s in sampled]
    longest = max(sampled, key=lambda s: len(s.points))
    rows = []
    for i, (x, _y) in enumerate(longest.points):
        row: List[object] = [f"{x:.2f}"]
        for s in sampled:
            row.append(s.points[i][1] if i < len(s.points) else "")
        rows.append(row)
    return format_table(headers, rows)


def normalize(values: Dict[str, float], baseline_key: str) -> Dict[str, float]:
    """Each value divided by the baseline's (Figure 13's normalization)."""
    base = values[baseline_key]
    if base == 0:
        raise ValueError("baseline value is zero")
    return {key: value / base for key, value in values.items()}
