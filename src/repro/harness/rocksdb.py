"""Figure 13: RocksDB (db_bench) on F2FS on RAIZN vs mdraid (paper §6.3).

Runs fillseq, fillrandom, overwrite, and readwhilewriting at the two
value sizes Figure 13 plots (4000 and 8000 bytes).  After fillseq the
database is reset; the other three run in succession on a shared
database, matching the paper's methodology.  Results are reported both
raw and normalized to mdraid, as in the figure.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Sequence

from ..apps.dbbench import DbBenchResult, db_bench
from ..apps.f2fs import F2FS
from ..apps.lsm import LSMTree
from ..sim import Simulator
from ..units import MiB
from .arrays import DEFAULT, ArrayScale, make_mdraid, make_raizn

WORKLOADS = ("fillseq", "fillrandom", "overwrite", "readwhilewriting")


@dataclasses.dataclass
class RocksdbCell:
    """One (system, workload, value size) measurement."""

    system: str
    workload: str
    value_size: int
    ops_per_second: float
    p99_latency: float


def _make_stack(kind: str, scale: ArrayScale, seed: int):
    sim = Simulator()
    if kind == "raizn":
        volume, _devices = make_raizn(sim, scale, seed=seed)
    else:
        volume, _devices = make_mdraid(sim, scale, seed=seed)
    fs = F2FS(sim, volume)
    lsm = LSMTree(sim, fs, memtable_bytes=1 * MiB, level_base_bytes=8 * MiB)
    return sim, lsm


def run_rocksdb(kind: str, value_size: int, num_ops: int,
                scale: ArrayScale = DEFAULT,
                workloads: Sequence[str] = WORKLOADS,
                seed: int = 0) -> List[RocksdbCell]:
    """The Figure 13 suite for one system and value size."""
    cells = []
    # fillseq runs on a fresh database, then the array is reset and the
    # remaining workloads run in succession (paper §6.3).
    if "fillseq" in workloads:
        sim, lsm = _make_stack(kind, scale, seed)
        result = db_bench(sim, lsm, "fillseq", num_ops=num_ops,
                          value_size=value_size, seed=seed)
        cells.append(_cell(kind, result, value_size))
    remaining = [w for w in workloads if w != "fillseq"]
    if remaining:
        sim, lsm = _make_stack(kind, scale, seed + 1)
        # Populate the keyspace first so overwrite/readwhilewriting have
        # existing data, as fillrandom does in the paper's sequence.
        for workload in remaining:
            result = db_bench(sim, lsm, workload, num_ops=num_ops,
                              value_size=value_size, key_space=num_ops,
                              seed=seed)
            cells.append(_cell(kind, result, value_size))
    return cells


def _cell(kind: str, result: DbBenchResult, value_size: int) -> RocksdbCell:
    latency = (result.read_latency if result.workload == "readwhilewriting"
               else result.write_latency)
    return RocksdbCell(system=kind, workload=result.workload,
                       value_size=value_size,
                       ops_per_second=result.ops_per_second,
                       p99_latency=latency.p99)


def rocksdb_comparison(value_sizes: Sequence[int] = (4000, 8000),
                       num_ops: int = 3000, scale: ArrayScale = DEFAULT,
                       seed: int = 0) -> List[RocksdbCell]:
    """Both systems at both value sizes (the full Figure 13)."""
    cells = []
    for value_size in value_sizes:
        for kind in ("mdraid", "raizn"):
            cells.extend(run_rocksdb(kind, value_size, num_ops, scale,
                                     seed=seed))
    return cells


def normalized_to_mdraid(cells: List[RocksdbCell]) -> Dict[str, Dict[str, float]]:
    """RAIZN/mdraid ratios per (workload, value size), as Figure 13 plots.

    Returns ``{"throughput": {...}, "p99": {...}}`` keyed by
    ``"{workload}/{value_size}"``.
    """
    ratios: Dict[str, Dict[str, float]] = {"throughput": {}, "p99": {}}
    by_key: Dict[tuple, Dict[str, RocksdbCell]] = {}
    for cell in cells:
        by_key.setdefault((cell.workload, cell.value_size), {})[
            cell.system] = cell
    for (workload, value_size), pair in sorted(by_key.items()):
        if "raizn" not in pair or "mdraid" not in pair:
            continue
        key = f"{workload}/{value_size}"
        ratios["throughput"][key] = (pair["raizn"].ops_per_second
                                     / pair["mdraid"].ops_per_second)
        ratios["p99"][key] = (pair["raizn"].p99_latency
                              / pair["mdraid"].p99_latency)
    return ratios
