"""Experiment harness: one driver per table/figure of the paper.

| Paper artifact | Driver |
|---|---|
| Table 1 (metadata sizes) | :mod:`repro.harness.table1` |
| Figure 7 (mdraid stripe-unit sweep) | :func:`stripe_unit_sweep` |
| Figure 8 (RAIZN stripe-unit sweep) | :func:`stripe_unit_sweep` |
| Figure 9 (RAIZN vs mdraid microbench) | :func:`raizn_vs_mdraid` |
| Figure 10 (GC timeseries) | :func:`run_gc_timeseries` |
| Figure 11 (degraded reads) | :func:`degraded_sweep` |
| Figure 12 (time to repair) | :func:`ttr_sweep` |
| Figure 13 (RocksDB) | :func:`rocksdb_comparison` |
| Figure 14 (sysbench) | :func:`sysbench_comparison` |
| §6.1 raw device numbers | :func:`measure_raw_devices` |
"""

from .arrays import DEFAULT, LARGE, SMALL, ArrayScale, make_mdraid, make_raizn
from .degraded import degraded_sweep, run_degraded
from .gc_timeseries import (
    GcTimeseriesResult,
    run_gc_timeseries,
    throughput_vs_progress,
)
from .microbench import (
    MicrobenchPoint,
    PAPER_BLOCK_SIZES,
    points_table,
    raizn_vs_mdraid,
    run_microbench,
    stripe_unit_sweep,
)
from .rawdev import RawDeviceResult, measure_raw_devices
from .rebuild import TtrPoint, mdraid_ttr, raizn_ttr, ttr_sweep
from .results import Series, format_series_table, format_table, normalize
from .rocksdb import (
    RocksdbCell,
    normalized_to_mdraid,
    rocksdb_comparison,
    run_rocksdb,
)
from .sysbench import SysbenchCell, run_sysbench, sysbench_comparison
from .table1 import Table1Row, measured_entry_sizes, table1_rows

__all__ = [
    "ArrayScale",
    "DEFAULT",
    "SMALL",
    "LARGE",
    "make_mdraid",
    "make_raizn",
    "degraded_sweep",
    "run_degraded",
    "GcTimeseriesResult",
    "run_gc_timeseries",
    "throughput_vs_progress",
    "MicrobenchPoint",
    "PAPER_BLOCK_SIZES",
    "points_table",
    "raizn_vs_mdraid",
    "run_microbench",
    "stripe_unit_sweep",
    "RawDeviceResult",
    "measure_raw_devices",
    "TtrPoint",
    "mdraid_ttr",
    "raizn_ttr",
    "ttr_sweep",
    "Series",
    "format_series_table",
    "format_table",
    "normalize",
    "RocksdbCell",
    "normalized_to_mdraid",
    "rocksdb_comparison",
    "run_rocksdb",
    "SysbenchCell",
    "run_sysbench",
    "sysbench_comparison",
    "Table1Row",
    "measured_entry_sizes",
    "table1_rows",
]
