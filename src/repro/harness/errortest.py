"""Seeded storage-error campaign + end-to-end integrity oracle.

Answers the question the self-healing datapath exists for: *after
hundreds of injected media, transient, and wear-out faults, is every
byte the array ever acknowledged still exactly what was written?*

The campaign runs four phases against one small array:

1. **Fault workload** — a scripted write/read/flush/reset workload runs
   with a :class:`~repro.faults.errinject.FaultPlan` armed: latent (UNC)
   errors corrupt just-written media, transient command failures hit a
   fraction of submissions, and victim zones wear out to READ_ONLY /
   OFFLINE mid-write.  Mid-campaign reads exercise retry and read-repair
   under foreground load.
2. **Scrub** — a full background-scrub pass walks every written stripe,
   healing latent data errors and re-establishing mismatched parity.
3. **Verify** — every acknowledged byte of every zone is read back and
   compared against the workload's expected image; any mismatch is an
   integrity violation (and, en passant, the reads heal whatever the
   scrub did not reach).
4. **Eviction + rebuild** — one device is driven over the volume's
   error threshold with targeted command failures until the volume
   evicts it into degraded mode; the full image is verified degraded,
   the device is rebuilt onto a fresh replacement, and verified again.

A companion **detection-power** run repeats a small campaign with
``read_repair`` disabled and asserts the oracle *does* catch the
resulting corruption — evidence that "0 violations" in the main
campaign is a property of the healing datapath, not of a blind oracle.

Run via ``python -m repro errortest [--smoke]``; emits a JSON report.
Fixed seed ⇒ bit-identical report (minus wall-clock timing).
"""

from __future__ import annotations

import json
import random
import time
from typing import Dict, List, Optional, Tuple

from ..block.bio import Bio, BioFlags
from ..faults.devicefail import fresh_replacement
from ..faults.errinject import FaultPlan
from ..raizn.config import RaiznConfig
from ..raizn.maintenance import run_scrub
from ..raizn.rebuild import rebuild
from ..raizn.volume import RaiznVolume
from ..sim import Simulator
from ..units import KiB, MiB
from ..zns.device import ZNSDevice

#: Array geometry (same scale as the crashtest explorer).
NUM_DEVICES = 5
NUM_ZONES = 12
ZONE_CAPACITY = 1 * MiB
STRIPE_UNIT = 64 * KiB
WORKLOAD_ZONES = 3
ARRAY_UUID = bytes(range(16))

_WRITE_SIZES = (4 * KiB, 16 * KiB, 64 * KiB, 128 * KiB, 192 * KiB,
                256 * KiB)
#: Device evicted in the eviction phase.
EVICT_TARGET = 1


class _ZoneModel:
    """Expected contents of one logical zone (what the array acked)."""

    def __init__(self) -> None:
        self.data = bytearray()

    def write(self, payload: bytes) -> None:
        self.data.extend(payload)

    def reset(self) -> None:
        self.data = bytearray()


class CampaignReport:
    """Mutable campaign counters; serializes to JSON."""

    def __init__(self, seed: int, smoke: bool, read_repair: bool):
        self.seed = seed
        self.smoke = smoke
        self.read_repair = read_repair
        self.workload_ops = 0
        self.midstream_reads = 0
        self.injected: Dict = {}
        self.health: Dict = {}
        self.scrub: Dict = {}
        self.verify_passes: List[Dict] = []
        self.eviction: Dict = {}
        self.rebuild: Dict = {}
        self.corruptions = 0
        self.violations: List[Dict] = []
        self.elapsed_s = 0.0

    def corruption(self, phase: str, zone: int, offset: int,
                   length: int) -> None:
        self.corruptions += 1
        if len(self.violations) < 20:
            self.violations.append({
                "phase": phase,
                "zone": zone,
                "offset": offset,
                "length": length,
            })

    def to_dict(self) -> Dict:
        return {
            "seed": self.seed,
            "smoke": self.smoke,
            "read_repair": self.read_repair,
            "workload_ops": self.workload_ops,
            "midstream_reads": self.midstream_reads,
            "injected": self.injected,
            "health": self.health,
            "scrub": self.scrub,
            "verify_passes": self.verify_passes,
            "eviction": self.eviction,
            "rebuild": self.rebuild,
            "corruptions": self.corruptions,
            "violations": self.violations,
            "passed": self.corruptions == 0 and not self.violations,
            "elapsed_s": round(self.elapsed_s, 2),
        }


def _fresh_array(seed: int, read_repair: bool, error_threshold: int):
    sim = Simulator()
    devices = [ZNSDevice(sim, name=f"zns{i}", num_zones=NUM_ZONES,
                         zone_capacity=ZONE_CAPACITY, seed=seed + i)
               for i in range(NUM_DEVICES)]
    # Extra metadata zones: heal relocation entries are stripe-unit
    # sized, so the GENERAL log rotates far more often than under a
    # fault-free workload, and its checkpoint can spill past one zone
    # (a worn-out zone's worth of relocated SUs exceeds one metadata
    # zone).  Five zones sustain a two-zone checkpoint at steady state:
    # role + spill live while two fresh swap zones stay in the pool.
    config = RaiznConfig(num_data=NUM_DEVICES - 1,
                         stripe_unit_bytes=STRIPE_UNIT,
                         num_metadata_zones=5,
                         max_transient_retries=4,
                         device_error_threshold=error_threshold,
                         read_repair=read_repair)
    volume = RaiznVolume.create(sim, devices, config, array_uuid=ARRAY_UUID)
    return sim, devices, volume


def _script_ops(seed: int, num_ops: int, zone_capacity: int,
                allow_resets: bool = True):
    """Deterministic op script: (kind, zone, size_or_none, flags)."""
    rng = random.Random(seed)
    ops: List[Tuple[str, int, Optional[int], BioFlags]] = []
    frontier = [0] * WORKLOAD_ZONES
    for _ in range(num_ops):
        zone = rng.randrange(WORKLOAD_ZONES)
        roll = rng.random()
        if roll < 0.08:
            ops.append(("flush", 0, None, BioFlags.NONE))
            continue
        if roll < 0.30 and frontier[zone] > 0:
            ops.append(("read", zone, None, BioFlags.NONE))
            continue
        if roll < 0.33 and allow_resets and frontier[zone] > 0:
            ops.append(("reset", zone, None, BioFlags.NONE))
            frontier[zone] = 0
            continue
        nbytes = rng.choice(_WRITE_SIZES)
        if frontier[zone] + nbytes > zone_capacity:
            ops.append(("reset", zone, None, BioFlags.NONE))
            frontier[zone] = 0
        flag_roll = rng.random()
        if flag_roll < 0.15:
            flags = BioFlags.FUA | BioFlags.PREFLUSH
        elif flag_roll < 0.30:
            flags = BioFlags.FUA
        else:
            flags = BioFlags.NONE
        ops.append(("write", zone, nbytes, flags))
        frontier[zone] += nbytes
    return ops


def _drive(sim: Simulator, volume: RaiznVolume, ops, seed: int,
           model: List[_ZoneModel], report: CampaignReport):
    """Process-style workload driver with inline read verification."""
    rng = random.Random(seed + 17)
    zone_capacity = volume.zone_capacity
    for op_index, (kind, zone, size, flags) in enumerate(ops):
        base = zone * zone_capacity
        if kind == "write":
            data = random.Random(seed * 1000003 + op_index).randbytes(size)
            lba = base + len(model[zone].data)
            yield volume.submit(Bio.write(lba, data, flags))
            model[zone].write(data)
        elif kind == "flush":
            yield volume.submit(Bio.flush())
        elif kind == "reset":
            yield volume.submit(Bio.zone_reset(base))
            model[zone].reset()
        else:  # read
            frontier = len(model[zone].data)
            if frontier < 4 * KiB:
                continue
            offset = rng.randrange(0, frontier // (4 * KiB)) * (4 * KiB)
            length = min(frontier - offset,
                         (1 + rng.randrange(16)) * (4 * KiB))
            bio = yield volume.submit(Bio.read(base + offset, length))
            report.midstream_reads += 1
            if bio.result != bytes(model[zone].data[offset:offset + length]):
                report.corruption("workload", zone, offset, length)


def _verify(sim: Simulator, volume: RaiznVolume, model: List[_ZoneModel],
            report: CampaignReport, label: str):
    """Read back every acked byte of every zone and compare (process)."""
    chunk = volume.config.stripe_width_bytes
    verified = 0
    corruptions_before = report.corruptions
    for zone in range(WORKLOAD_ZONES):
        expected = model[zone].data
        base = zone * volume.zone_capacity
        offset = 0
        while offset < len(expected):
            length = min(chunk, len(expected) - offset)
            bio = yield volume.submit(Bio.read(base + offset, length))
            if bio.result != bytes(expected[offset:offset + length]):
                report.corruption(label, zone, offset, length)
            verified += length
            offset += length
    report.verify_passes.append({
        "label": label,
        "bytes": verified,
        "corruptions": report.corruptions - corruptions_before,
    })


def _evict_phase(sim: Simulator, volume: RaiznVolume, plan: FaultPlan,
                 model: List[_ZoneModel], report: CampaignReport):
    """Drive EVICT_TARGET over the error threshold with targeted faults.

    Every submission to the target fails transiently, so each read of
    one of its stripe units exhausts the retry budget, charges one
    error, and is served from redundancy — correct data throughout,
    until the threshold trips and the volume evicts the device.
    """
    target = EVICT_TARGET
    su = volume.config.stripe_unit_bytes
    width = volume.config.stripe_width_bytes
    # Stage fresh stripes in a zone the fault workload never touched:
    # reads there are guaranteed to reach the target device rather than
    # a relocated copy healed earlier in the campaign.  All injection is
    # paused while staging so the zone stays pristine.
    plan.latent_rate = 0.0
    plan.transient_rate = 0.0
    plan.transient_targets = None
    zone = WORKLOAD_ZONES
    stage = random.Random(report.seed * 7919 + 17)
    stripe = 0
    while target not in volume.mapper.stripe_layout(
            zone, stripe).data_devices:
        stripe += 1
    payload = [stage.randbytes(width) for _ in range(stripe + 1)]
    for index, data in enumerate(payload):
        yield volume.submit(
            Bio.write(zone * volume.zone_capacity + index * width, data))
    yield volume.submit(Bio.flush())
    layout = volume.mapper.stripe_layout(zone, stripe)
    i = layout.data_devices.index(target)
    offset = stripe * width + i * su
    expected = payload[stripe][i * su:(i + 1) * su]
    # Every submission to the target now fails transiently, so each read
    # of its stripe unit exhausts the retry budget, charges one error,
    # and is served from redundancy — correct data throughout, until the
    # threshold trips and the volume evicts the device.  The degraded
    # serve does not relocate, so re-reading the same unit keeps hitting
    # the device.
    plan.transient_rate = 1.0
    plan.transient_targets = {target}
    reads = 0
    safety = 4 * volume.config.device_error_threshold
    while not volume.failed[target] and reads < safety:
        bio = yield volume.submit(
            Bio.read(zone * volume.zone_capacity + offset, su))
        reads += 1
        if bio.result != expected:
            report.corruption("evict", zone, offset, su)
    plan.transient_rate = 0.0
    plan.transient_targets = None
    report.eviction = {
        "target": target,
        "evicted": bool(volume.failed[target]),
        "reads": reads,
    }


def run_campaign(seed: int = 0, smoke: bool = False,
                 read_repair: bool = True,
                 with_eviction: bool = True,
                 allow_resets: bool = True,
                 trace_out: Optional[str] = None) -> CampaignReport:
    """One full error campaign; returns the filled-in report."""
    report = CampaignReport(seed, smoke, read_repair)
    num_ops = 80 if smoke else 160
    threshold = 15 if smoke else 40
    sim, devices, volume = _fresh_array(seed, read_repair, threshold)
    if trace_out:
        from ..trace import Tracer
        volume.attach_tracer(Tracer(sim))
    rng = random.Random(seed + 5)
    victim_devices = rng.sample(range(NUM_DEVICES), 2 if smoke else 3)
    # All wear victims share one zone, so the other workload zones stay
    # eligible for latent injection.  Only the first goes OFFLINE — a
    # stripe can lose at most one readable unit (READ_ONLY zones still
    # serve reads), which single parity tolerates.
    wear_zone = rng.randrange(WORKLOAD_ZONES)
    wear_victims = [(dev, wear_zone, vi == 0)
                    for vi, dev in enumerate(victim_devices)]
    plan = FaultPlan(
        seed=seed + 1,
        num_data_zones=volume.num_data_zones,
        stripe_unit_bytes=STRIPE_UNIT,
        latent_rate=0.4 if smoke else 0.45,
        transient_rate=0.01 if smoke else 0.015,
        max_latent_per_device=5 if smoke else 8,
        wear_victims=wear_victims,
        wear_after_writes=6 if smoke else 8,
    )
    plan.arm(devices)

    ops = _script_ops(seed, num_ops,
                      zone_capacity=ZONE_CAPACITY * (NUM_DEVICES - 1),
                      allow_resets=allow_resets)
    report.workload_ops = len(ops)
    model = [_ZoneModel() for _ in range(WORKLOAD_ZONES)]
    sim.run_process(_drive(sim, volume, ops, seed, model, report))

    if read_repair:
        report.scrub = run_scrub(sim, volume).to_dict()
    sim.run_process(_verify(sim, volume, model, report, "post-scrub"))

    if with_eviction and read_repair:
        sim.run_process(_evict_phase(sim, volume, plan, model, report))
        sim.run_process(_verify(sim, volume, model, report, "degraded"))
        if volume.failed[EVICT_TARGET]:
            plan.latent_rate = 0.0
            template = next(d for i, d in enumerate(volume.devices)
                            if d is not None and i != EVICT_TARGET)
            replacement = fresh_replacement(sim, template,
                                            name=f"replacement{EVICT_TARGET}",
                                            seed=seed + 99)
            rb = rebuild(sim, volume, EVICT_TARGET, replacement)
            report.rebuild = {
                "zones_rebuilt": rb.zones_rebuilt,
                "bytes_written": rb.bytes_written,
            }
            sim.run_process(_verify(sim, volume, model, report,
                                    "post-rebuild"))
    plan.disarm()
    report.injected = plan.counts.to_dict()
    report.health = volume.health.to_dict()
    if trace_out:
        from .tracecli import dump_spans
        dump_spans(volume, trace_out)
    return report


def detection_power(seed: int = 0) -> Dict:
    """Small campaign with read-repair off: the oracle must catch it.

    With healing disabled, injected latent errors are served verbatim,
    so a sound integrity oracle must report corruption.  If this comes
    back clean, the main campaign's "0 violations" would be meaningless.
    """
    report = run_campaign(seed=seed, smoke=True, read_repair=False,
                          with_eviction=False, allow_resets=False)
    return {
        "corruptions": report.corruptions,
        "unrepaired_serves": report.health.get("unrepaired_serves", 0),
        "caught": report.corruptions > 0,
    }


def run_errortest(seed: int = 0, smoke: bool = False,
                  trace_out: Optional[str] = None) -> Dict:
    """The full errortest: main campaign + detection-power check."""
    began = time.time()
    report = run_campaign(seed=seed, smoke=smoke, trace_out=trace_out)
    result = report.to_dict()
    result["detection_power"] = detection_power(seed)
    min_faults = 20 if smoke else 200
    result["min_faults"] = min_faults
    result["passed"] = (
        result["passed"]
        and result["injected"].get("total", 0) >= min_faults
        and result["detection_power"]["caught"]
        and result["eviction"].get("evicted", False)
    )
    result["elapsed_s"] = round(time.time() - began, 2)
    return result


def write_report(report: Dict, path: str) -> None:
    with open(path, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
