"""Standard scaled-down array configurations for the experiments.

The paper's testbed is five 2 TB devices with 1077 MiB zones; the
simulator runs the same *topology* (5 devices, D=4 + P=1, 64 KiB stripe
units) at a geometry scaled so experiments complete quickly, as recorded
in DESIGN.md.  Bandwidth/latency parameters are the paper's measured
device numbers, so throughput ratios are directly comparable.

The conventional array is sized to match the RAIZN array's usable
capacity, as §6.2 does ("the conventional SSDs are formatted with ...
capacity to match the usable capacity of the RAIZN volume").
"""

from __future__ import annotations

import dataclasses
from typing import List, Tuple

from ..conv.device import ConventionalSSD
from ..mdraid.raid5 import MdraidVolume
from ..raizn.config import RaiznConfig
from ..raizn.volume import RaiznVolume
from ..sim import Simulator
from ..units import KiB, MiB
from ..zns.device import ZNSDevice


@dataclasses.dataclass(frozen=True)
class ArrayScale:
    """Geometry of one experiment array."""

    num_devices: int = 5
    num_zones: int = 32
    zone_capacity: int = 4 * MiB
    stripe_unit_bytes: int = 64 * KiB
    num_metadata_zones: int = 3

    @property
    def data_zones(self) -> int:
        return self.num_zones - self.num_metadata_zones

    @property
    def raizn_usable(self) -> int:
        """User-visible bytes of the RAIZN volume at this scale."""
        return (self.num_devices - 1) * self.data_zones * self.zone_capacity

    @property
    def conv_device_capacity(self) -> int:
        """Conventional device size matching RAIZN usable capacity."""
        return self.data_zones * self.zone_capacity

    def config(self) -> RaiznConfig:
        return RaiznConfig(num_data=self.num_devices - 1,
                           stripe_unit_bytes=self.stripe_unit_bytes,
                           num_metadata_zones=self.num_metadata_zones)


SMALL = ArrayScale(num_zones=16, zone_capacity=2 * MiB)
DEFAULT = ArrayScale()
LARGE = ArrayScale(num_zones=64, zone_capacity=8 * MiB)


def make_raizn(sim: Simulator, scale: ArrayScale = DEFAULT,
               seed: int = 0) -> Tuple[RaiznVolume, List[ZNSDevice]]:
    """A freshly formatted RAIZN array at ``scale``."""
    devices = [
        ZNSDevice(sim, name=f"zns{i}", num_zones=scale.num_zones,
                  zone_capacity=scale.zone_capacity, seed=seed + i)
        for i in range(scale.num_devices)
    ]
    volume = RaiznVolume.create(sim, devices, scale.config())
    return volume, devices


def make_mdraid(sim: Simulator, scale: ArrayScale = DEFAULT,
                seed: int = 0) -> Tuple[MdraidVolume, List[ConventionalSSD]]:
    """A fresh mdraid RAID-5 array matching ``scale``'s usable capacity."""
    devices = [
        ConventionalSSD(sim, name=f"nvme{i}",
                        capacity_bytes=scale.conv_device_capacity,
                        seed=seed + i)
        for i in range(scale.num_devices)
    ]
    volume = MdraidVolume(sim, devices,
                          chunk_bytes=scale.stripe_unit_bytes)
    return volume, devices
